#!/bin/bash
cd /root/repo
T() { date +%H:%M:%S; }
echo "$(T) latency_probe rerun"
./target/release/latency_probe --scale 1.0 --min-time 5 --batches 5 > results/latency_probe.txt 2>&1
echo "$(T) heuristic_cmp rerun"
./target/release/heuristic_cmp --scale 0.5 --min-time 3 > results/heuristic.txt 2>&1
echo "$(T) PHASE1B_DONE"
