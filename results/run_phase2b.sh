#!/bin/bash
cd /root/repo
T() { date +%H:%M:%S; }
echo "$(T) tests"
cargo test --workspace > /root/repo/test_output.txt 2>&1
echo "$(T) benches quick"
cargo bench --workspace -- --quick > /root/repo/bench_output.txt 2>&1
echo "$(T) PHASE2B_DONE"
