#!/bin/bash
cd /root/repo
R=results
T() { date +%H:%M:%S; }
echo "$(T) table1" 
./target/release/table1 --scale 1.0 > $R/table1.txt 2>&1
echo "$(T) table2"
./target/release/table2 --scale 1.0 --min-time 3 > $R/table2.txt 2>&1
echo "$(T) table3"
./target/release/table3 --scale 1.0 --min-time 3 > $R/table3.txt 2>&1
echo "$(T) modeleval"
./target/release/modeleval --scale 1.0 --min-time 3 > $R/modeleval.txt 2>&1
echo "$(T) figure2"
./target/release/figure2 --scale 1.0 --min-time 3 > $R/figure2.txt 2>&1
echo "$(T) latency_probe"
./target/release/latency_probe --scale 1.0 --min-time 3 > $R/latency_probe.txt 2>&1
echo "$(T) heuristic_cmp"
./target/release/heuristic_cmp --scale 0.5 --min-time 2 > $R/heuristic.txt 2>&1
echo "$(T) PHASE1_DONE"
