#!/bin/bash
cd /root/repo
T() { date +%H:%M:%S; }
echo "$(T) rebuild bins"
cargo build -q --release -p spmv-bench --bin latency_probe 2>&1 | tail -2
echo "$(T) latency_probe final"
./target/release/latency_probe --scale 1.0 --min-time 5 --batches 5 > results/latency_probe.txt 2>&1
echo "$(T) tests"
cargo test --workspace > /root/repo/test_output.txt 2>&1
echo "$(T) benches"
cargo bench --workspace > /root/repo/bench_output.txt 2>&1
echo "$(T) PHASE2_DONE"
