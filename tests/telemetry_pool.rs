//! Telemetry/pool contract tests: a pool run with recording disabled
//! emits no events at all (the acceptance condition behind the "<1%
//! disabled overhead" claim — there is nothing on the hot path but one
//! relaxed atomic load), while the pool's own [`StripReport`] feedback
//! keeps working either way, because load-balance measurement is a
//! functional input, not observability.

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::parallel::{csr_unit_weights, PinPolicy, SpmvPool};
use blocked_spmv::telemetry;
use std::sync::Mutex;

/// The telemetry rings and the enabled flag are process-global; tests in
/// this binary run on parallel threads, so every test takes this lock
/// and restores the disabled state before releasing it.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn fixture(n: usize, m: usize, seed: u64) -> Csr<f64> {
    let mut coo = Coo::new(n, m);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n {
        for _ in 0..1 + (next() as usize) % 5 {
            let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
        }
    }
    Csr::from_coo(&coo)
}

#[test]
fn disabled_pool_run_emits_zero_events() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(false);
    telemetry::clear();

    let csr = fixture(128, 128, 0xABC);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 3) as f64).collect();
    let want = csr.spmv(&x);
    let pool = SpmvPool::from_csr(
        &csr,
        2,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::None,
    );
    for _ in 0..50 {
        assert_eq!(pool.spmv(&x), want);
    }

    let snap = telemetry::snapshot();
    assert_eq!(
        snap.events.len(),
        0,
        "disabled run recorded events: {:?}",
        &snap.events[..snap.events.len().min(5)]
    );
    assert_eq!(snap.dropped, 0, "disabled run counted drops");
}

#[test]
fn enabling_recording_captures_epoch_and_strip_spans() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(false);
    telemetry::clear();

    let csr = fixture(96, 96, 0xD1CE);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 3) as f64).collect();
    let pool = SpmvPool::from_csr(
        &csr,
        2,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::None,
    );
    telemetry::set_enabled(true);
    let calls = 7;
    for _ in 0..calls {
        let _ = pool.spmv(&x);
    }
    telemetry::set_enabled(false);

    let snap = telemetry::snapshot();
    let epochs = snap.events.iter().filter(|e| e.name == "pool.epoch").count();
    let strips = snap.events.iter().filter(|e| e.name == "pool.strip").count();
    assert_eq!(epochs, calls, "one pool.epoch span per call");
    assert_eq!(
        strips,
        calls * pool.n_workers(),
        "one pool.strip span per worker per call"
    );
    telemetry::clear();
}

#[test]
fn strip_report_medians_stay_nonzero_and_stable_with_telemetry_off() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(false);
    telemetry::clear();

    let csr = fixture(200, 200, 0x5EED);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 0.5 + (i % 4) as f64).collect();
    let pool = SpmvPool::from_csr(
        &csr,
        2,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::None,
    );

    for _ in 0..1000 {
        let _ = pool.spmv(&x);
    }
    let reports = pool.strip_reports();
    assert!(!reports.is_empty());
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.iterations, 1000, "strip {i}");
        assert!(r.min_ns > 0, "strip {i}: min_ns is zero after 1000 calls");
        assert!(
            r.median_ns > 0,
            "strip {i}: median_ns is zero after 1000 calls"
        );
        assert!(
            r.min_ns <= r.median_ns,
            "strip {i}: min {} above median {}",
            r.min_ns,
            r.median_ns
        );
        assert!(!r.respawned, "strip {i} respawned");
    }

    // Stability: another 1000 calls keep the median within an order of
    // magnitude of the first reading — the windowed median tracks the
    // steady state instead of drifting toward outliers. (Wide bound:
    // single-core CI boxes schedule noisily.)
    let before: Vec<u64> = reports.iter().map(|r| r.median_ns).collect();
    for _ in 0..1000 {
        let _ = pool.spmv(&x);
    }
    for (i, r) in pool.strip_reports().iter().enumerate() {
        assert_eq!(r.iterations, 2000, "strip {i}");
        assert!(r.median_ns > 0, "strip {i}");
        let (a, b) = (before[i] as f64, r.median_ns as f64);
        assert!(
            b < 100.0 * a && a < 100.0 * b,
            "strip {i}: median drifted {a} -> {b}"
        );
    }

    // And the disabled run still recorded nothing.
    assert_eq!(telemetry::snapshot().events.len(), 0);
}
