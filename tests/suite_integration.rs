//! Integration tests over the synthetic suite: every suite entry works
//! with every format family, survives a MatrixMarket round-trip, and the
//! experiment drivers produce structurally valid paper tables.

use blocked_spmv::core::{MatrixShape, SpMv};
use blocked_spmv::formats::{Bcsd, Bcsr, BcsrDec, Vbl};
use blocked_spmv::gen::{matrixmarket, random_vector, suite};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use spmv_bench::experiments::{table1, wins};
use spmv_bench::ExpOpts;

fn tiny_opts(ids: Option<Vec<usize>>) -> ExpOpts {
    ExpOpts {
        scale: 0.02,
        seed: 11,
        min_time: 5e-5,
        batches: 1,
        matrices: ids,
        calib_bytes: Some(1 << 16),
    }
}

#[test]
fn every_suite_entry_runs_every_format_family() {
    let shape = BlockShape::new(2, 2).unwrap();
    for entry in suite(0.02) {
        let csr = entry.build(3);
        let x: Vec<f64> = random_vector(csr.n_cols(), 1);
        let want = csr.spmv(&x);
        let check = |got: Vec<f64>, what: &str| {
            for (a, g) in want.iter().zip(&got) {
                assert!(
                    (a - g).abs() < 1e-6 * (1.0 + a.abs()),
                    "{}: {what} diverged",
                    entry.name
                );
            }
        };
        check(Bcsr::from_csr(&csr, shape, KernelImpl::Simd).spmv(&x), "BCSR");
        check(
            BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar).spmv(&x),
            "BCSR-DEC",
        );
        check(Bcsd::from_csr(&csr, 4, KernelImpl::Simd).spmv(&x), "BCSD");
        check(Vbl::from_csr(&csr, KernelImpl::Scalar).spmv(&x), "1D-VBL");
    }
}

#[test]
fn suite_matrices_roundtrip_through_matrixmarket() {
    let entry = &suite(0.02)[20]; // audikw_1-like FEM entry
    let csr = entry.build(9);
    let mut buf = Vec::new();
    matrixmarket::write(&csr, &mut buf).unwrap();
    let back: blocked_spmv::core::Csr<f64> = matrixmarket::read(&buf[..]).unwrap();
    assert_eq!(csr, back);
}

#[test]
fn table1_rows_are_structurally_sound() {
    let rows = table1::run(&tiny_opts(None));
    assert_eq!(rows.len(), 30);
    // Geometry split mirrors Table I: 2 specials, 14 non-geometric,
    // 14 geometric.
    use blocked_spmv::gen::Geometry;
    assert_eq!(
        rows.iter().filter(|r| r.geometry == Geometry::Special).count(),
        2
    );
    assert_eq!(
        rows.iter()
            .filter(|r| r.geometry == Geometry::NonGeometric)
            .count(),
        14
    );
    assert_eq!(
        rows.iter().filter(|r| r.geometry == Geometry::Geometric).count(),
        14
    );
}

#[test]
fn wins_sweep_produces_coherent_tables() {
    // A 3-matrix sweep exercising the full Table II/III pipeline: a FEM
    // matrix (blocking-friendly), a diagonal matrix (BCSD-friendly), and
    // a power-law graph (CSR-friendly).
    let res = wins::run(&tiny_opts(Some(vec![12, 18, 21])));
    assert_eq!(res.outcomes.len(), 3);
    let counts = res.win_counts();
    for col in 0..4 {
        let total: usize = counts.values().map(|c| c[col]).sum();
        assert_eq!(total, 3);
    }
    let t2 = wins::render_table2(&res).to_string();
    assert!(t2.contains("BCSR") && t2.contains("1D-VBL"));
    let t3 = wins::render_table3(&res).to_string();
    assert!(t3.contains("Average"));
    // Speedup sanity: every measured speedup is positive and finite.
    for o in &res.outcomes {
        for (_, s) in &o.speedups {
            assert!(s.min.is_finite() && s.min > 0.0);
            assert!(s.max >= s.avg && s.avg >= s.min);
        }
    }
}

#[test]
fn blocking_friendly_matrices_have_high_fill() {
    // The structural promise behind the suite design: FEM entries tile
    // with near-perfect 1x3 fill, diagonal entries with near-perfect
    // b=4 BCSD fill, graphs with poor fill everywhere.
    use blocked_spmv::formats::{bcsd_stats, bcsr_stats};
    let s = suite(0.05);
    let fem = s[20].build(1); // audikw_1-like
    let diag = s[17].build(1); // largebasis-like
    let graph = s[11].build(1); // wikipedia-like

    let fem_fill =
        fem.nnz() as f64 / bcsr_stats(&fem, BlockShape::new(1, 3).unwrap()).stored as f64;
    assert!(fem_fill > 0.99, "FEM 1x3 fill = {fem_fill}");

    let diag_fill = diag.nnz() as f64 / bcsd_stats(&diag, 4).stored as f64;
    assert!(diag_fill > 0.95, "diag b=4 fill = {diag_fill}");

    let graph_fill =
        graph.nnz() as f64 / bcsr_stats(&graph, BlockShape::new(2, 2).unwrap()).stored as f64;
    assert!(graph_fill < 0.6, "graph 2x2 fill = {graph_fill}");
}
