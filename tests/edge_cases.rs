//! Degenerate-shape and boundary coverage for every format, single- and
//! multi-vector: empty matrices, single-row / single-column matrices, a
//! fully dense row, and the 1D-VBL `u8` run-length boundary (a dense row
//! wider than 255 columns must split into multiple runs).

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMvMulti};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl, Vbr};
use blocked_spmv::kernels::{BlockShape, KernelImpl};

const K: usize = 4;

/// Checks every format built from `coo` against the triplet reference,
/// for k = 1 and k = 4, both kernel implementations.
fn check_all(coo: &Coo<f64>, what: &str) {
    let (n, m) = (coo.n_rows(), coo.n_cols());
    let csr = Csr::from_coo(coo);
    let x: Vec<f64> = (0..m * K).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();

    // Reference straight off CSR rows in plain order.
    let mut yref = vec![0.0; n * K];
    for t in 0..K {
        for i in 0..n {
            let (cols, vals) = csr.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                yref[t * n + i] += v * x[t * m + c as usize];
            }
        }
    }

    let shape = BlockShape::new(2, 2).unwrap();
    for imp in KernelImpl::ALL {
        let formats: Vec<(String, Box<dyn SpMvMulti<f64>>)> = vec![
            (format!("csr"), Box::new(csr.clone())),
            (
                format!("bcsr {imp}"),
                Box::new(Bcsr::from_csr(&csr, shape, imp)),
            ),
            (
                format!("bcsr-dec {imp}"),
                Box::new(BcsrDec::from_csr(&csr, shape, imp)),
            ),
            (format!("bcsd {imp}"), Box::new(Bcsd::from_csr(&csr, 4, imp))),
            (
                format!("bcsd-dec {imp}"),
                Box::new(BcsdDec::from_csr(&csr, 4, imp)),
            ),
            (format!("vbl {imp}"), Box::new(Vbl::from_csr(&csr, imp))),
            (format!("vbr"), Box::new(Vbr::from_csr(&csr))),
        ];
        for (label, mat) in &formats {
            assert_eq!((mat.n_rows(), mat.n_cols()), (n, m), "{what} {label}");
            let single = mat.spmv(&x[..m]);
            let multi = mat.spmv_multi(&x, K);
            for i in 0..n {
                assert!(
                    (single[i] - yref[i]).abs() <= 1e-9 * (1.0 + yref[i].abs()),
                    "{what} {label}: row {i}"
                );
            }
            for (idx, g) in multi.iter().enumerate() {
                assert!(
                    (g - yref[idx]).abs() <= 1e-9 * (1.0 + yref[idx].abs()),
                    "{what} {label}: multi entry {idx}"
                );
            }
        }
    }
}

#[test]
fn empty_matrix_all_nnz_zero() {
    check_all(&Coo::new(5, 7), "5x7 no entries");
}

#[test]
fn single_row_matrix() {
    let mut coo = Coo::new(1, 23);
    for j in (0..23).step_by(3) {
        coo.push(0, j, 1.0 + j as f64).unwrap();
    }
    check_all(&coo, "1x23");
}

#[test]
fn single_column_matrix() {
    let mut coo = Coo::new(23, 1);
    for i in (0..23).step_by(2) {
        coo.push(i, 0, 1.0 + i as f64).unwrap();
    }
    check_all(&coo, "23x1");
}

#[test]
fn one_by_one() {
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, 3.5).unwrap();
    check_all(&coo, "1x1");
}

#[test]
fn fully_dense_row_among_sparse_rows() {
    let mut coo = Coo::new(9, 40);
    for j in 0..40 {
        coo.push(4, j, 0.25 * (j + 1) as f64).unwrap();
    }
    for i in 0..9 {
        coo.push(i, (i * 5) % 40, 1.0).unwrap();
    }
    check_all(&coo, "dense row 4");
}

#[test]
fn vbl_run_longer_than_255_columns_splits() {
    // One 300-wide dense row: 1D-VBL stores run lengths in u8, so this
    // must split into ceil(300/255) = 2 runs and still multiply exactly.
    let mut coo = Coo::new(3, 300);
    for j in 0..300 {
        coo.push(1, j, 1.0 + (j % 11) as f64).unwrap();
    }
    coo.push(0, 299, 2.0).unwrap();
    coo.push(2, 0, 3.0).unwrap();
    let csr = Csr::from_coo(&coo);
    for imp in KernelImpl::ALL {
        let vbl = Vbl::from_csr(&csr, imp);
        assert!(
            vbl.n_blocks() >= 3,
            "300-wide run must split at the u8 boundary ({imp})"
        );
    }
    check_all(&coo, "vbl >255 run");
}

#[test]
fn multi_with_zero_rows_or_cols() {
    // Degenerate extents: the only observable effect is a zeroed output.
    let wide: Csr<f64> = Csr::from_coo(&Coo::new(0, 6));
    assert!(wide.spmv_multi(&vec![1.0; 6 * K], K).is_empty());
    let tall: Csr<f64> = Csr::from_coo(&Coo::new(6, 0));
    let y = tall.spmv_multi(&[], K);
    assert_eq!(y, vec![0.0; 6 * K]);
}
