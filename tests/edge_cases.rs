//! Degenerate-shape and boundary coverage for every format, single- and
//! multi-vector: empty matrices, single-row / single-column matrices, a
//! fully dense row, the 1D-VBL `u8` run-length boundary (a dense row
//! wider than 255 columns must split into multiple runs), and the CSR-Δ
//! delta-width boundaries (u8→u16→u32 escalation inside one row, gaps
//! past 255).

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, CsrDelta, Vbl, Vbr};
use blocked_spmv::kernels::{BlockShape, KernelImpl};

const K: usize = 4;

/// Checks every format built from `coo` against the triplet reference,
/// for k = 1 and k = 4, both kernel implementations.
fn check_all(coo: &Coo<f64>, what: &str) {
    let (n, m) = (coo.n_rows(), coo.n_cols());
    let csr = Csr::from_coo(coo);
    let x: Vec<f64> = (0..m * K).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();

    // Reference straight off CSR rows in plain order.
    let mut yref = vec![0.0; n * K];
    for t in 0..K {
        for i in 0..n {
            let (cols, vals) = csr.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                yref[t * n + i] += v * x[t * m + c as usize];
            }
        }
    }

    let shape = BlockShape::new(2, 2).unwrap();
    for imp in KernelImpl::ALL {
        let formats: Vec<(String, Box<dyn SpMvMulti<f64>>)> = vec![
            (format!("csr"), Box::new(csr.clone())),
            (
                format!("csr-delta {imp}"),
                Box::new(CsrDelta::from_csr(&csr, imp)),
            ),
            (
                format!("bcsr {imp}"),
                Box::new(Bcsr::from_csr(&csr, shape, imp)),
            ),
            (
                format!("bcsr16 {imp}"),
                Box::new(Bcsr::from_csr_narrow(&csr, shape, imp)),
            ),
            (
                format!("bcsr-dec {imp}"),
                Box::new(BcsrDec::from_csr(&csr, shape, imp)),
            ),
            (format!("bcsd {imp}"), Box::new(Bcsd::from_csr(&csr, 4, imp))),
            (
                format!("bcsd16 {imp}"),
                Box::new(Bcsd::from_csr_narrow(&csr, 4, imp)),
            ),
            (
                format!("bcsd-dec {imp}"),
                Box::new(BcsdDec::from_csr(&csr, 4, imp)),
            ),
            (format!("vbl {imp}"), Box::new(Vbl::from_csr(&csr, imp))),
            (
                format!("vbl16 {imp}"),
                Box::new(Vbl::from_csr_narrow(&csr, imp)),
            ),
            (format!("vbr"), Box::new(Vbr::from_csr(&csr))),
        ];
        for (label, mat) in &formats {
            assert_eq!((mat.n_rows(), mat.n_cols()), (n, m), "{what} {label}");
            let single = mat.spmv(&x[..m]);
            let multi = mat.spmv_multi(&x, K);
            for i in 0..n {
                assert!(
                    (single[i] - yref[i]).abs() <= 1e-9 * (1.0 + yref[i].abs()),
                    "{what} {label}: row {i}"
                );
            }
            for (idx, g) in multi.iter().enumerate() {
                assert!(
                    (g - yref[idx]).abs() <= 1e-9 * (1.0 + yref[idx].abs()),
                    "{what} {label}: multi entry {idx}"
                );
            }
        }
    }
}

#[test]
fn empty_matrix_all_nnz_zero() {
    check_all(&Coo::new(5, 7), "5x7 no entries");
}

#[test]
fn single_row_matrix() {
    let mut coo = Coo::new(1, 23);
    for j in (0..23).step_by(3) {
        coo.push(0, j, 1.0 + j as f64).unwrap();
    }
    check_all(&coo, "1x23");
}

#[test]
fn single_column_matrix() {
    let mut coo = Coo::new(23, 1);
    for i in (0..23).step_by(2) {
        coo.push(i, 0, 1.0 + i as f64).unwrap();
    }
    check_all(&coo, "23x1");
}

#[test]
fn one_by_one() {
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, 3.5).unwrap();
    check_all(&coo, "1x1");
}

#[test]
fn fully_dense_row_among_sparse_rows() {
    let mut coo = Coo::new(9, 40);
    for j in 0..40 {
        coo.push(4, j, 0.25 * (j + 1) as f64).unwrap();
    }
    for i in 0..9 {
        coo.push(i, (i * 5) % 40, 1.0).unwrap();
    }
    check_all(&coo, "dense row 4");
}

#[test]
fn vbl_run_longer_than_255_columns_splits() {
    // One 300-wide dense row: 1D-VBL stores run lengths in u8, so this
    // must split into ceil(300/255) = 2 runs and still multiply exactly.
    let mut coo = Coo::new(3, 300);
    for j in 0..300 {
        coo.push(1, j, 1.0 + (j % 11) as f64).unwrap();
    }
    coo.push(0, 299, 2.0).unwrap();
    coo.push(2, 0, 3.0).unwrap();
    let csr = Csr::from_coo(&coo);
    for imp in KernelImpl::ALL {
        let vbl = Vbl::from_csr(&csr, imp);
        assert!(
            vbl.n_blocks() >= 3,
            "300-wide run must split at the u8 boundary ({imp})"
        );
    }
    check_all(&coo, "vbl >255 run");
}

#[test]
fn csr_delta_width_escalates_u8_u16_u32_mid_row() {
    // One row whose column gaps cross every width class: a leading
    // gap-1 stretch (unit run), a 96 gap (u8), a 300 gap (u16), and two
    // gaps past u16::MAX (u32) — all inside the same row.
    let n_cols = 132_001;
    let cols = [0usize, 1, 2, 3, 4, 100, 400, 66_000, 132_000];
    let mut coo = Coo::new(2, n_cols);
    for (jx, &j) in cols.iter().enumerate() {
        coo.push(0, j, 1.0 + jx as f64).unwrap();
    }
    coo.push(1, 7, 2.5).unwrap();
    let csr = Csr::from_coo(&coo);
    for imp in KernelImpl::ALL {
        let delta = CsrDelta::from_csr(&csr, imp);
        delta.validate().unwrap();
        let [unit, w8, w16, w32] = delta.run_counts();
        assert_eq!(
            (unit, w8, w16, w32),
            (1, 2, 1, 1),
            "row 0: unit+u8+u16+u32 (the two u32 gaps coalesce), row 1: one u8 run ({imp})"
        );
        assert_eq!(delta.to_csr(), csr, "{imp}");
        let x: Vec<f64> = (0..n_cols).map(|i| 0.5 + (i % 13) as f64 * 0.25).collect();
        if imp == KernelImpl::Scalar {
            assert_eq!(delta.spmv(&x), csr.spmv(&x), "{imp} must be bitwise");
        } else {
            for (g, w) in delta.spmv(&x).iter().zip(csr.spmv(&x)) {
                assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{imp}");
            }
        }
    }
    // The same matrix is too wide for u16 block indices: the narrow
    // constructors must fall back to full width and still be exact.
    let narrow = Bcsr::from_csr_narrow(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
    assert_eq!(
        narrow.index_width(),
        blocked_spmv::core::IndexWidth::U32,
        "132001 columns exceed the u16 range"
    );
}

#[test]
fn csr_delta_rows_with_gaps_past_255() {
    // Every row jumps >= 256 columns between nonzeros, so no gap fits
    // u8's singleton class comfortably packed as units: the encoder must
    // emit u16 runs and every format must still agree.
    let mut coo = Coo::new(5, 600);
    for i in 0..5 {
        coo.push(i, i, 1.0 + i as f64).unwrap();
        coo.push(i, i + 590, 2.0 + i as f64).unwrap();
    }
    let csr = Csr::from_coo(&coo);
    let delta = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
    delta.validate().unwrap();
    let [_, _, w16, _] = delta.run_counts();
    assert!(w16 >= 5, "each 590-wide jump needs a u16 gap");
    check_all(&coo, ">=256-gap rows");
}

#[test]
fn multi_with_zero_rows_or_cols() {
    // Degenerate extents: the only observable effect is a zeroed output.
    let wide: Csr<f64> = Csr::from_coo(&Coo::new(0, 6));
    assert!(wide.spmv_multi(&vec![1.0; 6 * K], K).is_empty());
    let tall: Csr<f64> = Csr::from_coo(&Coo::new(6, 0));
    let y = tall.spmv_multi(&[], K);
    assert_eq!(y, vec![0.0; 6 * K]);
}
