//! Deterministic structural checks of the paper's qualitative claims —
//! the statements of §I–§III that depend only on matrix structure, not
//! on timing, so they must hold exactly on every machine.

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::formats::{Bcsr, BcsrDec, Vbl};
use blocked_spmv::gen::{suite, GenSpec};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::Config;

/// §II: "the col_ind structure of CSR … comprises almost half of the
/// working set of the algorithm" — exactly true in single precision
/// (4-byte values, 4-byte indices).
#[test]
fn csr_col_ind_is_almost_half_the_working_set_in_sp() {
    let csr64 = GenSpec::Random {
        n: 2_000,
        m: 2_000,
        nnz_per_row: 8,
    }
    .build(1);
    let csr32 = csr64.cast::<f32>();
    let col_bytes = csr32.nnz() * 4;
    let frac = col_bytes as f64 / csr32.matrix_bytes() as f64;
    assert!(
        (0.40..0.52).contains(&frac),
        "sp col_ind fraction = {frac}"
    );
    // In double precision it is a third.
    let frac64 = (csr64.nnz() * 4) as f64 / csr64.matrix_bytes() as f64;
    assert!((0.28..0.37).contains(&frac64), "dp col_ind fraction = {frac64}");
}

/// §III: "blocking methods maintain a single index for each block …
/// therefore the col_ind structure … can be significantly reduced" — on
/// a perfectly blocked matrix, BCSR 2x2 stores one index per four values
/// and its working set undercuts CSR's.
#[test]
fn blocking_shrinks_the_working_set_on_block_matrices() {
    let csr = GenSpec::FemBlocks {
        nodes: 2_000,
        dof: 2,
        neighbors: 6,
    }
    .build(2);
    let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
    assert_eq!(bcsr.padding(), 0, "FEM dof=2 must tile 2x2 exactly");
    assert!(bcsr.matrix_bytes() < csr.matrix_bytes());
    // Index bytes per stored value: 4 for CSR, ~1 for 2x2 BCSR.
    let csr_idx_per_val = 4.0;
    let bcsr_idx_per_val =
        (bcsr.matrix_bytes() - bcsr.nnz_stored() * 8) as f64 / bcsr.nnz_stored() as f64;
    assert!(
        bcsr_idx_per_val < 0.4 * csr_idx_per_val,
        "BCSR index overhead per value = {bcsr_idx_per_val}"
    );
}

/// §III: "if the nonzero elements pattern … is rather irregular, these
/// methods lead to excessive padding, overwhelming any benefit" — on a
/// scattered matrix the padded BCSR working set exceeds CSR's.
#[test]
fn padding_overwhelms_blocking_on_scatter() {
    let csr = GenSpec::Random {
        n: 2_000,
        m: 2_000,
        nnz_per_row: 3,
    }
    .build(3);
    let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 4).unwrap(), KernelImpl::Scalar);
    assert!(
        bcsr.padding() > 3 * csr.nnz(),
        "scatter should pad heavily: padding {} vs nnz {}",
        bcsr.padding(),
        csr.nnz()
    );
    assert!(bcsr.matrix_bytes() > csr.matrix_bytes());
    // While the decomposed variant never stores padding and stays close
    // to CSR (it pays only the extra pointer array).
    let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 4).unwrap(), KernelImpl::Scalar);
    assert!(dec.matrix_bytes() < bcsr.matrix_bytes());
}

/// §V-A: "1D-VBL achieved the best speedup for the dense matrix …
/// since it can construct the largest blocks."
#[test]
fn vbl_builds_maximal_blocks_on_dense() {
    let csr = GenSpec::Dense { n: 300, m: 300 }.build(0);
    let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
    // Rows are 300 long: one 255-chunk plus one 45-chunk.
    assert_eq!(vbl.n_blocks(), 600);
    assert!(vbl.avg_block_len() > 100.0);
    // And its working set beats CSR's by nearly the whole col_ind array.
    assert!((vbl.matrix_bytes() as f64) < 0.72 * csr.matrix_bytes() as f64);
}

/// §IV: "the MEMCOMP model also treats CSR as a degenerate blocking
/// method with 1x1 blocks and nb = nnz".
#[test]
fn csr_is_the_degenerate_one_by_one_config() {
    let csr = GenSpec::Stencil2d { nx: 20, ny: 20 }.build(0);
    let stats = Config::CSR.substats(&csr);
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].nb, csr.nnz());
}

/// §II-A: alignment "leads generally to more padding" than unaligned
/// placement — checked across the whole synthetic suite.
#[test]
fn alignment_never_reduces_padding_across_the_suite() {
    let shape = BlockShape::new(1, 4).unwrap();
    for entry in suite(0.02) {
        let csr = entry.build(1);
        let aligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, true);
        let unaligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false);
        assert!(
            aligned.padding() >= unaligned.padding(),
            "{}: aligned {} < unaligned {}",
            entry.name,
            aligned.padding(),
            unaligned.padding()
        );
    }
}

/// §III (decomposed methods): "the remainder CSR matrix will have very
/// short rows" — on a half-blocked matrix the remainder's mean row
/// length must be well below the original's.
#[test]
fn decomposed_remainder_has_short_rows() {
    // Mix: full 2x2 blocks plus one scattered entry per row.
    let blocks = GenSpec::FemBlocks {
        nodes: 500,
        dof: 2,
        neighbors: 5,
    }
    .build(4);
    let mut coo = Coo::new(1000, 1000);
    for (i, j, v) in blocks.iter() {
        coo.push(i, j, v).unwrap();
    }
    for i in 0..1000 {
        coo.push(i, (i * 331 + 17) % 1000, 0.5).unwrap();
    }
    let csr = Csr::from_coo(&coo);
    let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
    let rest = dec.rest();
    let mean_rest_row = rest.nnz() as f64 / rest.n_rows() as f64;
    let mean_full_row = csr.nnz() as f64 / csr.n_rows() as f64;
    assert!(
        mean_rest_row < 0.25 * mean_full_row,
        "remainder rows should be short: {mean_rest_row} vs {mean_full_row}"
    );
}

/// Table I's scale contract: the working set grows near-linearly with
/// `--scale` for the sparse entries.
#[test]
fn suite_scale_is_roughly_linear() {
    let small = suite(0.05);
    let large = suite(0.20);
    for id in [3usize, 9, 21, 28] {
        let a = small[id - 1].build(1).working_set_bytes() as f64;
        let b = large[id - 1].build(1).working_set_bytes() as f64;
        let ratio = b / a;
        assert!(
            (2.0..8.0).contains(&ratio),
            "matrix #{id}: 4x scale gave ratio {ratio}"
        );
    }
}
