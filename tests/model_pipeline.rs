//! End-to-end tests of the model pipeline: statistics estimators vs
//! materialized formats, prediction invariants, and selection sanity on
//! structurally extreme matrices.
//!
//! The property tests run on the in-repo seeded harness
//! (`tests/support/prop.rs`), not proptest, so the suite builds and
//! shrinks offline.

use blocked_spmv::core::{Coo, Csr, SpMv};
use blocked_spmv::gen::GenSpec;
use blocked_spmv::model::{
    profile_kernels, rank, select, BlockConfig, Config, KernelProfile, MachineProfile, Model,
    ProfileOptions,
};

#[path = "support/prop.rs"]
mod prop;
use prop::Rng;

fn machine() -> MachineProfile {
    MachineProfile {
        bandwidth: 4e9,
        l1_bytes: 32 * 1024,
        llc_bytes: 4 << 20,
    }
}

/// Generator: a non-empty random CSR matrix with positive values,
/// dimensions and entry count scaled by the harness `size`.
fn gen_csr(rng: &mut Rng, size: usize) -> Csr<f64> {
    let (n_max, m_max) = prop::scaled_dims(size, 30);
    let n = rng.usize_in(1, n_max);
    let m = rng.usize_in(1, m_max);
    let k = rng.usize_in(1, 3 * size + 2);
    let entries: Vec<(usize, usize, f64)> = (0..k)
        .map(|_| (rng.index(n), rng.index(m), rng.f64_in(0.5, 2.0)))
        .collect();
    Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap())
}

#[test]
fn substats_working_sets_match_builds() {
    prop::run("substats_working_sets_match_builds", 48, |rng, size| {
        let csr = gen_csr(rng, size);
        for config in Config::enumerate(true) {
            let est: usize = config.substats(&csr).iter().map(|s| s.ws_bytes).sum();
            let real = config.build(&csr).working_set_bytes();
            assert_eq!(est, real, "ws mismatch for {config}");
        }
    });
}

#[test]
fn model_predictions_are_ordered() {
    prop::run("model_predictions_are_ordered", 48, |rng, size| {
        // With every nof in [0, 1]: MEM <= OVERLAP <= MEMCOMP, for every
        // configuration — the bound structure Figure 3 visualizes.
        let csr = gen_csr(rng, size);
        let nof = rng.f64_in(0.0, 1.0);
        let profile = KernelProfile::uniform(3e-9, nof);
        let m = machine();
        for config in Config::enumerate(false) {
            let stats = config.substats(&csr);
            let mem = Model::Mem.predict(&stats, &m, &profile);
            let ovl = Model::Overlap.predict(&stats, &m, &profile);
            let cmp = Model::MemComp.predict(&stats, &m, &profile);
            assert!(mem <= ovl + 1e-18 && ovl <= cmp + 1e-18, "{config}");
        }
    });
}

#[test]
fn predictions_scale_linearly_with_bandwidth() {
    prop::run("predictions_scale_linearly_with_bandwidth", 48, |rng, size| {
        // Doubling BW must halve the MEM prediction exactly.
        let csr = gen_csr(rng, size);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let m1 = machine();
        let m2 = MachineProfile {
            bandwidth: 2.0 * m1.bandwidth,
            ..m1
        };
        for config in Config::enumerate(false).into_iter().take(8) {
            let stats = config.substats(&csr);
            let t1 = Model::Mem.predict(&stats, &m1, &profile);
            let t2 = Model::Mem.predict(&stats, &m2, &profile);
            assert!((t1 - 2.0 * t2).abs() <= 1e-15 + 1e-9 * t1);
        }
    });
}

#[test]
fn selection_is_argmin_of_rank() {
    prop::run("selection_is_argmin_of_rank", 48, |rng, size| {
        let csr = gen_csr(rng, size);
        let profile = KernelProfile::uniform(2e-9, 0.7);
        let m = machine();
        for model in Model::ALL {
            let best = select(model, &csr, &m, &profile, true);
            let configs = blocked_spmv::model::candidate_configs(model, true);
            let ranked = rank(model, &csr, &m, &profile, &configs);
            assert_eq!(best.config, ranked[0].config);
            assert!(best.predicted <= ranked.last().unwrap().predicted);
        }
    });
}

#[test]
fn fem_matrix_selects_a_blocked_format_end_to_end() {
    // A pure-block FEM matrix under the "ideal machine" profile (block
    // cost proportional to elements, so blocking is never penalized by
    // kernel quality): every model must steer away from CSR, because the
    // blocked working sets are strictly smaller and the total compute is
    // the same.
    let csr = GenSpec::FemBlocks {
        nodes: 400,
        dof: 3,
        neighbors: 8,
    }
    .build(5);
    let machine = machine();
    let profile = KernelProfile::proportional(1e-10, 0.5);
    for model in Model::ALL {
        let pick = select(model, &csr, &machine, &profile, true);
        assert_ne!(
            pick.config.block,
            BlockConfig::Csr,
            "{model} kept CSR on a pure-block FEM matrix"
        );
    }
}

#[test]
fn real_profile_selections_track_real_measurements() {
    // With a *measured* kernel profile (whatever this build's kernel
    // quality is), each model's selection must be self-consistent: its
    // predicted time is the minimum over its own candidate set.
    let csr = GenSpec::FemBlocks {
        nodes: 300,
        dof: 3,
        neighbors: 6,
    }
    .build(5);
    let machine = machine();
    let profile = profile_kernels::<f64>(
        &machine,
        &ProfileOptions {
            small_bytes: 4 * 1024,
            large_bytes: 64 * 1024,
            min_time: 2e-4,
            batches: 1,
        },
    );
    for model in Model::ALL {
        let pick = select(model, &csr, &machine, &profile, true);
        let configs = blocked_spmv::model::candidate_configs(model, true);
        for c in configs {
            let t = model.predict(&c.substats(&csr), &machine, &profile);
            assert!(
                pick.predicted <= t + 1e-15,
                "{model}: selection {} ({}) beaten by {c} ({t})",
                pick.config,
                pick.predicted
            );
        }
    }
}

#[test]
fn diagonal_matrix_prefers_bcsd_family_under_mem() {
    // A pure multi-diagonal matrix: BCSD's working set is the smallest
    // possible (one index per b elements, no padding in the interior), so
    // the MEM model must choose the BCSD family.
    let csr = GenSpec::DiagRuns {
        n: 600,
        n_diags: 3,
    }
    .build(1);
    let profile = KernelProfile::uniform(1e-9, 0.5);
    let pick = select(Model::Mem, &csr, &machine(), &profile, false);
    match pick.config.block {
        BlockConfig::Bcsd(_) | BlockConfig::BcsdDec(_) => {}
        other => panic!("expected a BCSD-family pick, got {other:?}"),
    }
}

#[test]
fn profiled_simd_kernels_are_never_slower_by_much() {
    // Sanity on real profiling output: the SIMD kernel's t_b should not
    // be wildly slower than the scalar one for the wide shapes it
    // actually vectorizes (allow 2x slack for measurement noise in tiny
    // profiling runs).
    let machine = machine();
    let profile = profile_kernels::<f32>(
        &machine,
        &ProfileOptions {
            small_bytes: 8 * 1024,
            large_bytes: 64 * 1024,
            min_time: 5e-4,
            batches: 2,
        },
    );
    let shape = blocked_spmv::kernels::BlockShape::new(1, 8).unwrap();
    let scalar = profile.get(blocked_spmv::model::KernelKey::Bcsr {
        shape,
        imp: blocked_spmv::kernels::KernelImpl::Scalar,
    });
    let simd = profile.get(blocked_spmv::model::KernelKey::Bcsr {
        shape,
        imp: blocked_spmv::kernels::KernelImpl::Simd,
    });
    assert!(
        simd.t_b < 2.0 * scalar.t_b,
        "1x8 f32 SIMD t_b {} vs scalar {}",
        simd.t_b,
        scalar.t_b
    );
}
