//! Integration tests for the serving layer (`blocked_spmv::serve`):
//! batched dispatch must be bitwise-equal to serial single-vector SpMV,
//! the registry must stay consistent under concurrent publish/read
//! traffic, and admission control must reject — never block.

#[path = "support/prop.rs"]
mod prop;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::model::{Config, KernelProfile, MachineProfile, Model};
use blocked_spmv::parallel::PinPolicy;
use blocked_spmv::serve::{
    EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine, ServeError,
};

fn csr_from(rng: &mut prop::Rng, size: usize) -> Csr<f64> {
    let (n, m, trips) = prop::sparse_triplets(rng, 2 + size * 4, 2 + size * 4, size * 12, -4.0, 4.0);
    Csr::from_coo(&Coo::from_triplets(n, m, trips).expect("triplets in range"))
}

/// The tentpole correctness property: for 200 seeded matrices, a fan of
/// requests answered through the coalescing engine is bitwise-identical
/// to the same prepared matrix's serial single-vector path — whether the
/// format was pinned (CSR) or model-selected (any blocked format).
#[test]
fn batched_dispatch_is_bitwise_equal_to_serial() {
    let machine = MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    };
    let profile = KernelProfile::uniform(1e-9, 0.5);
    prop::run("serving_batched_equals_serial", 200, |rng, size| {
        let csr = csr_from(rng, size);
        // Alternate between a pinned-CSR entry and a model-selected one,
        // so the batch path is exercised over blocked formats too.
        let prepared = if rng.bool() {
            PreparedMatrix::from_config(Config::CSR, &csr)
        } else {
            PreparedMatrix::prepare(&csr, Model::Overlap, &machine, &profile, true)
        };
        let registry = Arc::new(Registry::new());
        let id = MatrixId(rng.next_u64());
        registry.publish(id, prepared);
        let engine = ServeEngine::new(
            Arc::clone(&registry),
            EngineOptions {
                window: Duration::ZERO,
                start_paused: true,
                ..EngineOptions::default()
            },
        );

        let fan = rng.usize_in(1, 12);
        let xs: Vec<Vec<f64>> = (0..fan)
            .map(|_| rng.f64_vec(csr.n_cols(), -2.0, 2.0))
            .collect();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| engine.submit(id, x.clone()).expect("known id, right length"))
            .collect();
        // Resuming after the whole fan is queued forces coalescing: the
        // dispatcher sees all `fan` requests in a single drain.
        engine.resume();
        let served = registry.get(id).expect("published");
        for (x, t) in xs.iter().zip(tickets) {
            let batched = t.wait().expect("request must complete");
            assert_eq!(
                batched,
                served.spmv(x),
                "batched result must be bitwise-equal to serial SpMV"
            );
        }
        let rep = engine.report();
        assert_eq!(rep.completed, fan as u64);
        assert_eq!(rep.failed, 0);
    });
}

/// Torture the left-right shard: one writer republished `id` in a tight
/// loop while readers hammer `get_versioned`. Every read must see a
/// fully-published, internally consistent entry (diagonal value ==
/// published version) and versions must be monotonic per reader.
#[test]
fn registry_stays_consistent_under_publish_while_read() {
    fn diag(n: usize, v: f64) -> Csr<f64> {
        let trips: Vec<_> = (0..n).map(|i| (i, i, v)).collect();
        Csr::from_coo(&Coo::from_triplets(n, n, trips).unwrap())
    }

    const N: usize = 32;
    let registry = Arc::new(Registry::with_shards(4));
    let id = MatrixId(0xFEED);
    registry.publish(id, PreparedMatrix::from_config(Config::CSR, &diag(N, 1.0)));

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let x = vec![1.0f64; N];
                let mut last_version = 0;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (version, served) = registry.get_versioned(id).expect("never removed");
                    assert!(
                        version >= last_version,
                        "versions must be monotonic per reader ({version} < {last_version})"
                    );
                    last_version = version;
                    let y = served.spmv(&x);
                    // The entry must be the one published whole: every
                    // diagonal element carries its publish version.
                    assert!(
                        y.iter().all(|&v| v == version as f64),
                        "read a torn or misversioned entry: version {version}, y[0]={}",
                        y[0]
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let mut version = 1;
    let deadline = Instant::now() + Duration::from_millis(200);
    while Instant::now() < deadline {
        version += 1;
        let published = registry.publish(
            id,
            PreparedMatrix::from_config(Config::CSR, &diag(N, version as f64)),
        );
        assert_eq!(published, version);
    }
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(reads > 0, "readers must have made progress");
    assert!(version > 2, "writer must have made progress");
    assert_eq!(registry.version_of(id), Some(version));
}

/// Admission control: a full queue rejects instantly with `Saturated`
/// instead of blocking the submitter behind the dispatcher.
#[test]
fn backpressure_rejects_instead_of_blocking() {
    let csr = Csr::<f64>::from_coo(
        &Coo::from_triplets(6, 6, (0..6).map(|i| (i, i, 1.0 + i as f64)).collect::<Vec<_>>())
            .unwrap(),
    );
    let registry = Arc::new(Registry::new());
    let id = MatrixId(3);
    registry.publish(id, PreparedMatrix::from_config(Config::CSR, &csr));
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineOptions {
            capacity: 4,
            window: Duration::ZERO,
            start_paused: true,
            ..EngineOptions::default()
        },
    );

    let x = vec![1.0; 6];
    let tickets: Vec<_> = (0..4)
        .map(|_| engine.submit(id, x.clone()).expect("queue has room"))
        .collect();
    let t0 = Instant::now();
    for _ in 0..3 {
        assert_eq!(
            engine.submit(id, x.clone()).unwrap_err(),
            ServeError::Saturated { capacity: 4 }
        );
    }
    assert!(
        t0.elapsed() < Duration::from_millis(200),
        "saturation must reject without blocking"
    );
    assert_eq!(engine.report().rejected, 3);

    // Draining frees capacity and the same traffic is accepted again.
    engine.resume();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), csr.spmv(&x));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match engine.submit(id, x.clone()) {
            Ok(t) => {
                assert_eq!(t.wait().unwrap(), csr.spmv(&x));
                break;
            }
            Err(ServeError::Saturated { .. }) => {
                assert!(Instant::now() < deadline, "queue never drained");
                std::thread::yield_now();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// A pool-hosted entry serves through the same front door, and removing
/// it from the registry shuts the pool's workers down cleanly once the
/// last in-flight reference drops.
#[test]
fn pooled_prepared_matrix_serves_and_shuts_down() {
    let n = 400;
    let trips: Vec<_> = (0..n)
        .flat_map(|i| {
            let mut row = vec![(i, i, 2.0)];
            if i + 1 < n {
                row.push((i, i + 1, -1.0));
            }
            row
        })
        .collect();
    let csr = Csr::<f64>::from_coo(&Coo::from_triplets(n, n, trips).unwrap());
    let machine = MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    };
    let profile = KernelProfile::uniform(1e-9, 0.5);
    let prepared = PreparedMatrix::prepare_pooled(
        &csr,
        Model::Mem,
        &machine,
        &profile,
        true,
        2,
        PinPolicy::None,
    );
    assert!(prepared.is_pooled());

    let registry = Arc::new(Registry::new());
    let id = MatrixId(77);
    registry.publish(id, prepared);
    let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());
    let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
    let served = registry.get(id).expect("published");
    for _ in 0..3 {
        assert_eq!(
            engine.submit_wait(id, x.clone()).unwrap(),
            served.spmv(&x),
            "pooled dispatch must match the pooled serial path"
        );
    }
    drop(served);
    // Removing the entry drops the registry's Arc; the pool joins its
    // workers when the last reference (any in-flight dispatch) is gone.
    assert!(registry.remove(id));
    assert_eq!(
        engine.submit(id, x).unwrap_err(),
        ServeError::UnknownMatrix(id)
    );
}
