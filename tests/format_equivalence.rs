//! Cross-crate property tests: every storage format computes the same
//! matrix-vector product as the dense reference, for arbitrary matrices,
//! every block shape, and both kernel implementations.
//!
//! Runs on the in-repo seeded harness (`tests/support/prop.rs`), not
//! proptest, so the suite builds and shrinks offline.

use blocked_spmv::core::{Coo, Csr, DenseMatrix, SpMv};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl, Vbr};
use blocked_spmv::kernels::{BlockShape, KernelImpl, BCSD_SIZES};

#[path = "support/prop.rs"]
mod prop;
use prop::Rng;

/// Generator: a random sparse matrix as (rows, cols, triplets),
/// including duplicate coordinates (summed by construction). Dimensions
/// and entry count grow with the harness `size` so shrinking lands on
/// small matrices.
fn gen_matrix(rng: &mut Rng, size: usize) -> (usize, usize, Vec<(usize, usize, f64)>) {
    let (n_max, m_max) = prop::scaled_dims(size, 24);
    prop::sparse_triplets(rng, n_max, m_max, 4 * size, -4.0, 4.0)
}

fn build(n: usize, m: usize, entries: &[(usize, usize, f64)]) -> (Csr<f64>, DenseMatrix<f64>) {
    let coo = Coo::from_triplets(n, m, entries.to_vec()).expect("in range");
    let dense = coo.to_dense();
    (Csr::from_coo(&coo), dense)
}

fn x_for(m: usize) -> Vec<f64> {
    (0..m).map(|i| 0.5 + (i % 5) as f64).collect()
}

fn assert_close(want: &[f64], got: &[f64], what: &str) {
    for (i, (a, b)) in want.iter().zip(got).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            "{what}: row {i}: {a} vs {b}"
        );
    }
}

fn any_shape(rng: &mut Rng) -> BlockShape {
    let space = BlockShape::search_space();
    space[rng.index(space.len())]
}

fn any_bcsd(rng: &mut Rng) -> usize {
    BCSD_SIZES[rng.index(BCSD_SIZES.len())]
}

fn any_impl(rng: &mut Rng) -> KernelImpl {
    if rng.bool() {
        KernelImpl::Simd
    } else {
        KernelImpl::Scalar
    }
}

#[test]
fn csr_matches_dense() {
    prop::run("csr_matches_dense", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &csr.spmv(&x), "CSR");
        csr.validate().unwrap();
    });
}

#[test]
fn bcsr_matches_dense_any_shape() {
    prop::run("bcsr_matches_dense_any_shape", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, dense) = build(n, m, &entries);
        let shape = any_shape(rng);
        let (imp, aligned) = (any_impl(rng), rng.bool());
        let bcsr = Bcsr::from_csr_with(&csr, shape, imp, aligned);
        bcsr.validate().unwrap();
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &bcsr.spmv(&x), &format!("BCSR {shape}"));
        // Padding accounting is consistent.
        assert_eq!(bcsr.nnz_stored(), csr.nnz() + bcsr.padding());
    });
}

#[test]
fn bcsd_matches_dense_any_size() {
    prop::run("bcsd_matches_dense_any_size", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, dense) = build(n, m, &entries);
        let b = any_bcsd(rng);
        let bcsd = Bcsd::from_csr(&csr, b, any_impl(rng));
        bcsd.validate().unwrap();
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &bcsd.spmv(&x), &format!("BCSD {b}"));
        assert_eq!(bcsd.nnz_stored(), csr.nnz() + bcsd.padding());
    });
}

#[test]
fn decomposed_match_dense_and_conserve_nnz() {
    prop::run("decomposed_match_dense_and_conserve_nnz", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);

        let shape = any_shape(rng);
        let dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_close(&dense.spmv(&x), &dec.spmv(&x), &format!("BCSR-DEC {shape}"));
        assert_eq!(dec.nnz_stored(), csr.nnz(), "DEC must not pad");
        assert_eq!(dec.main().padding(), 0);

        let b = any_bcsd(rng);
        let dec = BcsdDec::from_csr(&csr, b, KernelImpl::Scalar);
        assert_close(&dense.spmv(&x), &dec.spmv(&x), &format!("BCSD-DEC {b}"));
        assert_eq!(dec.nnz_stored(), csr.nnz());
    });
}

#[test]
fn variable_formats_match_dense() {
    prop::run("variable_formats_match_dense", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        vbl.validate().unwrap();
        assert_close(&dense.spmv(&x), &vbl.spmv(&x), "1D-VBL");
        assert_eq!(vbl.nnz_stored(), csr.nnz(), "VBL must not pad");

        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        assert_close(&dense.spmv(&x), &vbr.spmv(&x), "VBR");
        assert_eq!(vbr.nnz_stored(), csr.nnz(), "VBR must not pad");
    });
}

#[test]
fn single_precision_formats_agree_with_double() {
    prop::run("single_precision_formats_agree_with_double", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr64, _) = build(n, m, &entries);
        let csr32 = csr64.cast::<f32>();
        let shape = any_shape(rng);
        let b64 = Bcsr::from_csr(&csr64, shape, KernelImpl::Simd);
        let b32 = Bcsr::from_csr(&csr32, shape, KernelImpl::Simd);
        let x64 = x_for(m);
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        for (a, b) in b64.spmv(&x64).iter().zip(b32.spmv(&x32)) {
            assert!(
                (*a - b as f64).abs() <= 1e-3 * (1.0 + a.abs()),
                "precisions diverged: {a} vs {b}"
            );
        }
    });
}

#[test]
fn transpose_roundtrip() {
    prop::run("transpose_roundtrip", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, _) = build(n, m, &entries);
        assert_eq!(csr.transpose().transpose(), csr);
    });
}

#[test]
fn every_format_roundtrips_to_csr() {
    prop::run("every_format_roundtrips_to_csr", 64, |rng, size| {
        // from_csr followed by to_csr is the identity for every format:
        // padding is dropped, nothing else changes.
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, _) = build(n, m, &entries);
        let shape = any_shape(rng);
        let b = any_bcsd(rng);
        assert_eq!(
            Bcsr::from_csr(&csr, shape, KernelImpl::Scalar).to_csr(),
            csr,
            "BCSR {shape}"
        );
        assert_eq!(
            Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false).to_csr(),
            csr,
            "unaligned BCSR {shape}"
        );
        assert_eq!(
            Bcsd::from_csr(&csr, b, KernelImpl::Scalar).to_csr(),
            csr,
            "BCSD {b}"
        );
        assert_eq!(
            BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar).to_csr(),
            csr,
            "BCSR-DEC {shape}"
        );
        assert_eq!(
            BcsdDec::from_csr(&csr, b, KernelImpl::Scalar).to_csr(),
            csr,
            "BCSD-DEC {b}"
        );
        assert_eq!(Vbl::from_csr(&csr, KernelImpl::Scalar).to_csr(), csr);
        assert_eq!(Vbr::from_csr(&csr).to_csr(), csr);
    });
}

#[test]
fn working_set_is_positive_and_ordered() {
    prop::run("working_set_is_positive_and_ordered", 64, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let (csr, _) = build(n, m, &entries);
        // matrix_bytes <= working_set (which adds the vectors).
        assert!(csr.matrix_bytes() < csr.working_set_bytes());
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        assert!(vbl.matrix_bytes() < vbl.working_set_bytes());
    });
}
