//! Cross-crate property tests: every storage format computes the same
//! matrix-vector product as the dense reference, for arbitrary matrices,
//! every block shape, and both kernel implementations.

use blocked_spmv::core::{Coo, Csr, DenseMatrix, SpMv};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl, Vbr};
use blocked_spmv::kernels::{BlockShape, KernelImpl, BCSD_SIZES};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as (rows, cols, triplets), including
/// duplicate coordinates (summed by construction).
fn matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..24, 1usize..24).prop_flat_map(|(n, m)| {
        let entry = (0..n, 0..m, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..120)
            .prop_map(move |entries| (n, m, entries))
    })
}

fn build(n: usize, m: usize, entries: &[(usize, usize, f64)]) -> (Csr<f64>, DenseMatrix<f64>) {
    let coo = Coo::from_triplets(n, m, entries.to_vec()).expect("in range");
    let dense = coo.to_dense();
    (Csr::from_coo(&coo), dense)
}

fn x_for(m: usize) -> Vec<f64> {
    (0..m).map(|i| 0.5 + (i % 5) as f64).collect()
}

fn assert_close(want: &[f64], got: &[f64], what: &str) {
    for (i, (a, b)) in want.iter().zip(got).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            "{what}: row {i}: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_dense((n, m, entries) in matrix_strategy()) {
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &csr.spmv(&x), "CSR");
        csr.validate().unwrap();
    }

    #[test]
    fn bcsr_matches_dense_any_shape(
        (n, m, entries) in matrix_strategy(),
        shape_idx in 0usize..19,
        simd in proptest::bool::ANY,
        aligned in proptest::bool::ANY,
    ) {
        let (csr, dense) = build(n, m, &entries);
        let shape = BlockShape::search_space()[shape_idx];
        let imp = if simd { KernelImpl::Simd } else { KernelImpl::Scalar };
        let bcsr = Bcsr::from_csr_with(&csr, shape, imp, aligned);
        bcsr.validate().unwrap();
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &bcsr.spmv(&x), &format!("BCSR {shape}"));
        // Padding accounting is consistent.
        prop_assert_eq!(bcsr.nnz_stored(), csr.nnz() + bcsr.padding());
    }

    #[test]
    fn bcsd_matches_dense_any_size(
        (n, m, entries) in matrix_strategy(),
        b_idx in 0usize..7,
        simd in proptest::bool::ANY,
    ) {
        let (csr, dense) = build(n, m, &entries);
        let b = BCSD_SIZES[b_idx];
        let imp = if simd { KernelImpl::Simd } else { KernelImpl::Scalar };
        let bcsd = Bcsd::from_csr(&csr, b, imp);
        bcsd.validate().unwrap();
        let x = x_for(m);
        assert_close(&dense.spmv(&x), &bcsd.spmv(&x), &format!("BCSD {b}"));
        prop_assert_eq!(bcsd.nnz_stored(), csr.nnz() + bcsd.padding());
    }

    #[test]
    fn decomposed_match_dense_and_conserve_nnz(
        (n, m, entries) in matrix_strategy(),
        shape_idx in 0usize..19,
        b_idx in 0usize..7,
    ) {
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);

        let shape = BlockShape::search_space()[shape_idx];
        let dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_close(&dense.spmv(&x), &dec.spmv(&x), &format!("BCSR-DEC {shape}"));
        prop_assert_eq!(dec.nnz_stored(), csr.nnz(), "DEC must not pad");
        prop_assert_eq!(dec.main().padding(), 0);

        let b = BCSD_SIZES[b_idx];
        let dec = BcsdDec::from_csr(&csr, b, KernelImpl::Scalar);
        assert_close(&dense.spmv(&x), &dec.spmv(&x), &format!("BCSD-DEC {b}"));
        prop_assert_eq!(dec.nnz_stored(), csr.nnz());
    }

    #[test]
    fn variable_formats_match_dense((n, m, entries) in matrix_strategy()) {
        let (csr, dense) = build(n, m, &entries);
        let x = x_for(m);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        vbl.validate().unwrap();
        assert_close(&dense.spmv(&x), &vbl.spmv(&x), "1D-VBL");
        prop_assert_eq!(vbl.nnz_stored(), csr.nnz(), "VBL must not pad");

        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        assert_close(&dense.spmv(&x), &vbr.spmv(&x), "VBR");
        prop_assert_eq!(vbr.nnz_stored(), csr.nnz(), "VBR must not pad");
    }

    #[test]
    fn single_precision_formats_agree_with_double(
        (n, m, entries) in matrix_strategy(),
        shape_idx in 0usize..19,
    ) {
        let (csr64, _) = build(n, m, &entries);
        let csr32 = csr64.cast::<f32>();
        let shape = BlockShape::search_space()[shape_idx];
        let b64 = Bcsr::from_csr(&csr64, shape, KernelImpl::Simd);
        let b32 = Bcsr::from_csr(&csr32, shape, KernelImpl::Simd);
        let x64 = x_for(m);
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        for (a, b) in b64.spmv(&x64).iter().zip(b32.spmv(&x32)) {
            prop_assert!(
                (*a - b as f64).abs() <= 1e-3 * (1.0 + a.abs()),
                "precisions diverged: {} vs {}", a, b
            );
        }
    }

    #[test]
    fn transpose_roundtrip((n, m, entries) in matrix_strategy()) {
        let (csr, _) = build(n, m, &entries);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn every_format_roundtrips_to_csr(
        (n, m, entries) in matrix_strategy(),
        shape_idx in 0usize..19,
        b_idx in 0usize..7,
    ) {
        // from_csr followed by to_csr is the identity for every format:
        // padding is dropped, nothing else changes.
        let (csr, _) = build(n, m, &entries);
        let shape = BlockShape::search_space()[shape_idx];
        let b = BCSD_SIZES[b_idx];
        prop_assert_eq!(
            Bcsr::from_csr(&csr, shape, KernelImpl::Scalar).to_csr(), csr.clone(),
            "BCSR {}", shape
        );
        prop_assert_eq!(
            Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false).to_csr(), csr.clone(),
            "unaligned BCSR {}", shape
        );
        prop_assert_eq!(
            Bcsd::from_csr(&csr, b, KernelImpl::Scalar).to_csr(), csr.clone(),
            "BCSD {}", b
        );
        prop_assert_eq!(
            BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar).to_csr(), csr.clone(),
            "BCSR-DEC {}", shape
        );
        prop_assert_eq!(
            BcsdDec::from_csr(&csr, b, KernelImpl::Scalar).to_csr(), csr.clone(),
            "BCSD-DEC {}", b
        );
        prop_assert_eq!(Vbl::from_csr(&csr, KernelImpl::Scalar).to_csr(), csr.clone());
        prop_assert_eq!(Vbr::from_csr(&csr).to_csr(), csr);
    }

    #[test]
    fn working_set_is_positive_and_ordered((n, m, entries) in matrix_strategy()) {
        let (csr, _) = build(n, m, &entries);
        // matrix_bytes <= working_set (which adds the vectors).
        prop_assert!(csr.matrix_bytes() < csr.working_set_bytes());
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        prop_assert!(vbl.matrix_bytes() < vbl.working_set_bytes());
    }
}
