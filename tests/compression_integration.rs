//! Integration coverage for the index-compression extension through the
//! public facade: compressed formats (CSR-Δ and the narrow-index blocked
//! variants) ride the persistent worker pool bit-identically to their
//! serial counterparts, and extended model-driven selection over the
//! compressed search space builds formats that multiply correctly.

use blocked_spmv::core::{MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsd, Bcsr, CsrDelta, Vbl};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::{select_extended, BlockConfig, KernelProfile, MachineProfile, Model};
use blocked_spmv::parallel::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, PinPolicy, SpmvPool,
};
#[path = "support/corpus.rs"]
mod corpus;
use corpus::pool_matrix as seeded_matrix;

fn machine() -> MachineProfile {
    MachineProfile {
        bandwidth: 5e9,
        l1_bytes: 32 * 1024,
        llc_bytes: 4 << 20,
    }
}

#[test]
fn pooled_compressed_formats_match_their_serial_twins_bitwise() {
    // Row-partitioned strips never split a row (or block row), so the
    // pooled product of each compressed format must be bit-identical to
    // the same format run serially — for every thread count.
    let csr = seeded_matrix(11);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 0.5 + (i % 9) as f64 * 0.25).collect();
    let shape = BlockShape::new(2, 2).unwrap();
    for threads in [1, 2, 4] {
        for imp in KernelImpl::ALL {
            let serial = CsrDelta::from_csr(&csr, imp).spmv(&x);
            let pool = SpmvPool::from_csr(
                &csr,
                threads,
                &csr_unit_weights(&csr),
                1,
                |s| CsrDelta::from_csr(s, imp),
                PinPolicy::None,
            );
            assert_eq!(pool.spmv(&x), serial, "csr-delta {imp} x{threads}");

            let serial = Bcsr::from_csr_narrow(&csr, shape, imp).spmv(&x);
            let pool = SpmvPool::from_csr(
                &csr,
                threads,
                &bcsr_unit_weights(&csr, shape),
                shape.rows(),
                |s| Bcsr::from_csr_narrow(s, shape, imp),
                PinPolicy::None,
            );
            assert_eq!(pool.spmv(&x), serial, "bcsr16 {imp} x{threads}");

            let serial = Bcsd::from_csr_narrow(&csr, 4, imp).spmv(&x);
            let pool = SpmvPool::from_csr(
                &csr,
                threads,
                &bcsd_unit_weights(&csr, 4),
                4,
                |s| Bcsd::from_csr_narrow(s, 4, imp),
                PinPolicy::None,
            );
            assert_eq!(pool.spmv(&x), serial, "bcsd16 {imp} x{threads}");

            let serial = Vbl::from_csr_narrow(&csr, imp).spmv(&x);
            let pool = SpmvPool::from_csr(
                &csr,
                threads,
                &csr_unit_weights(&csr),
                1,
                |s| Vbl::from_csr_narrow(s, imp),
                PinPolicy::None,
            );
            assert_eq!(pool.spmv(&x), serial, "vbl16 {imp} x{threads}");
        }
    }
}

#[test]
fn pooled_compressed_multi_vector_matches_serial() {
    // The batched path goes through the same strips; k = 4 pooled CSR-Δ
    // must equal the serial batched product bit-for-bit (scalar kernel).
    const K: usize = 4;
    let csr = seeded_matrix(23);
    let x: Vec<f64> = (0..csr.n_cols() * K)
        .map(|i| 1.0 + (i % 7) as f64 * 0.5)
        .collect();
    let delta = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
    let want = delta.spmv_multi(&x, K);
    let pool = SpmvPool::from_csr(
        &csr,
        3,
        &csr_unit_weights(&csr),
        1,
        |s| CsrDelta::from_csr(s, KernelImpl::Scalar),
        PinPolicy::None,
    );
    assert_eq!(pool.spmv_multi(&x, K), want, "pooled csr-delta multi");
}

#[test]
fn extended_selection_picks_compressed_storage_and_multiplies() {
    // On a scattered matrix (no block structure) the compressed search
    // space should beat plain CSR on bytes alone — narrow-index blocked
    // storage, delta CSR, or a globally sorted narrow SELL — and
    // whatever each model picks must build into a format that agrees
    // with CSR numerically.
    let csr = seeded_matrix(42);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 0.5 + (i % 5) as f64).collect();
    let want = csr.spmv(&x);
    let profile = KernelProfile::uniform(1e-9, 1.0);
    for model in Model::ALL {
        let cand = select_extended(model, &csr, &machine(), &profile, true);
        assert!(
            matches!(
                cand.config.block,
                BlockConfig::CsrDelta
                    | BlockConfig::BcsrNarrow(_)
                    | BlockConfig::BcsdNarrow(_)
                    | BlockConfig::SellCSigmaNarrow { .. }
            ),
            "{model}: scattered matrix should select compressed storage, got {}",
            cand.config
        );
        let built = cand.config.build(&csr);
        for (g, w) in built.spmv(&x).iter().zip(&want) {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "{model} pick {} disagrees with CSR",
                cand.config
            );
        }
    }
}
