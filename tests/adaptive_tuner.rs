//! Deterministic state-machine tests for the adaptive tuner
//! (`blocked_spmv::tune`): every detector transition asserted under
//! seeded residual streams, hysteresis that never flaps, and full
//! stale → rerank → swap → recover episodes replayed under a mock
//! clock with zero timing dependence.

#[path = "support/prop.rs"]
mod prop;

use std::sync::Arc;

use blocked_spmv::core::{Coo, Csr};
use blocked_spmv::model::{Config, KernelProfile, MachineProfile, Model};
use blocked_spmv::serve::{residual_key_for, MatrixId, PreparedMatrix, Registry};
use blocked_spmv::tune::{
    CannedSampler, DetectorConfig, ManualClock, StalenessDetector, TimelineKind, TuneOptions,
    Tuner, Verdict, WatchSpec,
};

fn machine() -> MachineProfile {
    MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    }
}

fn small_csr() -> Arc<Csr<f64>> {
    let trips = (0..32)
        .map(|i| (i, (i * 7) % 32, 1.0 + i as f64))
        .collect::<Vec<_>>();
    Arc::new(Csr::from_coo(
        &Coo::from_triplets(32, 32, trips).expect("triplets in range"),
    ))
}

/// A tuner watching one hand-published CSR matrix, no engine attached:
/// residuals are recorded by hand and passes driven by `run_once`.
fn watched_tuner(
    detector: DetectorConfig,
    clock: Arc<ManualClock>,
) -> (Arc<Registry<f64>>, Tuner<f64>, MatrixId) {
    let csr = small_csr();
    let registry = Arc::new(Registry::new());
    let id = MatrixId(1);
    registry.publish(id, PreparedMatrix::from_config(Config::CSR, &csr));
    let tuner = Tuner::new(
        Arc::clone(&registry),
        None,
        clock,
        Box::new(CannedSampler::new()),
        TuneOptions::default(),
    );
    let spec = WatchSpec {
        detector,
        ..WatchSpec::new(csr, Model::Overlap, machine(), KernelProfile::uniform(1e-9, 0.5))
    };
    assert!(tuner.watch(id, spec), "matrix is published, watch succeeds");
    (registry, tuner, id)
}

/// Records one residual whose `|rel err|` is exactly `rel` (prediction
/// fixed, measurement scaled) for the watched matrix's current key.
fn record_rel(tuner: &Tuner<f64>, id: MatrixId, model: Model, rel: f64) {
    let config = tuner.current_config(id).expect("watched");
    let key = residual_key_for(config, model);
    let predicted = 1e-5;
    let measured = predicted / (1.0 + rel);
    tuner.residuals().record_for(id.0, &key, predicted, measured);
}

// ---------------------------------------------------------------------
// Detector state machine, transition by transition.
// ---------------------------------------------------------------------

#[test]
fn detector_walks_every_transition_in_order() {
    let mut d = StalenessDetector::new(DetectorConfig {
        window: 2,
        enter: 0.35,
        exit: 0.15,
        consecutive: 2,
        cooldown: 2,
        min_samples: 2,
    });

    // Warming until min_samples, then Healthy on a low window.
    assert_eq!(d.verdict(), Verdict::Warming);
    assert_eq!(d.observe(0.05), Verdict::Warming);
    assert_eq!(d.observe(0.05), Verdict::Healthy);

    // One bad value: window mean (0.05 + 0.9)/2 = 0.475 > enter.
    assert_eq!(d.observe(0.9), Verdict::Suspect(1));
    // Second consecutive over-enter window confirms staleness.
    assert_eq!(d.observe(0.9), Verdict::Stale);
    assert!(d.is_stale());

    // Stale is latched: even perfect residuals cannot clear it.
    assert_eq!(d.observe(0.0), Verdict::Stale);
    assert_eq!(d.observe(0.0), Verdict::Stale);

    // The swap clears the latch; cooldown discards the transient.
    d.on_swap();
    assert_eq!(d.verdict(), Verdict::CoolingDown);
    assert_eq!(d.observe(5.0), Verdict::CoolingDown);
    assert_eq!(d.observe(5.0), Verdict::CoolingDown);
    assert_eq!(d.len(), 0, "cooldown observations never enter the window");

    // Refill the window below exit: Recovered fires exactly once.
    assert_eq!(d.observe(0.1), Verdict::Warming);
    assert_eq!(d.observe(0.1), Verdict::Recovered);
    assert_eq!(d.observe(0.1), Verdict::Healthy);
}

#[test]
fn detector_hysteresis_band_never_flaps() {
    let cfg = DetectorConfig {
        window: 4,
        enter: 0.5,
        exit: 0.2,
        consecutive: 3,
        cooldown: 4,
        min_samples: 2,
    };
    let mut d = StalenessDetector::new(cfg);
    // Establish Healthy first.
    for _ in 0..4 {
        d.observe(0.05);
    }
    assert_eq!(d.verdict(), Verdict::Healthy);

    // A seeded stream oscillating inside the band (exit, enter] must
    // never escalate to Stale: the band holds state in both directions.
    let mut rng = prop::Rng::new(0x5EED_BA9D);
    for _ in 0..500 {
        let v = rng.f64_in(0.25, 0.45);
        let verdict = d.observe(v);
        assert!(
            !matches!(verdict, Verdict::Stale),
            "band value {v} latched stale"
        );
    }
    assert!(!d.is_stale());
}

#[test]
fn detector_suspect_requires_consecutive_windows() {
    let mut d = StalenessDetector::new(DetectorConfig {
        window: 1,
        enter: 0.35,
        exit: 0.15,
        consecutive: 3,
        cooldown: 0,
        min_samples: 1,
    });
    // Two over-enter observations, then a healthy one: count clears.
    assert_eq!(d.observe(0.9), Verdict::Suspect(1));
    assert_eq!(d.observe(0.9), Verdict::Suspect(2));
    assert_eq!(d.observe(0.05), Verdict::Healthy);
    // It takes the full consecutive run to latch.
    assert_eq!(d.observe(0.9), Verdict::Suspect(1));
    assert_eq!(d.observe(0.9), Verdict::Suspect(2));
    assert_eq!(d.observe(0.9), Verdict::Stale);
}

#[test]
fn detector_ignores_non_finite_and_counts_observations() {
    let mut d = StalenessDetector::new(DetectorConfig::default());
    d.observe(0.1);
    let before = d.verdict();
    assert_eq!(d.observe(f64::NAN), before);
    assert_eq!(d.observe(f64::INFINITY), before);
    assert_eq!(d.len(), 1, "non-finite values never enter the window");
    assert_eq!(d.observations(), 1);
}

#[test]
fn detector_seeded_streams_are_reproducible() {
    let cfg = DetectorConfig {
        window: 6,
        enter: 0.4,
        exit: 0.15,
        consecutive: 2,
        cooldown: 3,
        min_samples: 3,
    };
    let replay = |seed: u64| -> Vec<Verdict> {
        let mut d = StalenessDetector::new(cfg.clone());
        let mut rng = prop::Rng::new(seed);
        let mut out = Vec::new();
        for i in 0..300 {
            let v = rng.f64_in(0.0, 1.0);
            let verdict = d.observe(v);
            if verdict == Verdict::Stale && i % 7 == 0 {
                d.on_swap();
            }
            out.push(verdict);
        }
        out
    };
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        assert_eq!(replay(seed), replay(seed), "seed {seed} diverged");
    }
}

// ---------------------------------------------------------------------
// Full tuner episodes under a mock clock.
// ---------------------------------------------------------------------

#[test]
fn tuner_replays_full_episode_under_manual_clock() {
    let clock = Arc::new(ManualClock::new(1_000));
    let detector = DetectorConfig {
        window: 2,
        enter: 0.35,
        exit: 0.15,
        consecutive: 2,
        cooldown: 2,
        min_samples: 2,
    };
    let (registry, tuner, id) = watched_tuner(detector, Arc::clone(&clock));
    assert_eq!(registry.version_of(id), Some(1));

    // Healthy traffic: no publishes, verdict settles Healthy.
    for _ in 0..4 {
        record_rel(&tuner, id, Model::Overlap, 0.02);
    }
    assert!(tuner.run_once().is_empty(), "healthy pass publishes nothing");
    assert_eq!(tuner.verdict_for(id), Some(Verdict::Healthy));
    assert_eq!(registry.version_of(id), Some(1));

    // Drift the residuals: 4 windows far over `enter` latch the
    // detector, and the same pass reranks and hot-swaps.
    clock.set(5_000);
    for _ in 0..4 {
        record_rel(&tuner, id, Model::Overlap, 2.0);
    }
    let events = tuner.run_once();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TimelineKind::Stale { .. })),
        "stale must be reported: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            TimelineKind::Swapped { .. } | TimelineKind::Confirmed { .. }
        )),
        "a stale pass must republish: {events:?}"
    );
    assert!(events.iter().all(|e| e.t_ns == 5_000),
        "timestamps come from the injected clock only: {events:?}");
    let v2 = registry.version_of(id).expect("still published");
    assert!(v2 > 1, "stale pass must bump the registry version");
    assert_eq!(tuner.verdict_for(id), Some(Verdict::CoolingDown));

    // Cooldown discards two, then two healthy windows prove recovery.
    clock.set(9_000);
    for _ in 0..4 {
        record_rel(&tuner, id, Model::Overlap, 0.02);
    }
    let events = tuner.run_once();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TimelineKind::Recovered { .. })),
        "recovery must be reported: {events:?}"
    );
    assert!(events.iter().all(|e| e.t_ns == 9_000));
    assert_eq!(tuner.verdict_for(id), Some(Verdict::Healthy));
    assert_eq!(
        registry.version_of(id),
        Some(v2),
        "recovery must not republish"
    );

    // Recovered fires exactly once.
    for _ in 0..4 {
        record_rel(&tuner, id, Model::Overlap, 0.02);
    }
    assert!(tuner.run_once().is_empty());
    assert!(!tuner.panicked());
}

#[test]
fn tuner_decisions_are_clock_independent() {
    // The same residual schedule replayed under a frozen clock and under
    // an advancing clock must make identical decisions — the clock is
    // only a timestamp source, never an input to the state machine.
    let detector = DetectorConfig {
        window: 2,
        enter: 0.35,
        exit: 0.15,
        consecutive: 2,
        cooldown: 1,
        min_samples: 1,
    };
    let run = |advance: bool| -> Vec<TimelineKind> {
        let clock = Arc::new(ManualClock::new(0));
        let (_registry, tuner, id) = watched_tuner(detector.clone(), Arc::clone(&clock));
        let mut rng = prop::Rng::new(0xC10C);
        for step in 0..6 {
            if advance {
                clock.advance(1_000 + step);
            }
            let rel = if step % 3 == 2 { 3.0 } else { rng.f64_in(0.0, 0.1) };
            for _ in 0..3 {
                record_rel(&tuner, id, Model::Overlap, rel);
            }
            tuner.run_once();
        }
        tuner.timeline().into_iter().map(|e| e.kind).collect()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn tuner_hysteresis_band_traffic_never_swaps() {
    let clock = Arc::new(ManualClock::new(0));
    let detector = DetectorConfig {
        window: 4,
        enter: 0.5,
        exit: 0.2,
        consecutive: 3,
        cooldown: 4,
        min_samples: 2,
    };
    let (registry, tuner, id) = watched_tuner(detector, clock);
    let mut rng = prop::Rng::new(0xF1A9);
    for _ in 0..40 {
        for _ in 0..4 {
            record_rel(&tuner, id, Model::Overlap, rng.f64_in(0.25, 0.45));
        }
        tuner.run_once();
    }
    assert_eq!(
        registry.version_of(id),
        Some(1),
        "band traffic must never republish"
    );
    assert!(tuner
        .timeline()
        .iter()
        .all(|e| matches!(e.kind, TimelineKind::Watch { .. })));
}
