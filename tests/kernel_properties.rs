//! Property tests on the raw kernel layer: for arbitrary block data, the
//! SIMD kernels agree with the scalar ones, clipped kernels agree with a
//! naive per-element reference, and the accumulate contract holds.
//!
//! Runs on the in-repo seeded harness (`tests/support/prop.rs`), not
//! proptest, so the suite builds and shrinks offline.

use blocked_spmv::kernels::registry::{bcsd_seg_kernel, bcsr_row_kernel, dot_run};
use blocked_spmv::kernels::scalar::{bcsd_segment_clipped, bcsr_block_row_clipped};
use blocked_spmv::kernels::{BlockShape, KernelImpl, BCSD_SIZES};

#[path = "support/prop.rs"]
mod prop;
use prop::Rng;

/// Generator: a BCSR block row for a given shape — block values, sorted
/// disjoint start columns (gaps of at least `c`), and an x vector long
/// enough for every block.
fn bcsr_case(rng: &mut Rng, shape: BlockShape) -> (Vec<f64>, Vec<u32>, Vec<f64>) {
    let c = shape.cols();
    let nb = rng.usize_in(1, 6);
    let vals = rng.f64_vec(nb * shape.elems(), -3.0, 3.0);
    let mut starts = Vec::with_capacity(nb);
    let mut col = 0u32;
    for _ in 0..nb {
        let gap = rng.usize_in(0, 4) as u32;
        starts.push(col + gap);
        col += gap + c as u32;
    }
    let x = rng.f64_vec((col + 4) as usize, -2.0, 2.0);
    (vals, starts, x)
}

#[test]
fn simd_equals_scalar_for_every_bcsr_shape() {
    prop::run("simd_equals_scalar_for_every_bcsr_shape", 40, |rng, _size| {
        let space = BlockShape::search_space();
        let shape = space[rng.index(space.len())];
        let seed = rng.next_u64() % 1000;
        // Simple structured data derived from the seed: block values,
        // disjoint starts with a seed-dependent stride, and a matching x.
        let (r, c) = (shape.rows(), shape.cols());
        let nb = 1 + (seed as usize) % 5;
        let vals: Vec<f64> = (0..nb * r * c)
            .map(|i| ((seed + i as u64) % 17) as f64 * 0.25 - 2.0)
            .collect();
        let starts: Vec<u32> = (0..nb)
            .map(|k| (k * (c + 1 + (seed as usize) % 3)) as u32)
            .collect();
        let x_len = starts.last().map(|&s| s as usize + c).unwrap_or(c) + 2;
        let x: Vec<f64> = (0..x_len)
            .map(|i| ((seed ^ i as u64) % 11) as f64 * 0.5 - 2.0)
            .collect();

        let scalar = bcsr_row_kernel::<f64>(shape, KernelImpl::Scalar);
        let simd = bcsr_row_kernel::<f64>(shape, KernelImpl::Simd);
        let mut ys = vec![0.5f64; r];
        let mut yv = vec![0.5f64; r];
        scalar(&vals, &starts, &x, &mut ys);
        simd(&vals, &starts, &x, &mut yv);
        for (a, b) in ys.iter().zip(&yv) {
            assert!((a - b).abs() < 1e-9, "{shape}: {a} vs {b}");
        }
    });
}

#[test]
fn clipped_bcsr_matches_reference() {
    prop::run("clipped_bcsr_matches_reference", 40, |rng, _size| {
        let shape = BlockShape { r: 2, c: 3 };
        let (vals, starts, x) = bcsr_case(rng, shape);
        let (r, c) = (shape.rows(), shape.cols());
        // Truncate x so the final block clips.
        let x_short = &x[..x.len().saturating_sub(2).max(1)];
        let mut got = vec![0.0; r];
        bcsr_block_row_clipped(r, c, &vals, &starts, x_short, &mut got);
        let mut want = vec![0.0; r];
        for (k, &s) in starts.iter().enumerate() {
            for i in 0..r {
                for j in 0..c {
                    let col = s as usize + j;
                    if col < x_short.len() {
                        want[i] += vals[k * r * c + i * c + j] * x_short[col];
                    }
                }
            }
        }
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn bcsd_simd_equals_scalar() {
    prop::run("bcsd_simd_equals_scalar", 40, |rng, _size| {
        let b = BCSD_SIZES[rng.index(BCSD_SIZES.len())];
        let seed = rng.next_u64() % 500;
        let nb = 1 + (seed as usize) % 4;
        let vals: Vec<f64> = (0..nb * b)
            .map(|i| ((seed + 3 * i as u64) % 13) as f64 * 0.5 - 3.0)
            .collect();
        // Biased start columns (j0 >= 0 for the interior kernel).
        let starts: Vec<u32> = (0..nb).map(|k| (b + k * (b + 1)) as u32).collect();
        let x_len = (*starts.last().unwrap() as usize) + b;
        let x: Vec<f64> = (0..x_len)
            .map(|i| ((seed ^ (7 * i as u64)) % 9) as f64 - 4.0)
            .collect();

        let scalar = bcsd_seg_kernel::<f64>(b, KernelImpl::Scalar);
        let simd = bcsd_seg_kernel::<f64>(b, KernelImpl::Simd);
        let mut ys = vec![1.0f64; b];
        let mut yv = vec![1.0f64; b];
        scalar(&vals, &starts, &x, &mut ys);
        simd(&vals, &starts, &x, &mut yv);
        for (p, q) in ys.iter().zip(&yv) {
            assert!((p - q).abs() < 1e-9, "b={b}");
        }
    });
}

#[test]
fn bcsd_clipped_skips_out_of_matrix_positions() {
    prop::run("bcsd_clipped_skips_out_of_matrix_positions", 40, |rng, _size| {
        let b = BCSD_SIZES[rng.index(BCSD_SIZES.len())];
        let n_cols = rng.usize_in(1, 16);
        // Rejection-sample the diagonal offset until it overlaps the
        // matrix (the proptest version used prop_assume! here).
        let j0 = loop {
            let j0 = rng.usize_in(0, 27) as i64 - 7;
            if j0 + (b as i64) > 0 && j0 < n_cols as i64 {
                break j0;
            }
        };
        let vals: Vec<f64> = (0..b).map(|t| 1.0 + t as f64).collect();
        let starts = [(j0 + b as i64) as u32];
        let x: Vec<f64> = (0..n_cols).map(|i| 2.0 + i as f64).collect();
        let mut y = vec![0.0; b];
        bcsd_segment_clipped(b, &vals, &starts, &x, &mut y);
        for (t, &yt) in y.iter().enumerate() {
            let col = j0 + t as i64;
            let want = if (0..n_cols as i64).contains(&col) {
                vals[t] * x[col as usize]
            } else {
                0.0
            };
            assert!((yt - want).abs() < 1e-12, "t={t}");
        }
    });
}

#[test]
fn dot_run_impls_agree() {
    prop::run("dot_run_impls_agree", 40, |rng, size| {
        let len = rng.usize_in(0, 20 * size);
        let vals = rng.f64_vec(len, -5.0, 5.0);
        let x: Vec<f64> = vals.iter().map(|v| v * 0.5 + 1.0).collect();
        let a = dot_run(&vals, &x, KernelImpl::Scalar);
        let b = dot_run(&vals, &x, KernelImpl::Simd);
        assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
    });
}

#[test]
fn kernels_accumulate() {
    prop::run("kernels_accumulate", 40, |rng, _size| {
        // Calling a kernel twice doubles the contribution on top of the
        // initial contents.
        let space = BlockShape::search_space();
        let shape = space[rng.index(space.len())];
        let (r, c) = (shape.rows(), shape.cols());
        let vals: Vec<f64> = (0..r * c).map(|i| (i + 1) as f64).collect();
        let starts = [0u32];
        let x: Vec<f64> = (0..c).map(|i| 1.0 + i as f64).collect();
        let kern = bcsr_row_kernel::<f64>(shape, KernelImpl::Scalar);
        let mut y1 = vec![3.0f64; r];
        kern(&vals, &starts, &x, &mut y1);
        let mut y2 = vec![3.0f64; r];
        kern(&vals, &starts, &x, &mut y2);
        kern(&vals, &starts, &x, &mut y2);
        for i in 0..r {
            let once = y1[i] - 3.0;
            let twice = y2[i] - 3.0;
            assert!((twice - 2.0 * once).abs() < 1e-9);
        }
    });
}
