//! Property tests on the raw kernel layer: for arbitrary block data, the
//! SIMD kernels agree with the scalar ones, clipped kernels agree with a
//! naive per-element reference, and the accumulate contract holds.

use blocked_spmv::kernels::registry::{bcsd_seg_kernel, bcsr_row_kernel, dot_run};
use blocked_spmv::kernels::scalar::{bcsd_segment_clipped, bcsr_block_row_clipped};
use blocked_spmv::kernels::{BlockShape, KernelImpl, BCSD_SIZES};
use proptest::prelude::*;

/// Strategy: a BCSR block row for a given shape — block values, sorted
/// disjoint start columns, and an x vector long enough for every block.
fn bcsr_case(
    shape: BlockShape,
) -> impl Strategy<Value = (Vec<f64>, Vec<u32>, Vec<f64>)> {
    let c = shape.cols();
    (1usize..6).prop_flat_map(move |nb| {
        let vals = proptest::collection::vec(-3.0f64..3.0, nb * shape.elems());
        // Disjoint start columns: gaps of at least c.
        let gaps = proptest::collection::vec(0u32..4, nb);
        (vals, gaps).prop_flat_map(move |(vals, gaps)| {
            let mut starts = Vec::with_capacity(gaps.len());
            let mut col = 0u32;
            for g in &gaps {
                starts.push(col + g);
                col += g + c as u32;
            }
            let x_len = (col + 4) as usize;
            proptest::collection::vec(-2.0f64..2.0, x_len)
                .prop_map(move |x| (vals.clone(), starts.clone(), x))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn simd_equals_scalar_for_every_bcsr_shape(
        shape_idx in 0usize..19,
        seed in 0u64..1000,
    ) {
        let shape = BlockShape::search_space()[shape_idx];
        // Derive a concrete case deterministically from the seed via the
        // strategy's value tree would be complex; instead generate simple
        // structured data from the seed directly.
        let (r, c) = (shape.rows(), shape.cols());
        let nb = 1 + (seed as usize) % 5;
        let vals: Vec<f64> = (0..nb * r * c)
            .map(|i| ((seed + i as u64) % 17) as f64 * 0.25 - 2.0)
            .collect();
        let starts: Vec<u32> = (0..nb).map(|k| (k * (c + 1 + (seed as usize) % 3)) as u32).collect();
        let x_len = starts.last().map(|&s| s as usize + c).unwrap_or(c) + 2;
        let x: Vec<f64> = (0..x_len).map(|i| ((seed ^ i as u64) % 11) as f64 * 0.5 - 2.0).collect();

        let scalar = bcsr_row_kernel::<f64>(shape, KernelImpl::Scalar);
        let simd = bcsr_row_kernel::<f64>(shape, KernelImpl::Simd);
        let mut ys = vec![0.5; r];
        let mut yv = vec![0.5; r];
        scalar(&vals, &starts, &x, &mut ys);
        simd(&vals, &starts, &x, &mut yv);
        for (a, b) in ys.iter().zip(&yv) {
            prop_assert!((a - b).abs() < 1e-9, "{shape}: {a} vs {b}");
        }
    }

    #[test]
    fn clipped_bcsr_matches_reference((vals, starts, x) in bcsr_case(BlockShape { r: 2, c: 3 })) {
        let shape = BlockShape { r: 2, c: 3 };
        let (r, c) = (shape.rows(), shape.cols());
        // Truncate x so the final block clips.
        let x_short = &x[..x.len().saturating_sub(2).max(1)];
        let mut got = vec![0.0; r];
        bcsr_block_row_clipped(r, c, &vals, &starts, x_short, &mut got);
        let mut want = vec![0.0; r];
        for (k, &s) in starts.iter().enumerate() {
            for i in 0..r {
                for j in 0..c {
                    let col = s as usize + j;
                    if col < x_short.len() {
                        want[i] += vals[k * r * c + i * c + j] * x_short[col];
                    }
                }
            }
        }
        for (a, b) in want.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bcsd_simd_equals_scalar(b_idx in 0usize..7, seed in 0u64..500) {
        let b = BCSD_SIZES[b_idx];
        let nb = 1 + (seed as usize) % 4;
        let vals: Vec<f64> = (0..nb * b)
            .map(|i| ((seed + 3 * i as u64) % 13) as f64 * 0.5 - 3.0)
            .collect();
        // Biased start columns (j0 >= 0 for the interior kernel).
        let starts: Vec<u32> = (0..nb).map(|k| (b + k * (b + 1)) as u32).collect();
        let x_len = (*starts.last().unwrap() as usize) + b;
        let x: Vec<f64> = (0..x_len).map(|i| ((seed ^ (7 * i as u64)) % 9) as f64 - 4.0).collect();

        let scalar = bcsd_seg_kernel::<f64>(b, KernelImpl::Scalar);
        let simd = bcsd_seg_kernel::<f64>(b, KernelImpl::Simd);
        let mut ys = vec![1.0; b];
        let mut yv = vec![1.0; b];
        scalar(&vals, &starts, &x, &mut ys);
        simd(&vals, &starts, &x, &mut yv);
        for (p, q) in ys.iter().zip(&yv) {
            prop_assert!((p - q).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn bcsd_clipped_skips_out_of_matrix_positions(
        b_idx in 0usize..7,
        j0 in -7i64..20,
        n_cols in 1usize..16,
    ) {
        let b = BCSD_SIZES[b_idx];
        prop_assume!(j0 + (b as i64) > 0 && j0 < n_cols as i64);
        let vals: Vec<f64> = (0..b).map(|t| 1.0 + t as f64).collect();
        let starts = [(j0 + b as i64) as u32];
        let x: Vec<f64> = (0..n_cols).map(|i| 2.0 + i as f64).collect();
        let mut y = vec![0.0; b];
        bcsd_segment_clipped(b, &vals, &starts, &x, &mut y);
        for (t, &yt) in y.iter().enumerate() {
            let col = j0 + t as i64;
            let want = if (0..n_cols as i64).contains(&col) {
                vals[t] * x[col as usize]
            } else {
                0.0
            };
            prop_assert!((yt - want).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn dot_run_impls_agree(vals in proptest::collection::vec(-5.0f64..5.0, 0..600)) {
        let x: Vec<f64> = vals.iter().map(|v| v * 0.5 + 1.0).collect();
        let a = dot_run(&vals, &x, KernelImpl::Scalar);
        let b = dot_run(&vals, &x, KernelImpl::Simd);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn kernels_accumulate(seed in 0u64..200) {
        // Calling a kernel twice doubles the contribution on top of the
        // initial contents.
        let shape = BlockShape::search_space()[(seed as usize) % 19];
        let (r, c) = (shape.rows(), shape.cols());
        let vals: Vec<f64> = (0..r * c).map(|i| (i + 1) as f64).collect();
        let starts = [0u32];
        let x: Vec<f64> = (0..c).map(|i| 1.0 + i as f64).collect();
        let kern = bcsr_row_kernel::<f64>(shape, KernelImpl::Scalar);
        let mut y1 = vec![3.0; r];
        kern(&vals, &starts, &x, &mut y1);
        let mut y2 = vec![3.0; r];
        kern(&vals, &starts, &x, &mut y2);
        kern(&vals, &starts, &x, &mut y2);
        for i in 0..r {
            let once = y1[i] - 3.0;
            let twice = y2[i] - 3.0;
            prop_assert!((twice - 2.0 * once).abs() < 1e-9);
        }
    }
}
