//! Shared seeded matrix corpus for the differential suites.
//!
//! `differential_equivalence.rs`, `masked_equivalence.rs`,
//! `compression_integration.rs`, and `sellc_equivalence.rs` used to each
//! roll their own `StdRng` corpus loop; this module is the one place
//! those corpora live, so a new format gets 200-seed coverage by
//! listing its constructor in a suite, not by copying a generator.
//!
//! Three profiles:
//!
//! * [`structured_case`] — small matrices (≤ ~40 rows) spanning four
//!   structure classes (uniform fill, banded, 2-D block clusters,
//!   wrapped diagonals) keyed on the seed, with pathology injection on
//!   top: a fully dense row every 5th seed (dominates its SELL slice /
//!   fills its block row) and trailing empty rows every 7th seed (tail
//!   slices, empty block rows). Duplicate coordinates sum on build.
//! * [`blocky_matrix`] — mid-size matrices whose density (and block
//!   fill ratio) varies with the seed, for padded-vs-masked sweeps.
//! * [`pool_matrix`] — 300×300, ~4 nnz/row: large enough that every
//!   worker-pool strip is non-trivial, for pooled-vs-serial suites.
//!
//! Include with `#[path = "support/corpus.rs"] mod corpus;` — this file
//! is not a test target itself.
#![allow(dead_code)] // each suite uses a different slice of the corpus

use blocked_spmv::core::{Coo, Csr, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds per corpus sweep. Every suite iterating a corpus uses this
/// count, so "200-seed differential" means the same thing everywhere.
pub const SEEDS: u64 = 200;

/// One structured corpus entry: a triplet list plus its shape.
/// Duplicate coordinates are intentional (they sum on build); keep the
/// raw triplets around for references that accumulate straight off the
/// list.
pub struct Case {
    /// Rows.
    pub n: usize,
    /// Columns.
    pub m: usize,
    /// `(row, col, value)` triplets; duplicates sum.
    pub trips: Vec<(usize, usize, f64)>,
}

impl Case {
    /// Builds the CSR form at precision `T` (duplicates summed).
    pub fn csr<T: Scalar>(&self) -> Csr<T> {
        let trips: Vec<(usize, usize, T)> = self
            .trips
            .iter()
            .map(|&(i, j, v)| (i, j, T::from_f64(v)))
            .collect();
        Csr::from_coo(&Coo::from_triplets(self.n, self.m, trips).unwrap())
    }
}

/// One seeded small matrix; the low bits of the seed pick the structure
/// class so the seeds sweep density, bandedness, and block structure,
/// and fixed seed residues inject pathologies on top of every class.
pub fn structured_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..40);
    let m = rng.gen_range(1..40);
    let mut trips = Vec::new();
    fn val(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>() * 4.0 - 2.0
    }
    match seed % 4 {
        0 => {
            // Uniform random fill, density 2%..32%.
            let p = 0.02 + 0.3 * rng.gen::<f64>();
            for i in 0..n {
                for j in 0..m {
                    if rng.gen_bool(p) {
                        trips.push((i, j, val(&mut rng)));
                    }
                }
            }
        }
        1 => {
            // Banded, bandwidth 1..6, 70% fill inside the band.
            let bw = rng.gen_range(1..7);
            for i in 0..n {
                for j in i.saturating_sub(bw)..(i + bw + 1).min(m) {
                    if rng.gen_bool(0.7) {
                        trips.push((i, j, val(&mut rng)));
                    }
                }
            }
        }
        2 => {
            // Dense 2-D clusters at random anchors (BCSR-friendly), with
            // overlaps — duplicate coordinates sum by construction.
            let (br, bc) = if seed % 8 < 4 { (2, 2) } else { (3, 2) };
            let max_blocks = (n * m / (br * bc)).max(1) + 1;
            for _ in 0..rng.gen_range(1..max_blocks) {
                let i0 = rng.gen_range(0..n);
                let j0 = rng.gen_range(0..m);
                for di in 0..br {
                    for dj in 0..bc {
                        if i0 + di < n && j0 + dj < m {
                            trips.push((i0 + di, j0 + dj, val(&mut rng)));
                        }
                    }
                }
            }
        }
        _ => {
            // Wrapped diagonal runs (BCSD-friendly).
            for _ in 0..rng.gen_range(1..5) {
                let off = rng.gen_range(0..m);
                for i in 0..n {
                    if rng.gen_bool(0.8) {
                        trips.push((i, (i + off) % m, val(&mut rng)));
                    }
                }
            }
        }
    }
    // Pathology injection on top of every class: one fully dense row
    // (dominates its SELL σ-window, fills its block row) and trailing
    // empty rows (tail slices, empty block rows) on fixed seed residues,
    // so every format's edge paths see corpus pressure without bespoke
    // loops in each suite.
    if seed % 5 == 0 {
        let i = rng.gen_range(0..n);
        for j in 0..m {
            trips.push((i, j, val(&mut rng)));
        }
    }
    let n = if seed % 7 == 0 { n + rng.gen_range(1..4) } else { n };
    Case { n, m, trips }
}

/// A seeded mid-size random matrix whose density (and therefore block
/// fill ratio) varies with the seed, so a corpus sweep covers sparse
/// and dense block populations instead of one regime 200 times.
pub fn blocky_matrix(seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 40 + (seed as usize % 5) * 13;
    let m = 40 + (seed as usize % 7) * 9;
    let max_row = 1 + (seed as usize % 10);
    let mut coo = Coo::new(n, m);
    for i in 0..n {
        for _ in 0..rng.gen_range(0..max_row + 1) {
            let j = rng.gen_range(0..m);
            let v = rng.gen::<f64>() * 4.0 - 2.0;
            let _ = coo.push(i, j, v);
        }
    }
    Csr::from_coo(&coo)
}

/// A seeded 300×300 random matrix, ~4 nnz/row: large enough that every
/// worker-pool strip is non-trivial, with ragged rows so strip
/// boundaries land mid-structure.
pub fn pool_matrix(seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n, m) = (300, 300);
    let mut coo = Coo::new(n, m);
    for i in 0..n {
        for _ in 0..rng.gen_range(1..9) {
            let j = rng.gen_range(0..m);
            let v = rng.gen::<f64>() * 4.0 - 2.0;
            let _ = coo.push(i, j, v);
        }
    }
    Csr::from_coo(&coo)
}
