//! Minimal seeded property-test harness — the offline replacement for
//! the `proptest` dev-dependency (which needs the crates.io registry and
//! so cannot build in the sandboxed tier-1 environment).
//!
//! Model: a property is a closure `|rng, size|` that derives its inputs
//! from the [`Rng`] (splitmix64, fully deterministic from the seed) and
//! scales their magnitude with `size`, then asserts with the ordinary
//! `assert!` family. [`run`] executes it over `cases` seeds with `size`
//! ramping from 1 up to [`MAX_SIZE`], catching panics.
//!
//! Shrinking is bounded and seed-preserving: on a failure at size `s`,
//! the harness replays the *same* seed down a halving ladder
//! (`s/2, s/4, …, 1`) and reports the smallest size that still fails —
//! at most `log2(s)` extra executions, no value-tree bookkeeping. Since
//! every input is a pure function of (seed, size), the shrunk case is
//! reproducible by construction.
//!
//! Reproduction: every failure message prints the base seed; rerun with
//! `SPMV_PROP_SEED=<seed>` to pin the whole suite to that sequence, or
//! bump it to explore fresh inputs. The default seed is fixed so tier-1
//! runs are stable.
//!
//! Include from an integration test with
//! `#[path = "support/prop.rs"] mod prop;` — this file is not a test
//! target itself.
#![allow(dead_code)] // each suite uses a different slice of the helpers

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Upper bound for the `size` parameter handed to properties.
pub const MAX_SIZE: usize = 32;

/// Default base seed; override with `SPMV_PROP_SEED=<u64>`.
pub const DEFAULT_SEED: u64 = 0x5EED_0F_5EED;

/// Splitmix64 generator: tiny state, solid distribution, and — the
/// property that matters here — every draw is a pure function of the
/// seed, so (seed, size) fully identifies a test case.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in the half-open range `[lo, hi)`. Panics if empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)` over the 53-bit float lattice.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform index into a slice of length `len` (> 0).
    pub fn index(&mut self, len: usize) -> usize {
        self.usize_in(0, len)
    }

    /// A vector of `len` draws from `[lo, hi)`.
    pub fn f64_vec(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// A vector of `len` draws from `[lo, hi)`.
    pub fn u64_vec(&mut self, len: usize, lo: u64, hi: u64) -> Vec<u64> {
        assert!(lo < hi, "empty range {lo}..{hi}");
        (0..len)
            .map(|_| lo + self.next_u64() % (hi - lo))
            .collect()
    }
}

/// A random sparse matrix as `(rows, cols, triplets)`, duplicates
/// allowed (summed on construction). Dimensions are in `[1, n_max)` /
/// `[1, m_max)` and the triplet count in `[0, max_entries]`.
pub fn sparse_triplets(
    rng: &mut Rng,
    n_max: usize,
    m_max: usize,
    max_entries: usize,
    lo: f64,
    hi: f64,
) -> (usize, usize, Vec<(usize, usize, f64)>) {
    let n = rng.usize_in(1, n_max.max(2));
    let m = rng.usize_in(1, m_max.max(2));
    let k = rng.usize_in(0, max_entries + 1);
    let entries = (0..k)
        .map(|_| (rng.index(n), rng.index(m), rng.f64_in(lo, hi)))
        .collect();
    (n, m, entries)
}

/// Matrix dimensions and entry budget scaled by `size` and capped, the
/// shape most suites want: small matrices at small sizes so shrinking
/// is meaningful.
pub fn scaled_dims(size: usize, cap: usize) -> (usize, usize) {
    let d = (2 + size).min(cap);
    (d, d)
}

fn base_seed() -> u64 {
    match std::env::var("SPMV_PROP_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SPMV_PROP_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Derive the per-case seed from the base seed: one splitmix64 step so
/// consecutive cases are decorrelated.
fn case_seed(base: u64, case: usize) -> u64 {
    Rng::new(base ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64()
}

fn size_for(case: usize, cases: usize) -> usize {
    1 + case * (MAX_SIZE - 1) / cases.max(2).saturating_sub(1)
}

fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `property` over `cases` seeded inputs with `size` ramping from 1
/// to [`MAX_SIZE`]; on failure, shrink the size down a halving ladder
/// (same seed) and panic with a reproducible report.
pub fn run<F>(name: &str, cases: usize, property: F)
where
    F: Fn(&mut Rng, usize),
{
    let base = base_seed();
    for case in 0..cases {
        let seed = case_seed(base, case);
        let size = size_for(case, cases);
        let attempt = |s: usize| {
            catch_unwind(AssertUnwindSafe(|| property(&mut Rng::new(seed), s)))
        };
        if let Err(first) = attempt(size) {
            // Bounded shrink: replay the same seed at halved sizes and
            // keep the smallest one that still fails.
            let (mut fail_size, mut fail_payload) = (size, first);
            let mut s = size / 2;
            loop {
                if s == 0 {
                    break;
                }
                if let Err(p) = attempt(s) {
                    fail_size = s;
                    fail_payload = p;
                }
                if s == 1 {
                    break;
                }
                s /= 2;
            }
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (seed {seed:#018x}, shrunk to size {fail_size});\n\
                 reproduce the run with SPMV_PROP_SEED={base}\n\
                 failure: {}",
                payload_str(&*fail_payload)
            );
        }
    }
}
