//! SELL-C-σ differential equivalence suite.
//!
//! SELL-C-σ permutes rows and pads slices, but every row's product is a
//! self-contained ascending-column `mul_add` chain — CSR's exact chain —
//! and the inverse permutation unscrambles `y` in place. So the suite
//! demands *bitwise* equality with CSR, not a tolerance: over the shared
//! 200-seed structured corpus (`support/corpus.rs`), every
//! C ∈ {2, 4, 8} × σ ∈ {1, C, 64, n} × {f32, f64} × {scalar, simd} ×
//! k ∈ {1, 4} cell must reproduce CSR's output bit-for-bit, serially and
//! through the persistent worker pool (strips split on slice
//! boundaries). Alongside, permutation property tests (σ-window-stable
//! descending sort, inverse composes to identity, σ = 1 is the identity)
//! and the edge cases: tail slices, empty matrices and slices, one dense
//! row dominating its window, σ windows straddling slice boundaries, and
//! the u16 narrow-index escalation rule at the column-count ceiling.

use blocked_spmv::core::{Coo, Csr, IndexWidth, MatrixShape, Scalar, SpMv, SpMvMulti};
use blocked_spmv::formats::{sell_sigmas, SellCSigma, SELL_SIGMA_FULL};
use blocked_spmv::kernels::simd::SimdScalar;
use blocked_spmv::kernels::{KernelImpl, SELL_HEIGHTS};
use blocked_spmv::parallel::{sell_unit_weights, PinPolicy, SpmvPool};
#[path = "support/corpus.rs"]
mod corpus;
use corpus::{structured_case, SEEDS};

const K: usize = 4;

fn dense_x<T: Scalar>(len: usize) -> Vec<T> {
    (0..len)
        .map(|i| T::from_f64(0.25 * (i % 9) as f64 - 1.0))
        .collect()
}

/// Every (C, σ, imp) cell of one matrix must be bitwise equal to CSR for
/// k = 1 and k = K.
fn check_bitwise<T: SimdScalar>(csr: &Csr<T>, seed: u64) {
    let x: Vec<T> = dense_x(csr.n_cols());
    let xk: Vec<T> = dense_x(csr.n_cols() * K);
    let want = csr.spmv(&x);
    let want_k = csr.spmv_multi(&xk, K);
    for &c in &SELL_HEIGHTS {
        for &sigma in &sell_sigmas(c) {
            for imp in KernelImpl::ALL {
                let sell = SellCSigma::from_csr(csr, c, sigma, imp);
                assert_eq!(
                    sell.spmv(&x),
                    want,
                    "seed {seed} sell c={c} sigma={sigma} {imp} != csr"
                );
                assert_eq!(
                    sell.spmv_multi(&xk, K),
                    want_k,
                    "seed {seed} sell c={c} sigma={sigma} {imp} multi != csr"
                );
                let narrow = SellCSigma::from_csr_narrow(csr, c, sigma, imp);
                assert_eq!(
                    narrow.spmv(&x),
                    want,
                    "seed {seed} sell16 c={c} sigma={sigma} {imp} != csr"
                );
            }
        }
    }
}

#[test]
fn two_hundred_seed_sell_matches_csr_bitwise_f64() {
    for seed in 0..SEEDS {
        let csr: Csr<f64> = structured_case(seed).csr();
        check_bitwise(&csr, seed);
    }
}

#[test]
fn two_hundred_seed_sell_matches_csr_bitwise_f32() {
    for seed in 0..SEEDS {
        let csr: Csr<f32> = structured_case(seed).csr();
        check_bitwise(&csr, seed);
    }
}

/// Pooled SELL must equal serial SELL (and therefore CSR) bitwise: every
/// strip's rows keep their self-contained chains, and strips split on
/// slice boundaries via the padded-slice weights.
#[test]
fn pooled_sell_matches_serial_bitwise() {
    for seed in [3u64, 17, 42, 101] {
        let csr: Csr<f64> = structured_case(seed).csr();
        let x: Vec<f64> = dense_x(csr.n_cols());
        let xk: Vec<f64> = dense_x(csr.n_cols() * K);
        for &c in &SELL_HEIGHTS {
            for &sigma in &sell_sigmas(c) {
                for imp in KernelImpl::ALL {
                    let serial = SellCSigma::from_csr(&csr, c, sigma, imp);
                    for threads in [1usize, 2, 4] {
                        let pool = SpmvPool::from_csr(
                            &csr,
                            threads,
                            &sell_unit_weights(&csr, c),
                            c,
                            |s| SellCSigma::from_csr(s, c, sigma, imp),
                            PinPolicy::None,
                        );
                        assert_eq!(
                            pool.spmv(&x),
                            serial.spmv(&x),
                            "seed {seed} c={c} sigma={sigma} {imp} x{threads}"
                        );
                        assert_eq!(
                            pool.spmv_multi(&xk, K),
                            serial.spmv_multi(&xk, K),
                            "seed {seed} c={c} sigma={sigma} {imp} x{threads} multi"
                        );
                    }
                }
            }
        }
    }
}

/// The row permutation must be a stable descending-length sort *within*
/// each σ-window and the identity *across* windows: position `p` of the
/// permutation always holds a row from `p`'s own window.
#[test]
fn permutation_is_window_local_stable_descending_sort() {
    for seed in 0..50u64 {
        let csr: Csr<f64> = structured_case(seed).csr();
        let n = csr.n_rows();
        for &c in &SELL_HEIGHTS {
            for &sigma in &sell_sigmas(c) {
                let sell = SellCSigma::from_csr(&csr, c, sigma, KernelImpl::Scalar);
                let perm = sell.perm();
                assert_eq!(perm.len(), n);
                let sigma_eff = if sigma == SELL_SIGMA_FULL { n.max(1) } else { sigma };
                let mut w0 = 0;
                while w0 < n {
                    let w1 = (w0 + sigma_eff).min(n);
                    let window = &perm[w0..w1];
                    // Window-local: exactly the rows w0..w1, reordered.
                    let mut sorted: Vec<u32> = window.to_vec();
                    sorted.sort_unstable();
                    assert!(
                        sorted.iter().map(|&r| r as usize).eq(w0..w1),
                        "seed {seed} c={c} sigma={sigma}: window {w0}..{w1} leaks rows"
                    );
                    // Stable descending by row length.
                    for pair in window.windows(2) {
                        let (a, b) = (pair[0] as usize, pair[1] as usize);
                        let (la, lb) = (csr.row_nnz(a), csr.row_nnz(b));
                        assert!(
                            la > lb || (la == lb && a < b),
                            "seed {seed} c={c} sigma={sigma}: rows {a} (len {la}), \
                             {b} (len {lb}) out of stable descending order"
                        );
                    }
                    w0 = w1;
                }
            }
        }
    }
}

/// `inv[perm[p]] = p` must compose with the permutation to the identity
/// in both directions — the property that lets `spmv` unscramble `y`
/// with a single scatter.
#[test]
fn inverse_permutation_composes_to_identity() {
    for seed in 0..50u64 {
        let csr: Csr<f64> = structured_case(seed).csr();
        let n = csr.n_rows();
        for &c in &SELL_HEIGHTS {
            let sell = SellCSigma::from_csr(&csr, c, 64, KernelImpl::Scalar);
            let perm = sell.perm();
            let mut inv = vec![u32::MAX; n];
            for (p, &row) in perm.iter().enumerate() {
                assert_eq!(inv[row as usize], u32::MAX, "row {row} appears twice");
                inv[row as usize] = p as u32;
            }
            for (p, &row) in perm.iter().enumerate() {
                assert_eq!(inv[row as usize] as usize, p, "inv ∘ perm != id at {p}");
                assert_eq!(perm[inv[p] as usize] as usize, p, "perm ∘ inv != id at {p}");
            }
        }
    }
}

/// σ = 1 windows hold one row each, so no sort can move anything: the
/// permutation is the identity and `y` needs no unscrambling at all.
#[test]
fn sigma_one_permutation_is_identity() {
    for seed in 0..50u64 {
        let csr: Csr<f64> = structured_case(seed).csr();
        for &c in &SELL_HEIGHTS {
            let sell = SellCSigma::from_csr(&csr, c, 1, KernelImpl::Scalar);
            assert!(
                sell.perm().iter().enumerate().all(|(i, &r)| i == r as usize),
                "seed {seed} c={c}: sigma=1 permutation is not the identity"
            );
        }
    }
}

// ---- edge cases -----------------------------------------------------

fn ragged_csr(rows: &[usize], m: usize) -> Csr<f64> {
    let mut coo = Coo::new(rows.len(), m);
    for (i, &len) in rows.iter().enumerate() {
        for s in 0..len.min(m) {
            let _ = coo.push(i, (i * 3 + s * 7) % m, 1.0 + (i + s) as f64 * 0.5);
        }
    }
    Csr::from_coo(&coo)
}

/// `n_rows` not a multiple of C: the tail slice's missing lanes have
/// zero length and the product still covers every real row.
#[test]
fn tail_slice_rows_not_multiple_of_c() {
    for n in [1usize, 3, 5, 7, 9, 11, 13] {
        let rows: Vec<usize> = (0..n).map(|i| (i * 5) % 7).collect();
        let csr = ragged_csr(&rows, 16);
        let x: Vec<f64> = dense_x(csr.n_cols());
        let want = csr.spmv(&x);
        for &c in &SELL_HEIGHTS {
            for imp in KernelImpl::ALL {
                let sell = SellCSigma::from_csr(&csr, c, 64, imp);
                assert_eq!(sell.n_slices(), n.div_ceil(c), "n={n} c={c}");
                assert_eq!(sell.spmv(&x), want, "n={n} c={c} {imp}");
            }
        }
    }
}

#[test]
fn empty_matrix_and_all_empty_slices() {
    let empty = Csr::<f64>::from_coo(&Coo::new(0, 8));
    for &c in &SELL_HEIGHTS {
        let sell = SellCSigma::from_csr(&empty, c, 64, KernelImpl::Scalar);
        assert_eq!(sell.n_slices(), 0);
        assert_eq!(sell.spmv(&dense_x::<f64>(8)), Vec::<f64>::new());
    }
    // All rows empty: every slice exists but stores zero entries, and
    // the product is all zeros (written, not skipped).
    let zeros = Csr::<f64>::from_coo(&Coo::new(10, 8));
    for &c in &SELL_HEIGHTS {
        let sell = SellCSigma::from_csr(&zeros, c, 64, KernelImpl::Simd);
        assert_eq!(sell.nnz_stored(), 0);
        assert_eq!(sell.spmv(&dense_x::<f64>(8)), vec![0.0; 10]);
    }
}

/// One dense row among empty ones: at σ ≥ C the sort quarantines it
/// into one slice (its window pads only that slice), and the padding
/// bound `(C - 1) * max_len` holds for the unsorted layout.
#[test]
fn single_dense_row_dominates_its_window() {
    let mut rows = vec![0usize; 32];
    rows[13] = 24;
    let csr = ragged_csr(&rows, 32);
    let x: Vec<f64> = dense_x(csr.n_cols());
    let want = csr.spmv(&x);
    for &c in &SELL_HEIGHTS {
        let unsorted = SellCSigma::from_csr(&csr, c, 1, KernelImpl::Simd);
        let sorted = SellCSigma::from_csr(&csr, c, SELL_SIGMA_FULL, KernelImpl::Simd);
        assert_eq!(unsorted.padding(), (c - 1) * 24, "c={c} unsorted padding");
        assert_eq!(sorted.padding(), (c - 1) * 24, "c={c} sorted padding");
        assert_eq!(unsorted.spmv(&x), want, "c={c} unsorted");
        assert_eq!(sorted.spmv(&x), want, "c={c} sorted");
    }
}

/// σ not a multiple of C: sort windows straddle slice boundaries, so a
/// slice can mix rows from two windows and still must be exact.
#[test]
fn sigma_window_straddles_slice_boundaries() {
    let rows: Vec<usize> = (0..40).map(|i| (i * 11) % 13).collect();
    let csr = ragged_csr(&rows, 24);
    let x: Vec<f64> = dense_x(csr.n_cols());
    let want = csr.spmv(&x);
    for &c in &SELL_HEIGHTS {
        for sigma in [3usize, 5, 7, 2 * c + 1] {
            for imp in KernelImpl::ALL {
                let sell = SellCSigma::from_csr(&csr, c, sigma, imp);
                assert_eq!(sell.spmv(&x), want, "c={c} sigma={sigma} {imp}");
            }
        }
    }
}

/// The narrow constructor keeps u16 columns up to the eligibility
/// ceiling and escalates to u32 one column past it — bitwise equal
/// either way.
#[test]
fn narrow_index_escalation_at_column_ceiling() {
    for extra in [0usize, 1] {
        let m = IndexWidth::MAX_U16_COLS + extra;
        let mut coo = Coo::new(6, m);
        for i in 0..6 {
            // Hit the last eligible column explicitly.
            let _ = coo.push(i, m - 1 - i * 7, 1.5 + i as f64);
            let _ = coo.push(i, (i * 9973) % m, 0.5 + i as f64);
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..m).map(|j| 0.5 + (j % 17) as f64 * 0.125).collect();
        let want = csr.spmv(&x);
        for &c in &SELL_HEIGHTS {
            let narrow = SellCSigma::from_csr_narrow(&csr, c, 64, KernelImpl::Simd);
            let expect = if extra == 0 { IndexWidth::U16 } else { IndexWidth::U32 };
            assert_eq!(narrow.index_width(), expect, "m={m} c={c}");
            assert_eq!(narrow.spmv(&x), want, "m={m} c={c}");
        }
    }
}
