//! Fault-injection tests for the adaptive serving stack: hot-swaps
//! racing live dispatches must never produce a torn reply (every answer
//! is bitwise-equal to the serial SpMV of *some* published version),
//! and a panicking tuner must be isolated — the last-good selection
//! keeps serving.

#[path = "support/prop.rs"]
mod prop;

use std::sync::Arc;

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::model::{KernelProfile, MachineProfile, Model};
use blocked_spmv::serve::{
    residual_key_for, EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine,
};
use blocked_spmv::tune::{
    CannedSampler, DetectorConfig, ManualClock, TimelineKind, TuneOptions, Tuner, WatchSpec,
};

fn machine() -> MachineProfile {
    MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    }
}

/// Publish-during-dispatch torture: for 200 seeded structures, a
/// publisher thread hammers the registry with value-distinct versions
/// of the matrix while a client keeps a deep pipeline of requests in
/// flight. Every reply must be bitwise-identical to the serial SpMV of
/// one of the published versions — a reply computed from a torn mix of
/// two versions matches none of the references.
#[test]
fn publish_during_dispatch_replies_match_some_version_bitwise() {
    const VARIANTS: usize = 3;
    const XS: usize = 3;
    const REQUESTS: usize = 24;

    prop::run("publish_during_dispatch", 200, |rng, size| {
        let dim = 8 + size.min(24);
        let (n, m, trips) = prop::sparse_triplets(rng, dim, dim, dim * 7, -4.0, 4.0);

        // Value-distinct variants of one structure. Scaling every value
        // by a different constant keeps the sparsity pattern (so every
        // variant prepares under any format) while making the reference
        // vectors pairwise distinct.
        let variants: Vec<Arc<Csr<f64>>> = (0..VARIANTS)
            .map(|v| {
                let scaled: Vec<_> = trips
                    .iter()
                    .map(|&(r, c, x)| (r, c, x * (v as f64 + 1.0)))
                    .collect();
                Arc::new(Csr::from_coo(
                    &Coo::from_triplets(n, m, scaled).expect("triplets in range"),
                ))
            })
            .collect();
        let prepared: Vec<PreparedMatrix<f64>> = variants
            .iter()
            .map(|csr| {
                PreparedMatrix::prepare(
                    csr,
                    Model::Overlap,
                    &machine(),
                    &KernelProfile::uniform(1e-9, 0.5),
                    true,
                )
            })
            .collect();

        let xs: Vec<Vec<f64>> = (0..XS).map(|_| rng.f64_vec(m, -2.0, 2.0)).collect();
        let refs: Vec<Vec<Vec<f64>>> = prepared
            .iter()
            .map(|p| xs.iter().map(|x| p.spmv(x)).collect())
            .collect();
        for v in 1..VARIANTS {
            assert_ne!(
                refs[0], refs[v],
                "variant references must be distinct for the torn check to bite"
            );
        }

        let configs: Vec<_> = prepared.iter().map(|p| p.config()).collect();

        let registry = Arc::new(Registry::new());
        let id = MatrixId(9);
        let mut prepared = prepared;
        registry.publish(id, prepared.remove(0));
        let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());

        // Publisher thread: republish the variants round-robin while the
        // client's pipeline is in flight.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let publisher = {
            let registry = Arc::clone(&registry);
            let variants = variants.clone();
            let configs = configs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    v = (v + 1) % VARIANTS;
                    registry.publish(id, PreparedMatrix::from_config(configs[v], &variants[v]));
                    std::thread::yield_now();
                }
            })
        };

        let tickets: Vec<_> = (0..REQUESTS)
            .map(|i| {
                engine
                    .submit(id, xs[i % XS].clone())
                    .expect("admission open")
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let y = t.wait().expect("request completes");
            let xi = i % XS;
            assert!(
                refs.iter().any(|r| r[xi].as_slice() == y.as_slice()),
                "reply {i} matches no published version: torn mix"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        publisher.join().expect("publisher joins");
    });
}

/// A tuner whose sampler panics mid-reprofile must be isolated: the
/// panic is latched as a timeline event, nothing gets published, and
/// the engine keeps serving bitwise-correct replies from the last-good
/// selection. Further passes are no-ops instead of repeated panics.
#[test]
fn tuner_panic_is_isolated_and_last_good_selection_keeps_serving() {
    let trips: Vec<(usize, usize, f64)> =
        (0..64).map(|i| (i % 16, (i * 5) % 16, 0.5 + i as f64)).collect();
    let csr = Arc::new(Csr::from_coo(
        &Coo::from_triplets(16, 16, trips).expect("triplets in range"),
    ));
    let registry = Arc::new(Registry::new());
    let id = MatrixId(3);
    let prepared = PreparedMatrix::prepare(
        &csr,
        Model::Overlap,
        &machine(),
        &KernelProfile::uniform(1e-9, 0.5),
        true,
    );
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| (i as f64).sin()).collect();
    let reference = prepared.spmv(&x);
    registry.publish(id, prepared);
    let engine = Arc::new(ServeEngine::new(
        Arc::clone(&registry),
        EngineOptions::default(),
    ));

    let tuner = Tuner::new(
        Arc::clone(&registry),
        Some(Arc::clone(&engine)),
        Arc::new(ManualClock::new(0)),
        Box::new(CannedSampler::new().panicking()),
        TuneOptions::default(),
    );
    let spec = WatchSpec {
        detector: DetectorConfig {
            window: 2,
            consecutive: 2,
            min_samples: 1,
            ..DetectorConfig::default()
        },
        ..WatchSpec::new(
            Arc::clone(&csr),
            Model::Overlap,
            machine(),
            KernelProfile::uniform(1e-9, 0.5),
        )
    };
    assert!(tuner.watch(id, spec));
    let version_before = registry.version_of(id).expect("published");

    // Force staleness so the pass reaches the (panicking) reprofile.
    let key = residual_key_for(
        tuner.current_config(id).expect("watched"),
        Model::Overlap,
    );
    for _ in 0..4 {
        tuner.residuals().record_for(id.0, &key, 1e-6, 1e-4);
    }
    let events = tuner.run_once();
    assert!(tuner.panicked(), "the injected sampler fault must latch");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TimelineKind::PanicIsolated { .. })),
        "the panic must be reported on the timeline: {events:?}"
    );
    assert_eq!(
        registry.version_of(id),
        Some(version_before),
        "a panicked pass must not publish"
    );

    // The engine is unaffected: the last-good selection keeps serving
    // bitwise-correct replies.
    for _ in 0..8 {
        let y = engine.submit_wait(id, x.clone()).expect("still serving");
        assert_eq!(y, reference, "last-good selection must serve unchanged");
    }

    // Later passes are no-ops: the tuner stays latched rather than
    // panicking (or publishing) again.
    for _ in 0..4 {
        tuner.residuals().record_for(id.0, &key, 1e-6, 1e-4);
    }
    assert!(tuner.run_once().is_empty(), "latched tuner must be a no-op");
    assert_eq!(registry.version_of(id), Some(version_before));
}
