//! Exhaustive kernel-shape coverage: every registered block kernel —
//! all BCSR shapes with `r*c <= 8`, all BCSD sizes, scalar and SIMD,
//! single- and multi-vector — driven directly through the registry on
//! fixed integer-valued inputs and compared *bitwise*.
//!
//! Integer-valued inputs make every product and sum exact, so the SIMD
//! variants and the multi-vector variants (which preserve the per-column
//! accumulation order) must agree with the scalar single-vector kernel
//! to the last bit; any deviation is a real indexing or ordering bug,
//! not rounding.

use blocked_spmv::kernels::registry::{
    bcsd_seg_kernel, bcsd_seg_multi_kernel, bcsr_row_kernel, bcsr_row_multi_kernel,
};
use blocked_spmv::kernels::simd::SimdScalar;
use blocked_spmv::kernels::{BlockShape, KernelImpl, MULTI_KS};
use blocked_spmv::Scalar;

const NB: usize = 5; // blocks per row/segment
const XLEN: usize = 64;

fn xvec<T: Scalar>(salt: usize) -> Vec<T> {
    (0..XLEN)
        .map(|i| T::from_f64(((i * (salt + 3)) % 13) as f64 - 6.0))
        .collect()
}

fn bvals<T: Scalar>(len: usize) -> Vec<T> {
    (0..len)
        .map(|i| T::from_f64(((i * 7 + 3) % 11) as f64 - 5.0))
        .collect()
}

/// Block-start columns within `XLEN`, optionally biased (+`b` for BCSD's
/// stored-column convention).
fn bcols(bias: usize) -> Vec<u32> {
    [0usize, 2, 5, 17, 40]
        .iter()
        .map(|&c| (c + bias) as u32)
        .collect()
}

fn run_bcsr<T: SimdScalar>() {
    for shape in BlockShape::search_space() {
        let (r, c) = (shape.rows(), shape.cols());
        let vals = bvals::<T>(NB * r * c);
        let cols = bcols(0);
        assert!(cols.iter().all(|&j| j as usize + c <= XLEN));
        let x = xvec::<T>(1);

        // Scalar single-vector kernel: the reference semantics.
        let mut want = vec![T::from_f64(1.0); r];
        bcsr_row_kernel::<T>(shape, KernelImpl::Scalar)(&vals, &cols, &x, &mut want);

        // SIMD must agree bitwise on exact inputs.
        let mut got = vec![T::from_f64(1.0); r];
        bcsr_row_kernel::<T>(shape, KernelImpl::Simd)(&vals, &cols, &x, &mut got);
        assert_eq!(want, got, "bcsr {shape} simd vs scalar");

        for imp in KernelImpl::ALL {
            // Non-specialized vector counts have no kernel.
            for k in [3usize, 5, 6, 7, 9] {
                assert!(
                    bcsr_row_multi_kernel::<T>(shape, k, imp).is_none(),
                    "bcsr {shape} k={k} {imp} should be unspecialized"
                );
            }
            for k in MULTI_KS {
                let kern = bcsr_row_multi_kernel::<T>(shape, k, imp)
                    .unwrap_or_else(|| panic!("bcsr {shape} k={k} {imp} missing"));
                // k input columns of stride XLEN; outputs of stride r+3
                // starting at row y0, to exercise the stride arguments.
                let (ystride, y0) = (r + 3, 2usize);
                let xs: Vec<T> = (0..k).flat_map(|t| xvec::<T>(t + 1)).collect();
                let mut got = vec![T::from_f64(2.0); k * ystride];
                kern(&vals, &cols, &xs, XLEN, &mut got, ystride, y0);
                for t in 0..k {
                    let mut want = vec![T::from_f64(2.0); r];
                    bcsr_row_kernel::<T>(shape, imp)(
                        &vals,
                        &cols,
                        &xs[t * XLEN..(t + 1) * XLEN],
                        &mut want,
                    );
                    assert_eq!(
                        want,
                        &got[t * ystride + y0..t * ystride + y0 + r],
                        "bcsr {shape} k={k} {imp} col {t}"
                    );
                    // Rows outside [y0, y0+r) must be untouched.
                    for (i, g) in got[t * ystride..(t + 1) * ystride].iter().enumerate() {
                        if !(y0..y0 + r).contains(&i) {
                            assert_eq!(*g, T::from_f64(2.0), "bcsr {shape} k={k} row {i}");
                        }
                    }
                }
            }
        }
    }
}

fn run_bcsd<T: SimdScalar>() {
    for b in 1usize..=8 {
        let vals = bvals::<T>(NB * b);
        // Stored columns carry the +b bias of the BCSD layout.
        let cols = bcols(b);
        assert!(cols.iter().all(|&j| (j as usize) >= b && (j as usize - b) + b <= XLEN));
        let x = xvec::<T>(1);

        let mut want = vec![T::from_f64(1.0); b];
        bcsd_seg_kernel::<T>(b, KernelImpl::Scalar)(&vals, &cols, &x, &mut want);
        let mut got = vec![T::from_f64(1.0); b];
        bcsd_seg_kernel::<T>(b, KernelImpl::Simd)(&vals, &cols, &x, &mut got);
        assert_eq!(want, got, "bcsd {b} simd vs scalar");

        for imp in KernelImpl::ALL {
            for k in [3usize, 5, 6, 7, 9] {
                assert!(
                    bcsd_seg_multi_kernel::<T>(b, k, imp).is_none(),
                    "bcsd {b} k={k} {imp} should be unspecialized"
                );
            }
            for k in MULTI_KS {
                let kern = bcsd_seg_multi_kernel::<T>(b, k, imp)
                    .unwrap_or_else(|| panic!("bcsd {b} k={k} {imp} missing"));
                let (ystride, y0) = (b + 2, 1usize);
                let xs: Vec<T> = (0..k).flat_map(|t| xvec::<T>(t + 1)).collect();
                let mut got = vec![T::from_f64(2.0); k * ystride];
                kern(&vals, &cols, &xs, XLEN, &mut got, ystride, y0);
                for t in 0..k {
                    let mut want = vec![T::from_f64(2.0); b];
                    bcsd_seg_kernel::<T>(b, imp)(
                        &vals,
                        &cols,
                        &xs[t * XLEN..(t + 1) * XLEN],
                        &mut want,
                    );
                    assert_eq!(
                        want,
                        &got[t * ystride + y0..t * ystride + y0 + b],
                        "bcsd {b} k={k} {imp} col {t}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_bcsr_shape_scalar_simd_multi_bitwise_f64() {
    run_bcsr::<f64>();
}

#[test]
fn every_bcsr_shape_scalar_simd_multi_bitwise_f32() {
    run_bcsr::<f32>();
}

#[test]
fn every_bcsd_size_scalar_simd_multi_bitwise_f64() {
    run_bcsd::<f64>();
}

#[test]
fn every_bcsd_size_scalar_simd_multi_bitwise_f32() {
    run_bcsd::<f32>();
}

#[test]
fn search_space_covers_all_shapes_up_to_eight_elems() {
    // The registry's search space must be exactly {r×c : r*c <= 8},
    // minus nothing — the exhaustiveness this suite relies on.
    let shapes = BlockShape::search_space();
    let mut expected = 0;
    for r in 1..=8 {
        for c in 1..=8 {
            if r * c <= 8 && (r, c) != (1, 1) {
                expected += 1;
                assert!(
                    shapes.iter().any(|s| s.rows() == r && s.cols() == c),
                    "missing shape {r}x{c}"
                );
            }
        }
    }
    assert_eq!(shapes.len(), expected);
}
