//! Integration coverage of the extension modules through the public
//! facade: calibration persistence round-trips feed selection, the
//! heuristic and the models agree on easy cases, and the multicore and
//! latency extensions compose with the core pipeline.

use blocked_spmv::gen::GenSpec;
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::{
    input_vector_miss_estimate, predict_overlap_lat, predict_threaded,
    predicted_saturation_point, read_profile, select, select_bcsr_shape, write_profile,
    BlockConfig, Config, DenseProfile, KernelProfile, LatencyProfile, MachineProfile, Model,
};

fn machine() -> MachineProfile {
    MachineProfile {
        bandwidth: 5e9,
        l1_bytes: 32 * 1024,
        llc_bytes: 4 << 20,
    }
}

#[test]
fn persisted_profile_drives_identical_selections() {
    // Selection from a reloaded profile must match selection from the
    // original — calibration is fully captured by the file.
    let csr = GenSpec::FemBlocks {
        nodes: 300,
        dof: 3,
        neighbors: 7,
    }
    .build(3);
    let m = machine();
    let profile = KernelProfile::proportional(2e-9, 0.6);
    let mut buf = Vec::new();
    write_profile(&m, &profile, &mut buf).unwrap();
    let (m2, p2) = read_profile(&buf[..]).unwrap();
    for model in Model::ALL {
        let a = select(model, &csr, &m, &profile, true);
        let b = select(model, &csr, &m2, &p2, true);
        assert_eq!(a.config, b.config, "{model}");
        assert!((a.predicted - b.predicted).abs() < 1e-15);
    }
}

#[test]
fn heuristic_and_models_agree_on_a_pure_block_matrix() {
    // On a matrix of perfect 2x2 blocks with an "ideal" cost model, the
    // heuristic's BCSR pick and the models' BCSR-family pick coincide in
    // shape family: both must choose a shape that tiles without padding.
    let mut coo = blocked_spmv::core::Coo::new(120, 120);
    for bi in 0..60 {
        for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
        }
    }
    let csr = blocked_spmv::core::Csr::from_coo(&coo);

    // Heuristic with a rate table that mildly favors bigger blocks.
    let mut dense = DenseProfile::default();
    for shape in BlockShape::search_space() {
        for imp in KernelImpl::ALL {
            dense.set(shape, imp, 1e9 * (1.0 + 0.05 * shape.elems() as f64));
        }
    }
    let (h_shape, _, _) = select_bcsr_shape(&csr, &dense, false);
    let h_stats = blocked_spmv::formats::bcsr_stats(&csr, h_shape);
    assert_eq!(h_stats.stored, csr.nnz(), "heuristic pick {h_shape} pads");

    // Models restricted to BCSR: same no-padding property.
    let m = machine();
    let profile = KernelProfile::proportional(1e-10, 0.5);
    let bcsr_only: Vec<Config> = Config::enumerate(false)
        .into_iter()
        .filter(|c| matches!(c.block, BlockConfig::Bcsr(_)))
        .collect();
    for model in Model::ALL {
        let pick = blocked_spmv::model::rank(model, &csr, &m, &profile, &bcsr_only)[0].config;
        if let BlockConfig::Bcsr(shape) = pick.block {
            let st = blocked_spmv::formats::bcsr_stats(&csr, shape);
            assert_eq!(st.stored, csr.nnz(), "{model} pick {shape} pads");
        } else {
            unreachable!("filtered to BCSR");
        }
    }
}

#[test]
fn multicore_prediction_composes_with_all_configs() {
    let csr = GenSpec::Stencil3d {
        nx: 12,
        ny: 12,
        nz: 12,
    }
    .build(1);
    let m = machine();
    let profile = KernelProfile::proportional(1e-9, 0.5);
    for config in Config::enumerate(false).into_iter().take(12) {
        let t1 = predict_threaded(Model::Overlap, &csr, &config, 1, &m, &profile);
        let t4 = predict_threaded(Model::Overlap, &csr, &config, 4, &m, &profile);
        assert!(t1 > 0.0 && t4 > 0.0, "{config}");
        // With shared bandwidth, 4 threads can never be predicted more
        // than 4x faster.
        assert!(t4 > t1 / 4.0 - 1e-15, "{config}: {t1} -> {t4}");
    }
    let sat = predicted_saturation_point(Model::Mem, &csr, &Config::CSR, 8, &m, &profile);
    assert!((1..=8).contains(&sat));
}

#[test]
fn latency_extension_orders_matrices_by_irregularity() {
    let m = MachineProfile {
        llc_bytes: 32 * 1024, // force out-of-cache x
        ..machine()
    };
    let profile = KernelProfile::proportional(1e-9, 0.5);
    let lat = LatencyProfile {
        load_latency: 1.5e-7,
        footprint: 1 << 20,
    };
    let mats = [
        GenSpec::ClusteredRandom {
            n: 800,
            m: 20_000,
            runs_per_row: 1,
            run_len: 12,
        }
        .build(1),
        GenSpec::Random {
            n: 800,
            m: 20_000,
            nnz_per_row: 12,
        }
        .build(1),
    ];
    let miss0 = input_vector_miss_estimate(&mats[0], &m, 8);
    let miss1 = input_vector_miss_estimate(&mats[1], &m, 8);
    assert!(miss1 > 4.0 * miss0, "irregular should miss far more: {miss0} vs {miss1}");
    let t0 = predict_overlap_lat(&mats[0], &Config::CSR, &m, &profile, &lat);
    let t1 = predict_overlap_lat(&mats[1], &Config::CSR, &m, &profile, &lat);
    assert!(t1 > t0);
}

#[test]
fn saved_profile_file_is_human_auditable() {
    // The persistence format is line-oriented text a reviewer can read:
    // check the expected record types appear.
    let m = machine();
    let profile = KernelProfile::proportional(1e-9, 0.25);
    let mut buf = Vec::new();
    write_profile(&m, &profile, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.starts_with("blocked-spmv-profile v1"));
    assert!(text.contains("\nmachine "));
    assert!(text.contains("\ncsr "));
    assert!(text.contains("\nbcsr 2 2 scalar "));
    assert!(text.contains("\nbcsd 4 simd "));
    assert!(text.contains("\ncsrdelta scalar "));
    assert!(text.contains("\nbcsrmasked 2 2 scalar "));
    assert!(text.contains("\nbcsdmasked 4 simd "));
    assert!(text.contains("\nsell 4 simd "));
    // 1 header + 1 machine + 113 kernel lines (csr + 2 csr-delta + 38
    // bcsr + 14 bcsd + their 52 masked twins + 6 sell heights × impls).
    assert_eq!(text.trim_end().lines().count(), 115);
}
