//! Differential equivalence suite for the padding-free masked formats.
//!
//! `BcsrMasked`/`BcsdMasked` delegate every block to the same
//! const-generic core as their padded twins after expanding the stored
//! values into a zeroed dense block, so their products must be
//! *bit-identical* to the padded formats — padded zeros are accumulation
//! no-ops. This suite drives that claim over a 200-seed random corpus
//! across {scalar, simd} × {f32, f64} × {k = 1, 4}, pins the mask edge
//! cases (all-ones mask, single-bit mask, empty block row), and runs a
//! masked format through the persistent worker pool against its serial
//! twin. The corpus is the shared `support/corpus.rs` blocky profile.

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsd, BcsdMasked, Bcsr, BcsrMasked};
use blocked_spmv::kernels::simd::SimdScalar;
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::parallel::{bcsr_unit_weights, PinPolicy, SpmvPool};
#[path = "support/corpus.rs"]
mod corpus;
use corpus::{blocky_matrix as seeded_matrix, SEEDS};

const K: usize = 4;

fn dense_x<T: blocked_spmv::core::Scalar>(len: usize) -> Vec<T> {
    (0..len)
        .map(|i| T::from_f64(0.5 + (i % 11) as f64 * 0.25 - (i % 3) as f64))
        .collect()
}

/// CSR reference with a relative tolerance: blocked accumulation orders
/// differ from CSR's row order, so only the masked-vs-padded comparison
/// is exact.
fn assert_close<T: blocked_spmv::core::Scalar>(got: &[T], want: &[T], eps: f64, tag: &str) {
    assert_eq!(got.len(), want.len(), "{tag}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let (g, w) = (g.to_f64(), w.to_f64());
        let scale = w.abs().max(1.0);
        assert!((g - w).abs() <= eps * scale, "{tag}: row {i}: {g} vs {w}");
    }
}

fn check_seed<T: SimdScalar>(csr: &Csr<T>, seed: u64, eps: f64) {
    let shape = BlockShape::search_space()[seed as usize % BlockShape::search_space().len()];
    let b = 2 + (seed as usize % 7);
    let x: Vec<T> = dense_x(csr.n_cols());
    let xk: Vec<T> = dense_x(csr.n_cols() * K);
    let reference = csr.spmv(&x);
    for imp in KernelImpl::ALL {
        let padded = Bcsr::from_csr(csr, shape, imp);
        let masked = BcsrMasked::from_csr(csr, shape, imp);
        assert_eq!(masked.padding(), 0, "seed {seed}: masked BCSR stores padding");
        assert_eq!(
            masked.spmv(&x),
            padded.spmv(&x),
            "seed {seed} {imp:?} BCSR {shape} masked != padded"
        );
        assert_eq!(
            masked.spmv_multi(&xk, K),
            padded.spmv_multi(&xk, K),
            "seed {seed} {imp:?} BCSR {shape} masked multi != padded multi"
        );
        assert_close(&masked.spmv(&x), &reference, eps, "masked BCSR vs CSR");

        let padded = Bcsd::from_csr(csr, b, imp);
        let masked = BcsdMasked::from_csr(csr, b, imp);
        assert_eq!(masked.padding(), 0, "seed {seed}: masked BCSD stores padding");
        assert_eq!(
            masked.spmv(&x),
            padded.spmv(&x),
            "seed {seed} {imp:?} BCSD b={b} masked != padded"
        );
        assert_eq!(
            masked.spmv_multi(&xk, K),
            padded.spmv_multi(&xk, K),
            "seed {seed} {imp:?} BCSD b={b} masked multi != padded multi"
        );
        assert_close(&masked.spmv(&x), &reference, eps, "masked BCSD vs CSR");
    }
}

#[test]
fn two_hundred_seed_masked_vs_padded_vs_csr_f64() {
    for seed in 0..SEEDS {
        let csr = seeded_matrix(seed);
        check_seed(&csr, seed, 1e-12);
    }
}

#[test]
fn two_hundred_seed_masked_vs_padded_vs_csr_f32() {
    for seed in 0..SEEDS {
        let csr = seeded_matrix(seed).cast::<f32>();
        check_seed(&csr, seed, 1e-4);
    }
}

#[test]
fn all_ones_masks_take_the_full_block_fast_path() {
    // A pure 2x4-block matrix: every mask is full, occupancy is exactly
    // 1.0, and the fast path must still match the padded product.
    let shape = BlockShape::new(2, 4).unwrap();
    let mut coo = Coo::new(32, 32);
    for bi in 0..16 {
        for bj in 0..4 {
            for di in 0..2 {
                for dj in 0..4 {
                    let v = (bi * 31 + bj * 7 + di * 3 + dj) as f64 * 0.25 + 0.125;
                    coo.push(2 * bi + di, 8 * bj + dj, v).unwrap();
                }
            }
        }
    }
    let csr = Csr::from_coo(&coo);
    let x: Vec<f64> = dense_x(32);
    for imp in KernelImpl::ALL {
        let masked = BcsrMasked::from_csr(&csr, shape, imp);
        assert_eq!(masked.occupancy(), 1.0);
        assert_eq!(
            masked.spmv(&x),
            Bcsr::from_csr(&csr, shape, imp).spmv(&x),
            "{imp:?} full-mask fast path"
        );
    }
}

#[test]
fn single_bit_masks_and_empty_block_rows() {
    // A sparse diagonal inside 4x2 blocks: every occupied block holds
    // exactly one nonzero (a one-bit mask), and rows 20..40 are entirely
    // empty, so half the block rows have no blocks at all.
    let shape = BlockShape::new(4, 2).unwrap();
    let mut coo = Coo::new(40, 40);
    for i in 0..20 {
        coo.push(i, (i * 2 + 1) % 40, 1.0 + i as f64).unwrap();
    }
    let csr = Csr::from_coo(&coo);
    let x: Vec<f64> = dense_x(40);
    for imp in KernelImpl::ALL {
        let bcsr = BcsrMasked::from_csr(&csr, shape, imp);
        assert_eq!(bcsr.n_blocks(), csr.nnz(), "one block per nonzero");
        assert_eq!(bcsr.spmv(&x), Bcsr::from_csr(&csr, shape, imp).spmv(&x));
        let bcsd = BcsdMasked::from_csr(&csr, 5, imp);
        assert_eq!(bcsd.spmv(&x), Bcsd::from_csr(&csr, 5, imp).spmv(&x));
    }
    // The empty matrix: no blocks, no values, an all-zero product.
    let empty = Csr::<f64>::from_coo(&Coo::new(8, 8));
    let masked = BcsrMasked::from_csr(&empty, shape, KernelImpl::Scalar);
    assert_eq!(masked.n_blocks(), 0);
    assert_eq!(masked.spmv(&dense_x::<f64>(8)), vec![0.0; 8]);
}

#[test]
fn pooled_masked_runs_match_serial_bitwise() {
    // Row partitions never split a block row, so the pooled masked
    // product must equal the serial masked product bit-for-bit.
    let csr = seeded_matrix(77);
    let shape = BlockShape::new(2, 2).unwrap();
    let x: Vec<f64> = dense_x(csr.n_cols());
    let xk: Vec<f64> = dense_x(csr.n_cols() * K);
    for threads in [1, 2, 4] {
        for imp in KernelImpl::ALL {
            let serial = BcsrMasked::from_csr(&csr, shape, imp);
            let pool = SpmvPool::from_csr(
                &csr,
                threads,
                &bcsr_unit_weights(&csr, shape),
                shape.rows(),
                |s| BcsrMasked::from_csr(s, shape, imp),
                PinPolicy::None,
            );
            assert_eq!(pool.spmv(&x), serial.spmv(&x), "masked {imp:?} x{threads}");
            assert_eq!(
                pool.spmv_multi(&xk, K),
                serial.spmv_multi(&xk, K),
                "masked multi {imp:?} x{threads}"
            );
        }
    }
}
