//! Seeded differential equivalence suite.
//!
//! 200 seeded random matrices (the shared `support/corpus.rs` corpus)
//! spanning uniform densities, banded structure, 2-D block clusters,
//! and diagonal runs, with injected dense-row / empty-tail pathologies.
//! Every storage format's single-vector product (`spmv`) and batched
//! product (`spmv_multi`, k = 4) is checked against a naive triplet-list
//! reference accumulated in `f64`, for scalar and SIMD kernels and both
//! precisions, within ULP-scaled bounds.
//!
//! Unlike `format_equivalence.rs` this suite is plain seeded `#[test]`
//! fns — no proptest — so it runs in minimal environments and its
//! failures reproduce from the seed alone.

use blocked_spmv::core::{Csr, Precision, Scalar, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, CsrDelta, Vbl, Vbr};
use blocked_spmv::kernels::simd::SimdScalar;
use blocked_spmv::kernels::{BlockShape, KernelImpl};
#[path = "support/corpus.rs"]
mod corpus;
use corpus::{structured_case, Case, SEEDS};

const K: usize = 4;

/// Naive reference: accumulate `A * X` straight off the triplet list in
/// `f64`, over inputs rounded through `T` so only accumulation order
/// differs from the formats under test. Also returns the per-entry
/// magnitude `Σ |a_ij x_j|` that scales the tolerance.
fn reference<T: Scalar>(case: &Case, x: &[T], k: usize) -> (Vec<f64>, Vec<f64>) {
    let (n, m) = (case.n, case.m);
    let mut y = vec![0.0; n * k];
    let mut mag = vec![0.0; n * k];
    for t in 0..k {
        for &(i, j, v) in &case.trips {
            let v = T::from_f64(v).to_f64();
            let xj = x[t * m + j].to_f64();
            y[t * n + i] += v * xj;
            mag[t * n + i] += (v * xj).abs();
        }
    }
    (y, mag)
}

fn tolerance<T: Scalar>(mag: f64) -> f64 {
    let eps = match T::PRECISION {
        Precision::Single => f32::EPSILON as f64,
        Precision::Double => f64::EPSILON,
    };
    // ULP-scaled: worst-case reassociation over a few hundred terms.
    256.0 * eps * (1.0 + mag)
}

fn check<T: Scalar, M: SpMvMulti<T>>(
    mat: &M,
    x: &[T],
    yref: &[f64],
    mag: &[f64],
    k: usize,
    what: &str,
) {
    let got = if k == 1 {
        mat.spmv(x)
    } else {
        mat.spmv_multi(x, k)
    };
    assert_eq!(got.len(), yref.len(), "{what}: output length");
    for (idx, g) in got.iter().enumerate() {
        let (g, want) = (g.to_f64(), yref[idx]);
        assert!(
            (g - want).abs() <= tolerance::<T>(mag[idx]),
            "{what}: entry {idx}: got {g}, reference {want} (mag {})",
            mag[idx]
        );
    }
}

/// Runs every format over every seeded matrix for one precision and one
/// vector count.
fn run<T: SimdScalar>(k: usize) {
    let shapes = [
        BlockShape::new(2, 2).unwrap(),
        BlockShape::new(3, 2).unwrap(),
        BlockShape::new(1, 4).unwrap(),
    ];
    for seed in 0..SEEDS {
        let case = structured_case(seed);
        let m = case.m;
        let csr: Csr<T> = case.csr();
        let x: Vec<T> = (0..m * k)
            .map(|i| T::from_f64(0.25 * (i % 9) as f64 - 1.0))
            .collect();
        let (yref, mag) = reference(&case, &x, k);

        check(&csr, &x, &yref, &mag, k, &format!("seed {seed} csr"));
        for imp in KernelImpl::ALL {
            let t = format!("seed {seed} csr-delta {imp}");
            check(&CsrDelta::from_csr(&csr, imp), &x, &yref, &mag, k, &t);
            for shape in shapes {
                let t = format!("seed {seed} bcsr {shape} {imp}");
                check(&Bcsr::from_csr(&csr, shape, imp), &x, &yref, &mag, k, &t);
                let t = format!("seed {seed} bcsr16 {shape} {imp}");
                check(&Bcsr::from_csr_narrow(&csr, shape, imp), &x, &yref, &mag, k, &t);
                let t = format!("seed {seed} bcsr-dec {shape} {imp}");
                check(&BcsrDec::from_csr(&csr, shape, imp), &x, &yref, &mag, k, &t);
            }
            for b in [3usize, 4, 8] {
                let t = format!("seed {seed} bcsd {b} {imp}");
                check(&Bcsd::from_csr(&csr, b, imp), &x, &yref, &mag, k, &t);
                let t = format!("seed {seed} bcsd16 {b} {imp}");
                check(&Bcsd::from_csr_narrow(&csr, b, imp), &x, &yref, &mag, k, &t);
                let t = format!("seed {seed} bcsd-dec {b} {imp}");
                check(&BcsdDec::from_csr(&csr, b, imp), &x, &yref, &mag, k, &t);
            }
            let t = format!("seed {seed} vbl {imp}");
            check(&Vbl::from_csr(&csr, imp), &x, &yref, &mag, k, &t);
            let t = format!("seed {seed} vbl16 {imp}");
            check(&Vbl::from_csr_narrow(&csr, imp), &x, &yref, &mag, k, &t);
        }
        // VBR has no SIMD kernels; one scalar pass covers it.
        check(&Vbr::from_csr(&csr), &x, &yref, &mag, k, &format!("seed {seed} vbr"));
    }
}

#[test]
fn f64_single_vector_matches_reference() {
    run::<f64>(1);
}

#[test]
fn f64_multi_vector_matches_reference() {
    run::<f64>(K);
}

#[test]
fn f32_single_vector_matches_reference() {
    run::<f32>(1);
}

#[test]
fn f32_multi_vector_matches_reference() {
    run::<f32>(K);
}

/// The batched path must equal per-column single-vector calls *bitwise*
/// for every format — the structural guarantee the multi kernels are
/// written to preserve (identical per-column accumulation order).
#[test]
fn multi_vector_is_bitwise_per_column() {
    for seed in 0..50 {
        let case = structured_case(seed);
        let (n, m) = (case.n, case.m);
        let csr: Csr<f64> = case.csr();
        let x: Vec<f64> = (0..m * K)
            .map(|i| 0.25 * (i % 9) as f64 - 1.0)
            .collect();
        let shape = BlockShape::new(2, 2).unwrap();
        for imp in KernelImpl::ALL {
            let formats: Vec<(&str, Box<dyn SpMvMulti<f64>>)> = vec![
                ("csr", Box::new(csr.clone())),
                ("csr-delta", Box::new(CsrDelta::from_csr(&csr, imp))),
                ("bcsr", Box::new(Bcsr::from_csr(&csr, shape, imp))),
                ("bcsr16", Box::new(Bcsr::from_csr_narrow(&csr, shape, imp))),
                ("bcsr-dec", Box::new(BcsrDec::from_csr(&csr, shape, imp))),
                ("bcsd", Box::new(Bcsd::from_csr(&csr, 4, imp))),
                ("bcsd16", Box::new(Bcsd::from_csr_narrow(&csr, 4, imp))),
                ("bcsd-dec", Box::new(BcsdDec::from_csr(&csr, 4, imp))),
                ("vbl", Box::new(Vbl::from_csr(&csr, imp))),
                ("vbl16", Box::new(Vbl::from_csr_narrow(&csr, imp))),
                ("vbr", Box::new(Vbr::from_csr(&csr))),
            ];
            for (label, mat) in &formats {
                let multi = mat.spmv_multi(&x, K);
                for t in 0..K {
                    let single = mat.spmv(&x[t * m..(t + 1) * m]);
                    assert_eq!(
                        single,
                        &multi[t * n..(t + 1) * n],
                        "seed {seed} {label} {imp} col {t}"
                    );
                }
            }
        }
    }
}

/// Every index-compressed format must be *bitwise* equal to its
/// full-width baseline over the whole seeded corpus: the narrow-index
/// variants run the very same kernels, and CSR-Δ's scalar kernel repeats
/// CSR's accumulation order exactly. (CSR-Δ SIMD reassociates unit runs
/// and is covered by the tolerance-based sweep above instead.)
#[test]
fn compressed_formats_are_bitwise_equal_to_u32_baselines() {
    let shape = BlockShape::new(2, 2).unwrap();
    for seed in 0..SEEDS {
        let case = structured_case(seed);
        let m = case.m;
        let csr: Csr<f64> = case.csr();
        let x: Vec<f64> = (0..m * K)
            .map(|i| 0.25 * (i % 9) as f64 - 1.0)
            .collect();
        let x1 = &x[..m];

        let delta = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(delta.spmv(x1), csr.spmv(x1), "seed {seed} csr-delta");
        assert_eq!(
            delta.spmv_multi(&x, K),
            csr.spmv_multi(&x, K),
            "seed {seed} csr-delta multi"
        );

        for imp in KernelImpl::ALL {
            let wide = Bcsr::from_csr(&csr, shape, imp);
            let narrow = Bcsr::from_csr_narrow(&csr, shape, imp);
            assert_eq!(narrow.spmv(x1), wide.spmv(x1), "seed {seed} bcsr16 {imp}");
            assert_eq!(
                narrow.spmv_multi(&x, K),
                wide.spmv_multi(&x, K),
                "seed {seed} bcsr16 {imp} multi"
            );

            let wide = Bcsd::from_csr(&csr, 4, imp);
            let narrow = Bcsd::from_csr_narrow(&csr, 4, imp);
            assert_eq!(narrow.spmv(x1), wide.spmv(x1), "seed {seed} bcsd16 {imp}");
            assert_eq!(
                narrow.spmv_multi(&x, K),
                wide.spmv_multi(&x, K),
                "seed {seed} bcsd16 {imp} multi"
            );

            let wide = Vbl::from_csr(&csr, imp);
            let narrow = Vbl::from_csr_narrow(&csr, imp);
            assert_eq!(narrow.spmv(x1), wide.spmv(x1), "seed {seed} vbl16 {imp}");
            assert_eq!(
                narrow.spmv_multi(&x, K),
                wide.spmv_multi(&x, K),
                "seed {seed} vbl16 {imp} multi"
            );
        }
    }
}
