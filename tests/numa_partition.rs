//! NUMA partitioning properties: the static splitter's balance
//! invariants, bitwise reproducibility of the nnz-split fallback, the
//! model/runtime splitter lockstep, and the flat-hierarchy equivalence
//! that grounds `predict_threaded_hierarchy` in the pre-NUMA model.

#[path = "support/prop.rs"]
mod prop;

use std::sync::Arc;

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::model::{
    predict_threaded, predict_threaded_hierarchy, strip_extents, BandwidthHierarchy, Config,
    KernelProfile, MachineProfile, Model,
};
use blocked_spmv::parallel::{
    csr_unit_weights, heavy_unit, partition_units, split_segments, units_to_rows, PinPolicy,
    Placement, SpmvPool, Topology,
};
use blocked_spmv::serve::{EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine};

/// A random CSR whose shape/sparsity scale with the property size, with
/// an optional pathologically heavy row (a large fraction of all nnz in
/// one row — the shape the nnz-split fallback exists for).
fn random_csr(rng: &mut prop::Rng, size: usize, heavy: bool) -> Csr<f64> {
    let n = rng.usize_in(1, 4 + 4 * size);
    let m = rng.usize_in(1, 4 + 4 * size);
    let entries = rng.usize_in(0, 1 + 6 * size);
    let mut coo = Coo::new(n, m);
    for _ in 0..entries {
        coo.push(rng.index(n), rng.index(m), rng.f64_in(-2.0, 2.0))
            .unwrap();
    }
    if heavy {
        // One row holding ~4x the rest of the matrix combined.
        let row = rng.index(n);
        for _ in 0..(4 * entries).max(8) {
            coo.push(row, rng.index(m), rng.f64_in(-2.0, 2.0)).unwrap();
        }
    }
    Csr::from_coo(&coo)
}

#[test]
fn partition_units_balance_invariants() {
    prop::run("partition_units invariants", 200, |rng, size| {
        let n_units = rng.usize_in(1, 2 + 4 * size);
        // Mixed magnitudes, including zero-weight units.
        let weights: Vec<u64> = (0..n_units)
            .map(|_| {
                if rng.bool() {
                    rng.next_u64() % 8
                } else {
                    rng.next_u64() % 1000
                }
            })
            .collect();
        let parts = rng.usize_in(1, 2 + n_units);
        let ranges = partition_units(&weights, parts);

        // Shape: exactly `parts` contiguous ranges covering all units.
        assert_eq!(ranges.len(), parts);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, n_units);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "parts must be contiguous");
        }

        // Balance: the cumulative weight through part p never overshoots
        // the ideal cumulative share by more than one unit's weight (the
        // documented greedy-prefix guarantee).
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let mut cum = 0u64;
        for (p, r) in ranges.iter().enumerate() {
            cum += weights[r.clone()].iter().sum::<u64>();
            let target = total * (p as u64 + 1) / parts as u64;
            assert!(
                cum <= target + max_w,
                "part {p}: cumulative {cum} overshoots target {target} by more than \
                 max unit weight {max_w}"
            );
        }
    });
}

#[test]
fn heavy_unit_fires_iff_a_unit_exceeds_the_ideal_share() {
    prop::run("heavy_unit rule", 100, |rng, size| {
        let n_units = rng.usize_in(1, 2 + 4 * size);
        let weights: Vec<u64> = (0..n_units).map(|_| rng.next_u64() % 100).collect();
        let parts = rng.usize_in(1, 6);
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        match heavy_unit(&weights, parts) {
            Some(idx) => {
                assert!(parts > 1);
                assert_eq!(weights[idx], *weights.iter().max().unwrap());
                assert!(weights[idx] as u128 * parts as u128 > total);
            }
            None => {
                if parts > 1 {
                    let max = weights.iter().copied().max().unwrap_or(0);
                    assert!(max as u128 * parts as u128 <= total);
                }
            }
        }
    });
}

#[test]
fn split_segments_partition_the_nnz_range() {
    prop::run("split_segments coverage", 100, |rng, size| {
        let nnz = rng.usize_in(0, 1 + 50 * size);
        let parts = rng.usize_in(1, 9);
        let segs = split_segments(nnz, parts);
        assert_eq!(segs.len(), parts);
        let mut pos = 0usize;
        for s in &segs {
            assert_eq!(s.start, pos, "segments must be contiguous");
            pos = s.end;
        }
        assert_eq!(pos, nnz, "segments must cover all nnz");
        let (min, max) = segs
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), s| (lo.min(s.len()), hi.max(s.len())));
        assert!(max - min <= 1, "near-equal segment sizes: {min}..{max}");
    });
}

/// The nnz-split fallback must be invisible in the output: every pooled
/// result — with and without first-touch, across thread counts, single
/// and multi-vector — is bitwise the serial CSR answer. 200 seeded
/// matrices, roughly half with a pathological heavy row.
#[test]
fn nnz_split_pools_are_bitwise_equal_to_serial() {
    prop::run("nnz-split bitwise corpus", 200, |rng, size| {
        let heavy = rng.bool();
        let csr = random_csr(rng, size, heavy);
        let x = rng.f64_vec(csr.n_cols(), -1.0, 1.0);
        let reference = csr.spmv(&x);
        let threads = rng.usize_in(1, 5);
        let placement = Placement {
            pin: PinPolicy::None,
            first_touch: rng.bool(),
            nnz_split: true,
        };
        let pool = SpmvPool::from_csr_placed(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            placement,
        );
        assert_eq!(pool.spmv(&x), reference, "single-vector must be bitwise");

        // Multi-vector: k columns, each column bitwise its serial SpMV.
        let k = rng.usize_in(1, 5);
        let xs: Vec<Vec<f64>> = (0..k).map(|_| rng.f64_vec(csr.n_cols(), -1.0, 1.0)).collect();
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let mut ys = vec![0.0; k * csr.n_rows()];
        pool.spmv_multi_into(&flat, &mut ys, k);
        for (t, xt) in xs.iter().enumerate() {
            let expect = csr.spmv(xt);
            assert_eq!(
                &ys[t * csr.n_rows()..(t + 1) * csr.n_rows()],
                &expect[..],
                "multi-vector column {t} must be bitwise"
            );
        }
    });
}

#[test]
fn single_heavy_row_matrix_splits_and_stays_bitwise() {
    // The pathological extreme: every nonzero in one row.
    let n = 6usize;
    let m = 300usize;
    let mut coo = Coo::new(n, m);
    let mut state = 0xFEED_u64;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for c in 0..m {
        let v = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        coo.push(3, c, v).unwrap();
    }
    let csr = Csr::from_coo(&coo);
    let x: Vec<f64> = (0..m)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
        .collect();
    let reference = csr.spmv(&x);
    for threads in [2, 3, 4, 7] {
        let pool = SpmvPool::from_csr_placed(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            Placement {
                pin: PinPolicy::None,
                first_touch: false,
                nnz_split: true,
            },
        );
        assert_eq!(pool.split_row(), Some(3), "threads={threads}");
        assert_eq!(pool.spmv(&x), reference, "threads={threads}");
    }
}

/// The model crate re-implements the nnz-greedy splitter to stay
/// dependency-light; this differential test is what keeps the copy
/// honest. 100 seeded matrices across thread counts: `strip_extents`
/// must equal `partition_units` over per-row nnz weights exactly.
#[test]
fn model_strip_extents_match_runtime_partition() {
    prop::run("splitter lockstep", 100, |rng, size| {
        let heavy = rng.bool();
        let csr = random_csr(rng, size, heavy);
        let weights = csr_unit_weights(&csr);
        for threads in 1..=6 {
            let model_side = strip_extents(&csr, threads);
            let runtime_side = units_to_rows(&partition_units(&weights, threads), 1, csr.n_rows());
            assert_eq!(
                model_side, runtime_side,
                "splitters drifted at threads={threads}"
            );
        }
    });
}

/// A one-domain hierarchy is the paper's machine: the hierarchy path
/// must reproduce `predict_threaded` bit for bit, every model, every
/// thread count.
#[test]
fn flat_hierarchy_is_bitwise_predict_threaded() {
    prop::run("flat hierarchy equivalence", 60, |rng, size| {
        let heavy = rng.bool();
        let csr = random_csr(rng, size.max(2), heavy);
        let machine = MachineProfile {
            bandwidth: rng.f64_in(1e9, 5e10),
            l1_bytes: 32 << 10,
            llc_bytes: 8 << 20,
        };
        let profile = KernelProfile::uniform(rng.f64_in(1e-10, 1e-8), rng.f64_in(0.1, 1.0));
        let h = BandwidthHierarchy::flat(machine.bandwidth);
        for model in [Model::Mem, Model::MemComp, Model::Overlap] {
            for threads in 1..=5 {
                let flat = predict_threaded(model, &csr, &Config::CSR, threads, &machine, &profile);
                let hier = predict_threaded_hierarchy(
                    model,
                    &csr,
                    &Config::CSR,
                    threads,
                    &machine,
                    &profile,
                    &h,
                    None,
                    None,
                );
                assert!(
                    flat == hier || (flat.is_nan() && hier.is_nan()),
                    "{model:?} t={threads}: {flat} != {hier}"
                );
            }
        }
    });
}

/// Pin failures must degrade, not corrupt: a pool whose cores cannot be
/// pinned (absurd ids) computes bitwise-correct results and reports the
/// unpinned state per strip.
#[test]
fn unpinnable_pool_is_bitwise_and_reports_unpinned_strips() {
    let coo = Coo::from_triplets(
        40,
        40,
        (0..40)
            .flat_map(|i| [(i, i, 1.0 + i as f64), (i, (i * 7) % 40, 0.5)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let csr = Csr::from_coo(&coo);
    let x: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
    let pool = SpmvPool::from_csr_placed(
        &csr,
        2,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        Placement::pinned(PinPolicy::Cores(vec![1 << 20, (1 << 20) + 1])),
    );
    assert_eq!(pool.spmv(&x), csr.spmv(&x));
    let _ = pool.spmv(&x);
    for report in pool.strip_reports() {
        assert_eq!(report.pinned, Some(false), "absurd cores cannot pin");
    }
}

/// Oversubscribed pin policies surface in the serving report: one
/// warning line per affected matrix, none when placement is healthy.
#[test]
fn engine_report_warns_on_oversubscribed_pools() {
    let csr = Csr::from_coo(
        &Coo::from_triplets(16, 16, (0..16).map(|i| (i, i, 2.0)).collect::<Vec<_>>()).unwrap(),
    );
    let registry = Arc::new(Registry::new());
    // Two workers forced onto one core: oversubscribed.
    registry.publish(
        MatrixId(1),
        PreparedMatrix::from_config_pooled(Config::CSR, &csr, 2, PinPolicy::Cores(vec![0])),
    );
    // Healthy single-thread direct backend alongside.
    registry.publish(MatrixId(2), PreparedMatrix::from_config(Config::CSR, &csr));
    let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());
    let report = engine.report();
    assert_eq!(report.warnings.len(), 1, "exactly the pooled matrix warns");
    assert!(
        report.warnings[0].contains("oversubscribes"),
        "warning should name the condition: {}",
        report.warnings[0]
    );

    // Domain-spread placement over a fake 2-domain topology with enough
    // cores is healthy: no warnings.
    let topology = Topology::from_domains(vec![vec![0], vec![1]]);
    let registry2 = Arc::new(Registry::<f64>::new());
    registry2.publish(
        MatrixId(1),
        PreparedMatrix::from_config_pooled_placed(
            Config::CSR,
            &csr,
            2,
            Placement::domain_aware(topology),
        ),
    );
    let engine2 = ServeEngine::new(Arc::clone(&registry2), EngineOptions::default());
    assert!(engine2.report().warnings.is_empty());
}
