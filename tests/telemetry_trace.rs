//! End-to-end trace validation: record real nested spans across two OS
//! threads through the public facade, export chrome-trace JSON, parse it
//! back with the in-repo JSON parser, and check the schema — phase tags,
//! time ordering, span nesting, and thread ids. Plus hand-computed
//! checks on the prediction-residual tracker that `modeleval` feeds.

use blocked_spmv::telemetry::{self, json::Value};
use std::sync::Mutex;

/// Telemetry state is process-global; serialize tests and leave
/// recording disabled on exit.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn spin_ns(ns: u64) {
    let t0 = std::time::Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[test]
fn exported_chrome_trace_is_schema_valid() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    telemetry::set_enabled(true);
    telemetry::clear();

    // Nested spans on this thread; a third span on a second thread.
    {
        let _outer = telemetry::span_with("trace.outer", 11);
        spin_ns(20_000);
        {
            let _inner = telemetry::span_with("trace.inner", 22);
            spin_ns(20_000);
        }
        spin_ns(20_000);
    }
    telemetry::counter("trace.count", -3);
    telemetry::gauge("trace.gauge", 1.5);
    telemetry::instant("trace.mark", 9);
    std::thread::spawn(|| {
        let _s = telemetry::span("trace.worker");
        spin_ns(10_000);
    })
    .join()
    .unwrap();
    telemetry::set_enabled(false);

    let snap = telemetry::snapshot();
    let doc = Value::parse(&telemetry::chrome::chrome_json(&snap)).expect("exported JSON parses");
    telemetry::clear();

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), snap.events.len());
    assert_eq!(events.len(), 6, "outer+inner+worker spans, C, C, i");

    // Every event carries the common schema; ts is ascending (snapshot
    // order is (ts, tid)); pid is the fixed process id.
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        assert!(e.get("name").and_then(Value::as_str).is_some());
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        assert!(matches!(ph, "X" | "C" | "i"), "unknown phase {ph}");
        assert_eq!(e.get("pid").and_then(Value::as_f64), Some(1.0));
        assert!(e.get("tid").and_then(Value::as_f64).is_some());
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        assert!(ts >= 0.0 && ts >= last_ts, "ts went backwards: {ts}");
        last_ts = ts;
        if ph == "X" {
            assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }

    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no event named {name}"))
    };
    let interval = |e: &Value| {
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        let dur = e.get("dur").and_then(Value::as_f64).unwrap();
        (ts, ts + dur)
    };

    // Nesting: inner strictly inside outer (0.01 us slack for the
    // 3-decimal microsecond rendering), on the same thread.
    let (outer, inner) = (find("trace.outer"), find("trace.inner"));
    let (o0, o1) = interval(outer);
    let (i0, i1) = interval(inner);
    assert!(
        o0 - 0.01 <= i0 && i1 <= o1 + 0.01,
        "inner [{i0}, {i1}] escapes outer [{o0}, {o1}]"
    );
    let tid_of = |e: &Value| e.get("tid").and_then(Value::as_f64).unwrap();
    assert_eq!(tid_of(outer), tid_of(inner));

    // The spawned thread's span landed on a different ring/tid.
    assert_ne!(tid_of(find("trace.worker")), tid_of(outer));

    // Args carry the instrumentation payloads.
    let arg_of = |e: &Value| {
        e.get("args")
            .and_then(|a| a.get("arg"))
            .and_then(Value::as_f64)
            .unwrap()
    };
    assert_eq!(arg_of(outer), 11.0);
    assert_eq!(arg_of(inner), 22.0);
    assert_eq!(
        find("trace.count")
            .get("args")
            .and_then(|a| a.get("delta"))
            .and_then(Value::as_f64),
        Some(-3.0)
    );
    assert_eq!(
        find("trace.gauge")
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Value::as_f64),
        Some(1.5)
    );
    assert_eq!(find("trace.mark").get("ph").and_then(Value::as_str), Some("i"));

    // Snapshot bookkeeping made it into otherData.
    let other = doc.get("otherData").expect("otherData");
    assert_eq!(other.get("dropped").and_then(Value::as_f64), Some(0.0));
    assert!(other.get("threads").and_then(Value::as_f64).unwrap() >= 2.0);
}

#[test]
fn residual_tracker_matches_hand_computed_stats() {
    use blocked_spmv::telemetry::residual::{ResidualKey, ResidualTracker};

    let tracker = ResidualTracker::new();
    let key = ResidualKey {
        format: "BCSR".to_string(),
        shape: "2x3".to_string(),
        kernel: "scalar".to_string(),
        model: "MEM".to_string(),
    };
    // Two clean pairs: rel errors +1.0 and -0.5.
    tracker.record(&key, 2.0, 1.0);
    tracker.record(&key, 0.5, 1.0);
    // Garbage pairs the tracker must ignore: non-positive or non-finite
    // measured time, non-finite prediction.
    tracker.record(&key, 1.0, 0.0);
    tracker.record(&key, 1.0, -3.0);
    tracker.record(&key, 1.0, f64::NAN);
    tracker.record(&key, f64::INFINITY, 1.0);

    let s = tracker.stats(&key).expect("stats for key");
    assert_eq!(s.n, 2);
    assert!((s.sum_predicted - 2.5).abs() < 1e-12);
    assert!((s.sum_measured - 2.0).abs() < 1e-12);
    assert!((s.mean_rel() - 0.25).abs() < 1e-12, "mean_rel {}", s.mean_rel());
    assert!(
        (s.mean_abs_rel() - 0.75).abs() < 1e-12,
        "mean_abs_rel {}",
        s.mean_abs_rel()
    );
    assert!((s.max_abs_rel - 1.0).abs() < 1e-12);
    assert!((s.norm_pred() - 1.25).abs() < 1e-12, "norm_pred {}", s.norm_pred());

    // A second, accurate key: 2% over-prediction.
    let good = ResidualKey {
        format: "CSR".to_string(),
        shape: "-".to_string(),
        kernel: "scalar".to_string(),
        model: "OVERLAP".to_string(),
    };
    tracker.record(&good, 1.02, 1.0);
    // len() counts recorded pairs across keys, not keys.
    assert_eq!(tracker.len(), 3);

    // Rendered table: worst mean_abs_rel first, outliers (>30%) flagged.
    let table = tracker.render();
    let bcsr_at = table.find("BCSR").expect("BCSR row");
    let csr_at = table.find("OVERLAP").expect("CSR row");
    assert!(bcsr_at < csr_at, "rows not sorted worst-first:\n{table}");
    assert!(table.contains("MISS"), "75% mean error not flagged:\n{table}");

    tracker.reset();
    assert!(tracker.is_empty());
    assert!(tracker.stats(&key).is_none());
}
