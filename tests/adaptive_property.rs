//! Property test for the tuner's decision rule: whatever the residuals,
//! clocks, and samplers do, the configuration the tuner publishes is
//! *exactly* what `select_extended_measured` ranks first under the same
//! measured inputs — the online loop adds detection and swap mechanics,
//! never its own opinion about the ranking.

#[path = "support/prop.rs"]
mod prop;

use std::sync::Arc;

use blocked_spmv::core::{Coo, Csr};
use blocked_spmv::model::{
    candidate_configs_extended, select_extended, select_extended_measured, BlockTimes, Config,
    KernelProfile, MachineProfile, MeasuredOverrides, Model,
};
use blocked_spmv::serve::{residual_key_for, MatrixId, PreparedMatrix, Registry};
use blocked_spmv::tune::{
    CannedSampler, DetectorConfig, ManualClock, TuneOptions, Tuner, WatchSpec,
};

fn random_model(rng: &mut prop::Rng) -> Model {
    match rng.index(3) {
        0 => Model::Mem,
        1 => Model::MemComp,
        _ => Model::Overlap,
    }
}

fn random_machine(rng: &mut prop::Rng) -> MachineProfile {
    MachineProfile {
        bandwidth: rng.f64_in(1e9, 5e10),
        l1_bytes: 16 << (10 + rng.index(3)),
        llc_bytes: 1 << (20 + rng.index(4)),
    }
}

/// Drives one full stale → rerank → swap episode through a detached
/// tuner and returns the configuration it published.
fn tuner_choice(
    csr: &Arc<Csr<f64>>,
    model: Model,
    machine: MachineProfile,
    profile: &KernelProfile,
    sampler: CannedSampler,
) -> Config {
    let registry = Arc::new(Registry::new());
    let id = MatrixId(1);
    registry.publish(id, PreparedMatrix::from_config(Config::CSR, csr));
    let tuner = Tuner::new(
        Arc::clone(&registry),
        None,
        Arc::new(ManualClock::new(0)),
        Box::new(sampler),
        TuneOptions::default(),
    );
    let spec = WatchSpec {
        detector: DetectorConfig {
            window: 1,
            consecutive: 1,
            min_samples: 1,
            ..DetectorConfig::default()
        },
        ..WatchSpec::new(Arc::clone(csr), model, machine, profile.clone())
    };
    assert!(tuner.watch(id, spec));

    let key = residual_key_for(Config::CSR, model);
    tuner.residuals().record_for(id.0, &key, 1e-6, 1e-3);
    tuner.run_once();
    assert!(!tuner.panicked());
    let chosen = tuner.current_config(id).expect("still watched");
    assert_eq!(
        registry.get(id).expect("still published").config(),
        chosen,
        "published config and tuner bookkeeping must agree"
    );
    chosen
}

/// With no measured overrides at all, the swap target is the plain
/// `select_extended` winner.
#[test]
fn tuner_choice_matches_select_extended_without_overrides() {
    prop::run("choice_plain", 60, |rng, size| {
        let dim = 12 + size * 3;
        let (n, m, trips) = prop::sparse_triplets(rng, dim, dim, dim * 6, -4.0, 4.0);
        let csr = Arc::new(Csr::from_coo(
            &Coo::from_triplets(n, m, trips).expect("triplets in range"),
        ));
        let model = random_model(rng);
        let machine = random_machine(rng);
        let profile = KernelProfile::uniform(rng.f64_in(1e-10, 1e-8), rng.f64_in(0.0, 1.0));

        let chosen = tuner_choice(&csr, model, machine, &profile, CannedSampler::new());
        let expected = select_extended(model, &csr, &machine, &profile, true);
        assert_eq!(chosen, expected.config);
    });
}

/// With a canned live bandwidth and re-profiled suspect kernels, the
/// swap target is the `select_extended_measured` winner under exactly
/// those overrides. The tuner re-profiles only the suspect keys (the
/// incumbent's kernel), so the expected overrides are the sampler's
/// rows filtered the same way.
#[test]
fn tuner_choice_matches_select_extended_measured_with_overrides() {
    prop::run("choice_measured", 60, |rng, size| {
        let dim = 12 + size * 3;
        let (n, m, trips) = prop::sparse_triplets(rng, dim, dim, dim * 6, -4.0, 4.0);
        let csr = Arc::new(Csr::from_coo(
            &Coo::from_triplets(n, m, trips).expect("triplets in range"),
        ));
        let model = random_model(rng);
        let machine = random_machine(rng);
        let profile = KernelProfile::uniform(rng.f64_in(1e-10, 1e-8), rng.f64_in(0.0, 1.0));

        // Canned measurements: a perturbed live bandwidth (sometimes),
        // and re-profiled times for a random subset of candidate keys.
        let bandwidth = if rng.bool() {
            Some(machine.bandwidth * rng.f64_in(0.2, 5.0))
        } else {
            None
        };
        let mut rows: Vec<(_, BlockTimes)> = Vec::new();
        for config in candidate_configs_extended(model, true) {
            if rng.index(3) == 0 {
                let key = config.kernel_key();
                if rows.iter().all(|(k, _)| *k != key) {
                    rows.push((
                        key,
                        BlockTimes {
                            t_b: rng.f64_in(1e-10, 1e-8),
                            nof: rng.f64_in(0.0, 1.0),
                        },
                    ));
                }
            }
        }

        let mut sampler = CannedSampler::new().with_kernels(rows.clone());
        if let Some(bw) = bandwidth {
            sampler = sampler.with_bandwidth(bw);
        }
        let chosen = tuner_choice(&csr, model, machine, &profile, sampler);

        // The incumbent at stale time is CSR, so only its kernel key is
        // re-profiled; everything else keeps its profiled values.
        let suspect = Config::CSR.kernel_key();
        let overrides = MeasuredOverrides {
            bandwidth,
            kernels: rows.into_iter().filter(|(k, _)| *k == suspect).collect(),
        };
        let expected =
            select_extended_measured(model, &csr, &machine, &profile, true, &overrides);
        assert_eq!(chosen, expected.config);
    });
}
