//! Property tests for the multithreaded driver: partitions are valid for
//! arbitrary weights, and parallel SpMV equals sequential SpMV for every
//! format and thread count.
//!
//! The deterministic tests at the bottom cover the persistent worker
//! pool ([`SpmvPool`]): pooled results are bit-identical to serial
//! `Csr::spmv` for every format, and the pool really does reuse its
//! threads across thousands of calls instead of respawning.
//!
//! The property tests run on the in-repo seeded harness
//! (`tests/support/prop.rs`), not proptest, so the suite builds and
//! shrinks offline.

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::parallel::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, partition_units, ParallelSpmv,
    PinPolicy, SpmvPool,
};

#[path = "support/prop.rs"]
mod prop;
use prop::Rng;

/// Generator: a random sparse matrix as (rows, cols, triplets), scaled
/// by the harness `size`.
fn gen_matrix(rng: &mut Rng, size: usize) -> (usize, usize, Vec<(usize, usize, f64)>) {
    let (n_max, m_max) = prop::scaled_dims(size, 40);
    prop::sparse_triplets(rng, n_max, m_max, 5 * size, -3.0, 3.0)
}

#[test]
fn partition_is_contiguous_and_complete() {
    prop::run("partition_is_contiguous_and_complete", 48, |rng, size| {
        let len = rng.usize_in(0, 6 * size + 2);
        let weights = rng.u64_vec(len, 0, 1000);
        let parts = rng.usize_in(1, 9);
        let ranges = partition_units(&weights, parts);
        assert_eq!(ranges.len(), parts);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, weights.len());
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    });
}

#[test]
fn partition_balances_within_one_max_unit() {
    prop::run("partition_balances_within_one_max_unit", 48, |rng, size| {
        let len = rng.usize_in(1, 5 * size + 2);
        let weights = rng.u64_vec(len, 1, 100);
        let parts = rng.usize_in(1, 5);
        let ranges = partition_units(&weights, parts);
        let total: u64 = weights.iter().sum();
        let ideal = total as f64 / parts as f64;
        let max_w = *weights.iter().max().unwrap();
        for r in &ranges {
            let w: u64 = weights[r.clone()].iter().sum();
            // The greedy scheme can overshoot the ideal share by at most
            // one unit's weight (the final part absorbs the slack).
            assert!(
                (w as f64) <= ideal + max_w as f64 + 1e-9,
                "part weight {w} vs ideal {ideal} (max unit {max_w})"
            );
        }
    });
}

#[test]
fn parallel_csr_equals_sequential() {
    prop::run("parallel_csr_equals_sequential", 48, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let threads = rng.usize_in(1, 6);
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let par = ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
        assert_eq!(par.spmv(&x), csr.spmv(&x));
    });
}

#[test]
fn parallel_bcsr_equals_sequential() {
    prop::run("parallel_bcsr_equals_sequential", 48, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let threads = rng.usize_in(1, 5);
        let space = BlockShape::search_space();
        let shape = space[rng.index(space.len())];
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        let par = ParallelSpmv::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
        );
        let got = par.spmv(&x);
        for (a, g) in want.iter().zip(&got) {
            assert!((a - g).abs() < 1e-9);
        }
        // Strips must respect block-row alignment.
        for rows in par.strip_rows() {
            assert_eq!(rows.start % shape.rows(), 0);
        }
    });
}

#[test]
fn parallel_bcsd_equals_sequential() {
    prop::run("parallel_bcsd_equals_sequential", 48, |rng, size| {
        let (n, m, entries) = gen_matrix(rng, size);
        let threads = rng.usize_in(1, 5);
        let b = rng.usize_in(2, 9);
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        let par = ParallelSpmv::from_csr(&csr, threads, &bcsd_unit_weights(&csr, b), b, |s| {
            Bcsd::from_csr(s, b, KernelImpl::Simd)
        });
        let got = par.spmv(&x);
        for (a, g) in want.iter().zip(&got) {
            assert!((a - g).abs() < 1e-9);
        }
    });
}

#[test]
fn padded_weights_dominate_nnz_weights() {
    prop::run("padded_weights_dominate_nnz_weights", 48, |rng, size| {
        // Padding-aware weights are always >= the raw nonzero count of
        // the unit (§V-A accounts for "the extra zero elements").
        let (n, m, entries) = gen_matrix(rng, size);
        let space = BlockShape::search_space();
        let shape = space[rng.index(space.len())];
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let w = bcsr_unit_weights(&csr, shape);
        let r = shape.rows();
        for (rb, &wb) in w.iter().enumerate() {
            let nnz: u64 = (rb * r..((rb + 1) * r).min(n))
                .map(|i| csr.row_nnz(i) as u64)
                .sum();
            assert!(wb >= nnz, "unit {rb}: weight {wb} < nnz {nnz}");
        }
    });
}

// ---------------------------------------------------------------------------
// Deterministic pool tests: exact equivalence and thread persistence.
// ---------------------------------------------------------------------------

/// Deterministic sparse fixture (xorshift-seeded, strictly positive
/// values so every format sums the same terms and results compare
/// bitwise equal).
fn pool_fixture(n: usize, m: usize, seed: u64) -> Csr<f64> {
    let mut coo = Coo::new(n, m);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n {
        for _ in 0..1 + (next() as usize) % 6 {
            let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
        }
    }
    Csr::from_coo(&coo)
}

/// Per-unit raw nonzero weights for the decomposed (padding-free)
/// formats, aligned to `unit` rows.
fn nnz_unit_weights(csr: &Csr<f64>, unit: usize) -> Vec<u64> {
    let mut w = vec![0u64; csr.n_rows().div_ceil(unit)];
    for i in 0..csr.n_rows() {
        w[i / unit] += csr.row_nnz(i) as u64;
    }
    w
}

/// Asserts that a pool built over `build` strips reproduces serial
/// `Csr::spmv` bit for bit at 1, 2, and 4 threads.
fn assert_pool_matches_csr<F, B>(csr: &Csr<f64>, weights: &[u64], unit: usize, build: B)
where
    F: SpMv<f64> + SpMvMulti<f64> + Send + 'static,
    B: Fn(&Csr<f64>) -> F,
{
    let x: Vec<f64> = (0..csr.n_cols())
        .map(|i| 1.0 + (i % 4) as f64 * 0.5)
        .collect();
    let want = csr.spmv(&x);
    for threads in [1usize, 2, 4] {
        let pool = SpmvPool::from_csr(csr, threads, weights, unit, &build, PinPolicy::None);
        // Twice: the second call reuses the already-hot epoch barrier.
        assert_eq!(pool.spmv(&x), want, "{threads} threads, first call");
        assert_eq!(pool.spmv(&x), want, "{threads} threads, second call");
    }
}

#[test]
fn pool_csr_is_bit_identical_to_serial() {
    let csr = pool_fixture(97, 53, 0xABCD);
    assert_pool_matches_csr(&csr, &csr_unit_weights(&csr), 1, Csr::clone);
}

#[test]
fn pool_bcsr_is_bit_identical_to_serial() {
    let csr = pool_fixture(97, 53, 0xBEEF);
    let shape = BlockShape::new(2, 3).unwrap();
    assert_pool_matches_csr(&csr, &bcsr_unit_weights(&csr, shape), shape.rows(), |s| {
        Bcsr::from_csr(s, shape, KernelImpl::Scalar)
    });
}

#[test]
fn pool_bcsr_dec_is_bit_identical_to_serial() {
    let csr = pool_fixture(90, 60, 0xC0FFEE);
    let shape = BlockShape::new(2, 2).unwrap();
    assert_pool_matches_csr(&csr, &nnz_unit_weights(&csr, shape.rows()), shape.rows(), |s| {
        BcsrDec::from_csr(s, shape, KernelImpl::Scalar)
    });
}

#[test]
fn pool_bcsd_is_bit_identical_to_serial() {
    let csr = pool_fixture(97, 53, 0xD00D);
    let b = 4;
    assert_pool_matches_csr(&csr, &bcsd_unit_weights(&csr, b), b, |s| {
        Bcsd::from_csr(s, b, KernelImpl::Scalar)
    });
}

#[test]
fn pool_bcsd_dec_is_bit_identical_to_serial() {
    let csr = pool_fixture(91, 47, 0xFACE);
    let b = 3;
    assert_pool_matches_csr(&csr, &nnz_unit_weights(&csr, b), b, |s| {
        BcsdDec::from_csr(s, b, KernelImpl::Scalar)
    });
}

#[test]
fn pool_vbl_is_bit_identical_to_serial() {
    let csr = pool_fixture(83, 59, 0xFEED);
    assert_pool_matches_csr(&csr, &csr_unit_weights(&csr), 1, |s| {
        Vbl::from_csr(s, KernelImpl::Scalar)
    });
}

#[test]
fn pool_simd_kernels_match_csr_closely() {
    // The SIMD kernels may reassociate the per-row sums, so they get the
    // tolerance check the scalar kernels do not need.
    let csr = pool_fixture(120, 64, 0x5EED);
    let shape = BlockShape::new(3, 2).unwrap();
    let x: Vec<f64> = (0..csr.n_cols())
        .map(|i| 1.0 + (i % 4) as f64 * 0.5)
        .collect();
    let want = csr.spmv(&x);
    for threads in [1usize, 2, 4] {
        let pool = SpmvPool::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Simd),
            PinPolicy::None,
        );
        let got = pool.spmv(&x);
        for (a, g) in want.iter().zip(&got) {
            assert!((a - g).abs() < 1e-9, "{threads} threads: {a} vs {g}");
        }
    }
}

#[test]
fn pool_survives_a_thousand_calls_without_respawning() {
    let csr = pool_fixture(64, 64, 0x1CE);
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 3) as f64).collect();
    let want = csr.spmv(&x);
    let pool = SpmvPool::from_csr(
        &csr,
        4,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::None,
    );
    for call in 0..1000 {
        assert_eq!(pool.spmv(&x), want, "call {call}");
    }
    assert_eq!(pool.iterations(), 1000);
    // Every strip must have been served by exactly one OS thread for the
    // whole run: the pool never respawned a worker.
    let ids = pool.worker_thread_ids();
    assert_eq!(ids.len(), pool.n_workers());
    for (strip, ids) in ids.iter().enumerate() {
        assert_eq!(ids.len(), 1, "strip {strip} saw threads {ids:?}");
    }
    for report in pool.strip_reports() {
        assert!(!report.respawned);
        assert_eq!(report.iterations, 1000);
    }
}
