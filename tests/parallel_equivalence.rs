//! Property tests for the multithreaded driver: partitions are valid for
//! arbitrary weights, and parallel SpMV equals sequential SpMV for every
//! format and thread count.

use blocked_spmv::core::{Coo, Csr, SpMv};
use blocked_spmv::formats::{Bcsd, Bcsr};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::parallel::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, partition_units, ParallelSpmv,
};
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..40, 1usize..40).prop_flat_map(|(n, m)| {
        let entry = (0..n, 0..m, -3.0f64..3.0);
        proptest::collection::vec(entry, 0..160)
            .prop_map(move |entries| (n, m, entries))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_is_contiguous_and_complete(
        weights in proptest::collection::vec(0u64..1000, 0..200),
        parts in 1usize..9,
    ) {
        let ranges = partition_units(&weights, parts);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, weights.len());
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn partition_balances_within_one_max_unit(
        weights in proptest::collection::vec(1u64..100, 1..150),
        parts in 1usize..5,
    ) {
        let ranges = partition_units(&weights, parts);
        let total: u64 = weights.iter().sum();
        let ideal = total as f64 / parts as f64;
        let max_w = *weights.iter().max().unwrap();
        for r in &ranges {
            let w: u64 = weights[r.clone()].iter().sum();
            // The greedy scheme can overshoot the ideal share by at most
            // one unit's weight (the final part absorbs the slack).
            prop_assert!(
                (w as f64) <= ideal + max_w as f64 + 1e-9,
                "part weight {} vs ideal {} (max unit {})", w, ideal, max_w
            );
        }
    }

    #[test]
    fn parallel_csr_equals_sequential(
        (n, m, entries) in matrix_strategy(),
        threads in 1usize..6,
    ) {
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let par = ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
        prop_assert_eq!(par.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn parallel_bcsr_equals_sequential(
        (n, m, entries) in matrix_strategy(),
        threads in 1usize..5,
        shape_idx in 0usize..19,
    ) {
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let shape = BlockShape::search_space()[shape_idx];
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        let par = ParallelSpmv::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
        );
        let got = par.spmv(&x);
        for (a, g) in want.iter().zip(&got) {
            prop_assert!((a - g).abs() < 1e-9);
        }
        // Strips must respect block-row alignment.
        for rows in par.strip_rows() {
            prop_assert_eq!(rows.start % shape.rows(), 0);
        }
    }

    #[test]
    fn parallel_bcsd_equals_sequential(
        (n, m, entries) in matrix_strategy(),
        threads in 1usize..5,
        b in 2usize..9,
    ) {
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let x: Vec<f64> = (0..m).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        let par = ParallelSpmv::from_csr(
            &csr,
            threads,
            &bcsd_unit_weights(&csr, b),
            b,
            |s| Bcsd::from_csr(s, b, KernelImpl::Simd),
        );
        let got = par.spmv(&x);
        for (a, g) in want.iter().zip(&got) {
            prop_assert!((a - g).abs() < 1e-9);
        }
    }

    #[test]
    fn padded_weights_dominate_nnz_weights(
        (n, m, entries) in matrix_strategy(),
        shape_idx in 0usize..19,
    ) {
        // Padding-aware weights are always >= the raw nonzero count of
        // the unit (§V-A accounts for "the extra zero elements").
        let csr = Csr::from_coo(&Coo::from_triplets(n, m, entries).unwrap());
        let shape = BlockShape::search_space()[shape_idx];
        let w = bcsr_unit_weights(&csr, shape);
        let r = shape.rows();
        for (rb, &wb) in w.iter().enumerate() {
            let nnz: u64 = (rb * r..((rb + 1) * r).min(n))
                .map(|i| csr.row_nnz(i) as u64)
                .sum();
            prop_assert!(wb >= nnz, "unit {}: weight {} < nnz {}", rb, wb, nnz);
        }
    }
}
