#!/usr/bin/env bash
# Tier-1 verify loop.
#
# Preferred path: `cargo build` + `cargo clippy -D warnings` + `cargo
# test` for the whole workspace.
# Sandboxed containers often cannot reach the crates.io registry, and
# cargo needs it even for `--offline` builds here (no vendored deps);
# when cargo fails this script falls back to hand-compiling the crate
# chain with rustc and running every unit-test binary, every integration
# test (the property suites use the in-repo harness in tests/support/,
# so they run offline too), and the runtime example surfaces.
# See docs/TESTING.md for what each tier covers.
#
# Usage: scripts/check.sh            # auto-detect
#        SPMV_CHECK_OFFLINE=1 scripts/check.sh   # force the fallback

set -u
cd "$(dirname "$0")/.."

if [ -z "${SPMV_CHECK_OFFLINE:-}" ]; then
    if cargo build --release --workspace \
        && cargo clippy --workspace --all-targets -- -D warnings \
        && cargo test --workspace --quiet \
        && cargo test -p spmv-telemetry --features disabled --quiet \
        && cargo test -p spmv-serve --features telemetry-disabled --quiet \
        && cargo test -p spmv-tune --features telemetry-disabled --quiet \
        && cargo run --release --bin serve_load -- \
            --requests 200 --seed 7 --out target/serving-smoke.txt \
        && test -s target/serving-smoke.txt \
        && cargo run --release --bin serve_adapt -- \
            --nodes 1200 --out target/adaptive-smoke.txt \
        && test -s target/adaptive-smoke.txt \
        && cargo run --release --bin numa_scale -- \
            --flat --threads 2 --n 4000 --reps 5 --trials 2 --out target/numa-smoke.txt \
        && test -s target/numa-smoke.txt \
        && cargo run --release --bin masked -- \
            --n 4000 --blocks 4 --reps 2 --trials 1 --out target/masked-smoke.txt \
        && test -s target/masked-smoke.txt \
        && cargo run --release --bin sellc -- \
            --n 20000 --reps 2 --trials 1 --out target/sellc-smoke.txt \
        && test -s target/sellc-smoke.txt; then
        echo "check.sh: cargo build + clippy + test OK"
        exit 0
    fi
    echo "check.sh: cargo path failed -- falling back to offline rustc chain" >&2
fi

set -e
B="${SPMV_CHECK_DIR:-target/offline-check}"
mkdir -p "$B"

# Minimal stand-in for the `rand` crate: only the surface this workspace
# uses (StdRng/SmallRng + seed_from_u64 + gen/gen_range/gen_bool).
# Deterministic splitmix64, so generated fixtures are stable.
cat > "$B/rand_stub.rs" <<'EOF'
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}
pub mod rngs {
    pub struct SmallRng(pub u64);
    pub struct StdRng(pub u64);
}
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self { Self(seed ^ 0xA076_1D64_78BD_642F) }
}
impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self { Self(seed ^ 0xE703_7ED1_A0B4_28DB) }
}
pub trait Sample { fn from_u64(v: u64) -> Self; }
impl Sample for f64 { fn from_u64(v: u64) -> f64 { (v >> 11) as f64 / (1u64 << 53) as f64 } }
impl Sample for u64 { fn from_u64(v: u64) -> u64 { v } }
pub trait Rng {
    fn next_u64(&mut self) -> u64;
    fn gen<T: Sample>(&mut self) -> T { T::from_u64(self.next_u64()) }
    fn gen_range(&mut self, r: core::ops::Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        r.start + (self.next_u64() % (r.end - r.start) as u64) as usize
    }
    fn gen_bool(&mut self, p: f64) -> bool { self.gen::<f64>() < p }
}
impl Rng for rngs::SmallRng { fn next_u64(&mut self) -> u64 { splitmix(&mut self.0) } }
impl Rng for rngs::StdRng { fn next_u64(&mut self) -> u64 { splitmix(&mut self.0) } }
EOF

R="rustc --edition 2021 -O -L dependency=$B"

echo "== building crate chain (rustc, no cargo)"
$R --crate-type lib --crate-name rand "$B/rand_stub.rs" -o "$B/librand.rlib"
$R --crate-type lib --crate-name spmv_telemetry crates/telemetry/src/lib.rs \
    -o "$B/libspmv_telemetry.rlib"
# The `disabled` feature must keep compiling (zero-cost opt-out path);
# metadata-only so the stray rlib never shadows the real one in $B.
$R --crate-type lib --crate-name spmv_telemetry --cfg 'feature="disabled"' \
    --emit=metadata crates/telemetry/src/lib.rs -o /dev/null
$R --crate-type lib --crate-name spmv_core crates/core/src/lib.rs -o "$B/libspmv_core.rlib"
$R --crate-type lib --crate-name spmv_kernels crates/kernels/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" -o "$B/libspmv_kernels.rlib"
$R --crate-type lib --crate-name spmv_formats crates/formats/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" -o "$B/libspmv_formats.rlib"
$R --crate-type lib --crate-name spmv_gen crates/gen/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern rand="$B/librand.rlib" -o "$B/libspmv_gen.rlib"
$R --crate-type lib --crate-name spmv_parallel crates/parallel/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libspmv_parallel.rlib"
$R --crate-type lib --crate-name spmv_model crates/model/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libspmv_model.rlib"
$R --crate-type lib --crate-name spmv_serve crates/serve/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libspmv_serve.rlib"
$R --crate-type lib --crate-name spmv_tune crates/tune/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_serve="$B/libspmv_serve.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libspmv_tune.rlib"
$R --crate-type lib --crate-name spmv_bench crates/bench/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libspmv_bench.rlib"
$R --crate-type lib --crate-name blocked_spmv src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_bench="$B/libspmv_bench.rlib" \
    --extern spmv_serve="$B/libspmv_serve.rlib" \
    --extern spmv_tune="$B/libspmv_tune.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/libblocked_spmv.rlib"

# The serve crate's `telemetry-disabled` feature maps to the telemetry
# crate's `disabled` feature for the whole graph (cargo would unify
# them), so its offline twin rebuilds the telemetry-dependent chain
# against a disabled-telemetry rlib in a separate directory.
BD="$B/disabled"
mkdir -p "$BD"
RD="rustc --edition 2021 -O -L dependency=$BD -L dependency=$B"
$RD --crate-type lib --crate-name spmv_telemetry --cfg 'feature="disabled"' \
    crates/telemetry/src/lib.rs -o "$BD/libspmv_telemetry.rlib"
$RD --crate-type lib --crate-name spmv_parallel crates/parallel/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libspmv_parallel.rlib"
$RD --crate-type lib --crate-name spmv_model crates/model/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libspmv_model.rlib"
$RD --crate-type lib --crate-name spmv_serve crates/serve/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libspmv_serve.rlib"
$RD --crate-type lib --crate-name spmv_tune crates/tune/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_serve="$BD/libspmv_serve.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libspmv_tune.rlib"
$RD --crate-type lib --crate-name spmv_bench crates/bench/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libspmv_bench.rlib"
$RD --crate-type lib --crate-name blocked_spmv src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_bench="$BD/libspmv_bench.rlib" \
    --extern spmv_serve="$BD/libspmv_serve.rlib" \
    --extern spmv_tune="$BD/libspmv_tune.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/libblocked_spmv.rlib"

if command -v clippy-driver > /dev/null; then
    echo "== clippy (offline: clippy-driver per crate, -D warnings)"
    CL="clippy-driver --edition 2021 -L dependency=$B -D warnings --emit=metadata -o /dev/null --crate-type lib"
    $CL --crate-name spmv_telemetry crates/telemetry/src/lib.rs
    $CL --crate-name spmv_telemetry --cfg 'feature="disabled"' crates/telemetry/src/lib.rs
    $CL --crate-name spmv_core crates/core/src/lib.rs
    $CL --crate-name spmv_kernels crates/kernels/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib"
    $CL --crate-name spmv_formats crates/formats/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib"
    $CL --crate-name spmv_gen crates/gen/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" --extern rand="$B/librand.rlib"
    $CL --crate-name spmv_parallel crates/parallel/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_formats="$B/libspmv_formats.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
    $CL --crate-name spmv_model crates/model/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_formats="$B/libspmv_formats.rlib" \
        --extern spmv_gen="$B/libspmv_gen.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
    $CL --crate-name spmv_serve crates/serve/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_formats="$B/libspmv_formats.rlib" \
        --extern spmv_model="$B/libspmv_model.rlib" \
        --extern spmv_parallel="$B/libspmv_parallel.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
    $CL --crate-name spmv_tune crates/tune/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_model="$B/libspmv_model.rlib" \
        --extern spmv_parallel="$B/libspmv_parallel.rlib" \
        --extern spmv_serve="$B/libspmv_serve.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
    $CL --crate-name spmv_bench crates/bench/src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_formats="$B/libspmv_formats.rlib" \
        --extern spmv_gen="$B/libspmv_gen.rlib" \
        --extern spmv_model="$B/libspmv_model.rlib" \
        --extern spmv_parallel="$B/libspmv_parallel.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
    $CL --crate-name blocked_spmv src/lib.rs \
        --extern spmv_core="$B/libspmv_core.rlib" \
        --extern spmv_kernels="$B/libspmv_kernels.rlib" \
        --extern spmv_formats="$B/libspmv_formats.rlib" \
        --extern spmv_gen="$B/libspmv_gen.rlib" \
        --extern spmv_model="$B/libspmv_model.rlib" \
        --extern spmv_parallel="$B/libspmv_parallel.rlib" \
        --extern spmv_bench="$B/libspmv_bench.rlib" \
        --extern spmv_serve="$B/libspmv_serve.rlib" \
        --extern spmv_tune="$B/libspmv_tune.rlib" \
        --extern spmv_telemetry="$B/libspmv_telemetry.rlib"
else
    echo "== clippy skipped (clippy-driver not installed)"
fi

echo "== crate unit tests"
$R --test --crate-name spmv_telemetry crates/telemetry/src/lib.rs -o "$B/t_telemetry"
"$B/t_telemetry" -q
# The `disabled` feature config must also pass its (feature-gated) tests,
# not just compile -- cargo runs this config's doctests in the online path.
$R --test --crate-name spmv_telemetry --cfg 'feature="disabled"' \
    crates/telemetry/src/lib.rs -o "$B/t_telemetry_disabled"
"$B/t_telemetry_disabled" -q
$R --test --crate-name spmv_core crates/core/src/lib.rs -o "$B/t_core"
"$B/t_core" -q
$R --test --crate-name spmv_kernels crates/kernels/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" -o "$B/t_kernels"
"$B/t_kernels" -q
$R --test --crate-name spmv_formats crates/formats/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" -o "$B/t_formats"
"$B/t_formats" -q
$R --test --crate-name spmv_gen crates/gen/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" --extern rand="$B/librand.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" -o "$B/t_gen"
"$B/t_gen" -q
$R --test --crate-name spmv_parallel crates/parallel/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/t_parallel"
"$B/t_parallel" -q
$R --test --crate-name spmv_model crates/model/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/t_model"
"$B/t_model" -q
$R --test --crate-name spmv_serve crates/serve/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/t_serve"
"$B/t_serve" -q
# ... and the same tests against the disabled-telemetry chain.
$RD --test --crate-name spmv_serve crates/serve/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/t_serve"
"$BD/t_serve" -q
$R --test --crate-name spmv_tune crates/tune/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_serve="$B/libspmv_serve.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/t_tune"
"$B/t_tune" -q
# ... and the tuner against the disabled-telemetry chain.
$RD --test --crate-name spmv_tune crates/tune/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_model="$BD/libspmv_model.rlib" \
    --extern spmv_parallel="$BD/libspmv_parallel.rlib" \
    --extern spmv_serve="$BD/libspmv_serve.rlib" \
    --extern spmv_telemetry="$BD/libspmv_telemetry.rlib" -o "$BD/t_tune"
"$BD/t_tune" -q
$R --test --crate-name spmv_bench crates/bench/src/lib.rs \
    --extern spmv_core="$B/libspmv_core.rlib" \
    --extern spmv_kernels="$B/libspmv_kernels.rlib" \
    --extern spmv_formats="$B/libspmv_formats.rlib" \
    --extern spmv_gen="$B/libspmv_gen.rlib" \
    --extern spmv_model="$B/libspmv_model.rlib" \
    --extern spmv_parallel="$B/libspmv_parallel.rlib" \
    --extern spmv_telemetry="$B/libspmv_telemetry.rlib" -o "$B/t_bench"
"$B/t_bench" -q

echo "== integration tests (property suites use the in-repo harness)"
for t in differential_equivalence edge_cases kernel_shapes \
         extensions_integration paper_shapes compression_integration \
         format_equivalence kernel_properties model_pipeline \
         parallel_equivalence serving telemetry_pool telemetry_trace \
         adaptive_tuner adaptive_faults adaptive_property \
         numa_partition masked_equivalence sellc_equivalence; do
    $R --test "tests/$t.rs" \
        --extern blocked_spmv="$B/libblocked_spmv.rlib" \
        --extern rand="$B/librand.rlib" -o "$B/t_$t"
    "$B/t_$t" -q
done
$R --test tests/suite_integration.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" \
    --extern spmv_bench="$B/libspmv_bench.rlib" \
    --extern rand="$B/librand.rlib" -o "$B/t_suite_integration"
"$B/t_suite_integration" -q

echo "== runtime surfaces"
$R examples/parallel_scaling.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/parallel_scaling"
"$B/parallel_scaling" > /dev/null
$R examples/batched.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/batched"
"$B/batched" 0.1 > /dev/null
$R src/bin/serve_load.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/serve_load"
"$B/serve_load" --requests 200 --seed 7 --out "$B/serving-smoke.txt" > /dev/null
test -s "$B/serving-smoke.txt" || {
    echo "check.sh: serve_load smoke produced no output" >&2; exit 1; }
$R src/bin/serve_adapt.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/serve_adapt"
"$B/serve_adapt" --nodes 1200 --out "$B/adaptive-smoke.txt" > /dev/null
test -s "$B/adaptive-smoke.txt" || {
    echo "check.sh: serve_adapt smoke produced no output" >&2; exit 1; }
$R src/bin/numa_scale.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/numa_scale"
"$B/numa_scale" --flat --threads 2 --n 4000 --reps 5 --trials 2 \
    --out "$B/numa-smoke.txt" > /dev/null
test -s "$B/numa-smoke.txt" || {
    echo "check.sh: numa_scale smoke produced no output" >&2; exit 1; }
# Masked padded-vs-masked sweep smoke in both telemetry configs: the
# refactored kernel + masked format path must run end-to-end and leave
# a non-empty results file.
$R src/bin/masked.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/masked"
"$B/masked" --n 4000 --blocks 4 --reps 2 --trials 1 \
    --out "$B/masked-smoke.txt" > /dev/null
test -s "$B/masked-smoke.txt" || {
    echo "check.sh: masked smoke produced no output" >&2; exit 1; }
$RD src/bin/masked.rs \
    --extern blocked_spmv="$BD/libblocked_spmv.rlib" -o "$BD/masked"
"$BD/masked" --n 4000 --blocks 4 --reps 2 --trials 1 \
    --out "$BD/masked-smoke.txt" > /dev/null
test -s "$BD/masked-smoke.txt" || {
    echo "check.sh: masked (telemetry-disabled) smoke produced no output" >&2
    exit 1; }
# SELL-C-σ padding sweep smoke in both telemetry configs: the format +
# model + selection path must run end-to-end and leave a non-empty
# results file.
$R src/bin/sellc.rs \
    --extern blocked_spmv="$B/libblocked_spmv.rlib" -o "$B/sellc"
"$B/sellc" --n 20000 --reps 2 --trials 1 \
    --out "$B/sellc-smoke.txt" > /dev/null
test -s "$B/sellc-smoke.txt" || {
    echo "check.sh: sellc smoke produced no output" >&2; exit 1; }
$RD src/bin/sellc.rs \
    --extern blocked_spmv="$BD/libblocked_spmv.rlib" -o "$BD/sellc"
"$BD/sellc" --n 20000 --reps 2 --trials 1 \
    --out "$BD/sellc-smoke.txt" > /dev/null
test -s "$BD/sellc-smoke.txt" || {
    echo "check.sh: sellc (telemetry-disabled) smoke produced no output" >&2
    exit 1; }

echo "check.sh: offline fallback OK"
