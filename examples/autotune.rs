//! Autotuning walkthrough: model-driven format selection vs. exhaustive
//! search, on the workloads the paper's introduction motivates.
//!
//! For three structurally different matrices (a FEM matrix with natural
//! 3x3 node blocks, a multi-diagonal operator, and a power-law graph),
//! this example:
//!
//! 1. ranks the whole configuration space with each performance model,
//! 2. measures the real time of every configuration, and
//! 3. reports how far each model's pick lands from the measured optimum —
//!    the paper's *selection accuracy* metric, on live data.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use blocked_spmv::core::MatrixShape;
use blocked_spmv::gen::{random_vector, GenSpec};
use blocked_spmv::model::timing::measure_spmv;
use blocked_spmv::model::{
    profile_kernels, select, Config, MachineProfile, Model, ProfileOptions,
};

fn main() {
    let workloads: Vec<(&str, GenSpec)> = vec![
        (
            "FEM, 3 dof/node (audikw_1-like)",
            GenSpec::FemBlocks {
                nodes: 6_000,
                dof: 3,
                neighbors: 10,
            },
        ),
        (
            "multi-diagonal operator (largebasis-like)",
            GenSpec::DiagRuns {
                n: 30_000,
                n_diags: 9,
            },
        ),
        (
            "power-law graph (wikipedia-like)",
            GenSpec::PowerLaw {
                n: 30_000,
                avg_deg: 10,
                alpha: 1.6,
            },
        ),
    ];

    println!("calibrating models (bandwidth + 53 kernel profiles) ...");
    let machine = MachineProfile::detect_with(32 << 20);
    let profile = profile_kernels::<f64>(
        &machine,
        &ProfileOptions {
            large_bytes: 32 << 20,
            ..ProfileOptions::default()
        },
    );
    println!(
        "machine: {:.2} GiB/s, L1 {} KiB\n",
        machine.bandwidth / (1u64 << 30) as f64,
        machine.l1_bytes / 1024
    );

    for (name, spec) in workloads {
        let csr = spec.build(7);
        println!(
            "== {name}: {} rows, {} nnz",
            csr.n_rows(),
            csr.nnz()
        );

        // Exhaustive measurement of the model space.
        let x: Vec<f64> = random_vector(csr.n_cols(), 7);
        let mut best: Option<(Config, f64)> = None;
        let mut reals = Vec::new();
        for config in Config::enumerate(true) {
            let built = config.build(&csr);
            let t = measure_spmv(&built, &x, 2e-3, 3);
            if best.is_none_or(|(_, tb)| t < tb) {
                best = Some((config, t));
            }
            reals.push((config, t));
        }
        let (best_config, best_t) = best.expect("non-empty space");
        println!(
            "   exhaustive search: {:<18} {:.3} ms/SpMV  (measured {} configs)",
            best_config.to_string(),
            best_t * 1e3,
            reals.len()
        );

        for model in Model::ALL {
            let pick = select(model, &csr, &machine, &profile, true);
            let real = reals
                .iter()
                .find(|(c, _)| *c == pick.config)
                .map(|&(_, t)| t)
                .expect("same space");
            println!(
                "   {:>8} picks:    {:<18} {:.3} ms/SpMV  ({:+.1}% off best)",
                model.label(),
                pick.config.to_string(),
                real * 1e3,
                (real / best_t - 1.0) * 100.0
            );
        }
        println!();
    }
    println!(
        "expected shape (paper Table IV): OVERLAP lands closest to the optimum, \
         MEM degrades when the problem is compute-heavier."
    );
}
