//! The §VI future-work extension in action: latency-aware prediction.
//!
//! Figure 3's models under-predict latency-bound matrices (the paper's
//! #12, #14, #15, #28) because they ignore input-vector cache misses.
//! This example compares plain OVERLAP against the latency-extended
//! predictor (`t_OVERLAP + misses x load_latency`) on one regular and
//! one irregular matrix, next to the measured truth and the §V-B
//! zeroed-`col_ind` probe.
//!
//! ```sh
//! cargo run --release --example latency_extension
//! ```

use blocked_spmv::core::{Csr, MatrixShape};
use blocked_spmv::gen::{random_vector, GenSpec};
use blocked_spmv::model::timing::measure_spmv;
use blocked_spmv::model::{
    input_vector_miss_estimate, measure_latency, predict_overlap_lat, profile_kernels, Config,
    MachineProfile, Model, ProfileOptions,
};
use spmv_bench::diagnostics::{irregularity_fraction, latency_probe};
use spmv_bench::ExpOpts;

fn main() {
    // Two matrices with comparable nnz but opposite access regularity.
    let regular: Csr<f64> = GenSpec::ClusteredRandom {
        n: 30_000,
        m: 30_000,
        runs_per_row: 2,
        run_len: 8,
    }
    .build(1);
    let irregular: Csr<f64> = GenSpec::PowerLaw {
        n: 30_000,
        avg_deg: 16,
        alpha: 1.6,
    }
    .build(1);

    println!("calibrating (bandwidth, kernels, load latency) ...");
    let machine = MachineProfile::detect_with(32 << 20);
    let profile = profile_kernels::<f64>(
        &machine,
        &ProfileOptions {
            large_bytes: 32 << 20,
            ..ProfileOptions::default()
        },
    );
    let latency = measure_latency(32 << 20, 0.05);
    println!(
        "machine: {:.2} GiB/s, load latency {:.1} ns @ {} MiB\n",
        machine.bandwidth / (1u64 << 30) as f64,
        latency.load_latency * 1e9,
        latency.footprint / (1024 * 1024)
    );

    let opts = ExpOpts::default();
    for (name, csr) in [("regular runs", &regular), ("power-law graph", &irregular)] {
        let config = Config::CSR;
        let x: Vec<f64> = random_vector(csr.n_cols(), 2);
        let built = config.build(csr);
        let real = measure_spmv(&built, &x, 5e-3, 3);
        let overlap = Model::Overlap.predict(&config.substats(csr), &machine, &profile);
        let overlap_lat = predict_overlap_lat(csr, &config, &machine, &profile, &latency);
        let probe = latency_probe(csr, &opts);
        println!("== {name}: {} rows, {} nnz", csr.n_rows(), csr.nnz());
        println!(
            "   irregularity: {:.0}% of accesses jump > 8 columns; est. misses/SpMV {:.0}",
            irregularity_fraction(csr, 8) * 100.0,
            input_vector_miss_estimate(csr, &machine, 8)
        );
        println!(
            "   SV-B probe: zeroing col_ind speeds SpMV up {:.2}x ({})",
            probe.slowdown(),
            if probe.is_latency_bound() {
                "latency-bound"
            } else {
                "bandwidth-bound"
            }
        );
        println!(
            "   real {:.3} ms | OVERLAP {:.3} ms ({:+.0}%) | OVERLAP+LAT {:.3} ms ({:+.0}%)\n",
            real * 1e3,
            overlap * 1e3,
            (overlap / real - 1.0) * 100.0,
            overlap_lat * 1e3,
            (overlap_lat / real - 1.0) * 100.0
        );
    }
    println!(
        "expected shape: on the regular matrix both predictors agree; on the \
         irregular one plain OVERLAP under-predicts (the Figure 3 outlier \
         pattern) and the latency term closes part of the gap."
    );
}
