//! Interactive-style model explorer: prediction breakdown for one
//! matrix.
//!
//! Picks a suite matrix (by paper id, default #21 audikw_1-like), prints
//! the three models' predicted time for every configuration next to the
//! measured time, and shows the per-term breakdown (`ws/BW` vs
//! `nof·nb·t_b`) for the top configurations — the anatomy of equation (3).
//!
//! ```sh
//! cargo run --release --example model_explorer [--id N] [--scale F]
//! ```

use blocked_spmv::core::MatrixShape;
use blocked_spmv::gen::{random_vector, suite};
use blocked_spmv::model::timing::measure_spmv;
use blocked_spmv::model::{
    profile_kernels, Config, MachineProfile, Model, ProfileOptions,
};

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let id: usize = arg("--id").and_then(|v| v.parse().ok()).unwrap_or(21);
    let scale: f64 = arg("--scale").and_then(|v| v.parse().ok()).unwrap_or(0.25);
    let entry = suite(scale)
        .into_iter()
        .find(|e| e.id == id)
        .expect("suite ids are 1..=30");
    let csr = entry.build(42);
    println!(
        "matrix #{:02} {} ({}): {} rows, {} nnz",
        entry.id,
        entry.name,
        entry.domain,
        csr.n_rows(),
        csr.nnz()
    );

    println!("calibrating ...");
    let machine = MachineProfile::detect_with(32 << 20);
    let profile = profile_kernels::<f64>(
        &machine,
        &ProfileOptions {
            large_bytes: 32 << 20,
            ..ProfileOptions::default()
        },
    );

    let x: Vec<f64> = random_vector(csr.n_cols(), 42);
    let mut rows: Vec<(Config, f64, [f64; 3])> = Config::enumerate(true)
        .into_iter()
        .map(|c| {
            let stats = c.substats(&csr);
            let preds = [
                Model::Mem.predict(&stats, &machine, &profile),
                Model::MemComp.predict(&stats, &machine, &profile),
                Model::Overlap.predict(&stats, &machine, &profile),
            ];
            let built = c.build(&csr);
            let real = measure_spmv(&built, &x, 2e-3, 2);
            (c, real, preds)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!(
        "\n{:<22} {:>9} | {:>9} {:>9} {:>9}   (ms/SpMV)",
        "configuration (by real)", "real", "MEM", "MEMCOMP", "OVERLAP"
    );
    for (c, real, preds) in rows.iter().take(12) {
        println!(
            "{:<22} {:>9.4} | {:>9.4} {:>9.4} {:>9.4}",
            c.to_string(),
            real * 1e3,
            preds[0] * 1e3,
            preds[1] * 1e3,
            preds[2] * 1e3
        );
    }

    // Term breakdown for the measured winner.
    let (best, real, _) = rows[0];
    println!("\nOVERLAP breakdown for the winner ({best}, real {:.4} ms):", real * 1e3);
    for (i, s) in best.substats(&csr).iter().enumerate() {
        let t = profile.get(s.key);
        let mem = s.ws_bytes as f64 / machine.bandwidth;
        let comp = t.nof * s.nb as f64 * t.t_b;
        println!(
            "  submatrix {i}: ws/BW = {:.4} ms  +  nof({:.2}) x nb({}) x t_b({:.2} ns) = {:.4} ms",
            mem * 1e3,
            t.nof,
            s.nb,
            t.t_b * 1e9,
            comp * 1e3
        );
    }
}
