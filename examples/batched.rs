//! Batched SpMV (SpMM): one `k`-vector call vs `k` independent calls.
//!
//! A `k`-vector call streams the matrix arrays once, where `k` separate
//! SpMV calls stream them `k` times; on matrices whose working set
//! exceeds the LLC the batched call therefore amortizes the dominant
//! traffic term and should approach `k`-fold speedup over serial calls.
//! This example measures that amortization on suite matrices for CSR,
//! BCSR, and 1D-VBL, checks the batched results against per-column SpMV,
//! and cross-checks the measurement against the MEM model's predicted
//! amortization (`Model::predict_multi`).
//!
//! ```sh
//! cargo run --release --example batched            # default scale 0.3
//! cargo run --release --example batched -- 0.1     # smaller, faster
//! ```

use blocked_spmv::core::{MatrixShape, SpMv, SpMvMulti};
use blocked_spmv::formats::{Bcsr, Vbl};
use blocked_spmv::gen::{random_vector, suite};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::timing::{measure_spmv, measure_spmv_multi};
use blocked_spmv::model::{BlockConfig, Config, KernelProfile, MachineProfile, Model};

const K: usize = 4;

/// Measures one format; returns the amortization factor
/// `k * t(single call) / t(k-vector call)`.
fn report<M: SpMvMulti<f64>>(label: &str, mat: &M, x: &[f64]) -> f64 {
    let (m, n) = (mat.n_cols(), mat.n_rows());

    // The batched call must equal K per-column calls exactly.
    let batched = mat.spmv_multi(x, K);
    for t in 0..K {
        let col = mat.spmv(&x[t * m..(t + 1) * m]);
        assert_eq!(col, &batched[t * n..(t + 1) * n], "{label} col {t}");
    }

    let t1 = measure_spmv(mat, &x[..m], 5e-3, 3);
    let tk = measure_spmv_multi(mat, x, K, 5e-3, 3);
    let amortization = K as f64 * t1 / tk;
    println!(
        "  {label:<16} 1 vector {:>8.3} ms | {K} serial {:>8.3} ms | {K}-vector call {:>8.3} ms | amortization {:.2}x",
        t1 * 1e3,
        K as f64 * t1 * 1e3,
        tk * 1e3,
        amortization
    );
    amortization
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3);
    let shape = BlockShape::new(3, 2).unwrap();

    // The MEM model's predicted amortization needs only the machine's
    // bandwidth (which cancels in the ratio) and the structure stats.
    let machine = MachineProfile {
        bandwidth: 1e9,
        l1_bytes: 32 * 1024,
        llc_bytes: 4 << 20,
    };
    let profile = KernelProfile::uniform(1e-9, 0.5);

    println!("batched SpMV (k = {K}), suite scale {scale}");
    let mut best = (0.0f64, String::new());
    for entry in suite(scale).iter().filter(|e| [3, 17, 21].contains(&e.id)) {
        let csr = entry.build(11);
        println!(
            "\n#{} {} ({}): {} rows, {} nnz, CSR working set {:.1} MiB",
            entry.id,
            entry.name,
            entry.domain,
            csr.n_rows(),
            csr.nnz(),
            csr.working_set_bytes() as f64 / (1024.0 * 1024.0)
        );

        for config in [
            Config::CSR,
            Config {
                block: BlockConfig::Bcsr(shape),
                imp: KernelImpl::Simd,
            },
        ] {
            let stats = config.substats(&csr);
            let one = Model::Mem.predict(&stats, &machine, &profile);
            let four = Model::Mem.predict_multi(&stats, K, &machine, &profile);
            println!(
                "  MEM predicts {config}: {K} serial / one {K}-vector call = {:.2}x",
                K as f64 * one / four
            );
        }

        let x: Vec<f64> = random_vector(csr.n_cols() * K, 7);
        let bcsr = Bcsr::from_csr(&csr, shape, KernelImpl::Simd);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        for (label, a) in [
            ("csr", report("csr", &csr, &x)),
            ("bcsr-3x2 simd", report("bcsr-3x2 simd", &bcsr, &x)),
            ("1d-vbl", report("1d-vbl", &vbl, &x)),
        ] {
            if a > best.0 {
                best = (a, format!("{label} on #{} {}", entry.id, entry.name));
            }
        }
    }
    println!(
        "\nbest measured amortization: {:.2}x ({})",
        best.0, best.1
    );
    println!(
        "note: amortization is a single-call vs batched-call ratio, so it is \
         meaningful even on a single-core host."
    );
}
