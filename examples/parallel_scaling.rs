//! Multithreaded SpMV with padding-aware load balancing on a persistent
//! worker pool.
//!
//! Reproduces the paper's §V-A threading setup on one matrix: the rows
//! are split into as many nnz-balanced strips as threads (counting
//! padding for the padded formats), and every strip runs on its own
//! long-lived, core-pinned worker (`SpmvPool`). Prints the measured time
//! per SpMV at 1, 2, and 4 threads for CSR and the best BCSR shape, the
//! strip boundaries so the balancing is visible, and each strip's
//! measured per-iteration time — whose max/mean ratio is the measured
//! imbalance the multicore model can consume
//! (`spmv_model::multicore::predict_threaded_measured`).
//!
//! The scoped-thread driver (`ParallelSpmv`) is measured alongside at 4
//! threads to show the per-call spawn overhead the pool eliminates.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use blocked_spmv::core::{Csr, MatrixShape, SpMv};
use blocked_spmv::formats::Bcsr;
use blocked_spmv::gen::{random_vector, GenSpec};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::multicore::imbalance_factor;
use blocked_spmv::model::timing::measure_spmv;
use blocked_spmv::parallel::{
    bcsr_unit_weights, csr_unit_weights, ParallelSpmv, PinPolicy, SpmvPool,
};

fn main() {
    let csr: Csr<f64> = GenSpec::FemBlocks {
        nodes: 20_000,
        dof: 3,
        neighbors: 9,
    }
    .build(11);
    let shape = BlockShape::new(3, 2).unwrap();
    println!(
        "matrix: {} rows, {} nnz ({:.1} MiB CSR working set)",
        csr.n_rows(),
        csr.nnz(),
        csr.working_set_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "host parallelism: {} hardware thread(s)\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let x: Vec<f64> = random_vector(csr.n_cols(), 3);
    let reference = csr.spmv(&x);

    for threads in [1, 2, 4] {
        // CSR strips balanced by nonzeros per row, one persistent pinned
        // worker per strip.
        let pool_csr = SpmvPool::from_csr(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Compact,
        );
        // BCSR strips balanced by stored elements (padding included),
        // boundaries aligned to block rows.
        let pool_bcsr = SpmvPool::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Simd),
            PinPolicy::Compact,
        );

        // Correctness across the strip boundaries.
        let got = pool_bcsr.spmv(&x);
        let max_err = reference
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-6, "parallel result diverged");

        let t_csr = measure_spmv(&pool_csr, &x, 5e-3, 3);
        let t_bcsr = measure_spmv(&pool_bcsr, &x, 5e-3, 3);
        println!(
            "{threads} thread(s): CSR {:>8.3} ms | BCSR {} simd {:>8.3} ms | strips: {:?}",
            t_csr * 1e3,
            shape,
            t_bcsr * 1e3,
            pool_bcsr
                .strip_rows()
                .iter()
                .map(|r| format!("{}..{}", r.start, r.end))
                .collect::<Vec<_>>()
        );
        if let Some(per_strip) = pool_bcsr.measured_strip_seconds() {
            let medians: Vec<String> = per_strip
                .iter()
                .map(|s| format!("{:.3} ms", s * 1e3))
                .collect();
            println!(
                "            per-strip medians {:?} -> measured imbalance {:.3}",
                medians,
                imbalance_factor(&per_strip)
            );
        }
    }

    // The pool's raison d'être: per-call cost vs freshly scoped threads.
    let scoped = ParallelSpmv::from_csr(&csr, 4, &csr_unit_weights(&csr), 1, Csr::clone);
    let pooled = SpmvPool::from_csr(
        &csr,
        4,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::Compact,
    );
    let t_scoped = measure_spmv(&scoped, &x, 5e-3, 3);
    let t_pooled = measure_spmv(&pooled, &x, 5e-3, 3);
    println!(
        "\n4-thread CSR per call: scoped threads {:.3} ms | pooled {:.3} ms \
         ({:.1}x per-call cost removed by the pool)",
        t_scoped * 1e3,
        t_pooled * 1e3,
        t_scoped / t_pooled
    );
    println!(
        "note: speedups require real cores; on a single-core host the \
         2- and 4-thread rows only demonstrate correctness of the partitioning."
    );
}
