//! Structural tour of the 30-matrix synthetic suite.
//!
//! For every suite entry this prints the properties the blocked formats
//! are sensitive to: the fill ratio a 2x2/3x3-tiling BCSR would achieve,
//! the fraction of nonzeros living in full blocks (what BCSR-DEC
//! captures), the diagonal-block fill (BCSD), and the mean horizontal
//! run length (1D-VBL) — a quick way to see *why* each format wins where
//! it does in Tables II/III.
//!
//! ```sh
//! cargo run --release --example suite_report [--scale F]
//! ```

use blocked_spmv::core::MatrixShape;
use blocked_spmv::formats::{bcsd_stats, bcsr_dec_stats, bcsr_stats, vbl_stats};
use blocked_spmv::gen::{analyze, suite};
use blocked_spmv::kernels::BlockShape;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let s22 = BlockShape::new(2, 2).unwrap();
    let s13 = BlockShape::new(1, 3).unwrap();

    println!(
        "{:<18} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>8} {:>7} {:>6} {:>5}",
        "matrix", "rows", "nnz", "fill2x2", "full2x2", "fill-d4", "run-len", "nnz/row", "skew", "sym"
    );
    for entry in suite(scale) {
        let csr = entry.build(42);
        let nnz = csr.nnz();
        let b22 = bcsr_stats(&csr, s22);
        let d22 = bcsr_dec_stats(&csr, s22);
        let d4 = bcsd_stats(&csr, 4);
        let vbl = vbl_stats(&csr);
        let _ = bcsr_stats(&csr, s13); // also exercised; 1x3 suits FEM dof=3
        let a = analyze(&csr);
        println!(
            "{:<18} {:>9} {:>10} | {:>7.0}% {:>7.0}% {:>7.0}% {:>8.2} {:>7.1} {:>6.1} {:>5}",
            format!("{:02}.{}", entry.id, entry.name),
            csr.n_rows(),
            nnz,
            nnz as f64 / b22.stored.max(1) as f64 * 100.0,
            (nnz - d22.rest_nnz) as f64 / nnz.max(1) as f64 * 100.0,
            nnz as f64 / d4.stored.max(1) as f64 * 100.0,
            nnz as f64 / vbl.nb.max(1) as f64,
            a.avg_row_nnz,
            a.row_skew(),
            if a.pattern_symmetric { "yes" } else { "no" },
        );
    }
    println!(
        "\nfill2x2  = nnz / stored for aligned 2x2 BCSR (100% = perfect blocks)\n\
         full2x2  = share of nnz captured by completely full 2x2 blocks (BCSR-DEC)\n\
         fill-d4  = nnz / stored for BCSD with b=4 diagonals\n\
         run-len  = mean 1D-VBL horizontal run length\n\
         skew     = max row length / mean row length; sym = symmetric pattern\n\
         expected: FEM entries (#16, #20-27) block well; diagonal entries (#8, #18)\n\
         favor BCSD; graphs (#11, #12) and circuits block poorly, keeping CSR alive."
    );
}
