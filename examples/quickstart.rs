//! Quickstart: build a sparse matrix, convert it to every storage
//! format, and let the OVERLAP model pick the fastest configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blocked_spmv::core::{Coo, Csr, SpMv};
use blocked_spmv::formats::{Bcsd, Bcsr, BcsrDec, Vbl};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::{profile_kernels, select, MachineProfile, Model, ProfileOptions};

fn main() {
    // 1. Assemble a matrix from triplets: a 2D Laplacian with an extra
    //    dense 2x2 block sprinkled on the diagonal.
    let nx = 64;
    let n = nx * nx;
    let mut coo = Coo::<f64>::new(n, n);
    for y in 0..nx {
        for x in 0..nx {
            let i = y * nx + x;
            coo.push(i, i, 4.0).unwrap();
            if x > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if x + 1 < nx {
                coo.push(i, i + 1, -1.0).unwrap();
            }
            if y > 0 {
                coo.push(i, i - nx, -1.0).unwrap();
            }
            if y + 1 < nx {
                coo.push(i, i + nx, -1.0).unwrap();
            }
        }
    }
    let csr = Csr::from_coo(&coo);
    println!("matrix: {n} x {n}, {} nonzeros", csr.nnz());

    // 2. Convert to blocked formats and compare working sets.
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let reference = csr.spmv(&x);

    let shape = BlockShape::new(1, 3).unwrap();
    let bcsr = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
    let bcsr_dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
    let bcsd = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
    let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);

    println!("\nworking sets (bytes):");
    println!("  CSR       {:>9}", csr.working_set_bytes());
    println!(
        "  BCSR {}   {:>9}  ({} blocks, {} padded zeros)",
        shape,
        bcsr.working_set_bytes(),
        bcsr.n_blocks(),
        bcsr.padding()
    );
    println!(
        "  BCSR-DEC  {:>9}  ({:.0}% of nnz in full blocks)",
        bcsr_dec.working_set_bytes(),
        bcsr_dec.coverage() * 100.0
    );
    println!(
        "  BCSD b=4  {:>9}  ({} blocks, {} padded zeros)",
        bcsd.working_set_bytes(),
        bcsd.n_blocks(),
        bcsd.padding()
    );
    println!(
        "  1D-VBL    {:>9}  ({} blocks, mean run {:.1})",
        vbl.working_set_bytes(),
        vbl.n_blocks(),
        vbl.avg_block_len()
    );

    // 3. Every format computes the same product.
    for (name, y) in [
        ("BCSR", bcsr.spmv(&x)),
        ("BCSR-DEC", bcsr_dec.spmv(&x)),
        ("BCSD", bcsd.spmv(&x)),
        ("1D-VBL", vbl.spmv(&x)),
    ] {
        let max_err = reference
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "{name} diverged");
        println!("{name:>9}: matches CSR (max |err| = {max_err:.1e})");
    }

    // 4. Let the OVERLAP model choose the best configuration for this
    //    matrix on this machine.
    println!("\ncalibrating the performance models (a few seconds) ...");
    let machine = MachineProfile::detect_with(32 << 20);
    let profile = profile_kernels::<f64>(
        &machine,
        &ProfileOptions {
            large_bytes: 32 << 20,
            ..ProfileOptions::default()
        },
    );
    println!(
        "machine: {:.2} GiB/s STREAM, L1 {} KiB, LLC {} MiB",
        machine.bandwidth / (1u64 << 30) as f64,
        machine.l1_bytes / 1024,
        machine.llc_bytes / (1024 * 1024)
    );
    for model in Model::ALL {
        let best = select(model, &csr, &machine, &profile, true);
        println!(
            "{:>8} selects {:<16} (predicted {:.3} ms/SpMV)",
            model.label(),
            best.config.to_string(),
            best.predicted * 1e3
        );
    }
}
