//! Structural analysis of sparse matrices.
//!
//! Summarizes the properties that drive format choice and model
//! behaviour — row-length distribution, bandwidth, diagonal content,
//! symmetry — in one pass over the CSR structure. The suite report
//! example and the test suite use it to verify that each generated
//! stand-in actually has the structure its Table I original is chosen
//! for; it is equally useful on real matrices loaded from MatrixMarket.

use spmv_core::{Csr, MatrixShape, Scalar};

/// One-pass structural summary of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixAnalysis {
    /// Rows.
    pub n_rows: usize,
    /// Columns.
    pub n_cols: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Rows with no nonzeros.
    pub empty_rows: usize,
    /// Minimum nonzeros over non-empty rows (0 when all rows are empty).
    pub min_row_nnz: usize,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Maximum nonzeros in a row.
    pub max_row_nnz: usize,
    /// Matrix bandwidth: `max |i - j|` over nonzeros.
    pub bandwidth: usize,
    /// Fraction of nonzeros on the main diagonal.
    pub diagonal_fraction: f64,
    /// Mean length of maximal horizontal nonzero runs (1D-VBL blocks
    /// before 255-chunking).
    pub avg_run_length: f64,
    /// Whether the *pattern* is structurally symmetric (every `(i, j)`
    /// has a `(j, i)`); only meaningful for square matrices.
    pub pattern_symmetric: bool,
}

impl MatrixAnalysis {
    /// Row-length skew: `max_row_nnz / avg_row_nnz` (1 for perfectly
    /// uniform rows; large for power-law degree distributions).
    pub fn row_skew(&self) -> f64 {
        if self.avg_row_nnz == 0.0 {
            1.0
        } else {
            self.max_row_nnz as f64 / self.avg_row_nnz
        }
    }

    /// Whether rows are short enough for loop overheads to dominate the
    /// kernel — the regime where the paper's models under-predict
    /// (§V-B discussion).
    pub fn is_short_row_dominated(&self) -> bool {
        self.avg_row_nnz < 6.0
    }
}

/// Analyzes `csr` in `O(nnz)` (plus `O(nnz)` for the symmetry check via
/// one transpose).
pub fn analyze<T: Scalar>(csr: &Csr<T>) -> MatrixAnalysis {
    let n_rows = csr.n_rows();
    let n_cols = csr.n_cols();
    let nnz = csr.nnz();

    let mut empty_rows = 0usize;
    let mut min_row_nnz = usize::MAX;
    let mut max_row_nnz = 0usize;
    let mut bandwidth = 0usize;
    let mut diag = 0usize;
    let mut runs = 0usize;

    for i in 0..n_rows {
        let (cols, _) = csr.row(i);
        if cols.is_empty() {
            empty_rows += 1;
        } else {
            min_row_nnz = min_row_nnz.min(cols.len());
            max_row_nnz = max_row_nnz.max(cols.len());
        }
        let mut prev: Option<u32> = None;
        for &j in cols {
            bandwidth = bandwidth.max((j as i64 - i as i64).unsigned_abs() as usize);
            if j as usize == i {
                diag += 1;
            }
            if prev.is_none_or(|p| j != p + 1) {
                runs += 1;
            }
            prev = Some(j);
        }
    }
    if min_row_nnz == usize::MAX {
        min_row_nnz = 0;
    }

    // Pattern symmetry: compare the column pattern with the transpose's.
    let pattern_symmetric = if n_rows == n_cols && nnz > 0 {
        let t = csr.transpose();
        (0..n_rows).all(|i| csr.row(i).0 == t.row(i).0)
    } else {
        n_rows == n_cols
    };

    MatrixAnalysis {
        n_rows,
        n_cols,
        nnz,
        empty_rows,
        min_row_nnz,
        avg_row_nnz: if n_rows == 0 {
            0.0
        } else {
            nnz as f64 / n_rows as f64
        },
        max_row_nnz,
        bandwidth,
        diagonal_fraction: if nnz == 0 { 0.0 } else { diag as f64 / nnz as f64 },
        avg_run_length: if runs == 0 { 0.0 } else { nnz as f64 / runs as f64 },
        pattern_symmetric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GenSpec;
    use spmv_core::Coo;

    #[test]
    fn analyzes_a_known_matrix() {
        // [1 1 0 0]
        // [0 0 0 1]
        // [0 0 0 0]
        // [1 0 0 1]
        let csr = Csr::from_coo(
            &Coo::from_triplets(
                4,
                4,
                vec![(0, 0, 1.0), (0, 1, 1.0), (1, 3, 1.0), (3, 0, 1.0), (3, 3, 1.0)],
            )
            .unwrap(),
        );
        let a = analyze(&csr);
        assert_eq!(a.nnz, 5);
        assert_eq!(a.empty_rows, 1);
        assert_eq!(a.min_row_nnz, 1);
        assert_eq!(a.max_row_nnz, 2);
        assert_eq!(a.bandwidth, 3); // (3,0)
        assert_eq!(a.diagonal_fraction, 2.0 / 5.0);
        // Runs: [0,1] (1 run), [3], [0], [3] -> 4 runs over 5 nnz.
        assert!((a.avg_run_length - 5.0 / 4.0).abs() < 1e-12);
        assert!(!a.pattern_symmetric); // (1,3) has no (3,1)
    }

    #[test]
    fn stencils_are_symmetric_and_banded() {
        let csr = GenSpec::Stencil2d { nx: 9, ny: 7 }.build(0);
        let a = analyze(&csr);
        assert!(a.pattern_symmetric);
        assert_eq!(a.bandwidth, 9); // +/- nx
        assert_eq!(a.max_row_nnz, 5);
        assert!(a.is_short_row_dominated());
    }

    #[test]
    fn power_law_has_high_skew() {
        let a = analyze(&GenSpec::PowerLaw {
            n: 600,
            avg_deg: 5,
            alpha: 1.7,
        }
        .build(2));
        assert!(a.row_skew() > 3.0, "skew = {}", a.row_skew());
    }

    #[test]
    fn fem_blocks_have_long_runs() {
        let a = analyze(&GenSpec::FemBlocks {
            nodes: 50,
            dof: 3,
            neighbors: 5,
        }
        .build(1));
        assert!(
            a.avg_run_length >= 3.0,
            "3-dof FEM rows must run in multiples of 3, got {}",
            a.avg_run_length
        );
        assert!(!a.is_short_row_dominated());
    }

    #[test]
    fn circuit_has_full_diagonal_and_symmetry() {
        let a = analyze(&GenSpec::Circuit {
            n: 120,
            off_per_row: 2,
        }
        .build(4));
        assert!(a.pattern_symmetric, "nodal stamps are symmetric");
        assert!(a.diagonal_fraction > 0.1);
        assert_eq!(a.empty_rows, 0);
    }

    #[test]
    fn empty_and_rectangular_matrices() {
        let a = analyze(&Csr::<f64>::from_coo(&Coo::new(0, 0)));
        assert_eq!(a.nnz, 0);
        assert_eq!(a.avg_run_length, 0.0);
        assert!(a.pattern_symmetric); // vacuously square

        let rect = analyze(&GenSpec::Lp {
            rows: 10,
            cols: 50,
            runs_per_row: 2,
            run_len: 3,
        }
        .build(1));
        assert!(!rect.pattern_symmetric, "rectangular is never symmetric");
    }

    #[test]
    fn diag_runs_are_fully_diagonal_dominant() {
        let a = analyze(&GenSpec::DiagRuns { n: 80, n_diags: 1 }.build(0));
        assert_eq!(a.diagonal_fraction, 1.0);
        assert_eq!(a.bandwidth, 0);
    }
}
