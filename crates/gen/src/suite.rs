//! The synthetic 30-matrix evaluation suite (stand-in for Table I).
//!
//! One entry per paper matrix, keeping the paper's id, name, and
//! application domain, with a generator chosen to match the original's
//! structural archetype (see the module docs of
//! [`generators`](crate::generators) and DESIGN.md §2 for the mapping
//! rationale). Sizes are scaled down so the full sweep runs on a laptop;
//! the `scale` parameter grows every matrix proportionally
//! (`--scale 8` and up approaches the paper's "nothing fits in cache"
//! regime on typical machines).

use crate::generators::GenSpec;
use spmv_core::Csr;

/// Geometry classification from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Geometry {
    /// The two special-purpose matrices (#1 dense, #2 random), excluded
    /// from the win counts of Table II.
    Special,
    /// Problems without an underlying 2D/3D geometry (#3–#16).
    NonGeometric,
    /// Problems with a 2D/3D geometry (#17–#30).
    Geometric,
}

/// One suite entry: paper metadata plus the stand-in generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteMatrix {
    /// Paper id, 1..=30.
    pub id: usize,
    /// Paper matrix name (e.g. `"audikw_1"`).
    pub name: &'static str,
    /// Application domain from Table I.
    pub domain: &'static str,
    /// Geometry class.
    pub geometry: Geometry,
    /// The generator standing in for the original matrix.
    pub spec: GenSpec,
}

impl SuiteMatrix {
    /// Builds the matrix; deterministic in `(suite entry, seed)`.
    pub fn build(&self, seed: u64) -> Csr<f64> {
        self.spec
            .build(seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Scales a linear dimension.
fn s(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(4)
}

/// Scales a 2-D side length (so element counts scale linearly).
fn s2(base: usize, scale: f64) -> usize {
    ((base as f64 * scale.sqrt()).round() as usize).max(4)
}

/// Scales a 3-D side length.
fn s3(base: usize, scale: f64) -> usize {
    ((base as f64 * scale.cbrt()).round() as usize).max(3)
}

/// Builds the 30-entry suite at the given size scale (`1.0` = default
/// laptop-sized matrices, tens of thousands of rows each).
pub fn suite(scale: f64) -> Vec<SuiteMatrix> {
    use GenSpec::*;
    use Geometry::*;
    let e = |id, name, domain, geometry, spec| SuiteMatrix {
        id,
        name,
        domain,
        geometry,
        spec,
    };
    vec![
        e(1, "dense", "special", Special, Dense { n: s2(180, scale), m: s2(180, scale) }),
        e(2, "random", "special", Special, Random { n: s(30_000, scale), m: s(30_000, scale), nnz_per_row: 8 }),
        e(3, "cfd2", "CFD", NonGeometric, Banded { n: s(22_000, scale), bandwidth: 40, fill: 0.30 }),
        e(4, "parabolic_fem", "CFD", NonGeometric, Stencil2d { nx: s2(170, scale), ny: s2(170, scale) }),
        e(5, "Ga41As41H72", "Chemistry", NonGeometric, ClusteredRandom { n: s(8_000, scale), m: s(8_000, scale), runs_per_row: 9, run_len: 4 }),
        e(6, "ASIC_680k", "Circuit", NonGeometric, Circuit { n: s(30_000, scale), off_per_row: 2 }),
        e(7, "G3_circuit", "Circuit", NonGeometric, Circuit { n: s(50_000, scale), off_per_row: 1 }),
        e(8, "Hamrle3", "Circuit", NonGeometric, DiagRuns { n: s(40_000, scale), n_diags: 4 }),
        e(9, "rajat31", "Circuit", NonGeometric, Circuit { n: s(55_000, scale), off_per_row: 2 }),
        e(10, "cage15", "Graph", NonGeometric, Banded { n: s(30_000, scale), bandwidth: 30, fill: 0.30 }),
        e(11, "wb-edu", "Graph", NonGeometric, PowerLaw { n: s(50_000, scale), avg_deg: 6, alpha: 1.9 }),
        e(12, "wikipedia", "Graph", NonGeometric, PowerLaw { n: s(35_000, scale), avg_deg: 12, alpha: 1.6 }),
        e(13, "degme", "Lin. Prog.", NonGeometric, Lp { rows: s(8_000, scale), cols: s(12_000, scale), runs_per_row: 3, run_len: 4 }),
        e(14, "rail4284", "Lin. Prog.", NonGeometric, Lp { rows: s(1_500, scale), cols: s(50_000, scale), runs_per_row: 40, run_len: 8 }),
        e(15, "spal_004", "Lin. Prog.", NonGeometric, Lp { rows: s(4_000, scale), cols: s(32_000, scale), runs_per_row: 35, run_len: 4 }),
        e(16, "bone010", "Other", NonGeometric, FemBlocks { nodes: s(10_000, scale), dof: 3, neighbors: 11 }),
        e(17, "kkt_power", "Power", Geometric, Circuit { n: s(55_000, scale), off_per_row: 1 }),
        e(18, "largebasis", "Opt.", Geometric, DiagRuns { n: s(30_000, scale), n_diags: 12 }),
        e(19, "TSOPF_RS", "Opt.", Geometric, ClusteredRandom { n: s(1_500, scale), m: s(1_500, scale), runs_per_row: 40, run_len: 8 }),
        e(20, "af_shell10", "Struct.", Geometric, FemBlocks { nodes: s(12_000, scale), dof: 3, neighbors: 5 }),
        e(21, "audikw_1", "Struct.", Geometric, FemBlocks { nodes: s(8_000, scale), dof: 3, neighbors: 12 }),
        e(22, "F1", "Struct.", Geometric, FemBlocks { nodes: s(8_000, scale), dof: 3, neighbors: 13 }),
        e(23, "fdiff", "Struct.", Geometric, Stencil3d { nx: s3(32, scale), ny: s3(32, scale), nz: s3(32, scale) }),
        e(24, "gearbox", "Struct.", Geometric, FemBlocks { nodes: s(6_000, scale), dof: 3, neighbors: 9 }),
        e(25, "inline_1", "Struct.", Geometric, FemBlocks { nodes: s(10_000, scale), dof: 3, neighbors: 11 }),
        e(26, "ldoor", "Struct.", Geometric, FemBlocks { nodes: s(12_000, scale), dof: 3, neighbors: 7 }),
        e(27, "pwtk", "Struct.", Geometric, FemBlocks { nodes: s(7_000, scale), dof: 3, neighbors: 8 }),
        e(28, "thermal2", "Other", Geometric, UnstructuredMesh { nodes: s(45_000, scale), avg_deg: 3 }),
        e(29, "nd24k", "Other", Geometric, ClusteredRandom { n: s(3_000, scale), m: s(3_000, scale), runs_per_row: 25, run_len: 8 }),
        e(30, "stomach", "Other", Geometric, UnstructuredMesh { nodes: s(18_000, scale), avg_deg: 6 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::{MatrixShape, SpMv};

    #[test]
    fn suite_has_30_entries_with_paper_ids() {
        let s = suite(1.0);
        assert_eq!(s.len(), 30);
        for (k, m) in s.iter().enumerate() {
            assert_eq!(m.id, k + 1);
        }
    }

    #[test]
    fn geometry_classes_match_table_one() {
        let s = suite(1.0);
        assert!(s[..2].iter().all(|m| m.geometry == Geometry::Special));
        assert!(s[2..16]
            .iter()
            .all(|m| m.geometry == Geometry::NonGeometric));
        assert!(s[16..].iter().all(|m| m.geometry == Geometry::Geometric));
    }

    #[test]
    fn all_entries_build_valid_matrices_at_tiny_scale() {
        for m in suite(0.02) {
            let csr = m.build(1);
            csr.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(csr.nnz() > 0, "{} is empty", m.name);
        }
    }

    #[test]
    fn scale_grows_matrices() {
        let small = suite(0.05)[3].build(1);
        let large = suite(0.2)[3].build(1);
        assert!(large.nnz() > 2 * small.nnz());
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = suite(0.05)[10].build(9);
        let b = suite(0.05)[10].build(9);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_entries_use_distinct_streams() {
        // Same spec family, different ids → different matrices.
        let s = suite(0.05);
        let a = s[5].build(9); // ASIC_680k (circuit)
        let b = s[8].build(9); // rajat31 (circuit)
        assert!(a.n_rows() != b.n_rows() || a != b);
    }

    #[test]
    fn working_sets_exceed_typical_l1_at_default_scale() {
        // The paper requires matrices that do not fit in cache; at the
        // default scale every suite member must at least exceed a 64 KiB
        // L1 cache.
        for m in suite(1.0).iter().take(4) {
            let csr = m.build(1);
            assert!(
                csr.working_set_bytes() > 64 * 1024,
                "{} too small: {} bytes",
                m.name,
                csr.working_set_bytes()
            );
        }
    }
}
