#![warn(missing_docs)]

//! Matrix workloads: synthetic generators, the 30-matrix evaluation
//! suite, and MatrixMarket I/O.
//!
//! The paper evaluates on 30 matrices from the University of Florida
//! (Tim Davis) collection (Table I). Those files are not redistributable
//! with this repository, so [`suite()`] provides a *synthetic stand-in
//! suite*: one generated matrix per paper entry, matching its application
//! category and the structural properties the blocked formats are
//! sensitive to — dense-block content, diagonal runs, row-length
//! distribution, and access regularity. The generators themselves live in
//! [`generators`] and are reusable beyond the suite.
//!
//! When the real matrices are available, [`matrixmarket`] loads them from
//! `.mtx` files and the whole harness runs on them unchanged.

pub mod analysis;
pub mod generators;
pub mod matrixmarket;
pub mod suite;
pub mod vectors;

pub use analysis::{analyze, MatrixAnalysis};
pub use generators::GenSpec;
pub use suite::{suite, Geometry, SuiteMatrix};
pub use vectors::random_vector;
