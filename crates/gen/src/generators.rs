//! Parametric sparse-matrix generators.
//!
//! Each generator targets one structural archetype from the paper's
//! matrix suite (Table I): dense content, pure randomness, banded CFD
//! operators, FEM matrices with natural `dof x dof` node blocks, finite
//! difference stencils, power-law graphs, circuit matrices, wide linear
//! programming constraint matrices, multi-diagonal operators, and
//! irregular unstructured meshes. The blocked formats' relative behaviour
//! is driven entirely by these structural properties, which is what makes
//! the synthetic suite a faithful stand-in for the originals.
//!
//! All generators are deterministic given a seed.

use core::fmt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spmv_core::{Coo, Csr};

/// A generator specification: archetype plus size parameters.
///
/// `build` is deterministic in `(self, seed)`; duplicate coordinates
/// produced by a generator are summed by the COO→CSR conversion, so every
/// output is a valid CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum GenSpec {
    /// Fully dense `n x m` matrix (paper matrix #1).
    Dense {
        /// Rows.
        n: usize,
        /// Columns.
        m: usize,
    },
    /// Uniformly random pattern, ~`nnz_per_row` entries per row (#2).
    Random {
        /// Rows.
        n: usize,
        /// Columns.
        m: usize,
        /// Average nonzeros per row.
        nnz_per_row: usize,
    },
    /// Random rows made of short horizontal dense runs — chemistry /
    /// optimization matrices with dense row blocks (#5, #19, #29).
    ClusteredRandom {
        /// Rows.
        n: usize,
        /// Columns.
        m: usize,
        /// Runs per row.
        runs_per_row: usize,
        /// Elements per run.
        run_len: usize,
    },
    /// 5-point finite-difference stencil on an `nx x ny` grid (#4).
    Stencil2d {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// 7-point finite-difference stencil on an `nx x ny x nz` grid (#23).
    Stencil3d {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Grid depth.
        nz: usize,
    },
    /// FEM matrix with `dof` unknowns per node: every adjacent node pair
    /// contributes a dense `dof x dof` block (#16, #20–#22, #24–#27).
    FemBlocks {
        /// Mesh nodes (matrix has `nodes * dof` rows).
        nodes: usize,
        /// Degrees of freedom per node (the natural BCSR block size).
        dof: usize,
        /// Neighbours per node besides itself.
        neighbors: usize,
    },
    /// Band matrix: entries within `bandwidth` of the diagonal, each
    /// present with probability `fill` (#3, #10).
    Banded {
        /// Rows and columns.
        n: usize,
        /// Half bandwidth.
        bandwidth: usize,
        /// In-band fill probability.
        fill: f64,
    },
    /// Power-law (web/graph) matrix: skewed degrees, hub columns
    /// (#11, #12).
    PowerLaw {
        /// Rows and columns.
        n: usize,
        /// Average degree.
        avg_deg: usize,
        /// Skew exponent (larger = more skewed).
        alpha: f64,
    },
    /// Circuit matrix: full diagonal plus a few symmetric random
    /// off-diagonals per row (#6, #7, #9, #17).
    Circuit {
        /// Rows and columns.
        n: usize,
        /// Off-diagonal entries per row.
        off_per_row: usize,
    },
    /// Linear-programming constraint matrix: rectangular and wide, rows
    /// made of scattered short runs (#13–#15).
    Lp {
        /// Constraint rows.
        rows: usize,
        /// Variable columns.
        cols: usize,
        /// Runs per row.
        runs_per_row: usize,
        /// Elements per run.
        run_len: usize,
    },
    /// A matrix of full (sub)diagonals at spread offsets — the BCSD-
    /// friendly archetype (#8, #18).
    DiagRuns {
        /// Rows and columns.
        n: usize,
        /// Number of diagonals.
        n_diags: usize,
    },
    /// Irregular local mesh: each node couples to random nearby nodes,
    /// symmetric, without any block structure (#28, #30).
    UnstructuredMesh {
        /// Nodes (= rows = columns).
        nodes: usize,
        /// Average neighbours per node.
        avg_deg: usize,
    },
}

/// Random value in `[0.5, 1.5)` — bounded away from zero so padding zeros
/// stay distinguishable from stored values in tests.
fn val(rng: &mut SmallRng) -> f64 {
    0.5 + rng.gen::<f64>()
}

impl GenSpec {
    /// Builds the matrix deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Csr<f64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
        match *self {
            GenSpec::Dense { n, m } => {
                let mut coo = Coo::with_capacity(n, m, n * m);
                for i in 0..n {
                    for j in 0..m {
                        coo.push(i, j, 0.5 + ((i * m + j) % 97) as f64 / 97.0)
                            .expect("in range");
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Random { n, m, nnz_per_row } => {
                let mut coo = Coo::with_capacity(n, m, n * nnz_per_row);
                for i in 0..n {
                    for _ in 0..nnz_per_row {
                        let j = rng.gen_range(0..m);
                        coo.push(i, j, val(&mut rng)).expect("in range");
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::ClusteredRandom {
                n,
                m,
                runs_per_row,
                run_len,
            } => {
                let mut coo = Coo::with_capacity(n, m, n * runs_per_row * run_len);
                for i in 0..n {
                    for _ in 0..runs_per_row {
                        let start = rng.gen_range(0..m);
                        for j in start..(start + run_len).min(m) {
                            coo.push(i, j, val(&mut rng)).expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Stencil2d { nx, ny } => {
                let n = nx * ny;
                let mut coo = Coo::with_capacity(n, n, 5 * n);
                let idx = |x: usize, y: usize| y * nx + x;
                for y in 0..ny {
                    for x in 0..nx {
                        let i = idx(x, y);
                        coo.push(i, i, 4.0).expect("in range");
                        if x > 0 {
                            coo.push(i, idx(x - 1, y), -1.0).expect("in range");
                        }
                        if x + 1 < nx {
                            coo.push(i, idx(x + 1, y), -1.0).expect("in range");
                        }
                        if y > 0 {
                            coo.push(i, idx(x, y - 1), -1.0).expect("in range");
                        }
                        if y + 1 < ny {
                            coo.push(i, idx(x, y + 1), -1.0).expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Stencil3d { nx, ny, nz } => {
                let n = nx * ny * nz;
                let mut coo = Coo::with_capacity(n, n, 7 * n);
                let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            let i = idx(x, y, z);
                            coo.push(i, i, 6.0).expect("in range");
                            if x > 0 {
                                coo.push(i, idx(x - 1, y, z), -1.0).expect("in range");
                            }
                            if x + 1 < nx {
                                coo.push(i, idx(x + 1, y, z), -1.0).expect("in range");
                            }
                            if y > 0 {
                                coo.push(i, idx(x, y - 1, z), -1.0).expect("in range");
                            }
                            if y + 1 < ny {
                                coo.push(i, idx(x, y + 1, z), -1.0).expect("in range");
                            }
                            if z > 0 {
                                coo.push(i, idx(x, y, z - 1), -1.0).expect("in range");
                            }
                            if z + 1 < nz {
                                coo.push(i, idx(x, y, z + 1), -1.0).expect("in range");
                            }
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::FemBlocks {
                nodes,
                dof,
                neighbors,
            } => {
                let n = nodes * dof;
                let mut coo = Coo::with_capacity(n, n, n * dof * (neighbors + 1));
                // Local connectivity window, as in a bandwidth-reduced mesh.
                let window = (2 * neighbors).max(4);
                for u in 0..nodes {
                    let mut adj = vec![u];
                    for _ in 0..neighbors {
                        let lo = u.saturating_sub(window);
                        let hi = (u + window + 1).min(nodes);
                        adj.push(rng.gen_range(lo..hi));
                    }
                    adj.sort_unstable();
                    adj.dedup();
                    for &v in &adj {
                        // Dense dof x dof coupling block between nodes u, v.
                        for di in 0..dof {
                            for dj in 0..dof {
                                coo.push(u * dof + di, v * dof + dj, val(&mut rng))
                                    .expect("in range");
                            }
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Banded { n, bandwidth, fill } => {
                let mut coo = Coo::with_capacity(n, n, n * (2 * bandwidth + 1) / 2);
                for i in 0..n {
                    let lo = i.saturating_sub(bandwidth);
                    let hi = (i + bandwidth + 1).min(n);
                    coo.push(i, i, 2.0 + val(&mut rng)).expect("in range");
                    for j in lo..hi {
                        if j != i && rng.gen::<f64>() < fill {
                            coo.push(i, j, val(&mut rng)).expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::PowerLaw { n, avg_deg, alpha } => {
                let mut coo = Coo::with_capacity(n, n, n * avg_deg);
                for i in 0..n {
                    // Degree from a heavy-tailed distribution with the
                    // requested mean (clamped for sanity).
                    let u: f64 = rng.gen::<f64>().max(1e-9);
                    let deg = ((avg_deg as f64 * 0.5 * u.powf(-1.0 / alpha)) as usize)
                        .clamp(1, 16 * avg_deg);
                    for _ in 0..deg {
                        // Hub columns: preferential attachment toward low
                        // indices.
                        let t: f64 = rng.gen::<f64>();
                        let j = ((n as f64) * t.powf(alpha)) as usize;
                        coo.push(i, j.min(n - 1), val(&mut rng)).expect("in range");
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Circuit { n, off_per_row } => {
                let mut coo = Coo::with_capacity(n, n, n * (1 + 2 * off_per_row));
                for i in 0..n {
                    coo.push(i, i, 2.0 + val(&mut rng)).expect("in range");
                    for _ in 0..off_per_row {
                        let j = rng.gen_range(0..n);
                        // Symmetric stamp, as nodal analysis produces.
                        coo.push(i, j, -val(&mut rng)).expect("in range");
                        coo.push(j, i, -val(&mut rng)).expect("in range");
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::Lp {
                rows,
                cols,
                runs_per_row,
                run_len,
            } => {
                let mut coo = Coo::with_capacity(rows, cols, rows * runs_per_row * run_len);
                for i in 0..rows {
                    for _ in 0..runs_per_row {
                        let start = rng.gen_range(0..cols);
                        for j in start..(start + run_len).min(cols) {
                            coo.push(i, j, val(&mut rng)).expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::DiagRuns { n, n_diags } => {
                let mut coo = Coo::with_capacity(n, n, n * n_diags);
                // Offsets spread geometrically on both sides of the main
                // diagonal: 0, +1, -1, +4, -4, +16, ...
                let mut offsets: Vec<i64> = vec![0];
                let mut step = 1i64;
                while offsets.len() < n_diags {
                    offsets.push(step);
                    if offsets.len() < n_diags {
                        offsets.push(-step);
                    }
                    step *= 4;
                }
                for i in 0..n as i64 {
                    for &off in &offsets {
                        let j = i + off;
                        if (0..n as i64).contains(&j) {
                            coo.push(i as usize, j as usize, val(&mut rng))
                                .expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
            GenSpec::UnstructuredMesh { nodes, avg_deg } => {
                let mut coo = Coo::with_capacity(nodes, nodes, nodes * (avg_deg + 1));
                let window = (4 * avg_deg).max(8);
                for u in 0..nodes {
                    coo.push(u, u, 4.0 + val(&mut rng)).expect("in range");
                    for _ in 0..avg_deg {
                        let lo = u.saturating_sub(window);
                        let hi = (u + window + 1).min(nodes);
                        let v = rng.gen_range(lo..hi);
                        if v != u {
                            coo.push(u, v, -val(&mut rng)).expect("in range");
                            coo.push(v, u, -val(&mut rng)).expect("in range");
                        }
                    }
                }
                Csr::from_coo(&coo)
            }
        }
    }

    /// Logical row count of the generated matrix.
    pub fn n_rows(&self) -> usize {
        match *self {
            GenSpec::Dense { n, .. }
            | GenSpec::Random { n, .. }
            | GenSpec::ClusteredRandom { n, .. }
            | GenSpec::Banded { n, .. }
            | GenSpec::PowerLaw { n, .. }
            | GenSpec::Circuit { n, .. }
            | GenSpec::DiagRuns { n, .. } => n,
            GenSpec::Stencil2d { nx, ny } => nx * ny,
            GenSpec::Stencil3d { nx, ny, nz } => nx * ny * nz,
            GenSpec::FemBlocks { nodes, dof, .. } => nodes * dof,
            GenSpec::Lp { rows, .. } => rows,
            GenSpec::UnstructuredMesh { nodes, .. } => nodes,
        }
    }

    /// Short archetype name for reports.
    pub fn archetype(&self) -> &'static str {
        match self {
            GenSpec::Dense { .. } => "dense",
            GenSpec::Random { .. } => "random",
            GenSpec::ClusteredRandom { .. } => "clustered-random",
            GenSpec::Stencil2d { .. } => "stencil-2d",
            GenSpec::Stencil3d { .. } => "stencil-3d",
            GenSpec::FemBlocks { .. } => "fem-blocks",
            GenSpec::Banded { .. } => "banded",
            GenSpec::PowerLaw { .. } => "power-law",
            GenSpec::Circuit { .. } => "circuit",
            GenSpec::Lp { .. } => "lp",
            GenSpec::DiagRuns { .. } => "diag-runs",
            GenSpec::UnstructuredMesh { .. } => "unstructured-mesh",
        }
    }
}

impl fmt::Display for GenSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.archetype())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::MatrixShape;

    fn all_specs() -> Vec<GenSpec> {
        vec![
            GenSpec::Dense { n: 12, m: 9 },
            GenSpec::Random {
                n: 50,
                m: 40,
                nnz_per_row: 5,
            },
            GenSpec::ClusteredRandom {
                n: 40,
                m: 60,
                runs_per_row: 3,
                run_len: 4,
            },
            GenSpec::Stencil2d { nx: 7, ny: 9 },
            GenSpec::Stencil3d {
                nx: 4,
                ny: 5,
                nz: 3,
            },
            GenSpec::FemBlocks {
                nodes: 20,
                dof: 3,
                neighbors: 4,
            },
            GenSpec::Banded {
                n: 60,
                bandwidth: 5,
                fill: 0.5,
            },
            GenSpec::PowerLaw {
                n: 80,
                avg_deg: 4,
                alpha: 1.8,
            },
            GenSpec::Circuit {
                n: 70,
                off_per_row: 3,
            },
            GenSpec::Lp {
                rows: 20,
                cols: 90,
                runs_per_row: 4,
                run_len: 3,
            },
            GenSpec::DiagRuns { n: 50, n_diags: 5 },
            GenSpec::UnstructuredMesh {
                nodes: 60,
                avg_deg: 4,
            },
        ]
    }

    #[test]
    fn all_generators_produce_valid_matrices() {
        for spec in all_specs() {
            let csr = spec.build(42);
            csr.validate()
                .unwrap_or_else(|e| panic!("{spec}: invalid matrix: {e}"));
            assert!(csr.nnz() > 0, "{spec}: empty matrix");
            assert_eq!(csr.n_rows(), spec.n_rows(), "{spec}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for spec in all_specs() {
            assert_eq!(spec.build(7), spec.build(7), "{spec}");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_specs() {
        let spec = GenSpec::Random {
            n: 50,
            m: 50,
            nnz_per_row: 5,
        };
        assert_ne!(spec.build(1), spec.build(2));
    }

    #[test]
    fn dense_is_actually_dense() {
        let csr = GenSpec::Dense { n: 10, m: 11 }.build(0);
        assert_eq!(csr.nnz(), 110);
    }

    #[test]
    fn stencil2d_interior_rows_have_five_points() {
        let csr = GenSpec::Stencil2d { nx: 5, ny: 5 }.build(0);
        // Center of the grid: full 5-point stencil.
        assert_eq!(csr.row_nnz(12), 5);
        // Corner: 3 points.
        assert_eq!(csr.row_nnz(0), 3);
    }

    #[test]
    fn fem_blocks_contain_full_dof_blocks() {
        use spmv_formats::stats::bcsr_dec_stats;
        use spmv_kernels::BlockShape;
        let csr = GenSpec::FemBlocks {
            nodes: 30,
            dof: 3,
            neighbors: 5,
        }
        .build(9);
        // Every stored entry belongs to a full aligned 3x1 (and 1x3)
        // block — the search-space shapes that tile the natural 3x3
        // node-coupling blocks.
        for shape in [BlockShape::new(3, 1).unwrap(), BlockShape::new(1, 3).unwrap()] {
            let st = bcsr_dec_stats(&csr, shape);
            assert_eq!(st.rest_nnz, 0, "FEM generator must emit pure 3x3 blocks");
            assert_eq!(st.stored, csr.nnz());
        }
    }

    #[test]
    fn diag_runs_are_bcsd_friendly() {
        use spmv_formats::stats::bcsd_stats;
        let csr = GenSpec::DiagRuns { n: 64, n_diags: 3 }.build(3);
        let st = bcsd_stats(&csr, 4);
        // Perfect diagonals: padding only at the matrix edges.
        let padding = st.stored - csr.nnz();
        assert!(
            padding <= 3 * 4 * 2,
            "diagonal generator should pad only at edges, got {padding}"
        );
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let csr = GenSpec::PowerLaw {
            n: 400,
            avg_deg: 5,
            alpha: 1.8,
        }
        .build(11);
        let max_deg = (0..400).map(|i| csr.row_nnz(i)).max().unwrap();
        let min_deg = (0..400).map(|i| csr.row_nnz(i)).min().unwrap();
        assert!(max_deg >= 4 * min_deg.max(1), "degrees not skewed");
    }

    #[test]
    fn circuit_has_full_diagonal() {
        let csr = GenSpec::Circuit {
            n: 50,
            off_per_row: 2,
        }
        .build(5);
        let d = csr.to_dense();
        for i in 0..50 {
            assert!(d.get(i, i) != 0.0, "missing diagonal at {i}");
        }
    }

    #[test]
    fn lp_is_rectangular() {
        let csr = GenSpec::Lp {
            rows: 10,
            cols: 100,
            runs_per_row: 2,
            run_len: 3,
        }
        .build(1);
        assert_eq!(csr.n_rows(), 10);
        assert_eq!(csr.n_cols(), 100);
    }
}
