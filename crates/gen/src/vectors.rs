//! Input-vector generation.
//!
//! The paper's experimental process runs "100 consecutive SpMV operations
//! using randomly generated input vectors" (§V); this module is that
//! vector source, deterministic per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spmv_core::Scalar;

/// A random vector with entries uniform in `[-1, 1)`.
pub fn random_vector<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x853C_49E6_748F_EA9B);
    (0..n)
        .map(|_| T::from_f64(rng.gen::<f64>() * 2.0 - 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let a: Vec<f64> = random_vector(100, 3);
        let b: Vec<f64> = random_vector(100, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn seeds_differ() {
        let a: Vec<f32> = random_vector(50, 1);
        let b: Vec<f32> = random_vector(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_vector() {
        let v: Vec<f64> = random_vector(0, 0);
        assert!(v.is_empty());
    }
}
