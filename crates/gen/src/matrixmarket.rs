//! MatrixMarket coordinate-format I/O.
//!
//! Reads the `.mtx` files distributed by the University of Florida
//! (Tim Davis) sparse matrix collection — the paper's matrix source — so
//! the harness can run on the original suite when the files are present.
//! Supports `real`, `integer`, and `pattern` fields with `general`,
//! `symmetric`, and `skew-symmetric` symmetry; writing always emits
//! `real general`.

use spmv_core::{Coo, Csr, MatrixShape, Scalar};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from MatrixMarket parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content, with the 1-based line number.
    Parse {
        /// Line where parsing failed.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a MatrixMarket coordinate file.
pub fn read_path<T: Scalar>(path: impl AsRef<Path>) -> Result<Csr<T>, MmError> {
    read(BufReader::new(File::open(path)?))
}

/// Reads a MatrixMarket coordinate matrix from any buffered reader.
pub fn read<T: Scalar, R: BufRead>(mut reader: R) -> Result<Csr<T>, MmError> {
    let mut line = String::new();
    let mut lineno = 0usize;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    lineno += 1;
    reader.read_line(&mut line)?;
    let parse_err = |lineno: usize, msg: &str| MmError::Parse {
        line: lineno,
        msg: msg.to_string(),
    };
    let header: Vec<String> = line
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if header.len() != 5 || header[0] != "%%matrixmarket" {
        return Err(parse_err(lineno, "missing %%MatrixMarket header"));
    }
    if header[1] != "matrix" || header[2] != "coordinate" {
        return Err(parse_err(
            lineno,
            "only `matrix coordinate` objects are supported",
        ));
    }
    let field = match header[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(parse_err(
                lineno,
                &format!("unsupported field `{other}` (complex is not supported)"),
            ))
        }
    };
    let symmetry = match header[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(parse_err(
                lineno,
                &format!("unsupported symmetry `{other}`"),
            ))
        }
    };

    // Skip comments, then read the size line.
    let (n_rows, n_cols, nnz) = loop {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err(lineno, "unexpected end of file before size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let n: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad row count"))?;
        let m: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad column count"))?;
        let z: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad nonzero count"))?;
        break (n, m, z);
    };

    // Pre-reserve for the declared entry count, but never trust it with
    // an unbounded allocation: a corrupt size line (say, nnz copied from
    // a 64-bit field of garbage) must surface as a parse error when the
    // body runs short, not abort the process inside the allocator. The
    // entry vector grows on demand past the clamp, so honest files above
    // it only lose the pre-reservation. The saturating doubling keeps
    // symmetric capacity math from overflowing for the same inputs.
    const MAX_PREALLOC: usize = 1 << 22;
    let declared = if symmetry == Symmetry::General {
        nnz
    } else {
        nnz.saturating_mul(2)
    };
    let mut coo = Coo::<T>::with_capacity(n_rows, n_cols, declared.min(MAX_PREALLOC));
    let mut seen = 0usize;
    while seen < nnz {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err(
                lineno,
                &format!("expected {nnz} entries, found {seen}"),
            ));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad row index"))?;
        let j: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad column index"))?;
        if i == 0 || j == 0 {
            return Err(parse_err(lineno, "indices are 1-based"));
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| parse_err(lineno, "bad value"))?,
        };
        coo.push(i - 1, j - 1, T::from_f64(v)).map_err(|e| {
            parse_err(lineno, &e.to_string())
        })?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if i != j => {
                coo.push(j - 1, i - 1, T::from_f64(v))
                    .map_err(|e| parse_err(lineno, &e.to_string()))?;
            }
            Symmetry::SkewSymmetric if i != j => {
                coo.push(j - 1, i - 1, T::from_f64(-v))
                    .map_err(|e| parse_err(lineno, &e.to_string()))?;
            }
            _ => {}
        }
        seen += 1;
    }
    Ok(Csr::from_coo(&coo))
}

/// Writes a CSR matrix as `real general` coordinate MatrixMarket.
pub fn write_path<T: Scalar>(csr: &Csr<T>, path: impl AsRef<Path>) -> io::Result<()> {
    write(csr, BufWriter::new(File::create(path)?))
}

/// Writes a CSR matrix to any writer as `real general` coordinate
/// MatrixMarket.
pub fn write<T: Scalar, W: Write>(csr: &Csr<T>, mut w: W) -> io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by blocked-spmv")?;
    writeln!(w, "{} {} {}", csr.n_rows(), csr.n_cols(), csr.nnz())?;
    for (i, j, v) in csr.iter() {
        writeln!(w, "{} {} {:e}", i + 1, j + 1, v.to_f64())?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn sample() -> Csr<f64> {
        Csr::from_coo(
            &Coo::from_triplets(
                3,
                4,
                vec![(0, 0, 1.5), (0, 3, -2.0), (2, 1, 0.25)],
            )
            .unwrap(),
        )
    }

    #[test]
    fn roundtrip() {
        let csr = sample();
        let mut buf = Vec::new();
        write(&csr, &mut buf).unwrap();
        let back: Csr<f64> = read(&buf[..]).unwrap();
        assert_eq!(csr, back);
    }

    #[test]
    fn reads_pattern_matrices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let csr: Csr<f64> = read(text.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense().get(0, 0), 1.0);
    }

    #[test]
    fn expands_symmetric_matrices() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let csr: Csr<f64> = read(text.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 3); // (1,0), (0,1), (2,2)
        assert_eq!(csr.to_dense().get(0, 1), 5.0);
        assert_eq!(csr.to_dense().get(1, 0), 5.0);
    }

    #[test]
    fn expands_skew_symmetric_matrices() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let csr: Csr<f64> = read(text.as_bytes()).unwrap();
        assert_eq!(csr.to_dense().get(1, 0), 3.0);
        assert_eq!(csr.to_dense().get(0, 1), -3.0);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read::<f64, _>("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read::<f64, _>(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(read::<f64, _>(
            "%%MatrixMarket matrix array real general\n1 1\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_truncated_files() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n";
        let err = read::<f64, _>(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MmError::Parse { .. }));
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices_with_line_numbers() {
        // Indices past the declared dimensions are structured errors
        // carrying the offending line, not panics.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        match read::<f64, _>(text.as_bytes()).unwrap_err() {
            MmError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("outside"), "msg: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 2 1\n3 1 1.0\n";
        // The symmetric mirror entry (1,3) is the out-of-range one.
        assert!(read::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_overflowing_indices_and_counts() {
        // Numbers that do not fit usize fail the parse, they do not wrap.
        let huge = "99999999999999999999999999999";
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n{huge} 1 1.0\n"
        );
        assert!(matches!(
            read::<f64, _>(text.as_bytes()).unwrap_err(),
            MmError::Parse { line: 3, .. }
        ));
        let text = format!("%%MatrixMarket matrix coordinate real general\n{huge} 2 1\n1 1 1.0\n");
        assert!(read::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn absurd_declared_nnz_fails_without_exhausting_memory() {
        // The size line claims ~1e18 entries; the reader must clamp its
        // pre-reservation and fail at EOF instead of aborting in the
        // allocator. `symmetric` doubles the declared count, covering the
        // saturating multiply too.
        for sym in ["general", "symmetric"] {
            let text = format!(
                "%%MatrixMarket matrix coordinate real {sym}\n1000 1000 999999999999999999\n1 1 1.0\n"
            );
            match read::<f64, _>(text.as_bytes()).unwrap_err() {
                MmError::Parse { msg, .. } => {
                    assert!(msg.contains("expected"), "msg: {msg}")
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_size_and_value_lines() {
        // Non-numeric size fields.
        let text = "%%MatrixMarket matrix coordinate real general\ntwo 2 1\n1 1 1.0\n";
        assert!(read::<f64, _>(text.as_bytes()).is_err());
        // Missing nnz field.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1.0\n";
        assert!(read::<f64, _>(text.as_bytes()).is_err());
        // Missing value on a real entry.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
        assert!(read::<f64, _>(text.as_bytes()).is_err());
        // Value that is not a number.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n";
        assert!(read::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty_input_and_missing_size_line() {
        assert!(read::<f64, _>("".as_bytes()).is_err());
        let text = "%%MatrixMarket matrix coordinate real general\n% only comments\n";
        match read::<f64, _>(text.as_bytes()).unwrap_err() {
            MmError::Parse { msg, .. } => assert!(msg.contains("end of file"), "msg: {msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a\n\n% b\n2 2 1\n% mid\n1 2 7.0\n";
        let csr: Csr<f64> = read(text.as_bytes()).unwrap();
        assert_eq!(csr.to_dense().get(0, 1), 7.0);
    }

    #[test]
    fn file_roundtrip() {
        let csr = sample();
        let dir = std::env::temp_dir().join("spmv_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.mtx");
        write_path(&csr, &path).unwrap();
        let back: Csr<f64> = read_path(&path).unwrap();
        assert_eq!(csr, back);
        std::fs::remove_file(&path).ok();
    }
}
