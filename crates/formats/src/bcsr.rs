//! Blocked Compressed Sparse Row (BCSR) with zero padding.

use crate::narrow::ColIdx;
use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, IndexWidth, MatrixShape, Result, SpMv, SpMvMulti, MAX_INDEX};
use spmv_kernels::registry::{bcsr_row_kernel, bcsr_row_multi_kernel, BcsrRowKernel};
use spmv_kernels::scalar::{bcsr_block_row_clipped, bcsr_block_row_multi_clipped};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{multi_chunk, BlockShape, KernelImpl};

/// BCSR: fixed-size `r x c` blocks with aggressive zero padding (§II-A).
///
/// Three arrays store the matrix: `bval` (the `r*c` values of every block,
/// row-major), `bcol_start` (one start column per block), and `brow_ptr`
/// (one offset per block row). Every block with at least one nonzero is
/// materialized in full; missing positions hold explicit zeros — that
/// padding is the price of the uniform, fully unrolled kernels.
///
/// In the paper's (default) *aligned* variant every block starts at
/// `(i, j)` with `i % r == 0` and `j % c == 0`. The *unaligned* variant
/// (cf. the UBCSR remark in §II-A, exercised by the alignment ablation)
/// keeps row alignment but packs blocks greedily at arbitrary start
/// columns, trading construction simplicity for less padding.
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::Bcsr;
/// use spmv_kernels::{BlockShape, KernelImpl};
///
/// let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
///     (0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0), // one full 2x2 block
///     (2, 2, 5.0),                                        // one block with 3 padded zeros
/// ]).unwrap());
/// let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
/// assert_eq!(bcsr.n_blocks(), 2);
/// assert_eq!(bcsr.padding(), 3);
/// assert_eq!(bcsr.spmv(&[1.0; 4]), csr.spmv(&[1.0; 4]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr<T> {
    n_rows: usize,
    n_cols: usize,
    shape: BlockShape,
    aligned: bool,
    imp: KernelImpl,
    /// Offset of each block row's first block; `n_brows + 1` entries.
    brow_ptr: Vec<Index>,
    /// Absolute start column of each block, sorted within a block row,
    /// stored at u32 (default) or u16 (narrow) width.
    bcol_start: ColIdx,
    /// Block values, `r * c` per block, row-major within the block.
    bval: Vec<T>,
    /// Nonzeros of the source matrix (excludes padding).
    nnz_orig: usize,
}

impl<T: SimdScalar> Bcsr<T> {
    /// Converts `csr` to aligned BCSR with the given block shape.
    ///
    /// # Panics
    ///
    /// Panics if the block count would overflow the `u32` index type.
    pub fn from_csr(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl) -> Self {
        Self::from_csr_with(csr, shape, imp, true)
    }

    /// Converts `csr` to aligned BCSR storing block start columns at the
    /// narrowest width [`IndexWidth::for_cols`] allows (u16 when the
    /// column space fits, the u32 baseline otherwise). The kernels and the
    /// numerical result are identical to [`Bcsr::from_csr`] — only the
    /// index bytes streamed per iteration shrink.
    ///
    /// # Panics
    ///
    /// Panics if the block count would overflow the `u32` index type.
    pub fn from_csr_narrow(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl) -> Self {
        let mut bcsr = Self::from_csr(csr, shape, imp);
        bcsr.bcol_start = core::mem::replace(&mut bcsr.bcol_start, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        bcsr
    }

    /// Converts `csr` to BCSR, choosing block alignment.
    ///
    /// With `aligned == false`, blocks still cover whole block rows but may
    /// start at any column; starts are chosen greedily left-to-right, which
    /// covers each block row's nonzero columns with pairwise-disjoint
    /// blocks.
    pub fn from_csr_with(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl, aligned: bool) -> Self {
        let (r, c) = (shape.rows(), shape.cols());
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_brows = n_rows.div_ceil(r);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_brows + 1);
        brow_ptr.push(0);
        let mut bcol_start: Vec<Index> = Vec::new();
        let mut bval: Vec<T> = Vec::new();

        // Scratch reused across block rows.
        let mut temp: Vec<(Index, usize, T)> = Vec::new(); // (start col, slot, value)
        let mut cols: Vec<Index> = Vec::new();
        let mut starts: Vec<Index> = Vec::new();

        for rb in 0..n_brows {
            temp.clear();
            starts.clear();
            let row_hi = ((rb + 1) * r).min(n_rows);

            if aligned {
                for i in rb * r..row_hi {
                    let il = i - rb * r;
                    let (rcols, rvals) = csr.row(i);
                    for (&j, &v) in rcols.iter().zip(rvals) {
                        let j0 = j / c as Index * c as Index;
                        temp.push((j0, il * c + (j - j0) as usize, v));
                    }
                }
                starts.extend(temp.iter().map(|t| t.0));
                starts.sort_unstable();
                starts.dedup();
            } else {
                // Greedy unaligned packing over the union of the block
                // row's nonzero columns.
                cols.clear();
                for i in rb * r..row_hi {
                    cols.extend_from_slice(csr.row(i).0);
                }
                cols.sort_unstable();
                cols.dedup();
                let mut cover_end = 0 as Index;
                for &j in &cols {
                    if j >= cover_end || starts.is_empty() {
                        starts.push(j);
                        cover_end = j + c as Index;
                    }
                }
                for i in rb * r..row_hi {
                    let il = i - rb * r;
                    let (rcols, rvals) = csr.row(i);
                    for (&j, &v) in rcols.iter().zip(rvals) {
                        // The covering block is the last start <= j.
                        let k = match starts.binary_search(&j) {
                            Ok(k) => k,
                            Err(k) => k - 1,
                        };
                        let j0 = starts[k];
                        debug_assert!(j < j0 + c as Index);
                        temp.push((j0, il * c + (j - j0) as usize, v));
                    }
                }
            }

            let base = bcol_start.len();
            assert!(
                base + starts.len() <= MAX_INDEX,
                "BCSR block count overflows u32"
            );
            bcol_start.extend_from_slice(&starts);
            bval.resize(bval.len() + starts.len() * r * c, T::ZERO);
            for &(j0, slot, v) in &temp {
                let k = base + starts.binary_search(&j0).expect("start recorded above");
                bval[k * r * c + slot] = v;
            }
            brow_ptr.push(bcol_start.len() as Index);
        }

        Bcsr {
            n_rows,
            n_cols,
            shape,
            aligned,
            imp,
            brow_ptr,
            bcol_start: ColIdx::wide(bcol_start),
            bval,
            nnz_orig: csr.nnz(),
        }
    }

    /// Assembles a BCSR matrix from prebuilt arrays (used by the
    /// decomposed constructor, which extracts only full blocks).
    #[allow(clippy::too_many_arguments)] // mirrors the stored fields one-to-one
    pub(crate) fn from_parts(
        n_rows: usize,
        n_cols: usize,
        shape: BlockShape,
        aligned: bool,
        imp: KernelImpl,
        brow_ptr: Vec<Index>,
        bcol_start: Vec<Index>,
        bval: Vec<T>,
        nnz_orig: usize,
    ) -> Self {
        let bcsr = Bcsr {
            n_rows,
            n_cols,
            shape,
            aligned,
            imp,
            brow_ptr,
            bcol_start: ColIdx::wide(bcol_start),
            bval,
            nnz_orig,
        };
        debug_assert!(bcsr.validate().is_ok());
        bcsr
    }

    /// The storage width of the block start-column array.
    pub fn index_width(&self) -> IndexWidth {
        self.bcol_start.width()
    }

    /// The block shape `r x c`.
    pub fn shape(&self) -> BlockShape {
        self.shape
    }

    /// Whether blocks are aligned at `r`/`c` boundaries.
    pub fn aligned(&self) -> bool {
        self.aligned
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Total number of blocks, `nb`.
    pub fn n_blocks(&self) -> usize {
        self.bcol_start.len()
    }

    /// Explicit zeros added to complete blocks.
    pub fn padding(&self) -> usize {
        self.bval.len() - self.nnz_orig
    }

    /// Nonzeros of the source matrix.
    pub fn nnz_orig(&self) -> usize {
        self.nnz_orig
    }

    /// Fraction of stored values that are true nonzeros, `nnz / (nb*r*c)`.
    pub fn fill_ratio(&self) -> f64 {
        if self.bval.is_empty() {
            1.0
        } else {
            self.nnz_orig as f64 / self.bval.len() as f64
        }
    }

    /// Converts back to CSR, dropping the padding zeros.
    ///
    /// Because COO→CSR construction discards exact zeros, every zero in
    /// `bval` is padding, so `bcsr.to_csr()` reproduces the source matrix
    /// exactly: `Bcsr::from_csr(&m, ..).to_csr() == m`.
    pub fn to_csr(&self) -> Csr<T> {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.nnz_orig);
        for rb in 0..self.brow_ptr.len() - 1 {
            for k in self.brow_ptr[rb] as usize..self.brow_ptr[rb + 1] as usize {
                let j0 = self.bcol_start.get(k) as usize;
                for i in 0..r {
                    let row = rb * r + i;
                    if row >= self.n_rows {
                        break;
                    }
                    for j in 0..c {
                        let col = j0 + j;
                        let v = self.bval[k * r * c + i * c + j];
                        if col < self.n_cols && v != T::ZERO {
                            coo.push(row, col, v).expect("block inside matrix");
                        }
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let n_brows = self.n_rows.div_ceil(r);
        if self.brow_ptr.len() != n_brows + 1 {
            return Err(Error::InvalidStructure(format!(
                "brow_ptr has {} entries, expected {}",
                self.brow_ptr.len(),
                n_brows + 1
            )));
        }
        if self.brow_ptr.first() != Some(&0)
            || *self.brow_ptr.last().unwrap() as usize != self.bcol_start.len()
        {
            return Err(Error::InvalidStructure("brow_ptr endpoints wrong".into()));
        }
        if self.bval.len() != self.bcol_start.len() * r * c {
            return Err(Error::InvalidStructure("bval length mismatch".into()));
        }
        for w in self.brow_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(Error::InvalidStructure("brow_ptr not monotone".into()));
            }
        }
        for rb in 0..n_brows {
            let range = self.brow_ptr[rb] as usize..self.brow_ptr[rb + 1] as usize;
            for k in range.clone().skip(1) {
                // Aligned blocks are c apart; unaligned merely disjoint.
                if self.bcol_start.get(k) < self.bcol_start.get(k - 1) + c as Index {
                    return Err(Error::InvalidStructure(format!(
                        "block row {rb}: overlapping or unsorted blocks"
                    )));
                }
            }
            for k in range {
                let j0 = self.bcol_start.get(k);
                if self.aligned && !(j0 as usize).is_multiple_of(c) {
                    return Err(Error::InvalidStructure(format!(
                        "block row {rb}: start column {j0} breaks alignment"
                    )));
                }
                if j0 as usize >= self.n_cols {
                    return Err(Error::OutOfBounds {
                        row: rb * r,
                        col: j0 as usize,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Shared implementation of `spmv_acc`; `y` must already hold the
    /// values to accumulate onto.
    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let kern: BcsrRowKernel<T> = bcsr_row_kernel(self.shape, self.imp);
        let n_brows = self.brow_ptr.len() - 1;
        let rc = r * c;
        // Widening scratch for narrow indices; empty (never touched) at u32.
        let mut scratch: Vec<Index> = Vec::new();
        for rb in 0..n_brows {
            let start = self.brow_ptr[rb] as usize;
            let end = self.brow_ptr[rb + 1] as usize;
            if start == end {
                continue;
            }
            let y0 = rb * r;
            if y0 + r <= self.n_rows {
                // Full-height block row: trailing blocks may still clip at
                // the right edge (starts are sorted, so they are a suffix).
                let yrow = &mut y[y0..y0 + r];
                let mut fast_end = end;
                while fast_end > start
                    && self.bcol_start.get(fast_end - 1) as usize + c > self.n_cols
                {
                    fast_end -= 1;
                }
                if fast_end > start {
                    kern(
                        &self.bval[start * rc..fast_end * rc],
                        self.bcol_start.slice(start..fast_end, &mut scratch),
                        x,
                        yrow,
                    );
                }
                if fast_end < end {
                    bcsr_block_row_clipped(
                        r,
                        c,
                        &self.bval[fast_end * rc..end * rc],
                        self.bcol_start.slice(fast_end..end, &mut scratch),
                        x,
                        yrow,
                    );
                }
            } else {
                // Short final block row: go through the clipped kernel.
                let yrow = &mut y[y0..self.n_rows];
                bcsr_block_row_clipped(
                    r,
                    c,
                    &self.bval[start * rc..end * rc],
                    self.bcol_start.slice(start..end, &mut scratch),
                    x,
                    yrow,
                );
            }
        }
    }

    /// Shared implementation of `spmv_multi_acc`: greedy chunking of `k`
    /// into the specialized kernel counts, each chunk streaming the block
    /// arrays once for its whole batch of vectors.
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            self.multi_acc_chunk(&x[t0 * m..(t0 + kc) * m], &mut y[t0 * n..(t0 + kc) * n], kc);
            t0 += kc;
        }
    }

    /// One `kc`-vector pass over the matrix; `kc` must be a specialized
    /// count. Mirrors the interior/clipped split of `spmv_acc_impl`, with
    /// whole column blocks of `x`/`y` in place of single vectors.
    fn multi_acc_chunk(&self, x: &[T], y: &mut [T], kc: usize) {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let kern = bcsr_row_multi_kernel::<T>(self.shape, kc, self.imp)
            .expect("chunked to a specialized vector count");
        let (m, n) = (self.n_cols, self.n_rows);
        let n_brows = self.brow_ptr.len() - 1;
        let rc = r * c;
        let mut scratch: Vec<Index> = Vec::new();
        for rb in 0..n_brows {
            let start = self.brow_ptr[rb] as usize;
            let end = self.brow_ptr[rb + 1] as usize;
            if start == end {
                continue;
            }
            let y0 = rb * r;
            if y0 + r <= n {
                let mut fast_end = end;
                while fast_end > start && self.bcol_start.get(fast_end - 1) as usize + c > m {
                    fast_end -= 1;
                }
                if fast_end > start {
                    kern(
                        &self.bval[start * rc..fast_end * rc],
                        self.bcol_start.slice(start..fast_end, &mut scratch),
                        x,
                        m,
                        y,
                        n,
                        y0,
                    );
                }
                if fast_end < end {
                    bcsr_block_row_multi_clipped(
                        r,
                        c,
                        kc,
                        &self.bval[fast_end * rc..end * rc],
                        self.bcol_start.slice(fast_end..end, &mut scratch),
                        x,
                        m,
                        y,
                        n,
                        y0,
                        r,
                    );
                }
            } else {
                bcsr_block_row_multi_clipped(
                    r,
                    c,
                    kc,
                    &self.bval[start * rc..end * rc],
                    self.bcol_start.slice(start..end, &mut scratch),
                    x,
                    m,
                    y,
                    n,
                    y0,
                    n - y0,
                );
            }
        }
    }
}

impl<T> MatrixShape for Bcsr<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for Bcsr<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.bval.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.bval.len() * T::BYTES
            + self.bcol_start.bytes()
            + self.brow_ptr.len() * core::mem::size_of::<Index>()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for Bcsr<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for Bcsr<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for Bcsr<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn fixture_csr(n: usize, m: usize, seed: u64) -> Csr<f64> {
        // Deterministic pseudo-random pattern with clustered structure.
        let mut coo = Coo::new(n, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..3 {
                let j = (next() as usize) % m;
                let v = 1.0 + (next() % 9) as f64;
                let _ = coo.push(i, j, v);
                // Clustered neighbour to create some real blocks.
                if j + 1 < m {
                    let _ = coo.push(i, j + 1, v + 0.5);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn all_shapes_match_csr_reference() {
        let csr = fixture_csr(23, 31, 7); // dims not multiples of any shape
        let x: Vec<f64> = (0..31).map(|i| 1.0 + (i % 5) as f64).collect();
        let want = csr.spmv(&x);
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let bcsr = Bcsr::from_csr(&csr, shape, imp);
                bcsr.validate().unwrap();
                let got = bcsr.spmv(&x);
                for (a, b) in want.iter().zip(&got) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "shape {shape} imp {imp}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn unaligned_matches_csr_and_pads_less() {
        let csr = fixture_csr(40, 40, 3);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).sin() + 2.0).collect();
        let want = csr.spmv(&x);
        let shape = BlockShape::new(1, 4).unwrap();
        let aligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, true);
        let unaligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false);
        aligned.validate().unwrap();
        unaligned.validate().unwrap();
        for (a, b) in want.iter().zip(unaligned.spmv(&x)) {
            assert!((a - b).abs() < 1e-9);
        }
        // Greedy unaligned packing never needs more blocks than aligned.
        assert!(unaligned.n_blocks() <= aligned.n_blocks());
        assert!(unaligned.padding() <= aligned.padding());
    }

    #[test]
    fn dense_2x2_blocks_have_zero_padding() {
        // An 8x8 dense matrix blocks perfectly for any shape dividing 8.
        let dense = spmv_core::DenseMatrix::<f64>::profiling(8, 8);
        let csr = Csr::from_dense(&dense);
        let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(bcsr.n_blocks(), 16);
        assert_eq!(bcsr.padding(), 0);
        assert_eq!(bcsr.fill_ratio(), 1.0);
    }

    #[test]
    fn alignment_forces_padding() {
        // A single 1x2 run at an odd column must be split by alignment
        // into two padded blocks, but fits one unaligned block.
        let csr = Csr::from_coo(
            &Coo::from_triplets(1, 6, vec![(0, 1, 1.0), (0, 2, 1.0)]).unwrap(),
        );
        let shape = BlockShape::new(1, 2).unwrap();
        let aligned = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
        let unaligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false);
        assert_eq!(aligned.n_blocks(), 2);
        assert_eq!(aligned.padding(), 2);
        assert_eq!(unaligned.n_blocks(), 1);
        assert_eq!(unaligned.padding(), 0);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = fixture_csr(6, 6, 1);
        let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        let x = vec![1.0; 6];
        let base = csr.spmv(&x);
        let mut y = base.clone();
        bcsr.spmv_acc(&x, &mut y);
        for (a, b) in y.iter().zip(&base) {
            assert!((a - 2.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn working_set_shrinks_for_blocky_matrices() {
        // A matrix of pure 2x2 blocks: BCSR stores 1 index per 4 values,
        // so its working set must undercut CSR's.
        let mut coo = Coo::new(64, 64);
        for bi in 0..32 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(bcsr.padding(), 0);
        assert!(bcsr.matrix_bytes() < csr.matrix_bytes());
    }

    #[test]
    fn empty_and_tiny_matrices() {
        let csr = Csr::<f64>::from_coo(&Coo::new(3, 3));
        let bcsr = Bcsr::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(bcsr.n_blocks(), 0);
        assert_eq!(bcsr.spmv(&[1.0; 3]), vec![0.0; 3]);
        bcsr.validate().unwrap();

        let one = Csr::from_coo(&Coo::from_triplets(1, 1, vec![(0, 0, 5.0)]).unwrap());
        let b = Bcsr::from_csr(&one, BlockShape::new(2, 4).unwrap(), KernelImpl::Simd);
        assert_eq!(b.spmv(&[2.0]), vec![10.0]);
        assert_eq!(b.padding(), 7);
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let csr = fixture_csr(23, 31, 7);
        for shape in [BlockShape::new(2, 2).unwrap(), BlockShape::new(3, 2).unwrap()] {
            for imp in KernelImpl::ALL {
                let bcsr = Bcsr::from_csr(&csr, shape, imp);
                // k = 7 exercises the 4 + 2 + 1 greedy chunking.
                for k in [1, 3, 4, 7] {
                    let x: Vec<f64> = (0..31 * k).map(|i| 1.0 + (i % 9) as f64).collect();
                    let got = bcsr.spmv_multi(&x, k);
                    for t in 0..k {
                        let want = bcsr.spmv(&x[t * 31..(t + 1) * 31]);
                        assert_eq!(got[t * 23..(t + 1) * 23], want, "shape {shape} k={k} t={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_indices_are_bitwise_equal_and_smaller() {
        let csr = fixture_csr(23, 31, 7);
        for shape in [BlockShape::new(2, 2).unwrap(), BlockShape::new(1, 4).unwrap()] {
            for imp in KernelImpl::ALL {
                let wide = Bcsr::from_csr(&csr, shape, imp);
                let narrow = Bcsr::from_csr_narrow(&csr, shape, imp);
                narrow.validate().unwrap();
                assert_eq!(narrow.index_width(), IndexWidth::U16);
                assert_eq!(wide.index_width(), IndexWidth::U32);
                assert!(narrow.matrix_bytes() < wide.matrix_bytes());
                for k in [1, 3] {
                    let x: Vec<f64> = (0..31 * k).map(|i| 1.0 + (i % 9) as f64).collect();
                    // Same kernels, same values, only index width differs:
                    // the products must be bitwise identical.
                    assert_eq!(
                        narrow.spmv_multi(&x, k),
                        wide.spmv_multi(&x, k),
                        "shape {shape} imp {imp} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn narrow_constructor_falls_back_to_u32_when_too_wide() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(1, 70_000, vec![(0, 69_999, 1.0)]).unwrap(),
        );
        let b = Bcsr::from_csr_narrow(&csr, BlockShape::new(1, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(b.index_width(), IndexWidth::U32);
        b.validate().unwrap();
    }

    #[test]
    fn single_precision_matches_reference() {
        let csrf: Csr<f32> = {
            let mut coo = Coo::new(10, 10);
            for i in 0..10 {
                coo.push(i, i, 2.0).unwrap();
                coo.push(i, (i + 3) % 10, 1.0).unwrap();
            }
            Csr::from_coo(&coo)
        };
        let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let want = csrf.spmv(&x);
        for imp in KernelImpl::ALL {
            let b = Bcsr::from_csr(&csrf, BlockShape::new(3, 2).unwrap(), imp);
            let got = b.spmv(&x);
            for (a, g) in want.iter().zip(&got) {
                assert!((a - g).abs() < 1e-4);
            }
        }
    }
}
