//! Blocked Compressed Sparse Diagonal (BCSD) with zero padding.

use crate::narrow::ColIdx;
use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, IndexWidth, MatrixShape, Result, SpMv, SpMvMulti, MAX_INDEX};
use spmv_kernels::registry::{bcsd_seg_kernel, bcsd_seg_multi_kernel, BcsdSegKernel};
use spmv_kernels::scalar::{bcsd_segment_clipped, bcsd_segment_multi_clipped};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{multi_chunk, KernelImpl};

/// BCSD: fixed-size diagonal blocks with zero padding (§II-A).
///
/// The matrix is cut into row *segments* of height `b` (the alignment rule
/// `i % b == 0`). A diagonal block starting at `(s*b, j0)` covers the
/// positions `(s*b + t, j0 + t)` for `t` in `[0, b)`; `bval` stores the
/// `b` diagonal values of every block, `bcol` one start column per block
/// (biased by `+b`, see below), and `brow_ptr` one offset per segment.
/// Missing diagonal positions are padded with explicit zeros.
///
/// Elements within `b-1` columns of the left edge can only sit on
/// diagonals whose conceptual start column is negative; those blocks are
/// clipped at the edge exactly like blocks leaving the matrix on the
/// right. To keep `u32` indices, stored start columns carry a `+b` bias
/// (`stored = j0 + b`), which the kernels subtract.
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::Bcsd;
/// use spmv_kernels::KernelImpl;
///
/// // A perfect tridiagonal-free case: one full diagonal run.
/// let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0),
/// ]).unwrap());
/// let bcsd = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
/// assert_eq!(bcsd.n_blocks(), 1);
/// assert_eq!(bcsd.padding(), 0);
/// assert_eq!(bcsd.spmv(&[1.0; 4]), csr.spmv(&[1.0; 4]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsd<T> {
    n_rows: usize,
    n_cols: usize,
    b: usize,
    imp: KernelImpl,
    /// Offset of each segment's first block; `n_segments + 1` entries.
    brow_ptr: Vec<Index>,
    /// Start column of each block, biased by `+b`, sorted per segment,
    /// stored at u32 (default) or u16 (narrow) width.
    bcol_biased: ColIdx,
    /// Block values, `b` per block (diagonal order).
    bval: Vec<T>,
    nnz_orig: usize,
}

impl<T: SimdScalar> Bcsd<T> {
    /// Converts `csr` to BCSD with diagonal blocks of size `b`
    /// (`1 <= b <= 8`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `1..=8` or the block count overflows the
    /// `u32` index type.
    pub fn from_csr(csr: &Csr<T>, b: usize, imp: KernelImpl) -> Self {
        assert!((1..=8).contains(&b), "BCSD block size must be in 1..=8");
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_segs = n_rows.div_ceil(b);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_segs + 1);
        brow_ptr.push(0);
        let mut bcol_biased: Vec<Index> = Vec::new();
        let mut bval: Vec<T> = Vec::new();

        let mut temp: Vec<(Index, usize, T)> = Vec::new(); // (biased start, t, value)
        let mut starts: Vec<Index> = Vec::new();

        for s in 0..n_segs {
            temp.clear();
            starts.clear();
            let row_hi = ((s + 1) * b).min(n_rows);
            for i in s * b..row_hi {
                let t = i - s * b;
                let (rcols, rvals) = csr.row(i);
                for (&j, &v) in rcols.iter().zip(rvals) {
                    // True start column j0 = j - t may be negative; the +b
                    // bias keeps it unsigned.
                    let biased = (j as i64 - t as i64 + b as i64) as Index;
                    temp.push((biased, t, v));
                }
            }
            starts.extend(temp.iter().map(|e| e.0));
            starts.sort_unstable();
            starts.dedup();

            let base = bcol_biased.len();
            assert!(
                base + starts.len() <= MAX_INDEX,
                "BCSD block count overflows u32"
            );
            bcol_biased.extend_from_slice(&starts);
            bval.resize(bval.len() + starts.len() * b, T::ZERO);
            for &(biased, t, v) in &temp {
                let k = base + starts.binary_search(&biased).expect("start recorded");
                bval[k * b + t] = v;
            }
            brow_ptr.push(bcol_biased.len() as Index);
        }

        Bcsd {
            n_rows,
            n_cols,
            b,
            imp,
            brow_ptr,
            bcol_biased: ColIdx::wide(bcol_biased),
            bval,
            nnz_orig: csr.nnz(),
        }
    }

    /// Converts `csr` to BCSD storing the biased start columns at the
    /// narrowest width [`IndexWidth::for_cols`] allows. The shared
    /// eligibility bound already accounts for the `+b <= +8` bias, so the
    /// largest biased start (`n_cols - 1 + b`) always fits the chosen
    /// width. Kernels and results are identical to [`Bcsd::from_csr`].
    ///
    /// # Panics
    ///
    /// Panics as [`Bcsd::from_csr`] does.
    pub fn from_csr_narrow(csr: &Csr<T>, b: usize, imp: KernelImpl) -> Self {
        let mut bcsd = Self::from_csr(csr, b, imp);
        bcsd.bcol_biased = core::mem::replace(&mut bcsd.bcol_biased, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        bcsd
    }

    /// Assembles a BCSD matrix from prebuilt arrays (used by the
    /// decomposed constructor, which extracts only full blocks).
    #[allow(clippy::too_many_arguments)] // mirrors the stored fields one-to-one
    pub(crate) fn from_parts(
        n_rows: usize,
        n_cols: usize,
        b: usize,
        imp: KernelImpl,
        brow_ptr: Vec<Index>,
        bcol_biased: Vec<Index>,
        bval: Vec<T>,
        nnz_orig: usize,
    ) -> Self {
        let bcsd = Bcsd {
            n_rows,
            n_cols,
            b,
            imp,
            brow_ptr,
            bcol_biased: ColIdx::wide(bcol_biased),
            bval,
            nnz_orig,
        };
        debug_assert!(bcsd.validate().is_ok());
        bcsd
    }

    /// The storage width of the biased start-column array.
    pub fn index_width(&self) -> IndexWidth {
        self.bcol_biased.width()
    }

    /// The diagonal block size `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Total number of diagonal blocks, `nb`.
    pub fn n_blocks(&self) -> usize {
        self.bcol_biased.len()
    }

    /// Explicit zeros added to complete blocks.
    pub fn padding(&self) -> usize {
        self.bval.len() - self.nnz_orig
    }

    /// Nonzeros of the source matrix.
    pub fn nnz_orig(&self) -> usize {
        self.nnz_orig
    }

    /// Fraction of stored values that are true nonzeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.bval.is_empty() {
            1.0
        } else {
            self.nnz_orig as f64 / self.bval.len() as f64
        }
    }

    /// Converts back to CSR, dropping the padding zeros (exact inverse of
    /// [`Bcsd::from_csr`], since source zeros are never stored).
    pub fn to_csr(&self) -> Csr<T> {
        let b = self.b;
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.nnz_orig);
        for s in 0..self.brow_ptr.len() - 1 {
            for k in self.brow_ptr[s] as usize..self.brow_ptr[s + 1] as usize {
                let j0 = self.bcol_biased.get(k) as i64 - b as i64;
                for t in 0..b {
                    let row = s * b + t;
                    let col = j0 + t as i64;
                    let v = self.bval[k * b + t];
                    if row < self.n_rows
                        && (0..self.n_cols as i64).contains(&col)
                        && v != T::ZERO
                    {
                        coo.push(row, col as usize, v).expect("inside matrix");
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let n_segs = self.n_rows.div_ceil(self.b);
        if self.brow_ptr.len() != n_segs + 1 {
            return Err(Error::InvalidStructure(format!(
                "brow_ptr has {} entries, expected {}",
                self.brow_ptr.len(),
                n_segs + 1
            )));
        }
        if self.brow_ptr.first() != Some(&0)
            || *self.brow_ptr.last().unwrap() as usize != self.bcol_biased.len()
        {
            return Err(Error::InvalidStructure("brow_ptr endpoints wrong".into()));
        }
        if self.bval.len() != self.bcol_biased.len() * self.b {
            return Err(Error::InvalidStructure("bval length mismatch".into()));
        }
        for s in 0..n_segs {
            let range = self.brow_ptr[s] as usize..self.brow_ptr[s + 1] as usize;
            for k in range.clone().skip(1) {
                if self.bcol_biased.get(k - 1) >= self.bcol_biased.get(k) {
                    return Err(Error::InvalidStructure(format!(
                        "segment {s}: duplicate or unsorted blocks"
                    )));
                }
            }
            for k in range {
                let j0 = self.bcol_biased.get(k) as i64 - self.b as i64;
                if j0 <= -(self.b as i64) || j0 >= self.n_cols as i64 {
                    return Err(Error::InvalidStructure(format!(
                        "segment {s}: block start {j0} entirely outside the matrix"
                    )));
                }
            }
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let b = self.b;
        let kern: BcsdSegKernel<T> = bcsd_seg_kernel(b, self.imp);
        let n_segs = self.brow_ptr.len() - 1;
        // Widening scratch for narrow indices; empty (never touched) at u32.
        let mut scratch: Vec<Index> = Vec::new();
        for s in 0..n_segs {
            let start = self.brow_ptr[s] as usize;
            let end = self.brow_ptr[s + 1] as usize;
            if start == end {
                continue;
            }
            let y0 = s * b;
            if y0 + b <= self.n_rows {
                let yseg = &mut y[y0..y0 + b];
                // Left-clipped blocks (j0 < 0 ⇔ biased < b) form a sorted
                // prefix; right-clipped ones (j0 + b > n_cols ⇔ biased >
                // n_cols) a sorted suffix.
                let mut lo = start;
                while lo < end && (self.bcol_biased.get(lo) as usize) < b {
                    lo += 1;
                }
                let mut hi = end;
                while hi > lo && self.bcol_biased.get(hi - 1) as usize > self.n_cols {
                    hi -= 1;
                }
                if lo > start {
                    bcsd_segment_clipped(
                        b,
                        &self.bval[start * b..lo * b],
                        self.bcol_biased.slice(start..lo, &mut scratch),
                        x,
                        yseg,
                    );
                }
                if hi > lo {
                    kern(
                        &self.bval[lo * b..hi * b],
                        self.bcol_biased.slice(lo..hi, &mut scratch),
                        x,
                        yseg,
                    );
                }
                if end > hi {
                    bcsd_segment_clipped(
                        b,
                        &self.bval[hi * b..end * b],
                        self.bcol_biased.slice(hi..end, &mut scratch),
                        x,
                        yseg,
                    );
                }
            } else {
                let yseg = &mut y[y0..self.n_rows];
                bcsd_segment_clipped(
                    b,
                    &self.bval[start * b..end * b],
                    self.bcol_biased.slice(start..end, &mut scratch),
                    x,
                    yseg,
                );
            }
        }
    }

    /// Shared implementation of `spmv_multi_acc` (greedy chunking, as in
    /// BCSR).
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            self.multi_acc_chunk(&x[t0 * m..(t0 + kc) * m], &mut y[t0 * n..(t0 + kc) * n], kc);
            t0 += kc;
        }
    }

    /// One `kc`-vector pass, mirroring the interior/clipped split of
    /// `spmv_acc_impl`.
    fn multi_acc_chunk(&self, x: &[T], y: &mut [T], kc: usize) {
        let b = self.b;
        let kern = bcsd_seg_multi_kernel::<T>(b, kc, self.imp)
            .expect("chunked to a specialized vector count");
        let (m, n) = (self.n_cols, self.n_rows);
        let n_segs = self.brow_ptr.len() - 1;
        let mut scratch: Vec<Index> = Vec::new();
        for s in 0..n_segs {
            let start = self.brow_ptr[s] as usize;
            let end = self.brow_ptr[s + 1] as usize;
            if start == end {
                continue;
            }
            let y0 = s * b;
            if y0 + b <= n {
                let mut lo = start;
                while lo < end && (self.bcol_biased.get(lo) as usize) < b {
                    lo += 1;
                }
                let mut hi = end;
                while hi > lo && self.bcol_biased.get(hi - 1) as usize > m {
                    hi -= 1;
                }
                if lo > start {
                    bcsd_segment_multi_clipped(
                        b,
                        kc,
                        &self.bval[start * b..lo * b],
                        self.bcol_biased.slice(start..lo, &mut scratch),
                        x,
                        m,
                        y,
                        n,
                        y0,
                        b,
                    );
                }
                if hi > lo {
                    kern(
                        &self.bval[lo * b..hi * b],
                        self.bcol_biased.slice(lo..hi, &mut scratch),
                        x,
                        m,
                        y,
                        n,
                        y0,
                    );
                }
                if end > hi {
                    bcsd_segment_multi_clipped(
                        b,
                        kc,
                        &self.bval[hi * b..end * b],
                        self.bcol_biased.slice(hi..end, &mut scratch),
                        x,
                        m,
                        y,
                        n,
                        y0,
                        b,
                    );
                }
            } else {
                bcsd_segment_multi_clipped(
                    b,
                    kc,
                    &self.bval[start * b..end * b],
                    self.bcol_biased.slice(start..end, &mut scratch),
                    x,
                    m,
                    y,
                    n,
                    y0,
                    n - y0,
                );
            }
        }
    }
}

impl<T> MatrixShape for Bcsd<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for Bcsd<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.bval.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.bval.len() * T::BYTES
            + self.bcol_biased.bytes()
            + self.brow_ptr.len() * core::mem::size_of::<Index>()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for Bcsd<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for Bcsd<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for Bcsd<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn fixture_csr(n: usize, m: usize, seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            // Diagonal-ish structure plus scattered entries, including
            // the left-edge corner that forces negative start columns.
            if i < m {
                let _ = coo.push(i, i, 2.0 + (i % 5) as f64);
            }
            let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
            let _ = coo.push(i, 0, 0.5);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn all_sizes_match_csr_reference() {
        let csr = fixture_csr(23, 19, 11);
        let x: Vec<f64> = (0..19).map(|i| 1.0 + (i % 7) as f64).collect();
        let want = csr.spmv(&x);
        for b in spmv_kernels::BCSD_SIZES {
            for imp in KernelImpl::ALL {
                let bcsd = Bcsd::from_csr(&csr, b, imp);
                bcsd.validate().unwrap();
                let got = bcsd.spmv(&x);
                for (a, g) in want.iter().zip(&got) {
                    assert!((a - g).abs() < 1e-9, "b={b} imp={imp}: {a} vs {g}");
                }
            }
        }
    }

    #[test]
    fn pure_diagonal_has_no_padding_when_b_divides_n() {
        let csr = fixture_csr(16, 16, 0);
        let diag = {
            let mut coo = Coo::new(16, 16);
            for i in 0..16 {
                coo.push(i, i, 1.0).unwrap();
            }
            Csr::from_coo(&coo)
        };
        let bcsd = Bcsd::from_csr(&diag, 4, KernelImpl::Scalar);
        assert_eq!(bcsd.n_blocks(), 4);
        assert_eq!(bcsd.padding(), 0);
        // While the random fixture pads plenty.
        let messy = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        assert!(messy.padding() > 0);
    }

    #[test]
    fn off_diagonal_band_blocks() {
        // A full superdiagonal: every segment has one diagonal block
        // starting at column s*b + 1, padded in its last slot... actually
        // a shifted diagonal stays a perfect diagonal run per segment.
        let mut coo = Coo::new(8, 9);
        for i in 0..8 {
            coo.push(i, i + 1, 1.0).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let bcsd = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        assert_eq!(bcsd.n_blocks(), 2);
        assert_eq!(bcsd.padding(), 0);
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        assert_eq!(bcsd.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn left_edge_negative_start_columns() {
        // Element (3, 0) in a b=4 segment has t=3, so its block starts at
        // column -3 and is clipped to a single in-matrix position.
        let csr =
            Csr::from_coo(&Coo::from_triplets(4, 4, vec![(3, 0, 7.0)]).unwrap());
        let bcsd = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        bcsd.validate().unwrap();
        assert_eq!(bcsd.n_blocks(), 1);
        assert_eq!(bcsd.padding(), 3);
        assert_eq!(bcsd.spmv(&[2.0, 0.0, 0.0, 0.0]), vec![0.0, 0.0, 0.0, 14.0]);
    }

    #[test]
    fn segment_alignment_splits_long_diagonals() {
        // One 8-long diagonal with b=3 spans segments 0..3: 3 blocks, and
        // the last segment is short (rows 6, 7).
        let mut coo = Coo::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let bcsd = Bcsd::from_csr(&csr, 3, KernelImpl::Scalar);
        assert_eq!(bcsd.n_blocks(), 3);
        // Segments 0 and 1 are full (3 values each); the clipped segment 2
        // stores a full block of 3 with 1 pad (rows 6, 7 valid).
        assert_eq!(bcsd.nnz_stored(), 9);
        assert_eq!(bcsd.padding(), 1);
        let x = vec![1.0; 8];
        assert_eq!(bcsd.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = fixture_csr(9, 9, 5);
        let bcsd = Bcsd::from_csr(&csr, 3, KernelImpl::Scalar);
        let x = vec![1.0; 9];
        let base = csr.spmv(&x);
        let mut y = base.clone();
        bcsd.spmv_acc(&x, &mut y);
        for (a, b) in y.iter().zip(&base) {
            assert!((a - 2.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let csr = fixture_csr(23, 19, 11);
        for b in [3, 4, 8] {
            for imp in KernelImpl::ALL {
                let bcsd = Bcsd::from_csr(&csr, b, imp);
                for k in [1, 2, 5, 8] {
                    let x: Vec<f64> = (0..19 * k).map(|i| 1.0 + (i % 7) as f64).collect();
                    let got = bcsd.spmv_multi(&x, k);
                    for t in 0..k {
                        let want = bcsd.spmv(&x[t * 19..(t + 1) * 19]);
                        assert_eq!(got[t * 23..(t + 1) * 23], want, "b={b} k={k} t={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_indices_are_bitwise_equal_and_smaller() {
        let csr = fixture_csr(23, 19, 11);
        for b in [3usize, 8] {
            for imp in KernelImpl::ALL {
                let wide = Bcsd::from_csr(&csr, b, imp);
                let narrow = Bcsd::from_csr_narrow(&csr, b, imp);
                narrow.validate().unwrap();
                assert_eq!(narrow.index_width(), IndexWidth::U16);
                assert!(narrow.matrix_bytes() < wide.matrix_bytes());
                for k in [1, 5] {
                    let x: Vec<f64> = (0..19 * k).map(|i| 1.0 + (i % 7) as f64).collect();
                    assert_eq!(
                        narrow.spmv_multi(&x, k),
                        wide.spmv_multi(&x, k),
                        "b={b} imp {imp} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn narrow_bias_fits_at_the_eligibility_bound() {
        // n_cols exactly at MAX_U16_COLS: the largest biased start is
        // n_cols - 1 + b = 65535 with b = 8, which must still fit u16.
        let n_cols = IndexWidth::MAX_U16_COLS;
        let csr = Csr::from_coo(
            &Coo::from_triplets(8, n_cols, vec![(7, n_cols - 1, 3.0)]).unwrap(),
        );
        let bcsd = Bcsd::from_csr_narrow(&csr, 8, KernelImpl::Scalar);
        assert_eq!(bcsd.index_width(), IndexWidth::U16);
        bcsd.validate().unwrap();
        let mut x = vec![0.0; n_cols];
        x[n_cols - 1] = 2.0;
        assert_eq!(bcsd.spmv(&x)[7], 6.0);
        // One column more and the constructor must fall back to u32.
        let csr = Csr::from_coo(
            &Coo::from_triplets(8, n_cols + 1, vec![(7, n_cols, 3.0)]).unwrap(),
        );
        let bcsd = Bcsd::from_csr_narrow(&csr, 8, KernelImpl::Scalar);
        assert_eq!(bcsd.index_width(), IndexWidth::U32);
    }

    #[test]
    fn single_precision_matches() {
        let mut coo = Coo::<f32>::new(12, 12);
        for i in 0..12 {
            coo.push(i, i, 1.5).unwrap();
            coo.push(i, (i + 2) % 12, 0.5).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..12).map(|i| i as f32 * 0.25).collect();
        let want = csr.spmv(&x);
        for imp in KernelImpl::ALL {
            let bcsd = Bcsd::from_csr(&csr, 4, imp);
            for (a, g) in want.iter().zip(bcsd.spmv(&x)) {
                assert!((a - g).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rectangular_wide_and_tall() {
        let wide = fixture_csr(6, 20, 2);
        let tall = fixture_csr(20, 6, 2);
        let xw: Vec<f64> = (0..20).map(|i| 1.0 + i as f64).collect();
        let xt: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
        for b in [2, 5, 8] {
            let bw = Bcsd::from_csr(&wide, b, KernelImpl::Scalar);
            let bt = Bcsd::from_csr(&tall, b, KernelImpl::Scalar);
            bw.validate().unwrap();
            bt.validate().unwrap();
            for (a, g) in wide.spmv(&xw).iter().zip(bw.spmv(&xw)) {
                assert!((a - g).abs() < 1e-9);
            }
            for (a, g) in tall.spmv(&xt).iter().zip(bt.spmv(&xt)) {
                assert!((a - g).abs() < 1e-9);
            }
        }
    }
}
