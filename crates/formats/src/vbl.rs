//! One-dimensional Variable Block Length (1D-VBL) storage.

use crate::narrow::ColIdx;
use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, IndexWidth, MatrixShape, Result, SpMv, SpMvMulti};
use spmv_kernels::registry::{dot_run, dot_run_multi};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::KernelImpl;

/// Maximum elements per 1D-VBL block: sizes are stored in one byte, so a
/// longer horizontal run "is split into 255-element chunks" (§V).
pub const MAX_VBL_BLOCK: usize = u8::MAX as usize;

/// 1D-VBL: maximal horizontal runs of nonzeros, no padding (§II-B,
/// Pinar & Heath).
///
/// Four arrays store the matrix: `val` and `row_ptr` exactly as in CSR,
/// plus per-block `bcol_ind` (the block's start column) and `blk_size`
/// (its length, one **byte** per block). A block is a maximal run of
/// consecutive nonzero columns within one row, chunked at 255 elements.
///
/// There is no per-row block index: the SpMV kernel walks blocks with a
/// running cursor and knows a row is finished when it has consumed
/// `row_ptr[i+1] - row_ptr[i]` values — the extra level of indirection the
/// paper identifies as this format's cost (§III).
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::Vbl;
/// use spmv_kernels::KernelImpl;
///
/// let csr = Csr::from_coo(&Coo::from_triplets(2, 6, vec![
///     (0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), // one run of 3
///     (1, 0, 4.0), (1, 5, 5.0),              // two runs of 1
/// ]).unwrap());
/// let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
/// assert_eq!(vbl.n_blocks(), 3);
/// assert_eq!(vbl.spmv(&[1.0; 6]), csr.spmv(&[1.0; 6]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vbl<T> {
    n_rows: usize,
    n_cols: usize,
    imp: KernelImpl,
    /// Offsets into `val`, one per row plus one — identical role to CSR.
    row_ptr: Vec<Index>,
    /// Start column of each block, stored at u32 (default) or u16
    /// (narrow) width.
    bcol_ind: ColIdx,
    /// Length of each block (1..=255).
    blk_size: Vec<u8>,
    /// The nonzero values, concatenated run by run.
    val: Vec<T>,
}

impl<T: SimdScalar> Vbl<T> {
    /// Converts `csr` to 1D-VBL.
    pub fn from_csr(csr: &Csr<T>, imp: KernelImpl) -> Self {
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let mut row_ptr: Vec<Index> = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0);
        let mut bcol_ind: Vec<Index> = Vec::new();
        let mut blk_size: Vec<u8> = Vec::new();
        let mut val: Vec<T> = Vec::with_capacity(csr.nnz());

        for i in 0..n_rows {
            let (cols, vals) = csr.row(i);
            let mut k = 0;
            while k < cols.len() {
                // Extend the run while columns stay consecutive, chunking
                // at the one-byte length limit.
                let start = cols[k];
                let mut len = 1usize;
                while k + len < cols.len()
                    && cols[k + len] == start + len as Index
                    && len < MAX_VBL_BLOCK
                {
                    len += 1;
                }
                bcol_ind.push(start);
                blk_size.push(len as u8);
                val.extend_from_slice(&vals[k..k + len]);
                k += len;
            }
            row_ptr.push(val.len() as Index);
        }

        Vbl {
            n_rows,
            n_cols,
            imp,
            row_ptr,
            bcol_ind: ColIdx::wide(bcol_ind),
            blk_size,
            val,
        }
    }

    /// Converts `csr` to 1D-VBL storing block start columns at the
    /// narrowest width [`IndexWidth::for_cols`] allows. Kernels and
    /// results are identical to [`Vbl::from_csr`].
    pub fn from_csr_narrow(csr: &Csr<T>, imp: KernelImpl) -> Self {
        let mut vbl = Self::from_csr(csr, imp);
        vbl.bcol_ind = core::mem::replace(&mut vbl.bcol_ind, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        vbl
    }

    /// The storage width of the block start-column array.
    pub fn index_width(&self) -> IndexWidth {
        self.bcol_ind.width()
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD run kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Total number of variable-length blocks.
    pub fn n_blocks(&self) -> usize {
        self.bcol_ind.len()
    }

    /// Mean block length in elements.
    pub fn avg_block_len(&self) -> f64 {
        if self.blk_size.is_empty() {
            0.0
        } else {
            self.val.len() as f64 / self.blk_size.len() as f64
        }
    }

    /// Converts back to CSR (exact inverse of [`Vbl::from_csr`] — the
    /// format stores no padding).
    pub fn to_csr(&self) -> Csr<T> {
        let mut col_ind = Vec::with_capacity(self.val.len());
        for (blk, &len) in self.blk_size.iter().enumerate() {
            let start = self.bcol_ind.get(blk);
            col_ind.extend((0..len as Index).map(|j| start + j));
        }
        Csr::from_raw(
            self.n_rows,
            self.n_cols,
            self.row_ptr.clone(),
            col_ind,
            self.val.clone(),
        )
        .expect("VBL invariants imply CSR invariants")
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.n_rows + 1 || self.row_ptr[0] != 0 {
            return Err(Error::InvalidStructure("row_ptr malformed".into()));
        }
        if *self.row_ptr.last().unwrap() as usize != self.val.len() {
            return Err(Error::InvalidStructure(
                "row_ptr does not terminate at nnz".into(),
            ));
        }
        if self.bcol_ind.len() != self.blk_size.len() {
            return Err(Error::InvalidStructure(
                "bcol_ind and blk_size lengths differ".into(),
            ));
        }
        let total: usize = self.blk_size.iter().map(|&s| s as usize).sum();
        if total != self.val.len() {
            return Err(Error::InvalidStructure(
                "block sizes do not sum to nnz".into(),
            ));
        }
        if self.blk_size.contains(&0) {
            return Err(Error::InvalidStructure("zero-length block".into()));
        }
        // Blocks must lie inside the matrix and respect row boundaries.
        let mut blk = 0usize;
        let mut consumed = 0usize;
        for i in 0..self.n_rows {
            let row_end = self.row_ptr[i + 1] as usize;
            let mut prev_end: Option<Index> = None;
            while consumed < row_end {
                let len = self.blk_size[blk] as usize;
                let start = self.bcol_ind.get(blk);
                if start as usize + len > self.n_cols {
                    return Err(Error::OutOfBounds {
                        row: i,
                        col: start as usize + len - 1,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
                if let Some(pe) = prev_end {
                    if start < pe {
                        return Err(Error::InvalidStructure(format!(
                            "row {i}: overlapping or unsorted blocks"
                        )));
                    }
                }
                prev_end = Some(start + len as Index);
                consumed += len;
                blk += 1;
            }
            if consumed != row_end {
                return Err(Error::InvalidStructure(format!(
                    "row {i}: blocks straddle the row boundary"
                )));
            }
        }
        if blk != self.blk_size.len() {
            return Err(Error::InvalidStructure("trailing blocks".into()));
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let mut blk = 0usize;
        let mut v = 0usize;
        for (i, yi) in y.iter_mut().enumerate() {
            let row_end = self.row_ptr[i + 1] as usize;
            let mut acc = T::ZERO;
            while v < row_end {
                let len = self.blk_size[blk] as usize;
                let j0 = self.bcol_ind.get(blk) as usize;
                acc += dot_run(&self.val[v..v + len], &x[j0..j0 + len], self.imp);
                v += len;
                blk += 1;
            }
            *yi += acc;
        }
    }

    /// Shared implementation of `spmv_multi_acc`: the run kernel is
    /// runtime-`k`, so chunks of up to 8 vectors reuse each run's values
    /// while they are hot and the matrix streams once per chunk.
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(8);
            let xs = &x[t0 * m..(t0 + kc) * m];
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            let mut blk = 0usize;
            let mut v = 0usize;
            let mut acc = [T::ZERO; 8];
            for i in 0..n {
                let row_end = self.row_ptr[i + 1] as usize;
                acc[..kc].fill(T::ZERO);
                while v < row_end {
                    let len = self.blk_size[blk] as usize;
                    let j0 = self.bcol_ind.get(blk) as usize;
                    dot_run_multi(&self.val[v..v + len], xs, m, j0, &mut acc[..kc], self.imp);
                    v += len;
                    blk += 1;
                }
                for (t, &a) in acc[..kc].iter().enumerate() {
                    ys[t * n + i] += a;
                }
            }
            t0 += kc;
        }
    }
}

impl<T> MatrixShape for Vbl<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for Vbl<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.val.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.val.len() * T::BYTES
            + self.row_ptr.len() * core::mem::size_of::<Index>()
            + self.bcol_ind.bytes()
            + self.blk_size.len() // one byte each
    }
}

impl<T: SimdScalar> SpMvAcc<T> for Vbl<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for Vbl<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for Vbl<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    #[test]
    fn runs_are_maximal() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(
                1,
                10,
                vec![(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (0, 4, 1.0), (0, 5, 1.0)],
            )
            .unwrap(),
        );
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        vbl.validate().unwrap();
        assert_eq!(vbl.n_blocks(), 2);
        assert_eq!(vbl.avg_block_len(), 2.5);
    }

    #[test]
    fn long_runs_chunk_at_255() {
        let mut coo = Coo::new(1, 600);
        for j in 0..600 {
            coo.push(0, j, 1.0).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        vbl.validate().unwrap();
        assert_eq!(vbl.n_blocks(), 3); // 255 + 255 + 90
        assert_eq!(vbl.spmv(&vec![1.0; 600]), vec![600.0]);
    }

    #[test]
    fn matches_csr_on_mixed_structure() {
        let mut coo = Coo::new(17, 23);
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..17 {
            let start = (next() as usize) % 20;
            for j in start..(start + 1 + (next() as usize) % 4).min(23) {
                let _ = coo.push(i, j, 1.0 + (next() % 9) as f64);
            }
            let _ = coo.push(i, (next() as usize) % 23, 2.5);
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..23).map(|i| 0.5 + (i % 6) as f64).collect();
        let want = csr.spmv(&x);
        for imp in KernelImpl::ALL {
            let vbl = Vbl::from_csr(&csr, imp);
            vbl.validate().unwrap();
            for (a, g) in want.iter().zip(vbl.spmv(&x)) {
                assert!((a - g).abs() < 1e-9, "imp {imp}");
            }
        }
    }

    #[test]
    fn nnz_preserved_no_padding() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(3, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (2, 4, 3.0)]).unwrap(),
        );
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(vbl.nnz_stored(), csr.nnz());
    }

    #[test]
    fn dense_row_yields_single_block_and_smaller_ws_than_csr() {
        // One 100-wide dense row: CSR stores 100 column indices, VBL one
        // start + one size byte.
        let mut coo = Coo::new(1, 100);
        for j in 0..100 {
            coo.push(0, j, 1.0).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(vbl.n_blocks(), 1);
        assert!(vbl.matrix_bytes() < csr.matrix_bytes());
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(4, 4, vec![(1, 1, 5.0)]).unwrap(),
        );
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        vbl.validate().unwrap();
        assert_eq!(vbl.spmv(&[1.0; 4]), vec![0.0, 5.0, 0.0, 0.0]);

        let empty = Csr::<f32>::from_coo(&Coo::new(2, 2));
        let vempty = Vbl::from_csr(&empty, KernelImpl::Simd);
        vempty.validate().unwrap();
        assert_eq!(vempty.spmv(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let mut coo = Coo::new(17, 23);
        let mut state = 0x9abcdu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..17 {
            let start = (next() as usize) % 20;
            for j in start..(start + 1 + (next() as usize) % 4).min(23) {
                let _ = coo.push(i, j, 1.0 + (next() % 9) as f64);
            }
        }
        let csr = Csr::from_coo(&coo);
        for imp in KernelImpl::ALL {
            let vbl = Vbl::from_csr(&csr, imp);
            for k in [1, 2, 4, 9] {
                let x: Vec<f64> = (0..23 * k).map(|i| 1.0 + (i % 6) as f64).collect();
                let got = vbl.spmv_multi(&x, k);
                for t in 0..k {
                    let want = vbl.spmv(&x[t * 23..(t + 1) * 23]);
                    assert_eq!(got[t * 17..(t + 1) * 17], want, "imp {imp} k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn narrow_indices_are_bitwise_equal_and_smaller() {
        let csr = {
            let mut coo = Coo::new(9, 30);
            for i in 0..9 {
                for j in (i * 2)..(i * 2 + 5).min(30) {
                    coo.push(i, j, (i + j) as f64 + 0.5).unwrap();
                }
            }
            Csr::from_coo(&coo)
        };
        let x: Vec<f64> = (0..30).map(|i| 1.0 + (i % 4) as f64).collect();
        for imp in KernelImpl::ALL {
            let wide = Vbl::from_csr(&csr, imp);
            let narrow = Vbl::from_csr_narrow(&csr, imp);
            narrow.validate().unwrap();
            assert_eq!(narrow.index_width(), IndexWidth::U16);
            assert!(narrow.matrix_bytes() < wide.matrix_bytes());
            assert_eq!(narrow.spmv(&x), wide.spmv(&x), "imp {imp}");
        }
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(2, 2, vec![(0, 0, 3.0), (1, 1, 4.0)]).unwrap(),
        );
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        let mut y = vec![1.0, 1.0];
        vbl.spmv_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![4.0, 5.0]);
    }
}
