//! Block-structure estimators for model-driven format selection.
//!
//! The performance models (§IV) need, for every candidate
//! (format, block shape) pair: the block count `nb`, the stored-value
//! count (nonzeros + padding), and the working set `ws`. Materializing
//! every candidate format just to read those numbers would cost more than
//! the SpMV it is trying to optimize, so this module computes them
//! directly from the CSR structure in `O(nnz)` per candidate — the same
//! role the fill-ratio estimators play in SPARSITY/OSKI-style autotuners.
//!
//! Every estimator is exact (not sampled) and is verified against the
//! materialized formats by the test suite.

use spmv_core::{Csr, Index, MatrixShape, Scalar};
use spmv_kernels::BlockShape;

/// Exact structure statistics for one (format, block) candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatStats {
    /// Blocks in the blocked (main) submatrix. For CSR-as-1×1 this is the
    /// nonzero count.
    pub nb: usize,
    /// Values stored by the main submatrix, including padding zeros.
    pub stored: usize,
    /// Nonzeros relegated to the CSR remainder (decomposed formats only).
    pub rest_nnz: usize,
    /// Rows of the main structure's pointer array minus one (block rows or
    /// segments), for byte accounting.
    pub index_rows: usize,
    /// Bytes spent on padded-zero *values* in the main submatrix — the
    /// part of the value stream that carries no information. Zero for
    /// padding-free formats (decomposed mains, 1D-VBL, masked).
    pub fill_bytes: usize,
}

impl FormatStats {
    /// Padding zeros in the main submatrix, given the source matrix's
    /// nonzero count.
    pub fn padding(&self, nnz: usize) -> usize {
        self.stored - (nnz - self.rest_nnz)
    }

    /// Total values the format stores across submatrices.
    pub fn total_stored(&self) -> usize {
        self.stored + self.rest_nnz
    }
}

/// Counts blocks/padding for aligned BCSR without building it.
pub fn bcsr_stats<T: Scalar>(csr: &Csr<T>, shape: BlockShape) -> FormatStats {
    let (r, c) = (shape.rows(), shape.cols());
    let n_rows = csr.n_rows();
    let n_bcols = csr.n_cols().div_ceil(c);
    let n_brows = n_rows.div_ceil(r);
    // Stamp array: seen[bc] == current block row marker.
    let mut seen = vec![u32::MAX; n_bcols];
    let mut nb = 0usize;
    for rb in 0..n_brows {
        let stamp = rb as u32;
        for i in rb * r..((rb + 1) * r).min(n_rows) {
            for &j in csr.row(i).0 {
                let bc = j as usize / c;
                if seen[bc] != stamp {
                    seen[bc] = stamp;
                    nb += 1;
                }
            }
        }
    }
    FormatStats {
        nb,
        stored: nb * r * c,
        rest_nnz: 0,
        index_rows: n_brows,
        fill_bytes: (nb * r * c - csr.nnz()) * T::BYTES,
    }
}

/// Statistics for masked BCSR ([`crate::BcsrMasked`]): same block
/// structure as aligned BCSR, but the value stream holds only the `nnz`
/// true nonzeros (no fill bytes) plus one occupancy byte per block —
/// which the working-set accounting charges via `nb`.
pub fn bcsr_masked_stats<T: Scalar>(csr: &Csr<T>, shape: BlockShape) -> FormatStats {
    let st = bcsr_stats(csr, shape);
    FormatStats {
        nb: st.nb,
        stored: csr.nnz(),
        rest_nnz: 0,
        index_rows: st.index_rows,
        fill_bytes: 0,
    }
}

/// Counts full blocks and remainder for BCSR-DEC without building it.
pub fn bcsr_dec_stats<T: Scalar>(csr: &Csr<T>, shape: BlockShape) -> FormatStats {
    let (r, c) = (shape.rows(), shape.cols());
    let n_rows = csr.n_rows();
    let n_bcols = csr.n_cols().div_ceil(c);
    let n_brows = n_rows.div_ceil(r);
    let mut seen = vec![u32::MAX; n_bcols];
    let mut count = vec![0u32; n_bcols];
    let mut touched: Vec<usize> = Vec::new();
    let mut nb_full = 0usize;
    for rb in 0..n_brows {
        let stamp = rb as u32;
        touched.clear();
        for i in rb * r..((rb + 1) * r).min(n_rows) {
            for &j in csr.row(i).0 {
                let bc = j as usize / c;
                if seen[bc] != stamp {
                    seen[bc] = stamp;
                    count[bc] = 0;
                    touched.push(bc);
                }
                count[bc] += 1;
            }
        }
        for &bc in &touched {
            if count[bc] as usize == r * c {
                nb_full += 1;
            }
        }
    }
    let covered = nb_full * r * c;
    FormatStats {
        nb: nb_full,
        stored: covered,
        rest_nnz: csr.nnz() - covered,
        index_rows: n_brows,
        fill_bytes: 0,
    }
}

/// Counts blocks/padding for BCSD without building it.
pub fn bcsd_stats<T: Scalar>(csr: &Csr<T>, b: usize) -> FormatStats {
    let n_rows = csr.n_rows();
    let n_segs = n_rows.div_ceil(b);
    // Biased start columns range over [1, n_cols + b - 1].
    let mut seen = vec![u32::MAX; csr.n_cols() + b];
    let mut nb = 0usize;
    for s in 0..n_segs {
        let stamp = s as u32;
        for i in s * b..((s + 1) * b).min(n_rows) {
            let t = i - s * b;
            for &j in csr.row(i).0 {
                let biased = (j as i64 - t as i64 + b as i64) as usize;
                if seen[biased] != stamp {
                    seen[biased] = stamp;
                    nb += 1;
                }
            }
        }
    }
    FormatStats {
        nb,
        stored: nb * b,
        rest_nnz: 0,
        index_rows: n_segs,
        fill_bytes: (nb * b - csr.nnz()) * T::BYTES,
    }
}

/// Statistics for masked BCSD ([`crate::BcsdMasked`]): BCSD block
/// structure with an `nnz`-value stream and one mask byte per block.
pub fn bcsd_masked_stats<T: Scalar>(csr: &Csr<T>, b: usize) -> FormatStats {
    let st = bcsd_stats(csr, b);
    FormatStats {
        nb: st.nb,
        stored: csr.nnz(),
        rest_nnz: 0,
        index_rows: st.index_rows,
        fill_bytes: 0,
    }
}

/// Counts full diagonal blocks and remainder for BCSD-DEC without
/// building it.
pub fn bcsd_dec_stats<T: Scalar>(csr: &Csr<T>, b: usize) -> FormatStats {
    let n_rows = csr.n_rows();
    let n_segs = n_rows.div_ceil(b);
    let mut seen = vec![u32::MAX; csr.n_cols() + b];
    let mut count = vec![0u32; csr.n_cols() + b];
    let mut touched: Vec<usize> = Vec::new();
    let mut nb_full = 0usize;
    for s in 0..n_segs {
        let stamp = s as u32;
        touched.clear();
        for i in s * b..((s + 1) * b).min(n_rows) {
            let t = i - s * b;
            for &j in csr.row(i).0 {
                let biased = (j as i64 - t as i64 + b as i64) as usize;
                if seen[biased] != stamp {
                    seen[biased] = stamp;
                    count[biased] = 0;
                    touched.push(biased);
                }
                count[biased] += 1;
            }
        }
        for &biased in &touched {
            if count[biased] as usize == b {
                nb_full += 1;
            }
        }
    }
    let covered = nb_full * b;
    FormatStats {
        nb: nb_full,
        stored: covered,
        rest_nnz: csr.nnz() - covered,
        index_rows: n_segs,
        fill_bytes: 0,
    }
}

/// Counts variable-length blocks for 1D-VBL without building it.
pub fn vbl_stats<T: Scalar>(csr: &Csr<T>) -> FormatStats {
    let mut nb = 0usize;
    for i in 0..csr.n_rows() {
        let cols = csr.row(i).0;
        let mut k = 0;
        while k < cols.len() {
            let mut len = 1usize;
            while k + len < cols.len()
                && cols[k + len] == cols[k] + len as Index
                && len < crate::vbl::MAX_VBL_BLOCK
            {
                len += 1;
            }
            nb += 1;
            k += len;
        }
    }
    FormatStats {
        nb,
        stored: csr.nnz(),
        rest_nnz: 0,
        index_rows: csr.n_rows(),
        fill_bytes: 0,
    }
}

/// Counts slice-columns/padding for SELL-C-σ ([`crate::SellCSigma`])
/// without building it: rows are (virtually) sorted by descending length
/// within σ-row windows, and each slice of `c` rows stores
/// `max row length` columns. `nb` is the total slice-column count,
/// `stored = nb * c` includes padding, and `index_rows` is the slice
/// count. Only row lengths matter, so this runs in `O(n_rows log σ)`.
pub fn sellc_stats<T: Scalar>(csr: &Csr<T>, c: usize, sigma: usize) -> FormatStats {
    assert!(sigma > 0, "SELL sorting window must be at least 1");
    let n_rows = csr.n_rows();
    let sigma_eff = if sigma == crate::SELL_SIGMA_FULL {
        n_rows.max(1)
    } else {
        sigma
    };
    let mut lens: Vec<usize> = (0..n_rows).map(|i| csr.row_nnz(i)).collect();
    for w0 in (0..n_rows).step_by(sigma_eff) {
        let w1 = (w0 + sigma_eff).min(n_rows);
        lens[w0..w1].sort_unstable_by_key(|&l| core::cmp::Reverse(l));
    }
    let n_slices = n_rows.div_ceil(c);
    let mut nb = 0usize;
    for s in 0..n_slices {
        nb += lens[s * c..((s + 1) * c).min(n_rows)]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
    }
    FormatStats {
        nb,
        stored: nb * c,
        rest_nnz: 0,
        index_rows: n_slices,
        fill_bytes: (nb * c - csr.nnz()) * T::BYTES,
    }
}

/// Sampled BCSR statistics, SPARSITY/OSKI style: only `ceil(fraction *
/// n_brows)` block rows are scanned (a deterministic stride starting at
/// `seed % stride`), and the counts are scaled back up.
///
/// The exact estimators above are already `O(nnz)`, but ranking the full
/// 105-configuration space still touches every nonzero dozens of times;
/// sampling cuts that to a constant fraction at the price of an
/// estimate. Error is unbiased for matrices whose block structure is
/// homogeneous across block rows (the common case for the suite), and
/// the returned `stored` is always consistent with the returned `nb`
/// (`stored = nb * r * c`).
pub fn bcsr_stats_sampled<T: Scalar>(
    csr: &Csr<T>,
    shape: BlockShape,
    fraction: f64,
    seed: u64,
) -> FormatStats {
    assert!(
        (0.0..=1.0).contains(&fraction) && fraction > 0.0,
        "sample fraction must be in (0, 1]"
    );
    let (r, c) = (shape.rows(), shape.cols());
    let n_rows = csr.n_rows();
    let n_brows = n_rows.div_ceil(r);
    if fraction >= 1.0 || n_brows == 0 {
        return bcsr_stats(csr, shape);
    }
    let stride = ((1.0 / fraction).round() as usize).max(1);
    let offset = (seed as usize) % stride;
    let mut seen = vec![u32::MAX; csr.n_cols().div_ceil(c)];
    let mut nb_sampled = 0usize;
    let mut sampled = 0usize;
    let mut rb = offset;
    while rb < n_brows {
        sampled += 1;
        let stamp = rb as u32;
        for i in rb * r..((rb + 1) * r).min(n_rows) {
            for &j in csr.row(i).0 {
                let bc = j as usize / c;
                if seen[bc] != stamp {
                    seen[bc] = stamp;
                    nb_sampled += 1;
                }
            }
        }
        rb += stride;
    }
    if sampled == 0 {
        return bcsr_stats(csr, shape);
    }
    let nb = (nb_sampled as f64 * n_brows as f64 / sampled as f64).round() as usize;
    FormatStats {
        nb,
        stored: nb * r * c,
        rest_nnz: 0,
        index_rows: n_brows,
        // The estimated block count can undershoot nnz; clamp at zero.
        fill_bytes: (nb * r * c).saturating_sub(csr.nnz()) * T::BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl};
    use spmv_core::{Coo, SpMv};
    use spmv_kernels::KernelImpl;

    fn fixture(seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(37, 41);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..37 {
            if i < 41 {
                let _ = coo.push(i, i, 2.0);
            }
            for _ in 0..2 + (next() as usize) % 3 {
                let j = (next() as usize) % 41;
                let _ = coo.push(i, j, 1.0);
                if j + 1 < 41 {
                    let _ = coo.push(i, j + 1, 1.0);
                }
            }
            let _ = coo.push(i, 0, 0.25);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn bcsr_stats_match_constructed_format() {
        let csr = fixture(1);
        for shape in BlockShape::search_space() {
            let est = bcsr_stats(&csr, shape);
            let real = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
            assert_eq!(est.nb, real.n_blocks(), "shape {shape}");
            assert_eq!(est.stored, real.nnz_stored(), "shape {shape}");
        }
    }

    #[test]
    fn bcsr_dec_stats_match_constructed_format() {
        let csr = fixture(2);
        for shape in BlockShape::search_space() {
            let est = bcsr_dec_stats(&csr, shape);
            let real = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
            assert_eq!(est.nb, real.main().n_blocks(), "shape {shape}");
            assert_eq!(est.stored, real.main().nnz_stored(), "shape {shape}");
            assert_eq!(est.rest_nnz, real.rest().nnz(), "shape {shape}");
        }
    }

    #[test]
    fn bcsd_stats_match_constructed_format() {
        let csr = fixture(3);
        for b in spmv_kernels::BCSD_SIZES {
            let est = bcsd_stats(&csr, b);
            let real = Bcsd::from_csr(&csr, b, KernelImpl::Scalar);
            assert_eq!(est.nb, real.n_blocks(), "b {b}");
            assert_eq!(est.stored, real.nnz_stored(), "b {b}");
        }
    }

    #[test]
    fn bcsd_dec_stats_match_constructed_format() {
        let csr = fixture(4);
        for b in spmv_kernels::BCSD_SIZES {
            let est = bcsd_dec_stats(&csr, b);
            let real = BcsdDec::from_csr(&csr, b, KernelImpl::Scalar);
            assert_eq!(est.nb, real.main().n_blocks(), "b {b}");
            assert_eq!(est.rest_nnz, real.rest().nnz(), "b {b}");
        }
    }

    #[test]
    fn vbl_stats_match_constructed_format() {
        let csr = fixture(5);
        let est = vbl_stats(&csr);
        let real = Vbl::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(est.nb, real.n_blocks());
        assert_eq!(est.stored, real.nnz_stored());
    }

    #[test]
    fn masked_stats_match_constructed_formats() {
        let csr = fixture(10);
        for shape in [BlockShape::new(2, 2).unwrap(), BlockShape::new(1, 8).unwrap()] {
            let est = bcsr_masked_stats(&csr, shape);
            let real = crate::BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
            assert_eq!(est.nb, real.n_blocks(), "shape {shape}");
            assert_eq!(est.stored, real.nnz_stored(), "shape {shape}");
            assert_eq!(est.fill_bytes, 0);
        }
        for b in [3usize, 4] {
            let est = bcsd_masked_stats(&csr, b);
            let real = crate::BcsdMasked::from_csr(&csr, b, KernelImpl::Scalar);
            assert_eq!(est.nb, real.n_blocks(), "b {b}");
            assert_eq!(est.stored, real.nnz_stored(), "b {b}");
            assert_eq!(est.fill_bytes, 0);
        }
    }

    #[test]
    fn sellc_stats_match_constructed_format() {
        let csr = fixture(12);
        for c in spmv_kernels::SELL_HEIGHTS {
            for sigma in crate::sell_sigmas(c) {
                let est = sellc_stats(&csr, c, sigma);
                let real = crate::SellCSigma::from_csr(&csr, c, sigma, KernelImpl::Scalar);
                assert_eq!(est.nb, real.n_blocks(), "c {c} sigma {sigma}");
                assert_eq!(est.stored, real.nnz_stored(), "c {c} sigma {sigma}");
                assert_eq!(est.index_rows, real.n_slices(), "c {c} sigma {sigma}");
                assert_eq!(est.fill_bytes, real.padding() * 8, "c {c} sigma {sigma}");
            }
        }
    }

    #[test]
    fn fill_bytes_accounts_padded_zero_values() {
        let csr = fixture(11);
        let shape = BlockShape::new(2, 3).unwrap();
        let est = bcsr_stats(&csr, shape);
        let real = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_eq!(est.fill_bytes, real.padding() * 8);
        assert_eq!(est.fill_bytes, est.padding(csr.nnz()) * 8);
        let d = bcsd_stats(&csr, 4);
        let dreal = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        assert_eq!(d.fill_bytes, dreal.padding() * 8);
        // Padding-free formats report zero fill bytes.
        assert_eq!(bcsr_dec_stats(&csr, shape).fill_bytes, 0);
        assert_eq!(bcsd_dec_stats(&csr, 4).fill_bytes, 0);
        assert_eq!(vbl_stats(&csr).fill_bytes, 0);
    }

    #[test]
    fn sampled_stats_exact_at_fraction_one() {
        let csr = fixture(7);
        for shape in [BlockShape::new(2, 2).unwrap(), BlockShape::new(1, 4).unwrap()] {
            assert_eq!(bcsr_stats_sampled(&csr, shape, 1.0, 0), bcsr_stats(&csr, shape));
        }
    }

    #[test]
    fn sampled_stats_approximate_on_homogeneous_matrices() {
        // A large homogeneous matrix: a 25% sample must land within 20%
        // of the exact block count.
        let mut coo = Coo::new(400, 400);
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..400 {
            for _ in 0..4 {
                let _ = coo.push(i, (next() as usize) % 400, 1.0);
            }
        }
        let csr = Csr::from_coo(&coo);
        let shape = BlockShape::new(2, 2).unwrap();
        let exact = bcsr_stats(&csr, shape).nb as f64;
        let est = bcsr_stats_sampled(&csr, shape, 0.25, 3).nb as f64;
        assert!(
            (est - exact).abs() / exact < 0.2,
            "sampled {est} vs exact {exact}"
        );
    }

    #[test]
    fn sampled_stats_internally_consistent() {
        let csr = fixture(8);
        let shape = BlockShape::new(2, 3).unwrap();
        for fraction in [0.1, 0.33, 0.5] {
            let st = bcsr_stats_sampled(&csr, shape, fraction, 1);
            assert_eq!(st.stored, st.nb * shape.elems());
        }
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn sampled_stats_rejects_zero_fraction() {
        let csr = fixture(9);
        let _ = bcsr_stats_sampled(&csr, BlockShape::new(2, 2).unwrap(), 0.0, 0);
    }

    #[test]
    fn csr_degenerate_case_is_consistent() {
        // 1x1 BCSR statistics coincide with CSR's nnz — the models'
        // degenerate case.
        let csr = fixture(6);
        let est = bcsr_stats(&csr, BlockShape::UNIT);
        assert_eq!(est.nb, csr.nnz());
        assert_eq!(est.stored, csr.nnz());
    }
}
