//! Narrow-index storage for block-column arrays.
//!
//! The blocked formats keep one start column per block; for matrices whose
//! column space fits [`IndexWidth::U16`] (the common case in the paper's
//! suite) those arrays can be stored at half width, halving their share of
//! the streamed working set. The enum dispatch here keeps the existing
//! `&[Index]` kernel registry untouched: U32 arrays hand out zero-copy
//! slices, U16 arrays widen into a reusable per-call scratch buffer that
//! stays cache-resident while the half-width array is what streams from
//! memory.

use core::ops::Range;
use spmv_core::{Index, IndexWidth};

/// A block-column index array stored at its chosen width.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ColIdx {
    /// Half-width storage; only valid when every value fits `u16`.
    U16(Vec<u16>),
    /// Full-width baseline storage.
    U32(Vec<Index>),
}

impl ColIdx {
    /// Wraps a freshly built full-width array (the default constructors).
    pub(crate) fn wide(v: Vec<Index>) -> ColIdx {
        ColIdx::U32(v)
    }

    /// Re-stores the array at `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is [`IndexWidth::U16`] and a value exceeds
    /// `u16::MAX` — callers gate on [`IndexWidth::for_cols`], which keeps
    /// every stored value (including BCSD's `+b <= +8` bias) in range.
    pub(crate) fn with_width(self, width: IndexWidth) -> ColIdx {
        match (self, width) {
            (ColIdx::U32(v), IndexWidth::U16) => ColIdx::U16(
                v.into_iter()
                    .map(|c| u16::try_from(c).expect("index fits the narrow width"))
                    .collect(),
            ),
            (ColIdx::U16(v), IndexWidth::U32) => {
                ColIdx::U32(v.into_iter().map(Index::from).collect())
            }
            (same, _) => same,
        }
    }

    /// The storage width.
    pub(crate) fn width(&self) -> IndexWidth {
        match self {
            ColIdx::U16(_) => IndexWidth::U16,
            ColIdx::U32(_) => IndexWidth::U32,
        }
    }

    /// Number of stored indices.
    pub(crate) fn len(&self) -> usize {
        match self {
            ColIdx::U16(v) => v.len(),
            ColIdx::U32(v) => v.len(),
        }
    }

    /// Total bytes of the array.
    pub(crate) fn bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }

    /// Element `i`, widened.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Index {
        match self {
            ColIdx::U16(v) => v[i] as Index,
            ColIdx::U32(v) => v[i],
        }
    }

    /// A full-width view of `range` for the `&[Index]` kernels: zero-copy
    /// for U32, widened into `scratch` for U16.
    #[inline]
    pub(crate) fn slice<'a>(
        &'a self,
        range: Range<usize>,
        scratch: &'a mut Vec<Index>,
    ) -> &'a [Index] {
        match self {
            ColIdx::U32(v) => &v[range],
            ColIdx::U16(v) => {
                scratch.clear();
                scratch.extend(v[range].iter().map(|&c| c as Index));
                scratch
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_roundtrip_preserves_values() {
        let wide = ColIdx::wide(vec![0, 7, 65_000]);
        let narrow = wide.clone().with_width(IndexWidth::U16);
        assert_eq!(narrow.width(), IndexWidth::U16);
        assert_eq!(narrow.bytes(), 6);
        assert_eq!(wide.bytes(), 12);
        for i in 0..3 {
            assert_eq!(narrow.get(i), wide.get(i));
        }
        assert_eq!(narrow.with_width(IndexWidth::U32), wide);
    }

    #[test]
    fn slice_is_width_transparent() {
        let wide = ColIdx::wide(vec![3, 5, 9, 12]);
        let narrow = wide.clone().with_width(IndexWidth::U16);
        let mut scratch = Vec::new();
        assert_eq!(wide.slice(1..3, &mut scratch), &[5, 9]);
        assert_eq!(narrow.slice(1..3, &mut scratch), &[5, 9]);
    }

    #[test]
    #[should_panic(expected = "narrow width")]
    fn narrowing_oversized_values_panics() {
        ColIdx::wide(vec![70_000]).with_width(IndexWidth::U16);
    }
}
