#![warn(missing_docs)]

//! Blocked sparse storage formats.
//!
//! Implements every storage format the paper studies (§II):
//!
//! | Type | Paper name | Category |
//! |---|---|---|
//! | [`spmv_core::Csr`] | CSR | baseline |
//! | [`Bcsr`] | BCSR | fixed-size 2-D blocks, padding |
//! | [`Bcsd`] | BCSD | fixed-size diagonal blocks, padding |
//! | [`BcsrDec`] | BCSR-DEC | decomposed: full BCSR blocks + CSR rest |
//! | [`BcsdDec`] | BCSD-DEC | decomposed: full BCSD blocks + CSR rest |
//! | [`BcsrMasked`] | BCSR-MASK | fixed-size 2-D blocks, occupancy masks, no padding (extension) |
//! | [`BcsdMasked`] | BCSD-MASK | fixed-size diagonal blocks, occupancy masks, no padding (extension) |
//! | [`Vbl`] | 1D-VBL | variable-size 1-D blocks, no padding |
//! | [`Vbr`] | VBR | variable-size 2-D blocks (described in §II, not in the model study) |
//! | [`CsrDelta`] | CSR-Δ | delta-encoded, narrow-width column indices (extension) |
//! | [`SellCSigma`] | SELL-C-σ | sliced ELLPACK, σ-windowed row sorting, padding (extension) |
//!
//! As an index-compression extension beyond the paper, BCSR, BCSD, and
//! 1D-VBL additionally offer `from_csr_narrow` constructors that store
//! their block-column arrays at u16 width when the column space fits
//! (see [`spmv_core::IndexWidth`]), and [`CsrDelta`] replaces CSR's
//! `col_ind` with a run-classified byte stream of per-row column deltas.
//!
//! Every format implements [`spmv_core::SpMv`] plus the accumulate variant
//! [`SpMvAcc`] that decomposed formats need, and the multi-vector (SpMM)
//! counterparts [`spmv_core::SpMvMulti`] / [`SpMvMultiAcc`] that stream
//! the matrix once for a whole batch of input vectors. They expose the
//! block counts and byte totals the performance models consume. The [`stats`] module
//! computes those same quantities *without* materializing a format — that
//! is what makes model-driven format selection cheap.

pub mod bcsd;
pub mod bcsr;
pub mod csr_delta;
pub mod decomposed;
pub mod masked;
mod narrow;
pub mod sellc;
pub mod stats;
pub mod vbl;
pub mod vbr;

pub use bcsd::Bcsd;
pub use bcsr::Bcsr;
pub use csr_delta::{csr_delta_stats, CsrDelta, DeltaStats};
pub use decomposed::{BcsdDec, BcsrDec, Decomposed};
pub use masked::{BcsdMasked, BcsrMasked};
pub use sellc::{sell_sigmas, SellCSigma, SELL_SIGMA_FULL};
pub use stats::{
    bcsd_dec_stats, bcsd_masked_stats, bcsd_stats, bcsr_dec_stats, bcsr_masked_stats, bcsr_stats,
    bcsr_stats_sampled, sellc_stats, vbl_stats, FormatStats,
};
pub use vbl::Vbl;
pub use vbr::Vbr;

use core::fmt;
use spmv_core::{Csr, MatrixShape, Scalar, SpMv, SpMvMulti};

/// Accumulating SpMV: `y += A * x`.
///
/// Decomposed formats run their k submatrices into one output vector, so
/// each part must add rather than overwrite. Every format in this crate
/// (and CSR) implements it.
pub trait SpMvAcc<T: Scalar>: SpMv<T> {
    /// Computes `y += A * x`.
    ///
    /// # Panics
    ///
    /// Panics on vector length mismatch, like
    /// [`SpMv::spmv_into`].
    fn spmv_acc(&self, x: &[T], y: &mut [T]);
}

impl<T: Scalar> SpMvAcc<T> for Csr<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                acc = v.mul_add(x[c as usize], acc);
            }
            *yi += acc;
        }
    }
}

/// Accumulating multi-vector SpMV: `Y += A * X` for `k` column-major
/// vectors (the SpMM counterpart of [`SpMvAcc`]).
///
/// Decomposed formats zero the output block once and then run both
/// submatrices through this trait, so each part streams its arrays once
/// per `k`-vector call.
pub trait SpMvMultiAcc<T: Scalar>: SpMvAcc<T> + SpMvMulti<T> {
    /// Computes `Y += A * X`; layout and panics as in
    /// [`SpMvMulti::spmv_multi_into`].
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize);
}

impl<T: Scalar> SpMvMultiAcc<T> for Csr<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        let (m, n) = (self.n_cols(), self.n_rows());
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(8);
            let xs = &x[t0 * m..(t0 + kc) * m];
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            let mut acc = [T::ZERO; 8];
            for i in 0..n {
                let (cols, vals) = self.row(i);
                acc[..kc].fill(T::ZERO);
                for (&c, &v) in cols.iter().zip(vals) {
                    let c = c as usize;
                    for (t, a) in acc[..kc].iter_mut().enumerate() {
                        *a = v.mul_add(xs[t * m + c], *a);
                    }
                }
                for (t, &a) in acc[..kc].iter().enumerate() {
                    ys[t * n + i] += a;
                }
            }
            t0 += kc;
        }
    }
}

/// The storage formats of the paper's evaluation, used as sweep keys by
/// the harness and the performance models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FormatKind {
    /// Compressed Sparse Row (baseline).
    Csr,
    /// Blocked CSR with padding.
    Bcsr,
    /// Decomposed BCSR (full blocks + CSR rest).
    BcsrDec,
    /// Blocked Compressed Sparse Diagonal with padding.
    Bcsd,
    /// Decomposed BCSD.
    BcsdDec,
    /// Masked BCSR: per-block occupancy bitmasks instead of padding
    /// (padding-free extension beyond the paper).
    BcsrMasked,
    /// Masked BCSD: per-block occupancy bitmasks instead of padding.
    BcsdMasked,
    /// One-dimensional Variable Block Length.
    Vbl,
    /// Variable Block Row (§II extension; not part of the model study).
    Vbr,
    /// Delta-encoded CSR (index-compression extension beyond the paper).
    CsrDelta,
    /// SELL-C-σ: sliced ELLPACK with σ-windowed row sorting
    /// (padding-dominated extension beyond the paper).
    SellCSigma,
}

impl FormatKind {
    /// The paper's label for this format.
    pub const fn label(self) -> &'static str {
        match self {
            FormatKind::Csr => "CSR",
            FormatKind::Bcsr => "BCSR",
            FormatKind::BcsrDec => "BCSR-DEC",
            FormatKind::Bcsd => "BCSD",
            FormatKind::BcsdDec => "BCSD-DEC",
            FormatKind::BcsrMasked => "BCSR-MASK",
            FormatKind::BcsdMasked => "BCSD-MASK",
            FormatKind::Vbl => "1D-VBL",
            FormatKind::Vbr => "VBR",
            FormatKind::CsrDelta => "CSR-DELTA",
            FormatKind::SellCSigma => "SELL",
        }
    }

    /// The six formats of the paper's evaluation (Table II order).
    pub const EVALUATED: [FormatKind; 6] = [
        FormatKind::Csr,
        FormatKind::Bcsr,
        FormatKind::BcsrDec,
        FormatKind::Bcsd,
        FormatKind::BcsdDec,
        FormatKind::Vbl,
    ];

    /// The formats covered by the performance models: fixed-size blocking
    /// with or without decomposition, plus CSR as the degenerate 1×1 case.
    /// Variable-size blocking is excluded ("we do not consider variable
    /// size blocking methods", §IV).
    pub const MODELED: [FormatKind; 5] = [
        FormatKind::Csr,
        FormatKind::Bcsr,
        FormatKind::BcsrDec,
        FormatKind::Bcsd,
        FormatKind::BcsdDec,
    ];

    /// Whether this format is decomposed into k = 2 submatrices.
    pub const fn is_decomposed(self) -> bool {
        matches!(self, FormatKind::BcsrDec | FormatKind::BcsdDec)
    }
}

impl fmt::Display for FormatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    #[test]
    fn csr_spmv_acc_adds() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]).unwrap(),
        );
        let mut y = vec![10.0, 10.0];
        csr.spmv_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![12.0, 13.0]);
    }

    #[test]
    fn csr_spmv_multi_acc_adds() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]).unwrap(),
        );
        let mut y = vec![10.0, 10.0, 20.0, 20.0];
        csr.spmv_multi_acc(&[1.0, 1.0, 2.0, 2.0], &mut y, 2);
        assert_eq!(y, vec![12.0, 13.0, 24.0, 26.0]);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(FormatKind::Bcsr.label(), "BCSR");
        assert_eq!(FormatKind::Vbl.label(), "1D-VBL");
        assert_eq!(FormatKind::BcsdDec.label(), "BCSD-DEC");
    }

    #[test]
    fn modeled_excludes_variable_size() {
        assert!(!FormatKind::MODELED.contains(&FormatKind::Vbl));
        assert!(!FormatKind::MODELED.contains(&FormatKind::Vbr));
        assert!(FormatKind::MODELED.contains(&FormatKind::Csr));
    }

    #[test]
    fn decomposed_flag() {
        assert!(FormatKind::BcsrDec.is_decomposed());
        assert!(FormatKind::BcsdDec.is_decomposed());
        assert!(!FormatKind::Bcsr.is_decomposed());
        assert!(!FormatKind::Csr.is_decomposed());
    }
}
