//! Padding-free blocked formats with per-block occupancy bitmasks.
//!
//! [`BcsrMasked`] and [`BcsdMasked`] store the same block structure as
//! [`Bcsr`](crate::Bcsr) / [`Bcsd`](crate::Bcsd) — same block starts,
//! same block order, same row pointers — but keep **only the true
//! nonzeros** in the value array, plus one occupancy byte per block (bit
//! `slot` set ⇔ position `slot` of the block holds a stored value; block
//! shapes are capped at eight elements, so a `u8` always suffices). The
//! kernels expand each partial block into a zeroed stack buffer and run
//! the very same const-generic block step as the padded formats, so the
//! accumulation order — and therefore the floating-point result — is
//! bitwise identical to the padded format with the same structure; blocks
//! whose mask is all-ones skip the expansion and borrow the packed
//! values directly.
//!
//! The trade: padded formats stream `nb·r·c` values, masked formats
//! stream `nnz` values plus `nb` mask bytes and pay a scatter per partial
//! block. At fill ratio `f = nnz / (nb·r·c)` the value traffic shrinks by
//! `(1-f)·nb·r·c·sizeof(T) - nb` bytes, so masked storage wins exactly
//! where padding hurts — the low-fill shapes the performance models
//! currently have to discard.
//!
//! No per-block value offset array is stored: block `k`'s values start at
//! the popcount of all masks before `k`, and SpMV walks blocks in order,
//! so a running cursor recovers every offset. Recomputing those
//! popcounts on *every* multiply is not free, though — it measurably
//! drags on well-blocked matrices — so the formats keep one value
//! offset per block **row** (`brow_val_ptr`, the same granularity as
//! `brow_ptr`), and per-call popcounts survive only for the rare
//! boundary-clipped block runs.

use crate::narrow::ColIdx;
use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, IndexWidth, MatrixShape, Result, SpMv, SpMvMulti, MAX_INDEX};
use spmv_kernels::masked::{
    bcsd_masked_seg_clipped, bcsd_masked_seg_multi_clipped, bcsr_masked_row_clipped,
    bcsr_masked_row_multi_clipped, full_mask,
};
use spmv_kernels::registry::{
    bcsd_masked_seg_kernel, bcsd_masked_seg_multi_kernel, bcsr_masked_row_kernel,
    bcsr_masked_row_multi_kernel, BcsdMaskedSegKernel, BcsrMaskedRowKernel,
};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{multi_chunk, BlockShape, KernelImpl, Mask};

/// Stored values across a run of masks (the value-array span of a block
/// range).
#[inline]
fn popcount(masks: &[Mask]) -> usize {
    masks.iter().map(|m| m.count_ones() as usize).sum()
}

/// BCSR with per-block occupancy masks instead of padding.
///
/// Block structure (aligned starts, block order, row pointers) matches
/// [`Bcsr::from_csr`](crate::Bcsr::from_csr) exactly; only the value
/// storage differs. `pval` holds the nonzeros of each block in slot order
/// (row-major within the block), `masks` one occupancy byte per block.
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::{Bcsr, BcsrMasked};
/// use spmv_kernels::{BlockShape, KernelImpl};
///
/// let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0),
/// ]).unwrap());
/// let shape = BlockShape::new(2, 2).unwrap();
/// let padded = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
/// let masked = BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
/// // Same structure, half the stored values, bitwise-equal results.
/// assert_eq!(padded.nnz_stored(), 8);
/// assert_eq!(masked.nnz_stored(), 4);
/// assert_eq!(masked.spmv(&[1.0; 4]), padded.spmv(&[1.0; 4]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMasked<T> {
    n_rows: usize,
    n_cols: usize,
    shape: BlockShape,
    imp: KernelImpl,
    /// Offset of each block row's first block; `n_brows + 1` entries.
    brow_ptr: Vec<Index>,
    /// Start column of each block (aligned: multiples of `c`), sorted per
    /// block row.
    bcol_start: ColIdx,
    /// One occupancy byte per block; bit `i*c + j` set ⇔ position `(i, j)`
    /// of the block is stored.
    masks: Vec<Mask>,
    /// Packed nonzero values, slot order within each block; length is the
    /// total mask popcount (no padding).
    pval: Vec<T>,
    /// Offset of each block row's first value in `pval`; `n_brows + 1`
    /// entries. Saves SpMV from re-popcounting every row's masks on
    /// every call just to track the value cursor.
    brow_val_ptr: Vec<Index>,
    nnz_orig: usize,
}

impl<T: SimdScalar> BcsrMasked<T> {
    /// Converts `csr` to masked BCSR with aligned blocks of `shape`.
    ///
    /// # Panics
    ///
    /// Panics if the block count overflows the `u32` index type.
    pub fn from_csr(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl) -> Self {
        let (r, c) = (shape.rows(), shape.cols());
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_brows = n_rows.div_ceil(r);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_brows + 1);
        brow_ptr.push(0);
        let mut brow_val_ptr: Vec<Index> = Vec::with_capacity(n_brows + 1);
        brow_val_ptr.push(0);
        let mut bcol_start: Vec<Index> = Vec::new();
        let mut masks: Vec<Mask> = Vec::new();
        let mut pval: Vec<T> = Vec::new();

        // (aligned start column, slot, value) per block row.
        let mut temp: Vec<(Index, usize, T)> = Vec::new();
        let mut starts: Vec<Index> = Vec::new();
        let mut bufs: Vec<[T; 8]> = Vec::new();

        for rb in 0..n_brows {
            temp.clear();
            starts.clear();
            let row_hi = ((rb + 1) * r).min(n_rows);
            for i in rb * r..row_hi {
                let il = i - rb * r;
                let (rcols, rvals) = csr.row(i);
                for (&j, &v) in rcols.iter().zip(rvals) {
                    let j0 = (j as usize / c * c) as Index;
                    temp.push((j0, il * c + (j as usize - j0 as usize), v));
                }
            }
            starts.extend(temp.iter().map(|e| e.0));
            starts.sort_unstable();
            starts.dedup();

            assert!(
                bcol_start.len() + starts.len() <= MAX_INDEX,
                "masked BCSR block count overflows u32"
            );
            let base = masks.len();
            bcol_start.extend_from_slice(&starts);
            masks.resize(base + starts.len(), 0);
            bufs.clear();
            bufs.resize(starts.len(), [T::ZERO; 8]);
            for &(j0, slot, v) in &temp {
                let k = starts.binary_search(&j0).expect("start recorded");
                masks[base + k] |= 1 << slot;
                bufs[k][slot] = v;
            }
            for (k, buf) in bufs.iter().enumerate() {
                let mut m = masks[base + k];
                while m != 0 {
                    pval.push(buf[m.trailing_zeros() as usize]);
                    m &= m - 1;
                }
            }
            brow_ptr.push(bcol_start.len() as Index);
            brow_val_ptr.push(pval.len() as Index);
        }

        BcsrMasked {
            n_rows,
            n_cols,
            shape,
            imp,
            brow_ptr,
            bcol_start: ColIdx::wide(bcol_start),
            masks,
            pval,
            brow_val_ptr,
            nnz_orig: csr.nnz(),
        }
    }

    /// Converts `csr` to masked BCSR storing start columns at the
    /// narrowest width [`IndexWidth::for_cols`] allows. Kernels and
    /// results are identical to [`BcsrMasked::from_csr`].
    pub fn from_csr_narrow(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl) -> Self {
        let mut bm = Self::from_csr(csr, shape, imp);
        bm.bcol_start = core::mem::replace(&mut bm.bcol_start, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        bm
    }

    /// The storage width of the start-column array.
    pub fn index_width(&self) -> IndexWidth {
        self.bcol_start.width()
    }

    /// The block shape.
    pub fn shape(&self) -> BlockShape {
        self.shape
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Total number of blocks, `nb`.
    pub fn n_blocks(&self) -> usize {
        self.masks.len()
    }

    /// Explicit padding zeros stored — always zero; that is the point.
    pub fn padding(&self) -> usize {
        0
    }

    /// Nonzeros of the source matrix.
    pub fn nnz_orig(&self) -> usize {
        self.nnz_orig
    }

    /// Fraction of block *slots* that hold a stored value — what
    /// [`Bcsr::fill_ratio`](crate::Bcsr::fill_ratio) would report for the
    /// same structure with padding.
    pub fn occupancy(&self) -> f64 {
        if self.masks.is_empty() {
            1.0
        } else {
            self.pval.len() as f64 / (self.masks.len() * self.shape.elems()) as f64
        }
    }

    /// Converts back to CSR (exact inverse of [`BcsrMasked::from_csr`] up
    /// to explicit zero values, which CSR construction drops).
    pub fn to_csr(&self) -> Csr<T> {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.pval.len());
        let mut cur = 0usize;
        for rb in 0..self.brow_ptr.len() - 1 {
            for k in self.brow_ptr[rb] as usize..self.brow_ptr[rb + 1] as usize {
                let j0 = self.bcol_start.get(k) as usize;
                let mut m = self.masks[k];
                while m != 0 {
                    let slot = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (row, col) = (rb * r + slot / c, j0 + slot % c);
                    let v = self.pval[cur];
                    cur += 1;
                    if v != T::ZERO {
                        coo.push(row, col, v).expect("inside matrix");
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let n_brows = self.n_rows.div_ceil(r);
        if self.brow_ptr.len() != n_brows + 1 {
            return Err(Error::InvalidStructure(format!(
                "brow_ptr has {} entries, expected {}",
                self.brow_ptr.len(),
                n_brows + 1
            )));
        }
        if self.brow_ptr.first() != Some(&0)
            || *self.brow_ptr.last().unwrap() as usize != self.bcol_start.len()
        {
            return Err(Error::InvalidStructure("brow_ptr endpoints wrong".into()));
        }
        if self.masks.len() != self.bcol_start.len() {
            return Err(Error::InvalidStructure("one mask per block required".into()));
        }
        let full = full_mask(r * c);
        for (k, &m) in self.masks.iter().enumerate() {
            if m == 0 {
                return Err(Error::InvalidStructure(format!("block {k}: empty mask")));
            }
            if m & !full != 0 {
                return Err(Error::InvalidStructure(format!(
                    "block {k}: mask bits outside the {r}x{c} shape"
                )));
            }
        }
        if self.pval.len() != popcount(&self.masks) {
            return Err(Error::InvalidStructure("pval length mismatch".into()));
        }
        if self.brow_val_ptr.len() != self.brow_ptr.len() {
            return Err(Error::InvalidStructure(
                "brow_val_ptr length must match brow_ptr".into(),
            ));
        }
        for rb in 0..n_brows {
            let vals = self.brow_val_ptr[rb + 1].checked_sub(self.brow_val_ptr[rb]);
            let span = self.brow_ptr[rb] as usize..self.brow_ptr[rb + 1] as usize;
            if vals.map(|v| v as usize) != Some(popcount(&self.masks[span])) {
                return Err(Error::InvalidStructure(format!(
                    "block row {rb}: brow_val_ptr disagrees with mask popcount"
                )));
            }
            let range = self.brow_ptr[rb] as usize..self.brow_ptr[rb + 1] as usize;
            for k in range.clone().skip(1) {
                if self.bcol_start.get(k - 1) >= self.bcol_start.get(k) {
                    return Err(Error::InvalidStructure(format!(
                        "block row {rb}: duplicate or unsorted blocks"
                    )));
                }
            }
            for k in range {
                let j0 = self.bcol_start.get(k) as usize;
                if !j0.is_multiple_of(c) || j0 >= self.n_cols {
                    return Err(Error::InvalidStructure(format!(
                        "block row {rb}: bad start column {j0}"
                    )));
                }
            }
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let kern: BcsrMaskedRowKernel<T> = bcsr_masked_row_kernel(self.shape, self.imp);
        let n_brows = self.brow_ptr.len() - 1;
        let mut scratch: Vec<Index> = Vec::new();
        for rb in 0..n_brows {
            let start = self.brow_ptr[rb] as usize;
            let end = self.brow_ptr[rb + 1] as usize;
            if start == end {
                continue;
            }
            // Block k's values start at the popcount of all masks before
            // it; `brow_val_ptr` precomputes that at row granularity, so
            // only the (rare) clipped suffix needs a popcount here.
            let cur = self.brow_val_ptr[rb] as usize;
            let stop = self.brow_val_ptr[rb + 1] as usize;
            let y0 = rb * r;
            if y0 + r <= self.n_rows {
                // Blocks overhanging the last column form a sorted suffix.
                let mut fast_end = end;
                while fast_end > start
                    && self.bcol_start.get(fast_end - 1) as usize + c > self.n_cols
                {
                    fast_end -= 1;
                }
                let mid = stop - popcount(&self.masks[fast_end..end]);
                let yrow = &mut y[y0..y0 + r];
                if fast_end > start {
                    kern(
                        &self.pval[cur..mid],
                        self.bcol_start.slice(start..fast_end, &mut scratch),
                        &self.masks[start..fast_end],
                        x,
                        yrow,
                    );
                }
                if end > fast_end {
                    bcsr_masked_row_clipped(
                        r,
                        c,
                        &self.pval[mid..stop],
                        self.bcol_start.slice(fast_end..end, &mut scratch),
                        &self.masks[fast_end..end],
                        x,
                        yrow,
                    );
                }
            } else {
                bcsr_masked_row_clipped(
                    r,
                    c,
                    &self.pval[cur..stop],
                    self.bcol_start.slice(start..end, &mut scratch),
                    &self.masks[start..end],
                    x,
                    &mut y[y0..self.n_rows],
                );
            }
        }
    }

    /// Shared implementation of `spmv_multi_acc` (greedy chunking, as in
    /// BCSR).
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            self.multi_acc_chunk(&x[t0 * m..(t0 + kc) * m], &mut y[t0 * n..(t0 + kc) * n], kc);
            t0 += kc;
        }
    }

    /// One `kc`-vector pass, mirroring the interior/clipped split of
    /// `spmv_acc_impl`.
    fn multi_acc_chunk(&self, x: &[T], y: &mut [T], kc: usize) {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let kern = bcsr_masked_row_multi_kernel::<T>(self.shape, kc, self.imp)
            .expect("chunked to a specialized vector count");
        let (m, n) = (self.n_cols, self.n_rows);
        let n_brows = self.brow_ptr.len() - 1;
        let mut scratch: Vec<Index> = Vec::new();
        for rb in 0..n_brows {
            let start = self.brow_ptr[rb] as usize;
            let end = self.brow_ptr[rb + 1] as usize;
            if start == end {
                continue;
            }
            let cur = self.brow_val_ptr[rb] as usize;
            let stop = self.brow_val_ptr[rb + 1] as usize;
            let y0 = rb * r;
            if y0 + r <= n {
                let mut fast_end = end;
                while fast_end > start && self.bcol_start.get(fast_end - 1) as usize + c > m {
                    fast_end -= 1;
                }
                let mid = stop - popcount(&self.masks[fast_end..end]);
                if fast_end > start {
                    kern(
                        &self.pval[cur..mid],
                        self.bcol_start.slice(start..fast_end, &mut scratch),
                        &self.masks[start..fast_end],
                        x,
                        m,
                        y,
                        n,
                        y0,
                    );
                }
                if end > fast_end {
                    bcsr_masked_row_multi_clipped(
                        r,
                        c,
                        kc,
                        &self.pval[mid..stop],
                        self.bcol_start.slice(fast_end..end, &mut scratch),
                        &self.masks[fast_end..end],
                        x,
                        m,
                        y,
                        n,
                        y0,
                        r,
                    );
                }
            } else {
                bcsr_masked_row_multi_clipped(
                    r,
                    c,
                    kc,
                    &self.pval[cur..stop],
                    self.bcol_start.slice(start..end, &mut scratch),
                    &self.masks[start..end],
                    x,
                    m,
                    y,
                    n,
                    y0,
                    n - y0,
                );
            }
        }
    }
}

impl<T> MatrixShape for BcsrMasked<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for BcsrMasked<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.pval.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.pval.len() * T::BYTES
            + self.masks.len() * core::mem::size_of::<Mask>()
            + self.bcol_start.bytes()
            + (self.brow_ptr.len() + self.brow_val_ptr.len()) * core::mem::size_of::<Index>()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for BcsrMasked<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for BcsrMasked<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for BcsrMasked<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

/// BCSD with per-block occupancy masks instead of padding.
///
/// Block structure matches [`Bcsd::from_csr`](crate::Bcsd::from_csr)
/// exactly (same segments, biased start columns, block order); `pval`
/// stores only the occupied diagonal positions, `masks` bit `t` ⇔
/// position `t` of the block's diagonal is stored.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsdMasked<T> {
    n_rows: usize,
    n_cols: usize,
    b: usize,
    imp: KernelImpl,
    /// Offset of each segment's first block; `n_segments + 1` entries.
    brow_ptr: Vec<Index>,
    /// Start column of each block, biased by `+b`, sorted per segment.
    bcol_biased: ColIdx,
    /// One occupancy byte per block; bit `t` set ⇔ diagonal position `t`
    /// is stored.
    masks: Vec<Mask>,
    /// Packed nonzero values, diagonal order within each block.
    pval: Vec<T>,
    /// Offset of each segment's first value in `pval`; `n_segments + 1`
    /// entries (see [`BcsrMasked`]).
    brow_val_ptr: Vec<Index>,
    nnz_orig: usize,
}

impl<T: SimdScalar> BcsdMasked<T> {
    /// Converts `csr` to masked BCSD with diagonal blocks of size `b`
    /// (`1 <= b <= 8`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `1..=8` or the block count overflows the
    /// `u32` index type.
    pub fn from_csr(csr: &Csr<T>, b: usize, imp: KernelImpl) -> Self {
        assert!((1..=8).contains(&b), "BCSD block size must be in 1..=8");
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_segs = n_rows.div_ceil(b);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_segs + 1);
        brow_ptr.push(0);
        let mut brow_val_ptr: Vec<Index> = Vec::with_capacity(n_segs + 1);
        brow_val_ptr.push(0);
        let mut bcol_biased: Vec<Index> = Vec::new();
        let mut masks: Vec<Mask> = Vec::new();
        let mut pval: Vec<T> = Vec::new();

        let mut temp: Vec<(Index, usize, T)> = Vec::new(); // (biased start, t, value)
        let mut starts: Vec<Index> = Vec::new();
        let mut bufs: Vec<[T; 8]> = Vec::new();

        for s in 0..n_segs {
            temp.clear();
            starts.clear();
            let row_hi = ((s + 1) * b).min(n_rows);
            for i in s * b..row_hi {
                let t = i - s * b;
                let (rcols, rvals) = csr.row(i);
                for (&j, &v) in rcols.iter().zip(rvals) {
                    let biased = (j as i64 - t as i64 + b as i64) as Index;
                    temp.push((biased, t, v));
                }
            }
            starts.extend(temp.iter().map(|e| e.0));
            starts.sort_unstable();
            starts.dedup();

            assert!(
                bcol_biased.len() + starts.len() <= MAX_INDEX,
                "masked BCSD block count overflows u32"
            );
            let base = masks.len();
            bcol_biased.extend_from_slice(&starts);
            masks.resize(base + starts.len(), 0);
            bufs.clear();
            bufs.resize(starts.len(), [T::ZERO; 8]);
            for &(biased, t, v) in &temp {
                let k = starts.binary_search(&biased).expect("start recorded");
                masks[base + k] |= 1 << t;
                bufs[k][t] = v;
            }
            for (k, buf) in bufs.iter().enumerate() {
                let mut m = masks[base + k];
                while m != 0 {
                    pval.push(buf[m.trailing_zeros() as usize]);
                    m &= m - 1;
                }
            }
            brow_ptr.push(bcol_biased.len() as Index);
            brow_val_ptr.push(pval.len() as Index);
        }

        BcsdMasked {
            n_rows,
            n_cols,
            b,
            imp,
            brow_ptr,
            bcol_biased: ColIdx::wide(bcol_biased),
            masks,
            pval,
            brow_val_ptr,
            nnz_orig: csr.nnz(),
        }
    }

    /// Converts `csr` to masked BCSD storing the biased start columns at
    /// the narrowest width [`IndexWidth::for_cols`] allows (the shared
    /// bound already absorbs the `+b <= +8` bias). Kernels and results
    /// are identical to [`BcsdMasked::from_csr`].
    pub fn from_csr_narrow(csr: &Csr<T>, b: usize, imp: KernelImpl) -> Self {
        let mut bm = Self::from_csr(csr, b, imp);
        bm.bcol_biased = core::mem::replace(&mut bm.bcol_biased, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        bm
    }

    /// The storage width of the biased start-column array.
    pub fn index_width(&self) -> IndexWidth {
        self.bcol_biased.width()
    }

    /// The diagonal block size `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Total number of diagonal blocks, `nb`.
    pub fn n_blocks(&self) -> usize {
        self.masks.len()
    }

    /// Explicit padding zeros stored — always zero.
    pub fn padding(&self) -> usize {
        0
    }

    /// Nonzeros of the source matrix.
    pub fn nnz_orig(&self) -> usize {
        self.nnz_orig
    }

    /// Fraction of diagonal slots that hold a stored value.
    pub fn occupancy(&self) -> f64 {
        if self.masks.is_empty() {
            1.0
        } else {
            self.pval.len() as f64 / (self.masks.len() * self.b) as f64
        }
    }

    /// Converts back to CSR (inverse of [`BcsdMasked::from_csr`] up to
    /// explicit zero values).
    pub fn to_csr(&self) -> Csr<T> {
        let b = self.b;
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.pval.len());
        let mut cur = 0usize;
        for s in 0..self.brow_ptr.len() - 1 {
            for k in self.brow_ptr[s] as usize..self.brow_ptr[s + 1] as usize {
                let j0 = self.bcol_biased.get(k) as i64 - b as i64;
                let mut m = self.masks[k];
                while m != 0 {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (row, col) = (s * b + t, j0 + t as i64);
                    let v = self.pval[cur];
                    cur += 1;
                    if v != T::ZERO {
                        debug_assert!(row < self.n_rows && (0..self.n_cols as i64).contains(&col));
                        coo.push(row, col as usize, v).expect("inside matrix");
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let n_segs = self.n_rows.div_ceil(self.b);
        if self.brow_ptr.len() != n_segs + 1 {
            return Err(Error::InvalidStructure(format!(
                "brow_ptr has {} entries, expected {}",
                self.brow_ptr.len(),
                n_segs + 1
            )));
        }
        if self.brow_ptr.first() != Some(&0)
            || *self.brow_ptr.last().unwrap() as usize != self.bcol_biased.len()
        {
            return Err(Error::InvalidStructure("brow_ptr endpoints wrong".into()));
        }
        if self.masks.len() != self.bcol_biased.len() {
            return Err(Error::InvalidStructure("one mask per block required".into()));
        }
        let full = full_mask(self.b);
        for (k, &m) in self.masks.iter().enumerate() {
            if m == 0 {
                return Err(Error::InvalidStructure(format!("block {k}: empty mask")));
            }
            if m & !full != 0 {
                return Err(Error::InvalidStructure(format!(
                    "block {k}: mask bits outside diagonal size {}",
                    self.b
                )));
            }
        }
        if self.pval.len() != popcount(&self.masks) {
            return Err(Error::InvalidStructure("pval length mismatch".into()));
        }
        if self.brow_val_ptr.len() != self.brow_ptr.len() {
            return Err(Error::InvalidStructure(
                "brow_val_ptr length must match brow_ptr".into(),
            ));
        }
        for s in 0..n_segs {
            let vals = self.brow_val_ptr[s + 1].checked_sub(self.brow_val_ptr[s]);
            let span = self.brow_ptr[s] as usize..self.brow_ptr[s + 1] as usize;
            if vals.map(|v| v as usize) != Some(popcount(&self.masks[span])) {
                return Err(Error::InvalidStructure(format!(
                    "segment {s}: brow_val_ptr disagrees with mask popcount"
                )));
            }
            let range = self.brow_ptr[s] as usize..self.brow_ptr[s + 1] as usize;
            for k in range.clone().skip(1) {
                if self.bcol_biased.get(k - 1) >= self.bcol_biased.get(k) {
                    return Err(Error::InvalidStructure(format!(
                        "segment {s}: duplicate or unsorted blocks"
                    )));
                }
            }
            for k in range {
                let j0 = self.bcol_biased.get(k) as i64 - self.b as i64;
                if j0 <= -(self.b as i64) || j0 >= self.n_cols as i64 {
                    return Err(Error::InvalidStructure(format!(
                        "segment {s}: block start {j0} entirely outside the matrix"
                    )));
                }
            }
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let b = self.b;
        let kern: BcsdMaskedSegKernel<T> = bcsd_masked_seg_kernel(b, self.imp);
        let n_segs = self.brow_ptr.len() - 1;
        let mut scratch: Vec<Index> = Vec::new();
        for s in 0..n_segs {
            let start = self.brow_ptr[s] as usize;
            let end = self.brow_ptr[s + 1] as usize;
            if start == end {
                continue;
            }
            // Precomputed per-segment value offsets; popcounts remain
            // only for the (rare) clipped prefix and suffix.
            let cur = self.brow_val_ptr[s] as usize;
            let stop = self.brow_val_ptr[s + 1] as usize;
            let y0 = s * b;
            if y0 + b <= self.n_rows {
                let yseg = &mut y[y0..y0 + b];
                // Left-clipped blocks form a sorted prefix, right-clipped a
                // sorted suffix, as in the padded format.
                let mut lo = start;
                while lo < end && (self.bcol_biased.get(lo) as usize) < b {
                    lo += 1;
                }
                let mut hi = end;
                while hi > lo && self.bcol_biased.get(hi - 1) as usize > self.n_cols {
                    hi -= 1;
                }
                let c_lo = cur + popcount(&self.masks[start..lo]);
                let c_hi = stop - popcount(&self.masks[hi..end]);
                if lo > start {
                    bcsd_masked_seg_clipped(
                        b,
                        &self.pval[cur..c_lo],
                        self.bcol_biased.slice(start..lo, &mut scratch),
                        &self.masks[start..lo],
                        x,
                        yseg,
                    );
                }
                if hi > lo {
                    kern(
                        &self.pval[c_lo..c_hi],
                        self.bcol_biased.slice(lo..hi, &mut scratch),
                        &self.masks[lo..hi],
                        x,
                        yseg,
                    );
                }
                if end > hi {
                    bcsd_masked_seg_clipped(
                        b,
                        &self.pval[c_hi..stop],
                        self.bcol_biased.slice(hi..end, &mut scratch),
                        &self.masks[hi..end],
                        x,
                        yseg,
                    );
                }
            } else {
                bcsd_masked_seg_clipped(
                    b,
                    &self.pval[cur..stop],
                    self.bcol_biased.slice(start..end, &mut scratch),
                    &self.masks[start..end],
                    x,
                    &mut y[y0..self.n_rows],
                );
            }
        }
    }

    /// Shared implementation of `spmv_multi_acc` (greedy chunking).
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            self.multi_acc_chunk(&x[t0 * m..(t0 + kc) * m], &mut y[t0 * n..(t0 + kc) * n], kc);
            t0 += kc;
        }
    }

    /// One `kc`-vector pass, mirroring the interior/clipped split of
    /// `spmv_acc_impl`.
    fn multi_acc_chunk(&self, x: &[T], y: &mut [T], kc: usize) {
        let b = self.b;
        let kern = bcsd_masked_seg_multi_kernel::<T>(b, kc, self.imp)
            .expect("chunked to a specialized vector count");
        let (m, n) = (self.n_cols, self.n_rows);
        let n_segs = self.brow_ptr.len() - 1;
        let mut scratch: Vec<Index> = Vec::new();
        for s in 0..n_segs {
            let start = self.brow_ptr[s] as usize;
            let end = self.brow_ptr[s + 1] as usize;
            if start == end {
                continue;
            }
            let cur = self.brow_val_ptr[s] as usize;
            let stop = self.brow_val_ptr[s + 1] as usize;
            let y0 = s * b;
            if y0 + b <= n {
                let mut lo = start;
                while lo < end && (self.bcol_biased.get(lo) as usize) < b {
                    lo += 1;
                }
                let mut hi = end;
                while hi > lo && self.bcol_biased.get(hi - 1) as usize > m {
                    hi -= 1;
                }
                let c_lo = cur + popcount(&self.masks[start..lo]);
                let c_hi = stop - popcount(&self.masks[hi..end]);
                if lo > start {
                    bcsd_masked_seg_multi_clipped(
                        b,
                        kc,
                        &self.pval[cur..c_lo],
                        self.bcol_biased.slice(start..lo, &mut scratch),
                        &self.masks[start..lo],
                        x,
                        m,
                        y,
                        n,
                        y0,
                        b,
                    );
                }
                if hi > lo {
                    kern(
                        &self.pval[c_lo..c_hi],
                        self.bcol_biased.slice(lo..hi, &mut scratch),
                        &self.masks[lo..hi],
                        x,
                        m,
                        y,
                        n,
                        y0,
                    );
                }
                if end > hi {
                    bcsd_masked_seg_multi_clipped(
                        b,
                        kc,
                        &self.pval[c_hi..stop],
                        self.bcol_biased.slice(hi..end, &mut scratch),
                        &self.masks[hi..end],
                        x,
                        m,
                        y,
                        n,
                        y0,
                        b,
                    );
                }
            } else {
                bcsd_masked_seg_multi_clipped(
                    b,
                    kc,
                    &self.pval[cur..stop],
                    self.bcol_biased.slice(start..end, &mut scratch),
                    &self.masks[start..end],
                    x,
                    m,
                    y,
                    n,
                    y0,
                    n - y0,
                );
            }
        }
    }
}

impl<T> MatrixShape for BcsdMasked<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for BcsdMasked<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.pval.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.pval.len() * T::BYTES
            + self.masks.len() * core::mem::size_of::<Mask>()
            + self.bcol_biased.bytes()
            + (self.brow_ptr.len() + self.brow_val_ptr.len()) * core::mem::size_of::<Index>()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for BcsdMasked<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for BcsdMasked<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for BcsdMasked<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bcsd, Bcsr};
    use spmv_core::Coo;

    fn fixture_csr(n: usize, m: usize, seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            if i < m {
                let _ = coo.push(i, i, 2.0 + (i % 5) as f64);
            }
            let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
            let _ = coo.push(i, 0, 0.5);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn bcsr_masked_matches_padded_bitwise_all_shapes() {
        let csr = fixture_csr(23, 19, 11);
        let x: Vec<f64> = (0..19).map(|i| 1.0 + (i % 7) as f64).collect();
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let padded = Bcsr::from_csr(&csr, shape, imp);
                let masked = BcsrMasked::from_csr(&csr, shape, imp);
                masked.validate().unwrap();
                assert_eq!(masked.spmv(&x), padded.spmv(&x), "shape {shape} imp {imp}");
            }
        }
    }

    #[test]
    fn bcsd_masked_matches_padded_bitwise_all_sizes() {
        let csr = fixture_csr(23, 19, 11);
        let x: Vec<f64> = (0..19).map(|i| 1.0 + (i % 7) as f64).collect();
        for b in spmv_kernels::BCSD_SIZES {
            for imp in KernelImpl::ALL {
                let padded = Bcsd::from_csr(&csr, b, imp);
                let masked = BcsdMasked::from_csr(&csr, b, imp);
                masked.validate().unwrap();
                assert_eq!(masked.spmv(&x), padded.spmv(&x), "b {b} imp {imp}");
            }
        }
    }

    #[test]
    fn masked_stores_only_nonzeros() {
        let csr = fixture_csr(23, 19, 3);
        let shape = BlockShape::new(2, 4).unwrap();
        let padded = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
        let masked = BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_eq!(masked.n_blocks(), padded.n_blocks());
        assert_eq!(masked.nnz_stored(), csr.nnz());
        assert_eq!(masked.padding(), 0);
        assert!(padded.padding() > 0);
        assert!(masked.matrix_bytes() < padded.matrix_bytes());
        assert!((masked.occupancy() - padded.fill_ratio()).abs() < 1e-12);

        let bd_padded = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        let bd_masked = BcsdMasked::from_csr(&csr, 4, KernelImpl::Scalar);
        assert_eq!(bd_masked.n_blocks(), bd_padded.n_blocks());
        assert_eq!(bd_masked.nnz_stored(), csr.nnz());
        assert!(bd_masked.matrix_bytes() < bd_padded.matrix_bytes());
    }

    #[test]
    fn masked_multi_matches_per_column_spmv() {
        let csr = fixture_csr(23, 19, 7);
        let shape = BlockShape::new(2, 3).unwrap();
        for imp in KernelImpl::ALL {
            let br = BcsrMasked::from_csr(&csr, shape, imp);
            let bd = BcsdMasked::from_csr(&csr, 4, imp);
            for k in [1, 2, 5, 8] {
                let x: Vec<f64> = (0..19 * k).map(|i| 1.0 + (i % 7) as f64).collect();
                let got_r = br.spmv_multi(&x, k);
                let got_d = bd.spmv_multi(&x, k);
                for t in 0..k {
                    let xcol = &x[t * 19..(t + 1) * 19];
                    assert_eq!(got_r[t * 23..(t + 1) * 23], br.spmv(xcol), "bcsr k={k} t={t}");
                    assert_eq!(got_d[t * 23..(t + 1) * 23], bd.spmv(xcol), "bcsd k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn masked_multi_matches_padded_multi_bitwise() {
        let csr = fixture_csr(23, 19, 9);
        let shape = BlockShape::new(2, 2).unwrap();
        let x: Vec<f64> = (0..19 * 4).map(|i| 1.0 + (i % 7) as f64).collect();
        for imp in KernelImpl::ALL {
            assert_eq!(
                BcsrMasked::from_csr(&csr, shape, imp).spmv_multi(&x, 4),
                Bcsr::from_csr(&csr, shape, imp).spmv_multi(&x, 4),
                "bcsr imp {imp}"
            );
            assert_eq!(
                BcsdMasked::from_csr(&csr, 4, imp).spmv_multi(&x, 4),
                Bcsd::from_csr(&csr, 4, imp).spmv_multi(&x, 4),
                "bcsd imp {imp}"
            );
        }
    }

    #[test]
    fn to_csr_roundtrips() {
        let csr = fixture_csr(17, 13, 5);
        let shape = BlockShape::new(3, 2).unwrap();
        let masked = BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_eq!(masked.to_csr(), csr);
        let bd = BcsdMasked::from_csr(&csr, 3, KernelImpl::Scalar);
        assert_eq!(bd.to_csr(), csr);
    }

    #[test]
    fn narrow_indices_are_bitwise_equal_and_smaller() {
        let csr = fixture_csr(23, 19, 11);
        let shape = BlockShape::new(2, 2).unwrap();
        let wide = BcsrMasked::from_csr(&csr, shape, KernelImpl::Simd);
        let narrow = BcsrMasked::from_csr_narrow(&csr, shape, KernelImpl::Simd);
        narrow.validate().unwrap();
        assert_eq!(narrow.index_width(), IndexWidth::U16);
        assert!(narrow.matrix_bytes() < wide.matrix_bytes());
        let x: Vec<f64> = (0..19).map(|i| 1.0 + (i % 7) as f64).collect();
        assert_eq!(narrow.spmv(&x), wide.spmv(&x));

        let dw = BcsdMasked::from_csr(&csr, 4, KernelImpl::Simd);
        let dn = BcsdMasked::from_csr_narrow(&csr, 4, KernelImpl::Simd);
        dn.validate().unwrap();
        assert_eq!(dn.index_width(), IndexWidth::U16);
        assert_eq!(dn.spmv(&x), dw.spmv(&x));
    }

    #[test]
    fn full_blocks_take_the_dense_path() {
        // A dense 4x4 matrix under 2x2 blocks: every mask is all-ones,
        // occupancy 1.0, and masked storage equals padded value storage.
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                coo.push(i, j, (1 + i * 4 + j) as f64).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let shape = BlockShape::new(2, 2).unwrap();
        let masked = BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
        assert_eq!(masked.occupancy(), 1.0);
        assert_eq!(masked.nnz_stored(), 16);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(masked.spmv(&x), Bcsr::from_csr(&csr, shape, KernelImpl::Scalar).spmv(&x));
    }

    #[test]
    fn single_entry_blocks_and_short_final_rows() {
        // One entry per block (minimal masks), n_rows not a multiple of r,
        // plus a left-edge BCSD corner entry.
        let csr =
            Csr::from_coo(&Coo::from_triplets(5, 7, vec![(4, 6, 3.0), (3, 0, 7.0)]).unwrap());
        let shape = BlockShape::new(2, 4).unwrap();
        let masked = BcsrMasked::from_csr(&csr, shape, KernelImpl::Scalar);
        masked.validate().unwrap();
        assert_eq!(masked.nnz_stored(), 2);
        let x: Vec<f64> = (0..7).map(|i| 1.0 + i as f64).collect();
        assert_eq!(masked.spmv(&x), Bcsr::from_csr(&csr, shape, KernelImpl::Scalar).spmv(&x));

        let bd = BcsdMasked::from_csr(&csr, 4, KernelImpl::Scalar);
        bd.validate().unwrap();
        assert_eq!(bd.nnz_stored(), 2);
        assert_eq!(bd.spmv(&x), Bcsd::from_csr(&csr, 4, KernelImpl::Scalar).spmv(&x));
    }

    #[test]
    fn single_precision_matches_padded_bitwise() {
        let mut coo = Coo::<f32>::new(12, 12);
        for i in 0..12 {
            coo.push(i, i, 1.5).unwrap();
            coo.push(i, (i + 2) % 12, 0.5).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..12).map(|i| i as f32 * 0.25).collect();
        let shape = BlockShape::new(2, 2).unwrap();
        for imp in KernelImpl::ALL {
            assert_eq!(
                BcsrMasked::from_csr(&csr, shape, imp).spmv(&x),
                Bcsr::from_csr(&csr, shape, imp).spmv(&x)
            );
            assert_eq!(
                BcsdMasked::from_csr(&csr, 4, imp).spmv(&x),
                Bcsd::from_csr(&csr, 4, imp).spmv(&x)
            );
        }
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = fixture_csr(9, 9, 5);
        let masked = BcsrMasked::from_csr(&csr, BlockShape::new(3, 1).unwrap(), KernelImpl::Scalar);
        let x = vec![1.0; 9];
        let base = csr.spmv(&x);
        let mut y = base.clone();
        masked.spmv_acc(&x, &mut y);
        for (a, b) in y.iter().zip(&base) {
            assert!((a - 2.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn rectangular_wide_and_tall() {
        let wide = fixture_csr(6, 20, 2);
        let tall = fixture_csr(20, 6, 2);
        let xw: Vec<f64> = (0..20).map(|i| 1.0 + i as f64).collect();
        let xt: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
        for shape in [BlockShape::new(1, 8).unwrap(), BlockShape::new(4, 2).unwrap()] {
            let mw = BcsrMasked::from_csr(&wide, shape, KernelImpl::Scalar);
            let mt = BcsrMasked::from_csr(&tall, shape, KernelImpl::Scalar);
            mw.validate().unwrap();
            mt.validate().unwrap();
            assert_eq!(mw.spmv(&xw), Bcsr::from_csr(&wide, shape, KernelImpl::Scalar).spmv(&xw));
            assert_eq!(mt.spmv(&xt), Bcsr::from_csr(&tall, shape, KernelImpl::Scalar).spmv(&xt));
        }
        for b in [2usize, 5, 8] {
            let mw = BcsdMasked::from_csr(&wide, b, KernelImpl::Scalar);
            let mt = BcsdMasked::from_csr(&tall, b, KernelImpl::Scalar);
            mw.validate().unwrap();
            mt.validate().unwrap();
            assert_eq!(mw.spmv(&xw), Bcsd::from_csr(&wide, b, KernelImpl::Scalar).spmv(&xw));
            assert_eq!(mt.spmv(&xt), Bcsd::from_csr(&tall, b, KernelImpl::Scalar).spmv(&xt));
        }
    }
}
