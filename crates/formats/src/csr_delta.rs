//! CSR-Δ: delta-encoded, narrow-width compressed column indices.
//!
//! The paper's models price SpMV by bytes streamed (§IV); CSR-Δ attacks
//! the `col_ind` term directly. Column indices are strictly increasing
//! within a row, so each index is stored as its gap from the previous one,
//! run-classified into the narrowest width that fits — the same
//! byte-stream trick 1D-VBL plays with its u8 run lengths, applied to the
//! whole index structure (cf. Schubert et al., arXiv:0910.4836, on index
//! traffic as a first-order term; Kreutzer et al., arXiv:1307.6209, on
//! compacted layouts enabling SIMD).

use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, MatrixShape, Result, Scalar, SpMv, SpMvMulti};
use spmv_kernels::registry::{dot_run, dot_run_multi};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::KernelImpl;

/// Run tag: a stretch of consecutive columns (every gap is 1); the run
/// stores no gap payload at all and SIMD kernels treat it like a 1D-VBL
/// block.
pub const TAG_UNIT: u8 = 0;
/// Run tag: gaps stored as one byte each.
pub const TAG_U8: u8 = 1;
/// Run tag: gaps stored as two little-endian bytes each.
pub const TAG_U16: u8 = 2;
/// Run tag: gaps stored as four little-endian bytes each.
pub const TAG_U32: u8 = 3;

/// Maximum gaps per run: run lengths are stored in one byte, so longer
/// class stretches are split into 255-gap chunks (mirroring
/// [`crate::vbl::MAX_VBL_BLOCK`]).
pub const MAX_DELTA_RUN: usize = u8::MAX as usize;

/// Minimum length of a gap-1 stretch that is emitted as a [`TAG_UNIT`]
/// run. A unit run saves its gap bytes but costs a 2-byte header and, on
/// the SIMD path, a kernel dispatch; below this length the stretch is
/// cheaper left inside a neighbouring [`TAG_U8`] run (gap 1 always fits).
pub const UNIT_RUN_MIN: usize = 4;

/// Byte size of the encoded column-index stream and its run count for a
/// CSR matrix, computed by the *same* encoder [`CsrDelta::from_csr`] uses
/// — the model's byte accounting can therefore never drift from the
/// materialized format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Total bytes of the run stream (headers + gap payloads).
    pub stream_bytes: usize,
    /// Number of `(tag, len)` runs in the stream.
    pub n_runs: usize,
}

/// Computes [`DeltaStats`] for `csr` without materializing the format.
///
/// Runs the row encoder into a reused scratch buffer, so the result is
/// exact by construction (used by `spmv-model`'s `SubStat` accounting).
pub fn csr_delta_stats<T: Scalar>(csr: &Csr<T>) -> DeltaStats {
    let mut enc = RowEncoder::default();
    let mut out = Vec::new();
    let mut stats = DeltaStats {
        stream_bytes: 0,
        n_runs: 0,
    };
    for i in 0..csr.n_rows() {
        out.clear();
        let (cols, _) = csr.row(i);
        stats.n_runs += enc.encode_row(cols, &mut out);
        stats.stream_bytes += out.len();
    }
    stats
}

/// Gap width classes, ordered to match the tag values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Unit,
    W8,
    W16,
    W32,
}

impl Class {
    fn tag(self) -> u8 {
        match self {
            Class::Unit => TAG_UNIT,
            Class::W8 => TAG_U8,
            Class::W16 => TAG_U16,
            Class::W32 => TAG_U32,
        }
    }

    /// Narrowest non-unit class able to hold gap `g >= 1`.
    fn of_gap(g: u32) -> Class {
        if g <= u8::MAX as u32 {
            Class::W8
        } else if g <= u16::MAX as u32 {
            Class::W16
        } else {
            Class::W32
        }
    }
}

/// Reusable per-row encoder scratch (gaps + classes).
#[derive(Default)]
struct RowEncoder {
    gaps: Vec<u32>,
    classes: Vec<Class>,
}

impl RowEncoder {
    /// Appends the encoded run stream of one row (strictly increasing
    /// `cols`) to `out`; returns the number of runs emitted.
    fn encode_row(&mut self, cols: &[Index], out: &mut Vec<u8>) -> usize {
        self.gaps.clear();
        self.classes.clear();
        let mut prev_plus_1: u32 = 0; // previous column + 1; g = col + 1 - that
        for &c in cols {
            let g = c + 1 - prev_plus_1;
            self.gaps.push(g);
            self.classes.push(Class::of_gap(g));
            prev_plus_1 = c + 1;
        }
        // Promote long gap-1 stretches to payload-free unit runs.
        let mut j = 0;
        while j < self.gaps.len() {
            if self.gaps[j] == 1 {
                let mut end = j + 1;
                while end < self.gaps.len() && self.gaps[end] == 1 {
                    end += 1;
                }
                if end - j >= UNIT_RUN_MIN {
                    for cls in &mut self.classes[j..end] {
                        *cls = Class::Unit;
                    }
                }
                j = end;
            } else {
                j += 1;
            }
        }
        // Group consecutive same-class gaps, chunking at the u8 length cap.
        let mut n_runs = 0;
        let mut j = 0;
        while j < self.gaps.len() {
            let cls = self.classes[j];
            let mut end = j + 1;
            while end < self.gaps.len() && self.classes[end] == cls && end - j < MAX_DELTA_RUN {
                end += 1;
            }
            out.push(cls.tag());
            out.push((end - j) as u8);
            match cls {
                Class::Unit => {}
                Class::W8 => out.extend(self.gaps[j..end].iter().map(|&g| g as u8)),
                Class::W16 => {
                    for &g in &self.gaps[j..end] {
                        out.extend_from_slice(&(g as u16).to_le_bytes());
                    }
                }
                Class::W32 => {
                    for &g in &self.gaps[j..end] {
                        out.extend_from_slice(&g.to_le_bytes());
                    }
                }
            }
            n_runs += 1;
            j = end;
        }
        n_runs
    }
}

/// CSR with delta-encoded column indices (CSR-Δ).
///
/// `val` and `row_ptr` are exactly CSR's arrays; `col_ind` is replaced by
/// a byte `stream` of runs. Each run is a 2-byte header `(tag, len)`
/// followed by `len` gap payloads of the tag's width (none for
/// [`TAG_UNIT`]). Gaps reconstruct columns via a running cursor `s`
/// (column + 1, reset to 0 per row): `col = s + g - 1`, then `s = col + 1`.
/// Runs never straddle row boundaries.
///
/// The **scalar** kernels replay CSR's exact `mul_add` chain per row, so
/// scalar CSR-Δ is *bitwise* equal to scalar CSR. The **SIMD** kernels
/// additionally dispatch unit runs to the shared [`dot_run`] /
/// [`dot_run_multi`] block kernels, like 1D-VBL.
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::CsrDelta;
/// use spmv_kernels::KernelImpl;
///
/// let csr = Csr::from_coo(&Coo::from_triplets(2, 600, vec![
///     (0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (0, 3, 4.0), (0, 4, 5.0),
///     (1, 599, 6.0),
/// ]).unwrap());
/// let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
/// assert_eq!(cd.spmv(&vec![1.0; 600]), csr.spmv(&vec![1.0; 600]));
/// assert!(cd.matrix_bytes() < csr.matrix_bytes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrDelta<T> {
    n_rows: usize,
    n_cols: usize,
    imp: KernelImpl,
    /// Offsets into `val`, one per row plus one — identical role to CSR.
    row_ptr: Vec<Index>,
    /// Run-encoded column gaps, all rows concatenated.
    stream: Vec<u8>,
    /// The nonzero values, in CSR order.
    val: Vec<T>,
}

impl<T: SimdScalar> CsrDelta<T> {
    /// Converts `csr` to CSR-Δ (exact, no padding).
    pub fn from_csr(csr: &Csr<T>, imp: KernelImpl) -> Self {
        let n_rows = csr.n_rows();
        let mut enc = RowEncoder::default();
        let mut stream = Vec::new();
        for i in 0..n_rows {
            let (cols, _) = csr.row(i);
            enc.encode_row(cols, &mut stream);
        }
        CsrDelta {
            n_rows,
            n_cols: csr.n_cols(),
            imp,
            row_ptr: csr.row_ptr().to_vec(),
            stream,
            val: csr.val().to_vec(),
        }
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD decode kernels in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Bytes of the run-encoded column stream (CSR stores `4 * nnz`).
    pub fn stream_bytes(&self) -> usize {
        self.stream.len()
    }

    /// Total index bytes: run stream plus `row_ptr`, the quantity the
    /// models charge against memory bandwidth.
    pub fn index_bytes(&self) -> usize {
        self.stream.len() + self.row_ptr.len() * core::mem::size_of::<Index>()
    }

    /// Number of `(tag, len)` runs in the stream.
    pub fn n_runs(&self) -> usize {
        self.run_counts().iter().sum()
    }

    /// Run counts by class, indexed `[unit, u8, u16, u32]`.
    pub fn run_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        let mut p = 0;
        while p < self.stream.len() {
            let tag = self.stream[p];
            let len = self.stream[p + 1] as usize;
            counts[tag as usize] += 1;
            p += 2 + len * payload_width(tag);
        }
        counts
    }

    /// Converts back to CSR (exact inverse of [`CsrDelta::from_csr`]).
    pub fn to_csr(&self) -> Csr<T> {
        let mut col_ind = Vec::with_capacity(self.val.len());
        let mut p = 0;
        let mut v = 0;
        for i in 0..self.n_rows {
            let row_end = self.row_ptr[i + 1] as usize;
            let mut s = 0usize;
            while v < row_end {
                let (tag, len) = (self.stream[p], self.stream[p + 1] as usize);
                p += 2;
                for j in 0..len {
                    let g = read_gap(&self.stream, p, tag, j);
                    s += g;
                    col_ind.push((s - 1) as Index);
                }
                p += len * payload_width(tag);
                v += len;
            }
        }
        Csr::from_raw(
            self.n_rows,
            self.n_cols,
            self.row_ptr.clone(),
            col_ind,
            self.val.clone(),
        )
        .expect("CSR-delta invariants imply CSR invariants")
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.n_rows + 1 || self.row_ptr.first() != Some(&0) {
            return Err(Error::InvalidStructure("row_ptr malformed".into()));
        }
        if self.row_ptr.last().map(|&e| e as usize) != Some(self.val.len()) {
            return Err(Error::InvalidStructure(
                "row_ptr does not terminate at nnz".into(),
            ));
        }
        let mut p = 0;
        let mut v = 0;
        for i in 0..self.n_rows {
            let row_end = self.row_ptr[i + 1] as usize;
            if (self.row_ptr[i] as usize) > row_end {
                return Err(Error::InvalidStructure("row_ptr not monotone".into()));
            }
            let mut s = 0usize;
            while v < row_end {
                if p + 2 > self.stream.len() {
                    return Err(Error::InvalidStructure("truncated run header".into()));
                }
                let (tag, len) = (self.stream[p], self.stream[p + 1] as usize);
                p += 2;
                if tag > TAG_U32 {
                    return Err(Error::InvalidStructure(format!("invalid run tag {tag}")));
                }
                if len == 0 {
                    return Err(Error::InvalidStructure("zero-length run".into()));
                }
                if v + len > row_end {
                    return Err(Error::InvalidStructure(format!(
                        "row {i}: run straddles the row boundary"
                    )));
                }
                if p + len * payload_width(tag) > self.stream.len() {
                    return Err(Error::InvalidStructure("truncated run payload".into()));
                }
                for j in 0..len {
                    let g = read_gap(&self.stream, p, tag, j);
                    if g == 0 {
                        return Err(Error::InvalidStructure(format!(
                            "row {i}: zero gap (columns not strictly increasing)"
                        )));
                    }
                    s += g;
                    if s > self.n_cols {
                        return Err(Error::OutOfBounds {
                            row: i,
                            col: s - 1,
                            n_rows: self.n_rows,
                            n_cols: self.n_cols,
                        });
                    }
                }
                p += len * payload_width(tag);
                v += len;
            }
        }
        if p != self.stream.len() {
            return Err(Error::InvalidStructure("trailing stream bytes".into()));
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        let stream = &self.stream;
        let mut p = 0usize;
        let mut v = 0usize;
        for (i, yi) in y.iter_mut().enumerate() {
            let row_end = self.row_ptr[i + 1] as usize;
            let mut s = 0usize;
            let mut acc = T::ZERO;
            while v < row_end {
                let (tag, len) = (stream[p], stream[p + 1] as usize);
                p += 2;
                match tag {
                    TAG_UNIT => {
                        // Consecutive columns x[s..s+len]: the SIMD path
                        // reuses the shared block kernel; the scalar path
                        // stays on CSR's exact mul_add chain so scalar
                        // CSR-delta is bitwise-equal to scalar CSR.
                        if self.imp == KernelImpl::Simd {
                            acc += dot_run(&self.val[v..v + len], &x[s..s + len], self.imp);
                            s += len;
                        } else {
                            for &w in &self.val[v..v + len] {
                                acc = w.mul_add(x[s], acc);
                                s += 1;
                            }
                        }
                    }
                    TAG_U8 => {
                        for j in 0..len {
                            s += stream[p + j] as usize;
                            acc = self.val[v + j].mul_add(x[s - 1], acc);
                        }
                        p += len;
                    }
                    TAG_U16 => {
                        for j in 0..len {
                            let q = p + 2 * j;
                            s += u16::from_le_bytes([stream[q], stream[q + 1]]) as usize;
                            acc = self.val[v + j].mul_add(x[s - 1], acc);
                        }
                        p += 2 * len;
                    }
                    _ => {
                        for j in 0..len {
                            let q = p + 4 * j;
                            let g = u32::from_le_bytes([
                                stream[q],
                                stream[q + 1],
                                stream[q + 2],
                                stream[q + 3],
                            ]);
                            s += g as usize;
                            acc = self.val[v + j].mul_add(x[s - 1], acc);
                        }
                        p += 4 * len;
                    }
                }
                v += len;
            }
            *yi += acc;
        }
    }

    /// Shared `spmv_multi_acc` implementation: chunks of up to 8 vectors
    /// stream the matrix once, with per-column accumulation order
    /// identical to the single-vector kernel (bitwise per column).
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let stream = &self.stream;
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(8);
            let xs = &x[t0 * m..(t0 + kc) * m];
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            let mut p = 0usize;
            let mut v = 0usize;
            let mut acc = [T::ZERO; 8];
            for i in 0..n {
                let row_end = self.row_ptr[i + 1] as usize;
                let mut s = 0usize;
                acc[..kc].fill(T::ZERO);
                while v < row_end {
                    let (tag, len) = (stream[p], stream[p + 1] as usize);
                    p += 2;
                    match tag {
                        TAG_UNIT => {
                            if self.imp == KernelImpl::Simd {
                                dot_run_multi(
                                    &self.val[v..v + len],
                                    xs,
                                    m,
                                    s,
                                    &mut acc[..kc],
                                    self.imp,
                                );
                            } else {
                                for (j, &w) in self.val[v..v + len].iter().enumerate() {
                                    let c = s + j;
                                    for (t, a) in acc[..kc].iter_mut().enumerate() {
                                        *a = w.mul_add(xs[t * m + c], *a);
                                    }
                                }
                            }
                            s += len;
                        }
                        TAG_U8 => {
                            for j in 0..len {
                                s += stream[p + j] as usize;
                                let w = self.val[v + j];
                                for (t, a) in acc[..kc].iter_mut().enumerate() {
                                    *a = w.mul_add(xs[t * m + s - 1], *a);
                                }
                            }
                            p += len;
                        }
                        TAG_U16 => {
                            for j in 0..len {
                                let q = p + 2 * j;
                                s += u16::from_le_bytes([stream[q], stream[q + 1]]) as usize;
                                let w = self.val[v + j];
                                for (t, a) in acc[..kc].iter_mut().enumerate() {
                                    *a = w.mul_add(xs[t * m + s - 1], *a);
                                }
                            }
                            p += 2 * len;
                        }
                        _ => {
                            for j in 0..len {
                                let q = p + 4 * j;
                                let g = u32::from_le_bytes([
                                    stream[q],
                                    stream[q + 1],
                                    stream[q + 2],
                                    stream[q + 3],
                                ]);
                                s += g as usize;
                                let w = self.val[v + j];
                                for (t, a) in acc[..kc].iter_mut().enumerate() {
                                    *a = w.mul_add(xs[t * m + s - 1], *a);
                                }
                            }
                            p += 4 * len;
                        }
                    }
                    v += len;
                }
                for (t, &a) in acc[..kc].iter().enumerate() {
                    ys[t * n + i] += a;
                }
            }
            t0 += kc;
        }
    }
}

/// Payload bytes per gap for a run tag.
#[inline]
fn payload_width(tag: u8) -> usize {
    match tag {
        TAG_UNIT => 0,
        TAG_U8 => 1,
        TAG_U16 => 2,
        _ => 4,
    }
}

/// Reads gap `j` of a run whose payload starts at `p` (gap 1 for unit
/// runs). Decode helper for the non-kernel paths.
#[inline]
fn read_gap(stream: &[u8], p: usize, tag: u8, j: usize) -> usize {
    match tag {
        TAG_UNIT => 1,
        TAG_U8 => stream[p + j] as usize,
        TAG_U16 => {
            let q = p + 2 * j;
            u16::from_le_bytes([stream[q], stream[q + 1]]) as usize
        }
        _ => {
            let q = p + 4 * j;
            u32::from_le_bytes([stream[q], stream[q + 1], stream[q + 2], stream[q + 3]]) as usize
        }
    }
}

impl<T> MatrixShape for CsrDelta<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for CsrDelta<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.val.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.val.len() * T::BYTES + self.index_bytes()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for CsrDelta<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for CsrDelta<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for CsrDelta<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn mixed_csr() -> Csr<f64> {
        let mut coo = Coo::new(17, 400);
        let mut state = 0x5eed5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..17 {
            let start = (next() as usize) % 100;
            // A dense stretch (unit runs) ...
            for j in start..(start + 3 + (next() as usize) % 8).min(400) {
                let _ = coo.push(i, j, 1.0 + (next() % 9) as f64);
            }
            // ... and scattered entries (u8/u16 gaps).
            for _ in 0..(next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % 400, 2.5);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn scalar_is_bitwise_equal_to_csr() {
        let csr = mixed_csr();
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        cd.validate().unwrap();
        let x: Vec<f64> = (0..400).map(|i| 0.25 * (i % 9) as f64 - 1.0).collect();
        assert_eq!(cd.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn simd_matches_csr_within_tolerance() {
        let csr = mixed_csr();
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Simd);
        let x: Vec<f64> = (0..400).map(|i| 0.25 * (i % 9) as f64 - 1.0).collect();
        for (a, g) in csr.spmv(&x).iter().zip(cd.spmv(&x)) {
            assert!((a - g).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrips_through_csr() {
        let csr = mixed_csr();
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(cd.to_csr(), csr);
    }

    #[test]
    fn dense_row_is_one_unit_run_per_chunk() {
        let mut coo = Coo::new(1, 600);
        for j in 0..600 {
            coo.push(0, j, 1.0).unwrap();
        }
        let cd = CsrDelta::from_csr(&Csr::from_coo(&coo), KernelImpl::Scalar);
        cd.validate().unwrap();
        // 600 unit gaps chunk at 255: 255 + 255 + 90.
        assert_eq!(cd.run_counts(), [3, 0, 0, 0]);
        // 3 headers, no payload — vs 2400 bytes of u32 col_ind.
        assert_eq!(cd.stream_bytes(), 6);
        assert_eq!(cd.spmv(&vec![1.0; 600]), vec![600.0]);
    }

    #[test]
    fn short_dense_stretch_stays_u8() {
        // 3 consecutive columns (< UNIT_RUN_MIN): one u8 run, no unit run.
        let csr = Csr::from_coo(
            &Coo::from_triplets(1, 10, vec![(0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]).unwrap(),
        );
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        assert_eq!(cd.run_counts(), [0, 1, 0, 0]);
        assert_eq!(cd.stream_bytes(), 2 + 3);
    }

    #[test]
    fn stats_match_materialized_format() {
        let csr = mixed_csr();
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        let stats = csr_delta_stats(&csr);
        assert_eq!(stats.stream_bytes, cd.stream_bytes());
        assert_eq!(stats.n_runs, cd.n_runs());
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![(1, 1, 5.0)]).unwrap());
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        cd.validate().unwrap();
        assert_eq!(cd.spmv(&[1.0; 4]), vec![0.0, 5.0, 0.0, 0.0]);

        let empty = Csr::<f32>::from_coo(&Coo::new(2, 2));
        let cempty = CsrDelta::from_csr(&empty, KernelImpl::Simd);
        cempty.validate().unwrap();
        assert_eq!(cempty.spmv(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn multi_matches_per_column_spmv_bitwise() {
        let csr = mixed_csr();
        for imp in KernelImpl::ALL {
            let cd = CsrDelta::from_csr(&csr, imp);
            for k in [1, 2, 4, 9] {
                let x: Vec<f64> = (0..400 * k).map(|i| 1.0 + (i % 6) as f64).collect();
                let got = cd.spmv_multi(&x, k);
                for t in 0..k {
                    let want = cd.spmv(&x[t * 400..(t + 1) * 400]);
                    assert_eq!(got[t * 17..(t + 1) * 17], want, "imp {imp} k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn spmv_acc_accumulates() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(2, 2, vec![(0, 0, 3.0), (1, 1, 4.0)]).unwrap(),
        );
        let cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        let mut y = vec![1.0, 1.0];
        cd.spmv_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![4.0, 5.0]);

        let mut y = vec![1.0, 1.0, 2.0, 2.0];
        cd.spmv_multi_acc(&[1.0, 1.0, 1.0, 1.0], &mut y, 2);
        assert_eq!(y, vec![4.0, 5.0, 5.0, 6.0]);
    }

    #[test]
    fn validate_catches_corruption() {
        let csr = mixed_csr();
        let mut cd = CsrDelta::from_csr(&csr, KernelImpl::Scalar);
        cd.stream.push(7); // trailing garbage
        assert!(cd.validate().is_err());
        cd.stream.pop();
        cd.validate().unwrap();
        // Corrupt a tag in place.
        cd.stream[0] = 9;
        assert!(cd.validate().is_err());
    }
}
