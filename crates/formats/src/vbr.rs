//! Variable Block Row (VBR) storage.
//!
//! VBR "partitions the input matrix horizontally and vertically, such that
//! each resulting block contains only nonzero elements … at the cost of
//! two additional indexing structures" (§II-B, citing SPARSKIT). The paper
//! describes VBR but excludes it from the model study; it is implemented
//! here as the §II completeness extension and exercised by the variable-
//! block ablation bench.

use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, MatrixShape, Result, Scalar, SpMv, SpMvMulti};

/// VBR: variable two-dimensional blocks from conforming row/column
/// partitions.
///
/// The row partition groups maximal runs of consecutive rows with
/// identical nonzero column patterns; the column partition does the same
/// on the transpose. Under those partitions every (block row, block
/// column) intersection that contains a nonzero is *completely* dense, so
/// VBR stores no padding.
///
/// Arrays (SPARSKIT naming): `rpntr`/`cpntr` hold the partition
/// boundaries, `brow_ptr` the block extent of each block row, `bcol_ind`
/// the block-column of each block, `indx` each block's offset into `val`
/// (blocks are dense, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Vbr<T> {
    n_rows: usize,
    n_cols: usize,
    /// Row partition boundaries; `rpntr[I]..rpntr[I+1]` are block row I's rows.
    rpntr: Vec<Index>,
    /// Column partition boundaries.
    cpntr: Vec<Index>,
    /// Offset of each block row's first block; `n_brows + 1` entries.
    brow_ptr: Vec<Index>,
    /// Block-column index of each block.
    bcol_ind: Vec<Index>,
    /// Offset of each block's values in `val`; `nb + 1` entries.
    indx: Vec<Index>,
    /// Dense block values, row-major within each block.
    val: Vec<T>,
}

/// Groups maximal runs of equal adjacent patterns; returns partition
/// boundaries `[0, ..., n]`.
fn partition_by_pattern<T: Scalar>(csr: &Csr<T>) -> Vec<Index> {
    let n = csr.n_rows();
    let mut bounds = Vec::with_capacity(16);
    bounds.push(0 as Index);
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && csr.row(j).0 == csr.row(i).0 {
            j += 1;
        }
        bounds.push(j as Index);
        i = j;
    }
    if n == 0 {
        // keep the single boundary
    }
    bounds
}

impl<T: Scalar> Vbr<T> {
    /// Converts `csr` to VBR using pattern-derived row and column
    /// partitions.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let rpntr = partition_by_pattern(csr);
        let cpntr = partition_by_pattern(&csr.transpose());

        // Map each column to its block column.
        let mut col_to_bc = vec![0 as Index; n_cols];
        for bc in 0..cpntr.len() - 1 {
            col_to_bc[cpntr[bc] as usize..cpntr[bc + 1] as usize].fill(bc as Index);
        }

        let n_brows = rpntr.len() - 1;
        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_brows + 1);
        brow_ptr.push(0);
        let mut bcol_ind: Vec<Index> = Vec::new();
        let mut indx: Vec<Index> = vec![0];
        let mut val: Vec<T> = Vec::with_capacity(csr.nnz());

        for bi in 0..n_brows {
            let r0 = rpntr[bi] as usize;
            let r1 = rpntr[bi + 1] as usize;
            let height = r1 - r0;
            // All rows in the block row share a pattern; derive the block
            // columns from the first row.
            let (cols, _) = csr.row(r0);
            let mut bcs: Vec<Index> = cols.iter().map(|&j| col_to_bc[j as usize]).collect();
            bcs.dedup();
            for &bc in &bcs {
                let c0 = cpntr[bc as usize] as usize;
                let c1 = cpntr[bc as usize + 1] as usize;
                let width = c1 - c0;
                bcol_ind.push(bc);
                // Dense block: every row contributes `width` consecutive
                // values starting at column c0.
                for i in r0..r1 {
                    let (rcols, rvals) = csr.row(i);
                    let k = rcols
                        .binary_search(&(c0 as Index))
                        .expect("pattern-derived block must be fully dense");
                    val.extend_from_slice(&rvals[k..k + width]);
                }
                indx.push(val.len() as Index);
                debug_assert_eq!(
                    (indx[indx.len() - 1] - indx[indx.len() - 2]) as usize,
                    height * width
                );
            }
            brow_ptr.push(bcol_ind.len() as Index);
        }

        Vbr {
            n_rows,
            n_cols,
            rpntr,
            cpntr,
            brow_ptr,
            bcol_ind,
            indx,
            val,
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.bcol_ind.len()
    }

    /// Number of block rows in the row partition.
    pub fn n_block_rows(&self) -> usize {
        self.rpntr.len() - 1
    }

    /// Number of block columns in the column partition.
    pub fn n_block_cols(&self) -> usize {
        self.cpntr.len() - 1
    }

    /// Mean block area in elements.
    pub fn avg_block_area(&self) -> f64 {
        if self.bcol_ind.is_empty() {
            0.0
        } else {
            self.val.len() as f64 / self.bcol_ind.len() as f64
        }
    }

    /// Converts back to CSR (exact inverse of [`Vbr::from_csr`] — VBR
    /// blocks are fully dense, so no padding exists to drop; any zero
    /// inside a block was a structurally stored value and is kept only
    /// if nonzero, matching the COO construction rules).
    pub fn to_csr(&self) -> Csr<T>
    where
        T: Scalar,
    {
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.val.len());
        for bi in 0..self.n_block_rows() {
            let r0 = self.rpntr[bi] as usize;
            let height = (self.rpntr[bi + 1] as usize) - r0;
            for k in self.brow_ptr[bi] as usize..self.brow_ptr[bi + 1] as usize {
                let bc = self.bcol_ind[k] as usize;
                let c0 = self.cpntr[bc] as usize;
                let width = (self.cpntr[bc + 1] as usize) - c0;
                let block = &self.val[self.indx[k] as usize..self.indx[k + 1] as usize];
                for i in 0..height {
                    for j in 0..width {
                        let v = block[i * width + j];
                        if v != T::ZERO {
                            coo.push(r0 + i, c0 + j, v).expect("inside matrix");
                        }
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let check_partition = |p: &[Index], n: usize, what: &str| -> Result<()> {
            if p.first() != Some(&0) || *p.last().unwrap_or(&0) as usize != n {
                return Err(Error::InvalidStructure(format!(
                    "{what} partition endpoints wrong"
                )));
            }
            for w in p.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::InvalidStructure(format!(
                        "{what} partition not strictly increasing"
                    )));
                }
            }
            Ok(())
        };
        if self.n_rows > 0 {
            check_partition(&self.rpntr, self.n_rows, "row")?;
        }
        if self.n_cols > 0 {
            check_partition(&self.cpntr, self.n_cols, "column")?;
        }
        if self.indx.len() != self.bcol_ind.len() + 1 {
            return Err(Error::InvalidStructure("indx length mismatch".into()));
        }
        if *self.indx.last().unwrap_or(&0) as usize != self.val.len() {
            return Err(Error::InvalidStructure(
                "indx does not terminate at val length".into(),
            ));
        }
        if self.brow_ptr.len() != self.rpntr.len() {
            return Err(Error::InvalidStructure("brow_ptr length mismatch".into()));
        }
        for bi in 0..self.n_block_rows() {
            let height = (self.rpntr[bi + 1] - self.rpntr[bi]) as usize;
            for k in self.brow_ptr[bi] as usize..self.brow_ptr[bi + 1] as usize {
                let bc = self.bcol_ind[k] as usize;
                if bc >= self.n_block_cols() {
                    return Err(Error::InvalidStructure(format!(
                        "block {k} references block column {bc} out of range"
                    )));
                }
                let width = (self.cpntr[bc + 1] - self.cpntr[bc]) as usize;
                if (self.indx[k + 1] - self.indx[k]) as usize != height * width {
                    return Err(Error::InvalidStructure(format!(
                        "block {k} has wrong value extent"
                    )));
                }
            }
        }
        Ok(())
    }

    fn spmv_acc_impl(&self, x: &[T], y: &mut [T]) {
        for bi in 0..self.n_block_rows() {
            let r0 = self.rpntr[bi] as usize;
            let r1 = self.rpntr[bi + 1] as usize;
            let height = r1 - r0;
            for k in self.brow_ptr[bi] as usize..self.brow_ptr[bi + 1] as usize {
                let bc = self.bcol_ind[k] as usize;
                let c0 = self.cpntr[bc] as usize;
                let width = (self.cpntr[bc + 1] as usize) - c0;
                let block = &self.val[self.indx[k] as usize..self.indx[k + 1] as usize];
                let xs = &x[c0..c0 + width];
                for i in 0..height {
                    let row = &block[i * width..(i + 1) * width];
                    let mut acc = T::ZERO;
                    for (&v, &xj) in row.iter().zip(xs) {
                        acc = v.mul_add(xj, acc);
                    }
                    y[r0 + i] += acc;
                }
            }
        }
    }

    /// Shared implementation of `spmv_multi_acc`: each dense block row is
    /// re-applied to every vector of a chunk while it is hot in cache, so
    /// the block values stream from memory once per chunk of up to 8
    /// vectors.
    fn spmv_multi_acc_impl(&self, x: &[T], y: &mut [T], k: usize) {
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(8);
            let xb = &x[t0 * m..(t0 + kc) * m];
            let yb = &mut y[t0 * n..(t0 + kc) * n];
            for bi in 0..self.n_block_rows() {
                let r0 = self.rpntr[bi] as usize;
                let r1 = self.rpntr[bi + 1] as usize;
                let height = r1 - r0;
                for kb in self.brow_ptr[bi] as usize..self.brow_ptr[bi + 1] as usize {
                    let bc = self.bcol_ind[kb] as usize;
                    let c0 = self.cpntr[bc] as usize;
                    let width = (self.cpntr[bc + 1] as usize) - c0;
                    let block = &self.val[self.indx[kb] as usize..self.indx[kb + 1] as usize];
                    for i in 0..height {
                        let row = &block[i * width..(i + 1) * width];
                        for t in 0..kc {
                            let xs = &xb[t * m + c0..t * m + c0 + width];
                            let mut acc = T::ZERO;
                            for (&v, &xj) in row.iter().zip(xs) {
                                acc = v.mul_add(xj, acc);
                            }
                            yb[t * n + r0 + i] += acc;
                        }
                    }
                }
            }
            t0 += kc;
        }
    }
}

impl<T> MatrixShape for Vbr<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar> SpMv<T> for Vbr<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.spmv_acc_impl(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.val.len()
    }

    fn matrix_bytes(&self) -> usize {
        let idx = core::mem::size_of::<Index>();
        self.val.len() * T::BYTES
            + self.rpntr.len() * idx
            + self.cpntr.len() * idx
            + self.brow_ptr.len() * idx
            + self.bcol_ind.len() * idx
            + self.indx.len() * idx
    }
}

impl<T: Scalar> SpMvAcc<T> for Vbr<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_acc_impl(x, y);
    }
}

impl<T: Scalar> SpMvMulti<T> for Vbr<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

impl<T: Scalar> SpMvMultiAcc<T> for Vbr<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.spmv_multi_acc_impl(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    #[test]
    fn block_diagonal_groups_perfectly() {
        // Two 2x2 dense diagonal blocks + one 1x1.
        let mut coo = Coo::new(5, 5);
        for b in 0..2 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * b + di, 2 * b + dj, (b + 1) as f64).unwrap();
            }
        }
        coo.push(4, 4, 9.0).unwrap();
        let csr = Csr::from_coo(&coo);
        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        assert_eq!(vbr.n_block_rows(), 3);
        assert_eq!(vbr.n_blocks(), 3);
        assert_eq!(vbr.nnz_stored(), csr.nnz()); // no padding, ever
        let x = vec![1.0; 5];
        assert_eq!(vbr.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn matches_csr_on_irregular_matrix() {
        let mut coo = Coo::new(13, 11);
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..13 {
            for _ in 0..1 + (next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % 11, 1.0 + (next() % 5) as f64);
            }
        }
        let csr = Csr::from_coo(&coo);
        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        let x: Vec<f64> = (0..11).map(|i| 0.5 + i as f64).collect();
        let want = csr.spmv(&x);
        for (a, g) in want.iter().zip(vbr.spmv(&x)) {
            assert!((a - g).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let mut coo = Coo::new(13, 11);
        let mut state = 0xF00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..13 {
            for _ in 0..1 + (next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % 11, 1.0 + (next() % 5) as f64);
            }
        }
        let csr = Csr::from_coo(&coo);
        let vbr = Vbr::from_csr(&csr);
        for k in [1, 3, 8, 10] {
            let x: Vec<f64> = (0..11 * k).map(|i| 1.0 + (i % 4) as f64).collect();
            let got = vbr.spmv_multi(&x, k);
            for t in 0..k {
                let want = vbr.spmv(&x[t * 11..(t + 1) * 11]);
                assert_eq!(got[t * 13..(t + 1) * 13], want, "k={k} t={t}");
            }
        }
    }

    #[test]
    fn identical_rows_merge_into_one_block_row() {
        let mut coo = Coo::new(4, 6);
        for i in 0..4 {
            coo.push(i, 1, (i + 1) as f64).unwrap();
            coo.push(i, 2, (i + 2) as f64).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let vbr = Vbr::from_csr(&csr);
        assert_eq!(vbr.n_block_rows(), 1);
        assert_eq!(vbr.n_blocks(), 1);
        assert_eq!(vbr.avg_block_area(), 8.0);
    }

    #[test]
    fn empty_matrix() {
        let csr = Csr::<f64>::from_coo(&Coo::new(0, 0));
        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        assert_eq!(vbr.spmv(&[]), Vec::<f64>::new());
    }

    #[test]
    fn empty_rows_are_their_own_partition() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap(),
        );
        let vbr = Vbr::from_csr(&csr);
        vbr.validate().unwrap();
        let x = vec![2.0; 4];
        assert_eq!(vbr.spmv(&x), vec![2.0, 0.0, 0.0, 4.0]);
    }
}
