//! Decomposed blocking: full blocks without padding + a CSR remainder.
//!
//! "A common practice to avoid padding is to decompose the original input
//! sparse matrix into k smaller matrices, where the first k−1 matrices
//! consist of elements … that follow a common pattern … while the k-th
//! matrix contains the remainder elements" (§II-B). As in the paper,
//! `k = 2` here: the first submatrix holds only *completely full* blocks
//! (so it carries zero padding), the second every remaining nonzero in
//! CSR.

use crate::{Bcsd, Bcsr, SpMvAcc, SpMvMultiAcc};
use spmv_core::{Coo, Csr, Index, MatrixShape, Result, Scalar, SpMv, SpMvMulti};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{BlockShape, KernelImpl};

/// A matrix decomposed into a blocked main part and a CSR remainder.
///
/// `y = A*x` runs as `y = A_main*x; y += A_rest*x` — the submatrices share
/// the input and output vectors but nothing else, which is exactly the
/// locality structure the paper discusses for decomposed methods (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposed<T, M> {
    main: M,
    rest: Csr<T>,
}

/// BCSR-DEC: full `r x c` blocks in BCSR + CSR remainder.
pub type BcsrDec<T> = Decomposed<T, Bcsr<T>>;
/// BCSD-DEC: full diagonal blocks in BCSD + CSR remainder.
pub type BcsdDec<T> = Decomposed<T, Bcsd<T>>;

/// Blocked submatrices that can convert back to CSR (used by
/// [`Decomposed::to_csr`]).
pub trait ToCsrPart<T: Scalar> {
    /// The submatrix's nonzeros as a CSR matrix.
    fn to_csr_part(&self) -> Csr<T>;
}

impl<T: SimdScalar> ToCsrPart<T> for Bcsr<T> {
    fn to_csr_part(&self) -> Csr<T> {
        self.to_csr()
    }
}

impl<T: SimdScalar> ToCsrPart<T> for Bcsd<T> {
    fn to_csr_part(&self) -> Csr<T> {
        self.to_csr()
    }
}

impl<T: Scalar, M: MatrixShape> Decomposed<T, M> {
    /// The blocked submatrix.
    pub fn main(&self) -> &M {
        &self.main
    }

    /// The CSR remainder.
    pub fn rest(&self) -> &Csr<T> {
        &self.rest
    }
}

impl<T: SimdScalar> BcsrDec<T> {
    /// Decomposes `csr` into full aligned `shape` blocks plus a CSR
    /// remainder.
    pub fn from_csr(csr: &Csr<T>, shape: BlockShape, imp: KernelImpl) -> Self {
        let (r, c) = (shape.rows(), shape.cols());
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_brows = n_rows.div_ceil(r);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_brows + 1);
        brow_ptr.push(0);
        let mut bcol_start: Vec<Index> = Vec::new();
        let mut bval: Vec<T> = Vec::new();
        let mut rest = Coo::<T>::with_capacity(n_rows, n_cols, 0);

        let mut temp: Vec<(Index, usize, usize, T)> = Vec::new(); // (start, slot, row, value)
        let mut starts: Vec<Index> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();

        for rb in 0..n_brows {
            temp.clear();
            starts.clear();
            let row_hi = ((rb + 1) * r).min(n_rows);
            for i in rb * r..row_hi {
                let il = i - rb * r;
                let (rcols, rvals) = csr.row(i);
                for (&j, &v) in rcols.iter().zip(rvals) {
                    let j0 = j / c as Index * c as Index;
                    temp.push((j0, il * c + (j - j0) as usize, i, v));
                }
            }
            starts.extend(temp.iter().map(|e| e.0));
            starts.sort_unstable();
            starts.dedup();
            counts.clear();
            counts.resize(starts.len(), 0);
            for &(j0, ..) in &temp {
                counts[starts.binary_search(&j0).expect("recorded")] += 1;
            }

            // Keep only completely full blocks in the main submatrix; a
            // clipped boundary block can never reach r*c in-matrix
            // elements, so full blocks are automatically interior.
            let mut full_index = vec![usize::MAX; starts.len()];
            for (k, (&j0, &cnt)) in starts.iter().zip(&counts).enumerate() {
                if cnt as usize == r * c {
                    full_index[k] = bcol_start.len();
                    bcol_start.push(j0);
                    bval.resize(bval.len() + r * c, T::ZERO);
                }
            }
            for &(j0, slot, i, v) in &temp {
                let k = starts.binary_search(&j0).expect("recorded");
                if full_index[k] != usize::MAX {
                    bval[full_index[k] * r * c + slot] = v;
                } else {
                    let j = j0 as usize + slot % c;
                    rest.push(i, j, v).expect("coords from source matrix");
                }
            }
            brow_ptr.push(bcol_start.len() as Index);
        }

        let main_nnz = bval.len(); // full blocks: stored == nonzeros
        let main = Bcsr::from_parts(
            n_rows, n_cols, shape, true, imp, brow_ptr, bcol_start, bval, main_nnz,
        );
        Decomposed {
            main,
            rest: Csr::from_coo(&rest),
        }
    }
}

impl<T: SimdScalar> BcsdDec<T> {
    /// Decomposes `csr` into full diagonal blocks of size `b` plus a CSR
    /// remainder.
    pub fn from_csr(csr: &Csr<T>, b: usize, imp: KernelImpl) -> Self {
        assert!((1..=8).contains(&b), "BCSD block size must be in 1..=8");
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_segs = n_rows.div_ceil(b);

        let mut brow_ptr: Vec<Index> = Vec::with_capacity(n_segs + 1);
        brow_ptr.push(0);
        let mut bcol_biased: Vec<Index> = Vec::new();
        let mut bval: Vec<T> = Vec::new();
        let mut rest = Coo::<T>::with_capacity(n_rows, n_cols, 0);

        let mut temp: Vec<(Index, usize, usize, T)> = Vec::new(); // (biased, t, row, value)
        let mut starts: Vec<Index> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();

        for s in 0..n_segs {
            temp.clear();
            starts.clear();
            let row_hi = ((s + 1) * b).min(n_rows);
            for i in s * b..row_hi {
                let t = i - s * b;
                let (rcols, rvals) = csr.row(i);
                for (&j, &v) in rcols.iter().zip(rvals) {
                    let biased = (j as i64 - t as i64 + b as i64) as Index;
                    temp.push((biased, t, i, v));
                }
            }
            starts.extend(temp.iter().map(|e| e.0));
            starts.sort_unstable();
            starts.dedup();
            counts.clear();
            counts.resize(starts.len(), 0);
            for &(biased, ..) in &temp {
                counts[starts.binary_search(&biased).expect("recorded")] += 1;
            }

            let mut full_index = vec![usize::MAX; starts.len()];
            for (k, (&biased, &cnt)) in starts.iter().zip(&counts).enumerate() {
                // A clipped block (either edge, or a short final segment)
                // cannot hold b in-matrix elements, so count == b implies
                // an interior full block.
                if cnt as usize == b {
                    full_index[k] = bcol_biased.len();
                    bcol_biased.push(biased);
                    bval.resize(bval.len() + b, T::ZERO);
                }
            }
            for &(biased, t, i, v) in &temp {
                let k = starts.binary_search(&biased).expect("recorded");
                if full_index[k] != usize::MAX {
                    bval[full_index[k] * b + t] = v;
                } else {
                    let j = (biased as i64 - b as i64 + t as i64) as usize;
                    rest.push(i, j, v).expect("coords from source matrix");
                }
            }
            brow_ptr.push(bcol_biased.len() as Index);
        }

        let main_nnz = bval.len();
        let main =
            Bcsd::from_parts(n_rows, n_cols, b, imp, brow_ptr, bcol_biased, bval, main_nnz);
        Decomposed {
            main,
            rest: Csr::from_coo(&rest),
        }
    }
}

impl<T: Scalar, M> Decomposed<T, M>
where
    M: SpMvAcc<T>,
{
    /// Fraction of the original nonzeros captured by the blocked part.
    pub fn coverage(&self) -> f64 {
        let total = self.main.nnz_stored() + self.rest.nnz();
        if total == 0 {
            0.0
        } else {
            self.main.nnz_stored() as f64 / total as f64
        }
    }

    /// Reassembles the original matrix by merging the blocked part and
    /// the remainder (the submatrices partition the nonzeros, so this is
    /// an exact inverse of the decomposition).
    pub fn to_csr(&self) -> Csr<T>
    where
        M: ToCsrPart<T>,
    {
        let mut coo = Coo::with_capacity(
            self.main.n_rows(),
            self.main.n_cols(),
            self.nnz_stored(),
        );
        for (i, j, v) in self.main.to_csr_part().iter() {
            coo.push(i, j, v).expect("inside matrix");
        }
        for (i, j, v) in self.rest.iter() {
            coo.push(i, j, v).expect("inside matrix");
        }
        Csr::from_coo(&coo)
    }

    /// Checks dimension agreement between the two submatrices.
    pub fn validate(&self) -> Result<()> {
        if self.main.n_rows() != self.rest.n_rows()
            || self.main.n_cols() != self.rest.n_cols()
        {
            return Err(spmv_core::Error::InvalidStructure(
                "decomposed submatrices disagree on dimensions".into(),
            ));
        }
        Ok(())
    }
}

impl<T: Scalar, M: MatrixShape> MatrixShape for Decomposed<T, M> {
    fn n_rows(&self) -> usize {
        self.main.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.main.n_cols()
    }
}

impl<T: Scalar, M: SpMvAcc<T>> SpMv<T> for Decomposed<T, M> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        y.fill(T::ZERO);
        self.main.spmv_acc(x, y);
        self.rest.spmv_acc(x, y);
    }

    fn nnz_stored(&self) -> usize {
        self.main.nnz_stored() + self.rest.nnz_stored()
    }

    fn matrix_bytes(&self) -> usize {
        self.main.matrix_bytes() + self.rest.matrix_bytes()
    }

    /// Each of the k = 2 sub-multiplications streams the vectors again, so
    /// the decomposed working set counts them once per submatrix (this is
    /// the `Σ ws_i` of the models' equation (2)).
    fn working_set_bytes(&self) -> usize {
        self.main.working_set_bytes() + self.rest.working_set_bytes()
    }
}

impl<T: Scalar, M: SpMvAcc<T>> SpMvAcc<T> for Decomposed<T, M> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.main.spmv_acc(x, y);
        self.rest.spmv_acc(x, y);
    }
}

impl<T: Scalar, M: SpMvMultiAcc<T>> SpMvMulti<T> for Decomposed<T, M> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        y.fill(T::ZERO);
        self.main.spmv_multi_acc(x, y, k);
        self.rest.spmv_multi_acc(x, y, k);
    }

    /// As in the single-vector case, each submatrix streams the vectors
    /// again, so the k-vector working set is `Σ ws_i(k)`.
    fn working_set_bytes_multi(&self, k: usize) -> usize {
        self.main.working_set_bytes_multi(k) + self.rest.working_set_bytes_multi(k)
    }
}

impl<T: Scalar, M: SpMvMultiAcc<T>> SpMvMultiAcc<T> for Decomposed<T, M> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        self.main.spmv_multi_acc(x, y, k);
        self.rest.spmv_multi_acc(x, y, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_csr(n: usize, m: usize, seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // A mix of full 2x2 blocks, diagonal runs, and random scatter.
        for bi in 0..n / 4 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let _ = coo.push(4 * bi + di, (4 * bi + dj) % m, 1.0 + bi as f64);
            }
        }
        for i in 0..n.min(m) {
            let _ = coo.push(i, i, 2.0);
        }
        for i in 0..n {
            let _ = coo.push(i, (next() as usize) % m, 0.5 + (next() % 5) as f64);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn bcsr_dec_matches_csr_all_shapes() {
        let csr = fixture_csr(22, 27, 9);
        let x: Vec<f64> = (0..27).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let dec = BcsrDec::from_csr(&csr, shape, imp);
                dec.validate().unwrap();
                dec.main().validate().unwrap();
                let got = dec.spmv(&x);
                for (a, g) in want.iter().zip(&got) {
                    assert!((a - g).abs() < 1e-9, "shape {shape} imp {imp}");
                }
            }
        }
    }

    #[test]
    fn bcsd_dec_matches_csr_all_sizes() {
        let csr = fixture_csr(22, 27, 13);
        let x: Vec<f64> = (0..27).map(|i| 1.0 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        for b in spmv_kernels::BCSD_SIZES {
            for imp in KernelImpl::ALL {
                let dec = BcsdDec::from_csr(&csr, b, imp);
                dec.validate().unwrap();
                dec.main().validate().unwrap();
                let got = dec.spmv(&x);
                for (a, g) in want.iter().zip(&got) {
                    assert!((a - g).abs() < 1e-9, "b {b} imp {imp}");
                }
            }
        }
    }

    #[test]
    fn main_part_has_zero_padding() {
        let csr = fixture_csr(30, 30, 21);
        for shape in BlockShape::search_space() {
            let dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
            assert_eq!(dec.main().padding(), 0, "shape {shape}");
        }
        for b in spmv_kernels::BCSD_SIZES {
            let dec = BcsdDec::from_csr(&csr, b, KernelImpl::Scalar);
            assert_eq!(dec.main().padding(), 0, "b {b}");
        }
    }

    #[test]
    fn nnz_is_conserved() {
        let csr = fixture_csr(25, 25, 4);
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(dec.nnz_stored(), csr.nnz());
        let dec = BcsdDec::from_csr(&csr, 4, KernelImpl::Scalar);
        assert_eq!(dec.nnz_stored(), csr.nnz());
    }

    #[test]
    fn pure_block_matrix_goes_entirely_to_main() {
        let mut coo = Coo::new(8, 8);
        for bi in 0..4 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(dec.coverage(), 1.0);
        assert_eq!(dec.rest().nnz(), 0);
        assert_eq!(dec.main().n_blocks(), 4);
    }

    #[test]
    fn scattered_matrix_goes_entirely_to_rest() {
        // Isolated entries never form a full 2x2 block.
        let csr = Csr::from_coo(
            &Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (2, 5, 2.0), (6, 3, 3.0)]).unwrap(),
        );
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(dec.coverage(), 0.0);
        assert_eq!(dec.main().n_blocks(), 0);
        assert_eq!(dec.rest().nnz(), 3);
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let csr = fixture_csr(22, 27, 9);
        for imp in KernelImpl::ALL {
            let bdec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), imp);
            let ddec = BcsdDec::from_csr(&csr, 4, imp);
            for k in [1, 4, 6] {
                let x: Vec<f64> = (0..27 * k).map(|i| 1.0 + (i % 5) as f64).collect();
                let got_b = bdec.spmv_multi(&x, k);
                let got_d = ddec.spmv_multi(&x, k);
                for t in 0..k {
                    let xs = &x[t * 27..(t + 1) * 27];
                    assert_eq!(got_b[t * 22..(t + 1) * 22], bdec.spmv(xs), "bcsr k={k} t={t}");
                    assert_eq!(got_d[t * 22..(t + 1) * 22], ddec.spmv(xs), "bcsd k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn multi_working_set_sums_submatrices() {
        let csr = fixture_csr(16, 16, 2);
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        assert_eq!(
            dec.working_set_bytes_multi(4),
            dec.main().working_set_bytes_multi(4) + dec.rest().working_set_bytes_multi(4)
        );
    }

    #[test]
    fn working_set_counts_vectors_per_submatrix() {
        let csr = fixture_csr(16, 16, 2);
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        let vectors = (16 + 16) * 8;
        assert_eq!(
            dec.working_set_bytes(),
            dec.main().working_set_bytes() + dec.rest().matrix_bytes() + vectors
        );
    }
}
