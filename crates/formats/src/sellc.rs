//! SELL-C-σ: sliced ELLPACK with σ-windowed row sorting.
//!
//! SELL-C-σ (Kreutzer et al., arXiv:1307.6209) groups `C` consecutive
//! rows into a *slice*, pads every row of a slice to the slice's widest
//! row, and stores the slice column-major so one vector load serves `C`
//! adjacent rows. To keep slices narrow, rows are first stably sorted by
//! descending length — but only within windows of `σ` consecutive rows,
//! so locality of the input vector survives. The permutation is kept
//! explicitly and SpMV scatters each accumulator straight to its
//! original row, so `y` comes out unscrambled and — because every lane
//! runs the exact CSR per-row chain (see [`spmv_kernels::sell`]) —
//! bitwise equal to CSR.
//!
//! Cost shape: where the blocked formats trade index bytes for padding,
//! SELL-C-σ is *padding-dominated* — it streams one index per stored
//! entry (like CSR, optionally narrowed to u16) plus
//! `Σ_s (w_s·C) − nnz` padded value slots, where `w_s` is slice `s`'s
//! width. σ controls that padding: σ = 1 stores rows unsorted (maximum
//! padding for irregular rows), σ = `n_rows` sorts globally (minimum
//! padding, most scrambled gather/scatter locality).

use crate::narrow::ColIdx;
use crate::{SpMvAcc, SpMvMultiAcc};
use spmv_core::{Csr, Error, Index, IndexWidth, MatrixShape, Result, SpMv, SpMvMulti, MAX_INDEX};
use spmv_kernels::sell::{sell_slice_kernel, sell_slice_multi_kernel, SELL_HEIGHTS};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{multi_chunk, KernelImpl};

/// Sentinel σ meaning "one window spanning all rows" (global sort).
/// Stored as `usize::MAX` so configurations stay `Copy` and matrices of
/// any height share one enumeration entry.
pub const SELL_SIGMA_FULL: usize = usize::MAX;

/// The σ window values the extended search space enumerates for slice
/// height `c`: unsorted, one-slice windows, a locality-preserving 64-row
/// window, and the global sort.
pub fn sell_sigmas(c: usize) -> [usize; 4] {
    [1, c, 64, SELL_SIGMA_FULL]
}

/// A sparse matrix in SELL-C-σ format.
///
/// Storage: rows are stably sorted by descending length within σ-row
/// windows; `perm[p]` is the original row at sorted position `p`.
/// Slice `s` covers sorted positions `s*c..(s+1)*c` (the tail slice
/// keeps `c` lanes, the excess lanes simply have length 0), stores
/// `width(s) = max lane length` columns, and lays entry `(j, lane)` at
/// `slice_ptr[s] + j*c + lane` in `val`/`col` (column-major within the
/// slice). Padded slots hold an explicit zero value and column 0 but are
/// never accumulated — the kernel guards on `lens`.
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_formats::SellCSigma;
/// use spmv_kernels::KernelImpl;
///
/// let csr = Csr::from_coo(&Coo::from_triplets(5, 5, vec![
///     (0, 0, 1.0), (0, 1, 2.0), (0, 4, 3.0), (2, 2, 4.0), (4, 0, 5.0),
/// ]).unwrap());
/// let sell = SellCSigma::from_csr(&csr, 4, 4, KernelImpl::Scalar);
/// // Bitwise-identical results, rows back in original order.
/// assert_eq!(sell.spmv(&[1.0; 5]), csr.spmv(&[1.0; 5]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SellCSigma<T> {
    n_rows: usize,
    n_cols: usize,
    c: usize,
    sigma: usize,
    imp: KernelImpl,
    /// Entry offset of each slice's storage; `n_slices + 1` entries,
    /// each a multiple of `c` apart (`width(s) * c` entries per slice).
    slice_ptr: Vec<Index>,
    /// True row length per lane, `n_slices * c` entries (0 for the
    /// tail slice's excess lanes).
    lens: Vec<Index>,
    /// Column index per stored entry, column-major within each slice;
    /// padded slots hold 0. Narrowable to u16.
    col: ColIdx,
    /// Value per stored entry, same layout; padded slots hold zero.
    val: Vec<T>,
    /// Sorted position → original row; SpMV scatters through this, so
    /// the output never needs a separate unpermute pass.
    perm: Vec<Index>,
    nnz_orig: usize,
}

impl<T: SimdScalar> SellCSigma<T> {
    /// Converts `csr` to SELL-C-σ with slice height `c` and sorting
    /// window `sigma` (rows; [`SELL_SIGMA_FULL`] sorts globally).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not one of [`SELL_HEIGHTS`], if `sigma == 0`, or
    /// if the padded entry count overflows the `u32` index type.
    pub fn from_csr(csr: &Csr<T>, c: usize, sigma: usize, imp: KernelImpl) -> Self {
        assert!(
            SELL_HEIGHTS.contains(&c),
            "SELL slice height must be one of {SELL_HEIGHTS:?}, got {c}"
        );
        assert!(sigma > 0, "SELL sorting window must be at least 1");
        let n_rows = csr.n_rows();
        let n_cols = csr.n_cols();
        let n_slices = n_rows.div_ceil(c);

        // σ-windowed stable sort by descending row length. Stability
        // keeps equal-length rows in original order, which pins the
        // permutation (and therefore the bitwise output of any
        // row-order-sensitive consumer) uniquely.
        let sigma_eff = if sigma == SELL_SIGMA_FULL { n_rows.max(1) } else { sigma };
        let mut perm: Vec<Index> = (0..n_rows as Index).collect();
        for w0 in (0..n_rows).step_by(sigma_eff) {
            let w1 = (w0 + sigma_eff).min(n_rows);
            perm[w0..w1].sort_by_key(|&i| core::cmp::Reverse(csr.row_nnz(i as usize)));
        }

        let mut slice_ptr: Vec<Index> = Vec::with_capacity(n_slices + 1);
        slice_ptr.push(0);
        let mut lens: Vec<Index> = Vec::with_capacity(n_slices * c);
        let mut val: Vec<T> = Vec::new();
        let mut col: Vec<Index> = Vec::new();
        for s in 0..n_slices {
            let mut width = 0usize;
            for lane in 0..c {
                let pos = s * c + lane;
                let len = if pos < n_rows {
                    csr.row_nnz(perm[pos] as usize)
                } else {
                    0
                };
                lens.push(len as Index);
                width = width.max(len);
            }
            let base = val.len();
            assert!(
                base + width * c <= MAX_INDEX,
                "SELL-C-\u{3c3} padded entry count overflows u32"
            );
            val.resize(base + width * c, T::ZERO);
            col.resize(base + width * c, 0);
            for lane in 0..c {
                let pos = s * c + lane;
                if pos >= n_rows {
                    continue;
                }
                let (rcols, rvals) = csr.row(perm[pos] as usize);
                for (j, (&cj, &vj)) in rcols.iter().zip(rvals).enumerate() {
                    val[base + j * c + lane] = vj;
                    col[base + j * c + lane] = cj;
                }
            }
            slice_ptr.push(val.len() as Index);
        }

        SellCSigma {
            n_rows,
            n_cols,
            c,
            sigma,
            imp,
            slice_ptr,
            lens,
            col: ColIdx::wide(col),
            val,
            perm,
            nnz_orig: csr.nnz(),
        }
    }

    /// Converts `csr` to SELL-C-σ storing column indices at the
    /// narrowest width [`IndexWidth::for_cols`] allows. Kernels and
    /// results are identical to [`SellCSigma::from_csr`].
    pub fn from_csr_narrow(csr: &Csr<T>, c: usize, sigma: usize, imp: KernelImpl) -> Self {
        let mut sell = Self::from_csr(csr, c, sigma, imp);
        sell.col = core::mem::replace(&mut sell.col, ColIdx::wide(Vec::new()))
            .with_width(IndexWidth::for_cols(csr.n_cols()));
        sell
    }

    /// The slice height `C`.
    pub fn slice_height(&self) -> usize {
        self.c
    }

    /// The sorting window σ as configured ([`SELL_SIGMA_FULL`] for the
    /// global sort).
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The storage width of the column-index array.
    pub fn index_width(&self) -> IndexWidth {
        self.col.width()
    }

    /// The kernel implementation used by `spmv`.
    pub fn kernel_impl(&self) -> KernelImpl {
        self.imp
    }

    /// Switches between the scalar and SIMD kernel in place.
    pub fn set_kernel_impl(&mut self, imp: KernelImpl) {
        self.imp = imp;
    }

    /// Number of slices, `ceil(n_rows / c)`.
    pub fn n_slices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Total slice-columns `Σ_s width(s)` — the models' block count
    /// `nb` for this format (one "block" is one column of `c` slots).
    pub fn n_blocks(&self) -> usize {
        self.val.len() / self.c
    }

    /// Explicit padding zeros stored.
    pub fn padding(&self) -> usize {
        self.val.len() - self.nnz_orig
    }

    /// Nonzeros of the source matrix.
    pub fn nnz_orig(&self) -> usize {
        self.nnz_orig
    }

    /// Fraction of stored slots holding a true nonzero.
    pub fn occupancy(&self) -> f64 {
        if self.val.is_empty() {
            1.0
        } else {
            self.nnz_orig as f64 / self.val.len() as f64
        }
    }

    /// The row permutation: `perm()[p]` is the original row stored at
    /// sorted position `p`. σ = 1 yields the identity.
    pub fn perm(&self) -> &[Index] {
        &self.perm
    }

    /// Converts back to CSR (inverse of [`SellCSigma::from_csr`] up to
    /// explicit zero values, which CSR construction drops).
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = spmv_core::Coo::with_capacity(self.n_rows, self.n_cols, self.nnz_orig);
        for s in 0..self.n_slices() {
            let base = self.slice_ptr[s] as usize;
            for lane in 0..self.c {
                let pos = s * self.c + lane;
                if pos >= self.n_rows {
                    continue;
                }
                let row = self.perm[pos] as usize;
                for j in 0..self.lens[pos] as usize {
                    let v = self.val[base + j * self.c + lane];
                    if v != T::ZERO {
                        let cj = self.col.get(base + j * self.c + lane) as usize;
                        coo.push(row, cj, v).expect("inside matrix");
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Checks the structural invariants of the format.
    pub fn validate(&self) -> Result<()> {
        let n_slices = self.n_rows.div_ceil(self.c);
        if self.slice_ptr.len() != n_slices + 1 {
            return Err(Error::InvalidStructure(format!(
                "slice_ptr has {} entries, expected {}",
                self.slice_ptr.len(),
                n_slices + 1
            )));
        }
        if self.slice_ptr.first() != Some(&0)
            || *self.slice_ptr.last().unwrap() as usize != self.val.len()
        {
            return Err(Error::InvalidStructure("slice_ptr endpoints wrong".into()));
        }
        if self.lens.len() != n_slices * self.c {
            return Err(Error::InvalidStructure("one length per lane required".into()));
        }
        if self.col.len() != self.val.len() {
            return Err(Error::InvalidStructure("col and val lengths differ".into()));
        }
        if self.perm.len() != self.n_rows {
            return Err(Error::InvalidStructure("perm length mismatch".into()));
        }
        let mut seen = vec![false; self.n_rows];
        for &p in &self.perm {
            if p as usize >= self.n_rows || seen[p as usize] {
                return Err(Error::InvalidStructure(
                    "perm is not a permutation of the rows".into(),
                ));
            }
            seen[p as usize] = true;
        }
        for s in 0..n_slices {
            let span = self.slice_ptr[s + 1].checked_sub(self.slice_ptr[s]);
            let Some(span) = span.map(|v| v as usize) else {
                return Err(Error::InvalidStructure("slice_ptr not monotone".into()));
            };
            if !span.is_multiple_of(self.c) {
                return Err(Error::InvalidStructure(format!(
                    "slice {s}: storage not a multiple of the slice height"
                )));
            }
            let width = span / self.c;
            let lanes = &self.lens[s * self.c..(s + 1) * self.c];
            let max_len = lanes.iter().copied().max().unwrap_or(0) as usize;
            if max_len != width {
                return Err(Error::InvalidStructure(format!(
                    "slice {s}: width {width} disagrees with max lane length {max_len}"
                )));
            }
            let base = self.slice_ptr[s] as usize;
            for (lane, &len) in lanes.iter().enumerate() {
                let pos = s * self.c + lane;
                if pos >= self.n_rows {
                    if len != 0 {
                        return Err(Error::InvalidStructure(format!(
                            "slice {s}: lane {lane} past the last row has nonzero length"
                        )));
                    }
                    continue;
                }
                for j in 0..width {
                    let idx = base + j * self.c + lane;
                    if j < len as usize {
                        if self.col.get(idx) as usize >= self.n_cols {
                            return Err(Error::InvalidStructure(format!(
                                "slice {s} lane {lane}: column out of bounds"
                            )));
                        }
                    } else if self.val[idx] != T::ZERO {
                        return Err(Error::InvalidStructure(format!(
                            "slice {s} lane {lane}: padded slot holds a nonzero"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shared single-vector pass: computes each slice's `c` accumulator
    /// chains and hands them to `write` as `(original row, chain sum)`.
    /// Empty slices still report their rows (with a zero sum), so the
    /// assign path covers every output element.
    fn spmv_each<F: FnMut(usize, T)>(&self, x: &[T], mut write: F) {
        let kern = sell_slice_kernel::<T>(self.c, self.imp);
        let mut scratch: Vec<Index> = Vec::new();
        let mut buf = [T::ZERO; 8];
        for s in 0..self.n_slices() {
            let range = self.slice_ptr[s] as usize..self.slice_ptr[s + 1] as usize;
            kern(
                &self.val[range.clone()],
                self.col.slice(range, &mut scratch),
                &self.lens[s * self.c..(s + 1) * self.c],
                x,
                &mut buf[..self.c],
            );
            for (lane, &acc) in buf[..self.c].iter().enumerate() {
                let pos = s * self.c + lane;
                if pos < self.n_rows {
                    write(self.perm[pos] as usize, acc);
                }
            }
        }
    }

    /// Shared multi-vector pass over one `kc`-chunk; `write` receives
    /// `(vector index within chunk, original row, chain sum)`.
    fn spmv_multi_each<F: FnMut(usize, usize, T)>(&self, x: &[T], kc: usize, mut write: F) {
        let kern = sell_slice_multi_kernel::<T>(self.c, kc, self.imp)
            .expect("chunked to a specialized vector count");
        let mut scratch: Vec<Index> = Vec::new();
        let mut buf = [T::ZERO; 64];
        for s in 0..self.n_slices() {
            let range = self.slice_ptr[s] as usize..self.slice_ptr[s + 1] as usize;
            kern(
                &self.val[range.clone()],
                self.col.slice(range, &mut scratch),
                &self.lens[s * self.c..(s + 1) * self.c],
                x,
                self.n_cols,
                &mut buf[..self.c * kc],
            );
            for t in 0..kc {
                for lane in 0..self.c {
                    let pos = s * self.c + lane;
                    if pos < self.n_rows {
                        write(t, self.perm[pos] as usize, buf[t * self.c + lane]);
                    }
                }
            }
        }
    }
}

impl<T> MatrixShape for SellCSigma<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for SellCSigma<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        // Every original row is scattered exactly once, so a direct
        // assignment covers all of `y` — same write semantics (and the
        // same `-0.0` results) as `Csr::spmv_into`.
        self.spmv_each(x, |row, acc| y[row] = acc);
    }

    fn nnz_stored(&self) -> usize {
        self.val.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.val.len() * T::BYTES
            + self.col.bytes()
            + (self.slice_ptr.len() + self.lens.len() + self.perm.len())
                * core::mem::size_of::<Index>()
    }
}

impl<T: SimdScalar> SpMvAcc<T> for SellCSigma<T> {
    fn spmv_acc(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        self.spmv_each(x, |row, acc| y[row] += acc);
    }
}

impl<T: SimdScalar> SpMvMulti<T> for SellCSigma<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            self.spmv_multi_each(&x[t0 * m..(t0 + kc) * m], kc, |t, row, acc| {
                ys[t * n + row] = acc;
            });
            t0 += kc;
        }
    }
}

impl<T: SimdScalar> SpMvMultiAcc<T> for SellCSigma<T> {
    fn spmv_multi_acc(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = multi_chunk(k - t0);
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            self.spmv_multi_each(&x[t0 * m..(t0 + kc) * m], kc, |t, row, acc| {
                ys[t * n + row] += acc;
            });
            t0 += kc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn fixture_csr(n: usize, m: usize, seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            if i < m {
                let _ = coo.push(i, i, 2.0 + (i % 5) as f64);
            }
            for _ in 0..(next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn matches_csr_bitwise_all_heights_and_sigmas() {
        let csr = fixture_csr(29, 23, 3);
        let x: Vec<f64> = (0..23).map(|i| 0.5 + (i % 9) as f64).collect();
        let want = csr.spmv(&x);
        for c in SELL_HEIGHTS {
            for sigma in sell_sigmas(c) {
                for imp in KernelImpl::ALL {
                    let sell = SellCSigma::from_csr(&csr, c, sigma, imp);
                    sell.validate().unwrap();
                    assert_eq!(sell.spmv(&x), want, "c={c} sigma={sigma} {imp}");
                }
            }
        }
    }

    #[test]
    fn sigma_one_is_identity_permutation() {
        let csr = fixture_csr(17, 13, 5);
        let sell = SellCSigma::from_csr(&csr, 4, 1, KernelImpl::Scalar);
        assert!(sell.perm().iter().enumerate().all(|(p, &r)| p == r as usize));
    }

    #[test]
    fn global_sort_minimizes_padding() {
        let csr = fixture_csr(64, 32, 9);
        let unsorted = SellCSigma::from_csr(&csr, 8, 1, KernelImpl::Scalar);
        let sorted = SellCSigma::from_csr(&csr, 8, SELL_SIGMA_FULL, KernelImpl::Scalar);
        assert!(sorted.padding() <= unsorted.padding());
        assert_eq!(sorted.nnz_orig(), csr.nnz());
    }

    #[test]
    fn to_csr_roundtrips() {
        let csr = fixture_csr(21, 17, 7);
        for sigma in [1usize, 8, SELL_SIGMA_FULL] {
            let sell = SellCSigma::from_csr(&csr, 4, sigma, KernelImpl::Scalar);
            assert_eq!(sell.to_csr(), csr, "sigma={sigma}");
        }
    }

    #[test]
    fn narrow_indices_are_bitwise_equal_and_smaller() {
        let csr = fixture_csr(29, 23, 11);
        let x: Vec<f64> = (0..23).map(|i| 1.0 + (i % 7) as f64).collect();
        let wide = SellCSigma::from_csr(&csr, 4, 64, KernelImpl::Simd);
        let narrow = SellCSigma::from_csr_narrow(&csr, 4, 64, KernelImpl::Simd);
        narrow.validate().unwrap();
        assert_eq!(narrow.index_width(), IndexWidth::U16);
        assert!(narrow.matrix_bytes() < wide.matrix_bytes());
        assert_eq!(narrow.spmv(&x), wide.spmv(&x));
    }

    #[test]
    fn multi_matches_per_column_spmv_bitwise() {
        let csr = fixture_csr(19, 15, 13);
        for imp in KernelImpl::ALL {
            let sell = SellCSigma::from_csr(&csr, 8, 64, imp);
            for k in [1usize, 2, 5, 8] {
                let x: Vec<f64> = (0..15 * k).map(|i| 1.0 + (i % 7) as f64).collect();
                let got = sell.spmv_multi(&x, k);
                for t in 0..k {
                    let xcol = &x[t * 15..(t + 1) * 15];
                    assert_eq!(got[t * 19..(t + 1) * 19], sell.spmv(xcol), "k={k} t={t} {imp}");
                }
            }
        }
    }

    #[test]
    fn tail_slice_and_empty_rows() {
        // 5 rows under C = 4: the tail slice has 3 padded lanes; row 1 is
        // empty and must come out exactly 0.
        let csr = Csr::from_coo(
            &Coo::from_triplets(5, 7, vec![(0, 6, 3.0), (2, 0, 7.0), (4, 3, 1.0)]).unwrap(),
        );
        let x: Vec<f64> = (0..7).map(|i| 1.0 + i as f64).collect();
        for sigma in [1usize, 4, SELL_SIGMA_FULL] {
            let sell = SellCSigma::from_csr(&csr, 4, sigma, KernelImpl::Scalar);
            sell.validate().unwrap();
            assert_eq!(sell.spmv(&x), csr.spmv(&x), "sigma={sigma}");
        }
    }

    #[test]
    fn empty_matrix() {
        let csr = Csr::<f64>::from_coo(&Coo::new(0, 0));
        let sell = SellCSigma::from_csr(&csr, 2, 1, KernelImpl::Scalar);
        sell.validate().unwrap();
        assert_eq!(sell.n_slices(), 0);
        assert_eq!(sell.spmv(&[]), Vec::<f64>::new());
    }

    #[test]
    fn stats_accessors_are_consistent() {
        let csr = fixture_csr(33, 29, 17);
        let sell = SellCSigma::from_csr(&csr, 4, 64, KernelImpl::Scalar);
        assert_eq!(sell.nnz_stored(), sell.nnz_orig() + sell.padding());
        assert_eq!(sell.n_blocks() * sell.slice_height(), sell.nnz_stored());
        assert!(sell.occupancy() > 0.0 && sell.occupancy() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "slice height")]
    fn rejects_unsupported_height() {
        let csr = fixture_csr(4, 4, 1);
        let _ = SellCSigma::from_csr(&csr, 3, 1, KernelImpl::Scalar);
    }

    #[test]
    #[should_panic(expected = "sorting window")]
    fn rejects_zero_sigma() {
        let csr = fixture_csr(4, 4, 1);
        let _ = SellCSigma::from_csr(&csr, 2, 0, KernelImpl::Scalar);
    }
}
