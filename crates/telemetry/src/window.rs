//! Fixed-capacity sample windows for summary statistics.
//!
//! [`SampleWindow`] is the allocation-bounded timing history that
//! `spmv-parallel`'s per-strip reports are built on: it keeps the full
//! history's count and minimum plus a ring of the most recent samples
//! for median queries. It is deliberately *not* gated by the crate's
//! `disabled` feature — the pool's measured-imbalance input must keep
//! working with telemetry compiled out.

/// Default number of recent samples retained for the median.
pub const DEFAULT_WINDOW: usize = 512;

/// A bounded history of `u64` samples: whole-history count and minimum,
/// plus a fixed-capacity ring of the most recent samples.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    count: u64,
    min: u64,
    samples: Vec<u64>,
    next: usize,
    cap: usize,
}

impl Default for SampleWindow {
    fn default() -> Self {
        SampleWindow::new(DEFAULT_WINDOW)
    }
}

impl SampleWindow {
    /// An empty window retaining at most `cap` recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "sample window needs capacity");
        SampleWindow {
            count: 0,
            min: u64::MAX,
            samples: Vec::new(),
            next: 0,
            cap,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Samples recorded over the whole history.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whole-history minimum (`0` before the first sample).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Median of the retained recent samples (`0` before the first).
    pub fn median(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// How many recent samples are currently retained (≤ capacity).
    pub fn retained(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_zeros() {
        let w = SampleWindow::default();
        assert_eq!((w.count(), w.min(), w.median()), (0, 0, 0));
    }

    #[test]
    fn tracks_count_min_median() {
        let mut w = SampleWindow::new(8);
        for v in [5u64, 3, 9, 7] {
            w.record(v);
        }
        assert_eq!(w.count(), 4);
        assert_eq!(w.min(), 3);
        assert_eq!(w.median(), 7); // sorted [3,5,7,9], index 2
    }

    #[test]
    fn window_wraps_but_min_is_global() {
        let mut w = SampleWindow::new(4);
        w.record(1);
        for _ in 0..10 {
            w.record(100);
        }
        assert_eq!(w.retained(), 4);
        assert_eq!(w.min(), 1, "min covers evicted samples");
        assert_eq!(w.median(), 100);
        assert_eq!(w.count(), 11);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SampleWindow::new(0);
    }
}
