//! Prediction-residual tracking.
//!
//! The paper evaluates its models by how well predicted SpMV time tracks
//! measured time (§V-B, Figure 3); the latency-bound outliers were found
//! by exactly this comparison. [`ResidualTracker`] makes that comparison
//! a first-class running statistic: every `(predicted, measured)` pair
//! is folded into per-key aggregates — keyed by (format, shape, kernel,
//! model) — so a misprediction shows up as a large mean relative error
//! on its row of [`ResidualTracker::render`] instead of hiding inside a
//! suite-wide average.
//!
//! # Export hook
//!
//! Aggregates answer "how wrong is this model on average", but an online
//! tuner needs the *stream*: which matrix produced each pair, in what
//! order, so a windowed detector can tell drift from noise. The tracker
//! therefore also keeps a bounded in-order event log: [`record_for`]
//! tags each pair with the serving-side matrix id, and a single consumer
//! drains it with [`drain_events`]. The log is bounded
//! ([`DEFAULT_LOG_CAPACITY`]); when the consumer falls behind, the
//! oldest events are dropped and counted ([`events_dropped`]) rather
//! than growing without bound — the same drop-not-block discipline as
//! the event rings.
//!
//! [`record_for`]: ResidualTracker::record_for
//! [`drain_events`]: ResidualTracker::drain_events
//! [`events_dropped`]: ResidualTracker::events_dropped

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write;
use std::sync::{Mutex, OnceLock};

/// Identifies one prediction population.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResidualKey {
    /// Storage-format family (e.g. `CSR`, `BCSR`, `BCSD16`).
    pub format: String,
    /// Block shape within the family (e.g. `2x3`, `-` for unblocked).
    pub shape: String,
    /// Kernel implementation (e.g. `scalar`, `simd`).
    pub kernel: String,
    /// Predicting model (e.g. `MEM`, `MEMCOMP`, `OVERLAP`).
    pub model: String,
}

impl std::fmt::Display for ResidualKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.format, self.shape, self.kernel, self.model
        )
    }
}

/// Running statistics over one key's `(predicted, measured)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResidualStats {
    /// Number of recorded pairs.
    pub n: u64,
    /// Sum of predicted times, seconds.
    pub sum_predicted: f64,
    /// Sum of measured times, seconds.
    pub sum_measured: f64,
    /// Sum of signed relative errors `(pred - meas) / meas`.
    pub sum_rel: f64,
    /// Sum of absolute relative errors `|pred - meas| / meas`.
    pub sum_abs_rel: f64,
    /// Largest absolute relative error seen.
    pub max_abs_rel: f64,
}

impl ResidualStats {
    fn fold(&mut self, predicted: f64, measured: f64) {
        let rel = (predicted - measured) / measured;
        self.n += 1;
        self.sum_predicted += predicted;
        self.sum_measured += measured;
        self.sum_rel += rel;
        self.sum_abs_rel += rel.abs();
        self.max_abs_rel = self.max_abs_rel.max(rel.abs());
    }

    /// Mean signed relative error; negative means under-prediction.
    pub fn mean_rel(&self) -> f64 {
        self.sum_rel / self.n.max(1) as f64
    }

    /// Mean absolute relative error (the paper's Figure 3 legend metric).
    pub fn mean_abs_rel(&self) -> f64 {
        self.sum_abs_rel / self.n.max(1) as f64
    }

    /// Mean predicted / mean measured — the paper's normalized
    /// prediction (Figure 3's y-axis).
    pub fn norm_pred(&self) -> f64 {
        self.sum_predicted / self.sum_measured.max(f64::MIN_POSITIVE)
    }
}

/// Mean absolute relative error above which a row is flagged as an
/// outlier in [`ResidualTracker::render`] — mispredictions at this
/// level changed selections in the paper's Figure 3 discussion.
pub const OUTLIER_THRESHOLD: f64 = 0.30;

/// Default bound on the tracker's event log: old events are dropped
/// (and counted) past this many undrained entries.
pub const DEFAULT_LOG_CAPACITY: usize = 65_536;

/// One exported `(predicted, measured)` pair, in recording order.
///
/// `matrix` is the serving-side matrix id the pair was observed on
/// (`0` when recorded through [`ResidualTracker::record`], which has no
/// matrix context); `seq` grows by one per recorded pair, so a consumer
/// can detect drops across drains.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualEvent {
    /// Monotonic per-tracker sequence number (starts at 0).
    pub seq: u64,
    /// Serving-side matrix id; 0 for matrix-less recordings.
    pub matrix: u64,
    /// The prediction population the pair belongs to.
    pub key: ResidualKey,
    /// Predicted time, seconds.
    pub predicted: f64,
    /// Measured time, seconds.
    pub measured: f64,
}

impl ResidualEvent {
    /// Absolute relative error `|pred - meas| / meas` — the detector
    /// statistic.
    pub fn abs_rel(&self) -> f64 {
        ((self.predicted - self.measured) / self.measured).abs()
    }
}

/// Everything under the tracker's one mutex: the per-key aggregates and
/// the bounded export log.
#[derive(Debug)]
struct Inner {
    map: BTreeMap<ResidualKey, ResidualStats>,
    log: VecDeque<ResidualEvent>,
    log_capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// Accumulates `(predicted, measured)` pairs per [`ResidualKey`].
///
/// Thread-safe; recording takes a short mutex (this is bookkeeping for
/// the measurement harness, not the SpMV hot path).
#[derive(Debug)]
pub struct ResidualTracker {
    inner: Mutex<Inner>,
}

impl Default for ResidualTracker {
    fn default() -> Self {
        Self::with_log_capacity(DEFAULT_LOG_CAPACITY)
    }
}

impl ResidualTracker {
    /// An empty tracker with the default event-log bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tracker whose event log keeps at most `capacity`
    /// undrained events (minimum 1).
    pub fn with_log_capacity(capacity: usize) -> Self {
        ResidualTracker {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                log: VecDeque::new(),
                log_capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folds one `(predicted, measured)` pair into `key`'s statistics.
    ///
    /// Pairs with non-finite or non-positive `measured` are ignored (a
    /// failed measurement must not poison the aggregate).
    pub fn record(&self, key: &ResidualKey, predicted: f64, measured: f64) {
        self.record_for(0, key, predicted, measured);
    }

    /// [`ResidualTracker::record`], tagged with the serving-side matrix
    /// id the pair was observed on. The pair lands in both the per-key
    /// aggregate and the bounded export log.
    pub fn record_for(&self, matrix: u64, key: &ResidualKey, predicted: f64, measured: f64) {
        if !measured.is_finite() || measured <= 0.0 || !predicted.is_finite() {
            return;
        }
        let mut inner = self.lock();
        inner
            .map
            .entry(key.clone())
            .or_default()
            .fold(predicted, measured);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.log.len() == inner.log_capacity {
            inner.log.pop_front();
            inner.dropped += 1;
        }
        inner.log.push_back(ResidualEvent {
            seq,
            matrix,
            key: key.clone(),
            predicted,
            measured,
        });
    }

    /// Takes every undrained event, oldest first. Intended for a single
    /// consumer (the background tuner); concurrent drains partition the
    /// stream between callers.
    pub fn drain_events(&self) -> Vec<ResidualEvent> {
        self.lock().log.drain(..).collect()
    }

    /// Events evicted from the log before any consumer drained them.
    pub fn events_dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The statistics recorded for `key`, if any.
    pub fn stats(&self, key: &ResidualKey) -> Option<ResidualStats> {
        self.lock().map.get(key).copied()
    }

    /// All rows, sorted by key.
    pub fn rows(&self) -> Vec<(ResidualKey, ResidualStats)> {
        self.lock()
            .map
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total number of recorded pairs.
    pub fn len(&self) -> usize {
        self.lock().map.values().map(|s| s.n as usize).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets every recorded pair, drops undrained events, and clears
    /// the drop counter. Sequence numbers keep growing (they identify
    /// pairs for the log's whole lifetime).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.log.clear();
        inner.dropped = 0;
    }

    /// Renders the per-(format, shape, kernel, model) residual table,
    /// worst mean absolute relative error first; rows beyond
    /// [`OUTLIER_THRESHOLD`] are flagged `MISS`.
    pub fn render(&self) -> String {
        let mut rows = self.rows();
        rows.sort_by(|a, b| b.1.mean_abs_rel().total_cmp(&a.1.mean_abs_rel()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "prediction residuals ({} pairs): pred/real, mean |rel err|, worst |rel err|",
            rows.iter().map(|(_, s)| s.n).sum::<u64>()
        );
        let _ = writeln!(
            out,
            "  {:<10} {:<6} {:<7} {:<8} {:>6} {:>10} {:>10} {:>10}  flag",
            "format", "shape", "kernel", "model", "n", "pred/real", "mean|rel|", "max|rel|"
        );
        for (k, s) in &rows {
            let flag = if s.mean_abs_rel() > OUTLIER_THRESHOLD {
                "MISS"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<10} {:<6} {:<7} {:<8} {:>6} {:>10.3} {:>9.1}% {:>9.1}%  {}",
                k.format,
                k.shape,
                k.kernel,
                k.model,
                s.n,
                s.norm_pred(),
                s.mean_abs_rel() * 100.0,
                s.max_abs_rel * 100.0,
                flag
            );
        }
        out
    }
}

/// The process-global tracker the harness binaries feed.
pub fn global() -> &'static ResidualTracker {
    static GLOBAL: OnceLock<ResidualTracker> = OnceLock::new();
    GLOBAL.get_or_init(ResidualTracker::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: &str) -> ResidualKey {
        ResidualKey {
            format: "BCSR".into(),
            shape: "2x2".into(),
            kernel: "scalar".into(),
            model: model.into(),
        }
    }

    #[test]
    fn stats_match_hand_computed_values() {
        let t = ResidualTracker::new();
        let k = key("MEM");
        // (pred, meas): rel errors are +0.5 and -0.2.
        t.record(&k, 1.5, 1.0);
        t.record(&k, 1.6, 2.0);
        let s = t.stats(&k).unwrap();
        assert_eq!(s.n, 2);
        assert!((s.mean_rel() - 0.15).abs() < 1e-12);
        assert!((s.mean_abs_rel() - 0.35).abs() < 1e-12);
        assert!((s.max_abs_rel - 0.5).abs() < 1e-12);
        assert!((s.norm_pred() - 3.1 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bad_measurements_are_ignored() {
        let t = ResidualTracker::new();
        let k = key("MEM");
        t.record(&k, 1.0, 0.0);
        t.record(&k, 1.0, -1.0);
        t.record(&k, 1.0, f64::NAN);
        t.record(&k, f64::INFINITY, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.stats(&k), None);
    }

    #[test]
    fn render_flags_outliers_and_sorts_worst_first() {
        let t = ResidualTracker::new();
        t.record(&key("MEM"), 2.0, 1.0); // 100% off -> MISS
        t.record(&key("OVERLAP"), 1.05, 1.0); // 5% off
        let text = t.render();
        assert!(text.contains("MISS"));
        let mem_at = text.find("MEM").unwrap();
        let ovl_at = text.find("OVERLAP").unwrap();
        assert!(mem_at < ovl_at, "worst row renders first:\n{text}");
        t.reset();
        assert!(t.is_empty());
    }

    #[test]
    fn keys_partition_the_pairs() {
        let t = ResidualTracker::new();
        t.record(&key("MEM"), 1.0, 1.0);
        t.record(&key("OVERLAP"), 1.0, 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.stats(&key("MEM")).unwrap().n, 1);
    }

    #[test]
    fn events_export_in_order_with_matrix_tags() {
        let t = ResidualTracker::new();
        t.record_for(7, &key("MEM"), 1.5, 1.0);
        t.record(&key("MEM"), 1.0, 2.0);
        t.record_for(9, &key("OVERLAP"), 3.0, 3.0);
        let evs = t.drain_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| (e.seq, e.matrix)).collect::<Vec<_>>(),
            vec![(0, 7), (1, 0), (2, 9)]
        );
        assert!((evs[0].abs_rel() - 0.5).abs() < 1e-12);
        assert_eq!(evs[2].abs_rel(), 0.0);
        // Draining empties the log but not the aggregates.
        assert!(t.drain_events().is_empty());
        assert_eq!(t.len(), 3);
        // Sequence numbers continue across drains.
        t.record_for(7, &key("MEM"), 1.0, 1.0);
        assert_eq!(t.drain_events()[0].seq, 3);
    }

    #[test]
    fn rejected_pairs_never_reach_the_log() {
        let t = ResidualTracker::new();
        t.record_for(1, &key("MEM"), 1.0, f64::NAN);
        t.record_for(1, &key("MEM"), f64::INFINITY, 1.0);
        t.record_for(1, &key("MEM"), 1.0, 0.0);
        assert!(t.drain_events().is_empty());
        assert_eq!(t.events_dropped(), 0);
    }

    #[test]
    fn bounded_log_drops_oldest_and_counts() {
        let t = ResidualTracker::with_log_capacity(3);
        for i in 0..5 {
            t.record_for(i, &key("MEM"), 1.0, 1.0);
        }
        assert_eq!(t.events_dropped(), 2);
        let evs = t.drain_events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        // reset clears the drop counter along with the log.
        t.record_for(9, &key("MEM"), 1.0, 1.0);
        t.reset();
        assert_eq!(t.events_dropped(), 0);
        assert!(t.drain_events().is_empty());
    }
}
