#![warn(missing_docs)]

//! Low-overhead tracing and metrics for the blocked-SpMV workspace.
//!
//! The paper's evaluation lives on measurement: Figure 3's outliers were
//! found by instrumenting SpMV and comparing predicted against measured
//! time. This crate is the workspace's unified observability layer:
//!
//! * **Events** are fixed-size records ([`Event`]) written to
//!   **per-thread lock-free rings** ([`ring`]) — no locks and no
//!   allocation on the hot path; a full ring overwrites its oldest
//!   entries and counts them as dropped.
//! * **Spans** ([`span`], [`complete`]) record named durations,
//!   **counters** ([`counter`]) additive deltas, **gauges** ([`gauge`])
//!   sampled values, and [`instant`] point marks.
//! * Recording is gated by a **runtime flag** ([`set_enabled`]; the
//!   disabled hot path is one relaxed atomic load) and by the
//!   **`disabled` cargo feature**, which compiles every entry point to an
//!   empty `#[inline]` body for zero-cost removal.
//! * [`snapshot`] copies every ring into a time-ordered [`Snapshot`],
//!   exported as chrome://tracing JSON ([`chrome`]) or a flat-text
//!   aggregate ([`summary`]).
//! * [`residual::ResidualTracker`] accumulates (predicted, measured)
//!   pairs per (format, shape, kernel, model) so model mispredictions —
//!   the paper's latency-bound outliers — surface automatically.
//!
//! See `docs/OBSERVABILITY.md` for the event model and measured
//! overhead numbers.
//!
//! # Example
//!
//! ```
//! spmv_telemetry::set_enabled(true);
//! {
//!     let _outer = spmv_telemetry::span("example.outer");
//!     spmv_telemetry::counter("example.items", 3);
//! }
//! let snap = spmv_telemetry::snapshot();
//! // Under the `disabled` feature nothing records, so only assert when
//! // the build can actually observe events.
//! if spmv_telemetry::enabled() {
//!     assert!(snap.events.iter().any(|e| e.name == "example.outer"));
//! }
//! spmv_telemetry::set_enabled(false);
//! spmv_telemetry::clear();
//! ```

pub mod chrome;
pub mod json;
pub mod residual;
#[cfg(not(feature = "disabled"))]
pub mod ring;
pub mod summary;
pub mod window;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What one [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named duration: `ts_ns` is the start, `value` the duration in
    /// nanoseconds (a chrome "complete" event).
    Span,
    /// An additive delta: `value` holds an `i64` delta as raw bits.
    Counter,
    /// A sampled value: `value` holds an `f64` as raw bits.
    Gauge,
    /// A point-in-time mark with no duration.
    Instant,
}

#[cfg(not(feature = "disabled"))]
impl EventKind {
    fn from_u64(v: u64) -> EventKind {
        match v {
            0 => EventKind::Span,
            1 => EventKind::Counter,
            2 => EventKind::Gauge,
            _ => EventKind::Instant,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            EventKind::Span => 0,
            EventKind::Counter => 1,
            EventKind::Gauge => 2,
            EventKind::Instant => 3,
        }
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Static event name (e.g. `"pool.epoch"`).
    pub name: &'static str,
    /// Event flavor; decides how [`Event::value`] is interpreted.
    pub kind: EventKind,
    /// Small dense id of the recording thread's ring (assigned in ring
    /// creation order, starting at 0).
    pub tid: u64,
    /// Nanoseconds since the process trace epoch (first telemetry use).
    pub ts_ns: u64,
    /// Span duration in ns, counter delta (`i64` bits), or gauge value
    /// (`f64` bits).
    pub value: u64,
    /// Free-form payload chosen by the instrumentation site (vector
    /// count, candidate count, kernel index, ...).
    pub arg: u64,
}

impl Event {
    /// The counter delta, when [`Event::kind`] is [`EventKind::Counter`].
    pub fn counter_delta(&self) -> i64 {
        self.value as i64
    }

    /// The gauge value, when [`Event::kind`] is [`EventKind::Gauge`].
    pub fn gauge_value(&self) -> f64 {
        f64::from_bits(self.value)
    }
}

/// A time-ordered copy of every thread ring, taken by [`snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All live events, sorted by (`ts_ns`, `tid`).
    pub events: Vec<Event>,
    /// Events lost to ring overwrite since the last [`clear`].
    pub dropped: u64,
    /// Number of registered thread rings ([`clear`] reclaims the rings
    /// of threads that have exited).
    pub threads: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns event recording on or off at runtime.
///
/// Off is the default; when off, every recording entry point returns
/// after a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether event recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "disabled")]
    {
        false
    }
    #[cfg(not(feature = "disabled"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
///
/// The epoch is pinned at first telemetry use, so all threads share one
/// timeline. Usable even while recording is disabled (timestamps for
/// [`complete`]).
#[inline]
pub fn now_ns() -> u64 {
    trace_epoch().elapsed().as_nanos() as u64
}

/// An RAII span: records one [`EventKind::Span`] event covering its own
/// lifetime when dropped.
///
/// Created disarmed when recording is disabled, so construction and drop
/// are then nearly free.
#[must_use = "a span measures its own lifetime; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    arg: u64,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// Overrides the span's argument payload after creation.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            complete(self.name, self.start_ns, now_ns() - self.start_ns, self.arg);
        }
    }
}

/// Opens a span named `name`; the returned guard records it on drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, 0)
}

/// Opens a span with an argument payload.
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> Span {
    let armed = enabled();
    Span {
        name,
        arg,
        start_ns: if armed { now_ns() } else { 0 },
        armed,
    }
}

/// Records an already-measured duration as a span event.
///
/// For hot paths that time themselves anyway (the pool's per-strip
/// timing): `start_ns` comes from [`now_ns`], `dur_ns` from the caller's
/// own measurement.
#[inline]
pub fn complete(name: &'static str, start_ns: u64, dur_ns: u64, arg: u64) {
    #[cfg(feature = "disabled")]
    {
        let _ = (name, start_ns, dur_ns, arg);
    }
    #[cfg(not(feature = "disabled"))]
    {
        if enabled() {
            ring::record(Event {
                name,
                kind: EventKind::Span,
                tid: 0,
                ts_ns: start_ns,
                value: dur_ns,
                arg,
            });
        }
    }
}

/// Records an additive counter delta.
#[inline]
pub fn counter(name: &'static str, delta: i64) {
    #[cfg(feature = "disabled")]
    {
        let _ = (name, delta);
    }
    #[cfg(not(feature = "disabled"))]
    {
        if enabled() {
            ring::record(Event {
                name,
                kind: EventKind::Counter,
                tid: 0,
                ts_ns: now_ns(),
                value: delta as u64,
                arg: 0,
            });
        }
    }
}

/// Records a sampled gauge value.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    #[cfg(feature = "disabled")]
    {
        let _ = (name, value);
    }
    #[cfg(not(feature = "disabled"))]
    {
        if enabled() {
            ring::record(Event {
                name,
                kind: EventKind::Gauge,
                tid: 0,
                ts_ns: now_ns(),
                value: value.to_bits(),
                arg: 0,
            });
        }
    }
}

/// Records a point-in-time mark.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    #[cfg(feature = "disabled")]
    {
        let _ = (name, arg);
    }
    #[cfg(not(feature = "disabled"))]
    {
        if enabled() {
            ring::record(Event {
                name,
                kind: EventKind::Instant,
                tid: 0,
                ts_ns: now_ns(),
                value: 0,
                arg,
            });
        }
    }
}

/// Copies every thread ring into one time-ordered [`Snapshot`].
///
/// Concurrent writers keep running; entries they overwrite mid-copy are
/// detected and counted as dropped rather than returned torn.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "disabled")]
    {
        Snapshot::default()
    }
    #[cfg(not(feature = "disabled"))]
    {
        ring::snapshot_all()
    }
}

/// Forgets all recorded events (and the dropped count) in every ring.
///
/// Rings of live threads stay allocated and registered; rings whose
/// owning thread has exited are unregistered and freed here, so
/// workloads that instrument many short-lived threads reclaim their
/// ring storage by clearing. Tests use this to isolate scenarios inside
/// one process.
pub fn clear() {
    #[cfg(not(feature = "disabled"))]
    {
        ring::clear_all();
    }
}

#[cfg(all(test, not(feature = "disabled")))]
mod tests {
    use super::*;

    /// The whole test module shares process-global rings, so every test
    /// that records serializes on this lock and clears before running.
    pub(crate) fn with_clean_telemetry<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        clear();
        out
    }

    #[test]
    fn disabled_by_default_records_nothing() {
        with_clean_telemetry(|| {
            set_enabled(false);
            counter("t.nothing", 1);
            let _s = span("t.nothing.span");
            drop(_s);
            gauge("t.nothing.gauge", 1.0);
            instant("t.nothing.mark", 0);
            let snap = snapshot();
            assert!(snap.events.is_empty(), "got {:?}", snap.events);
        });
    }

    #[test]
    fn span_counter_gauge_roundtrip() {
        with_clean_telemetry(|| {
            {
                let _s = span_with("t.span", 7);
                counter("t.count", -4);
                gauge("t.gauge", 2.5);
                instant("t.mark", 9);
            }
            let snap = snapshot();
            assert_eq!(snap.events.len(), 4);
            let by_name = |n: &str| {
                snap.events
                    .iter()
                    .find(|e| e.name == n)
                    .copied()
                    .unwrap_or_else(|| panic!("{n} missing"))
            };
            let s = by_name("t.span");
            assert_eq!(s.kind, EventKind::Span);
            assert_eq!(s.arg, 7);
            assert_eq!(by_name("t.count").counter_delta(), -4);
            assert_eq!(by_name("t.gauge").gauge_value(), 2.5);
            assert_eq!(by_name("t.mark").kind, EventKind::Instant);
            // Inner events happen inside the span's extent.
            let c = by_name("t.count");
            assert!(s.ts_ns <= c.ts_ns && c.ts_ns <= s.ts_ns + s.value);
        });
    }

    #[test]
    fn snapshot_is_time_ordered() {
        with_clean_telemetry(|| {
            for i in 0..32 {
                counter("t.order", i);
            }
            let snap = snapshot();
            assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        });
    }

    #[test]
    fn clear_resets_events_and_drops() {
        with_clean_telemetry(|| {
            counter("t.clear", 1);
            clear();
            let snap = snapshot();
            assert!(snap.events.is_empty());
            assert_eq!(snap.dropped, 0);
        });
    }

    #[test]
    fn events_survive_from_other_threads() {
        with_clean_telemetry(|| {
            let h = std::thread::spawn(|| {
                counter("t.cross", 1);
            });
            h.join().unwrap();
            counter("t.cross", 2);
            let snap = snapshot();
            let evs: Vec<_> = snap.events.iter().filter(|e| e.name == "t.cross").collect();
            assert_eq!(evs.len(), 2);
            assert_ne!(evs[0].tid, evs[1].tid, "distinct threads, distinct rings");
        });
    }

    #[test]
    fn clear_reclaims_rings_of_exited_threads() {
        with_clean_telemetry(|| {
            let h = std::thread::spawn(|| counter("t.reclaim", 1));
            h.join().unwrap();
            let before = snapshot().threads;
            clear();
            let after = snapshot().threads;
            assert!(
                after < before,
                "exited thread's ring not reclaimed ({before} -> {after} rings)"
            );
            // The calling thread's live ring keeps working after a prune.
            counter("t.reclaim", 2);
            let snap = snapshot();
            assert_eq!(snap.events.len(), 1);
            assert_eq!(snap.events[0].counter_delta(), 2);
        });
    }
}
