//! chrome://tracing (Trace Event Format) JSON export.
//!
//! The exported object is `{"traceEvents": [...], "displayTimeUnit":
//! "ns"}` with one entry per [`Event`], time-ordered:
//!
//! * spans become complete events (`"ph": "X"`) with microsecond `ts` /
//!   `dur` fields;
//! * counters and gauges become counter events (`"ph": "C"`) whose
//!   `args` carry the delta or value under the event name;
//! * instants become `"ph": "i"` marks.
//!
//! Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::{Event, EventKind, Snapshot};
use std::io::Write;
use std::path::Path;

/// Escapes a string for a JSON literal (quotes not included).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, ev: &Event, ph: char) {
    out.push_str("{\"name\":\"");
    escape_into(out, ev.name);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    // Microsecond floats, the format's native unit; three decimals keep
    // full nanosecond resolution.
    out.push_str(&format!(
        "\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
        ev.ts_ns as f64 / 1e3,
        ev.tid
    ));
}

/// Renders one snapshot as a Trace Event Format JSON document.
pub fn chrome_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(128 * snap.events.len() + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match ev.kind {
            EventKind::Span => {
                push_common(&mut out, ev, 'X');
                out.push_str(&format!(
                    ",\"dur\":{:.3},\"args\":{{\"arg\":{}}}}}",
                    ev.value as f64 / 1e3,
                    ev.arg
                ));
            }
            EventKind::Counter => {
                push_common(&mut out, ev, 'C');
                out.push_str(&format!(",\"args\":{{\"delta\":{}}}}}", ev.counter_delta()));
            }
            EventKind::Gauge => {
                push_common(&mut out, ev, 'C');
                let v = ev.gauge_value();
                if v.is_finite() {
                    out.push_str(&format!(",\"args\":{{\"value\":{v}}}}}"));
                } else {
                    out.push_str(",\"args\":{\"value\":null}}");
                }
            }
            EventKind::Instant => {
                push_common(&mut out, ev, 'i');
                out.push_str(&format!(",\"s\":\"t\",\"args\":{{\"arg\":{}}}}}", ev.arg));
            }
        }
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{},\"threads\":{}}}}}",
        snap.dropped, snap.threads
    ));
    out
}

/// Takes a [`crate::snapshot`] and writes it to `path` as chrome-trace
/// JSON.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = chrome_json(&crate::snapshot());
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn snap_of(events: Vec<Event>) -> Snapshot {
        Snapshot {
            events,
            dropped: 2,
            threads: 1,
        }
    }

    fn ev(kind: EventKind, ts: u64, value: u64) -> Event {
        Event {
            name: "chrome.test",
            kind,
            tid: 3,
            ts_ns: ts,
            value,
            arg: 7,
        }
    }

    #[test]
    fn exported_json_parses_back() {
        let snap = snap_of(vec![
            ev(EventKind::Span, 1000, 500),
            ev(EventKind::Counter, 1200, (-4i64) as u64),
            ev(EventKind::Gauge, 1300, 2.5f64.to_bits()),
            ev(EventKind::Instant, 1400, 0),
        ]);
        let doc = Value::parse(&chrome_json(&snap)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(phases, ["X", "C", "C", "i"]);
        let span = &events[0];
        assert_eq!(span.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(0.5));
        assert_eq!(span.get("tid").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("delta")).and_then(Value::as_f64),
            Some(-4.0)
        );
        assert_eq!(
            events[2].get("args").and_then(|a| a.get("value")).and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            doc.get("otherData").and_then(|o| o.get("dropped")).and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn names_are_escaped() {
        let mut e = ev(EventKind::Instant, 0, 0);
        e.name = "quote\"back\\slash\n";
        let json = chrome_json(&snap_of(vec![e]));
        let doc = Value::parse(&json).expect("escaped JSON parses");
        let name = doc.get("traceEvents").and_then(Value::as_array).unwrap()[0]
            .get("name")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(name, "quote\"back\\slash\n");
    }

    #[test]
    fn non_finite_gauges_export_as_null() {
        let snap = snap_of(vec![ev(EventKind::Gauge, 0, f64::NAN.to_bits())]);
        let doc = Value::parse(&chrome_json(&snap)).expect("valid JSON");
        let v = doc.get("traceEvents").and_then(Value::as_array).unwrap()[0]
            .get("args")
            .and_then(|a| a.get("value"))
            .cloned();
        assert_eq!(v, Some(Value::Null));
    }
}
