//! Per-thread lock-free event rings.
//!
//! Every recording thread owns one fixed-capacity [`Ring`], created and
//! registered on its first event — so the hot path never allocates and
//! never takes a lock. The ring is a seqlock-style single-producer
//! buffer: the owner writes a slot's words with relaxed atomic stores
//! and then publishes the slot by bumping the head sequence with a
//! release store. Any thread may copy the ring out concurrently
//! ([`snapshot_all`]): it reads the head, copies raw slot words, then
//! re-reads the head and discards entries the producer may have
//! overwritten in the meantime — including, conservatively, the one
//! event exactly one ring-lap behind the re-read head, whose slot an
//! in-flight push may be rewriting before its head bump. Torn events
//! are thus impossible by construction, full rings overwrite their
//! oldest entries, and nothing is ever reported twice thanks to a
//! per-ring floor sequence advanced by [`clear_all`] (which also
//! reclaims the rings of exited threads).

use crate::{Event, EventKind, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread ring. At 48 bytes per slot this is
/// ~192 KiB per recording thread, allocated once at ring registration
/// (off the hot path) and held until the thread exits *and*
/// [`clear_all`] reclaims the orphaned ring — instrumenting many
/// short-lived threads without clearing keeps every ring alive.
pub const RING_CAPACITY: usize = 4096;

/// Words per slot: name pointer, name length, kind, timestamp, value,
/// arg.
const SLOT_WORDS: usize = 6;

/// One thread's event ring. See the [module docs](self) for the
/// publication protocol.
pub struct Ring {
    /// Dense thread id, assigned in registration order.
    tid: u64,
    /// Next absolute event sequence number (monotonic; slot = seq % cap).
    head: AtomicU64,
    /// Sequences below the floor are logically cleared.
    floor: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(tid: u64) -> Ring {
        Ring {
            tid,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..RING_CAPACITY * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Writes one event. Must only be called by the owning thread.
    fn push(&self, ev: &Event) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize % RING_CAPACITY) * SLOT_WORDS;
        let words = [
            ev.name.as_ptr() as u64,
            ev.name.len() as u64,
            ev.kind.as_u64(),
            ev.ts_ns,
            ev.value,
            ev.arg,
        ];
        for (slot, w) in self.slots[base..base + SLOT_WORDS].iter().zip(words) {
            slot.store(w, Ordering::Relaxed);
        }
        // Publish: a reader that observes head > seq also observes the
        // slot words above.
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Copies the live events out, appending to `out`; returns how many
    /// events were dropped (overwritten or torn mid-copy).
    fn drain_into(&self, out: &mut Vec<Event>) -> u64 {
        let floor = self.floor.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        let start = floor.max(head.saturating_sub(RING_CAPACITY as u64));
        let mut dropped = start - floor;
        let mut copied: Vec<(u64, [u64; SLOT_WORDS])> = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let base = (seq as usize % RING_CAPACITY) * SLOT_WORDS;
            let mut words = [0u64; SLOT_WORDS];
            for (w, slot) in words.iter_mut().zip(&self.slots[base..base + SLOT_WORDS]) {
                *w = slot.load(Ordering::Relaxed);
            }
            copied.push((seq, words));
        }
        // Anything the producer lapped while we copied may be torn, and
        // so may the event exactly one lap behind the head: its slot is
        // shared with seq `head_after`, whose push may be writing words
        // right now without having bumped the head yet. Discard both
        // instead of decoding garbage — the boundary event is dropped
        // conservatively even when no push is in flight.
        let head_after = self.head.load(Ordering::Acquire);
        let valid_from = (head_after + 1).saturating_sub(RING_CAPACITY as u64);
        for (seq, words) in copied {
            if seq < valid_from {
                dropped += 1;
                continue;
            }
            // SAFETY: `seq >= valid_from` means this slot was neither
            // overwritten between the two head reads nor shared with an
            // in-flight push of seq `head_after`, so the words are
            // exactly what one completed `push` stored: a decomposed
            // `&'static str` plus plain integers.
            let name = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    words[0] as *const u8,
                    words[1] as usize,
                ))
            };
            out.push(Event {
                name,
                kind: EventKind::from_u64(words[2]),
                tid: self.tid,
                ts_ns: words[3],
                value: words[4],
                arg: words[5],
            });
        }
        dropped
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Dense thread ids come from a counter that survives registry pruning,
/// so a fresh ring never reuses an id already reported in snapshots.
fn next_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    NEXT_TID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(Ring::new(next_tid()));
        reg.push(Arc::clone(&ring));
        ring
    };
}

/// Records one event into the calling thread's ring (creating and
/// registering the ring on first use).
pub(crate) fn record(ev: Event) {
    LOCAL_RING.with(|r| r.push(&ev));
}

/// Copies every registered ring into one time-ordered snapshot.
pub(crate) fn snapshot_all() -> Snapshot {
    let rings: Vec<Arc<Ring>> = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut snap = Snapshot {
        events: Vec::new(),
        dropped: 0,
        threads: rings.len(),
    };
    for ring in &rings {
        snap.dropped += ring.drain_into(&mut snap.events);
    }
    snap.events.sort_by_key(|e| (e.ts_ns, e.tid));
    snap
}

/// Logically empties every ring by advancing its floor to its head, and
/// unregisters rings whose owning thread has exited (the registry holds
/// their only remaining `Arc`; the owner's thread-local clone dropped at
/// thread exit) so short-lived instrumented threads do not leak ring
/// storage for the process lifetime.
pub(crate) fn clear_all() {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.retain(|ring| Arc::strong_count(ring) > 1);
    for ring in reg.iter() {
        ring.floor
            .store(ring.head.load(Ordering::Acquire), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64) -> Event {
        Event {
            name,
            kind: EventKind::Counter,
            tid: 0,
            ts_ns: ts,
            value: 1,
            arg: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = Ring::new(9);
        let n = RING_CAPACITY as u64 + 100;
        for i in 0..n {
            ring.push(&ev("ring.test", i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        // The oldest surviving slot is shared with the next push, so the
        // drain conservatively discards it too: capacity - 1 events come
        // back and the boundary event counts as dropped.
        assert_eq!(out.len(), RING_CAPACITY - 1);
        assert_eq!(dropped, 101);
        // The survivors are the newest entries, in order.
        assert_eq!(out[0].ts_ns, 101);
        assert_eq!(out.last().unwrap().ts_ns, n - 1);
        assert!(out.iter().all(|e| e.tid == 9 && e.name == "ring.test"));
    }

    #[test]
    fn floor_hides_cleared_events() {
        let ring = Ring::new(0);
        for i in 0..10 {
            ring.push(&ev("ring.floor", i));
        }
        ring.floor.store(ring.head.load(Ordering::Acquire), Ordering::Release);
        for i in 10..13 {
            ring.push(&ev("ring.floor", i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(dropped, 0, "cleared events are not drops");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].ts_ns, 10);
    }

    #[test]
    fn concurrent_writer_never_produces_torn_events() {
        // One writer laps the ring while a reader snapshots repeatedly:
        // every decoded event must be internally consistent (name and
        // value always agree).
        let ring = Arc::new(Ring::new(1));
        let w = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let (name, value): (&'static str, u64) = if i % 2 == 0 {
                        ("ring.even", 2)
                    } else {
                        ("ring.odd", 3)
                    };
                    ring.push(&Event {
                        name,
                        kind: EventKind::Counter,
                        tid: 0,
                        ts_ns: i,
                        value,
                        arg: i,
                    });
                }
            })
        };
        for _ in 0..50 {
            let mut out = Vec::new();
            let _ = ring.drain_into(&mut out);
            for e in &out {
                let want = if e.arg % 2 == 0 { ("ring.even", 2) } else { ("ring.odd", 3) };
                assert_eq!((e.name, e.value), want, "torn event {e:?}");
                assert_eq!(e.ts_ns, e.arg);
            }
        }
        w.join().unwrap();
    }
}
