//! A minimal JSON parser.
//!
//! The workspace vendors no third-party crates, but the chrome-trace
//! exporter's output must be *validated*, not just eyeballed — the
//! offline test suites parse exported traces back and assert on event
//! ordering, span nesting, and thread ids. This module is the few dozen
//! lines of recursive-descent JSON that makes that possible. It parses
//! the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); numbers are represented as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            Value::parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,{"b":"x"},null],"c":{"d":true}}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Value::Bool(true)));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"1}", "tru", "1.2.3", "\"unterminated",
            "[1] garbage", "{\"a\":}", "\"\\ud800\"", "\"\\q\"",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }
}
