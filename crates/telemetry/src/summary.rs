//! Flat-text aggregation of a [`Snapshot`].
//!
//! One line per (event name, kind): spans aggregate count / total /
//! mean / min / max duration, counters sum their deltas, gauges report
//! last / min / max. This is the quick-look exporter — the chrome trace
//! ([`crate::chrome`]) is for timelines, the summary for "what did this
//! run spend its time on".

use crate::{EventKind, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Aggregated statistics for one event name.
#[derive(Debug, Clone, PartialEq)]
pub enum NameStats {
    /// Aggregate over span durations (nanoseconds).
    Span {
        /// Number of spans.
        count: u64,
        /// Summed duration.
        total_ns: u64,
        /// Shortest span.
        min_ns: u64,
        /// Longest span.
        max_ns: u64,
    },
    /// Sum of counter deltas and sample count.
    Counter {
        /// Number of recorded deltas.
        count: u64,
        /// Their sum.
        sum: i64,
    },
    /// Last / extreme gauge samples.
    Gauge {
        /// Number of samples.
        count: u64,
        /// The most recent sample.
        last: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
    /// Number of instant marks.
    Instant {
        /// Number of marks.
        count: u64,
    },
}

/// Aggregates a snapshot by event name (sorted).
pub fn aggregate(snap: &Snapshot) -> BTreeMap<&'static str, NameStats> {
    let mut out: BTreeMap<&'static str, NameStats> = BTreeMap::new();
    for ev in &snap.events {
        match ev.kind {
            EventKind::Span => {
                let e = out.entry(ev.name).or_insert(NameStats::Span {
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
                if let NameStats::Span {
                    count,
                    total_ns,
                    min_ns,
                    max_ns,
                } = e
                {
                    *count += 1;
                    *total_ns += ev.value;
                    *min_ns = (*min_ns).min(ev.value);
                    *max_ns = (*max_ns).max(ev.value);
                }
            }
            EventKind::Counter => {
                let e = out.entry(ev.name).or_insert(NameStats::Counter { count: 0, sum: 0 });
                if let NameStats::Counter { count, sum } = e {
                    *count += 1;
                    *sum += ev.counter_delta();
                }
            }
            EventKind::Gauge => {
                let v = ev.gauge_value();
                let e = out.entry(ev.name).or_insert(NameStats::Gauge {
                    count: 0,
                    last: v,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                });
                if let NameStats::Gauge {
                    count,
                    last,
                    min,
                    max,
                } = e
                {
                    *count += 1;
                    *last = v;
                    *min = min.min(v);
                    *max = max.max(v);
                }
            }
            EventKind::Instant => {
                let e = out.entry(ev.name).or_insert(NameStats::Instant { count: 0 });
                if let NameStats::Instant { count } = e {
                    *count += 1;
                }
            }
        }
    }
    out
}

/// Duration percentiles (nearest-rank) over every span named `name` in
/// the snapshot: one entry per requested percentile (0 < p ≤ 100), or
/// `None` when no such span was recorded.
///
/// This is what the serving layer's latency tables are built from —
/// `serve.request` spans carry one request's submit→complete latency, so
/// `span_percentiles(&snap, "serve.request", &[50.0, 95.0, 99.0])` is
/// the per-request p50/p95/p99.
pub fn span_percentiles(snap: &Snapshot, name: &str, pcts: &[f64]) -> Option<Vec<u64>> {
    let mut durs: Vec<u64> = snap
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Span && e.name == name)
        .map(|e| e.value)
        .collect();
    if durs.is_empty() {
        return None;
    }
    durs.sort_unstable();
    Some(
        pcts.iter()
            .map(|&p| {
                let idx = ((p / 100.0) * durs.len() as f64).ceil() as usize;
                durs[idx.clamp(1, durs.len()) - 1]
            })
            .collect(),
    )
}

fn ns(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.2} ms", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.2} us", v as f64 / 1e3)
    } else {
        format!("{v} ns")
    }
}

/// Renders the aggregate as an aligned flat-text table.
pub fn render(snap: &Snapshot) -> String {
    let agg = aggregate(snap);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry summary: {} events, {} threads, {} dropped",
        snap.events.len(),
        snap.threads,
        snap.dropped
    );
    let name_w = agg.keys().map(|n| n.len()).max().unwrap_or(4).max(4);
    for (name, stats) in &agg {
        let detail = match stats {
            NameStats::Span {
                count,
                total_ns,
                min_ns,
                max_ns,
            } => format!(
                "span     n={count:<8} total={:<12} mean={:<12} min={:<12} max={}",
                ns(*total_ns),
                ns(total_ns / (*count).max(1)),
                ns(*min_ns),
                ns(*max_ns)
            ),
            NameStats::Counter { count, sum } => {
                format!("counter  n={count:<8} sum={sum}")
            }
            NameStats::Gauge {
                count,
                last,
                min,
                max,
            } => format!("gauge    n={count:<8} last={last:<12.6} min={min:<12.6} max={max:.6}"),
            NameStats::Instant { count } => format!("instant  n={count}"),
        };
        let _ = writeln!(out, "  {name:<name_w$}  {detail}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn ev(name: &'static str, kind: EventKind, value: u64) -> Event {
        Event {
            name,
            kind,
            tid: 0,
            ts_ns: 0,
            value,
            arg: 0,
        }
    }

    #[test]
    fn aggregates_spans_counters_gauges() {
        let snap = Snapshot {
            events: vec![
                ev("s", EventKind::Span, 100),
                ev("s", EventKind::Span, 300),
                ev("c", EventKind::Counter, 5u64),
                ev("c", EventKind::Counter, (-2i64) as u64),
                ev("g", EventKind::Gauge, 1.5f64.to_bits()),
                ev("g", EventKind::Gauge, 0.5f64.to_bits()),
                ev("i", EventKind::Instant, 0),
            ],
            dropped: 0,
            threads: 1,
        };
        let agg = aggregate(&snap);
        assert_eq!(
            agg["s"],
            NameStats::Span {
                count: 2,
                total_ns: 400,
                min_ns: 100,
                max_ns: 300
            }
        );
        assert_eq!(agg["c"], NameStats::Counter { count: 2, sum: 3 });
        assert_eq!(
            agg["g"],
            NameStats::Gauge {
                count: 2,
                last: 0.5,
                min: 0.5,
                max: 1.5
            }
        );
        assert_eq!(agg["i"], NameStats::Instant { count: 1 });
        let text = render(&snap);
        assert!(text.contains("7 events"));
        assert!(text.contains("sum=3"));
    }

    #[test]
    fn render_handles_empty_snapshot() {
        let text = render(&Snapshot::default());
        assert!(text.contains("0 events"));
    }

    #[test]
    fn span_percentiles_are_nearest_rank() {
        let events: Vec<Event> = (1..=100)
            .map(|v| ev("lat", EventKind::Span, v))
            .chain([ev("other", EventKind::Span, 9999)])
            .chain([ev("lat", EventKind::Counter, 5)]) // ignored: not a span
            .collect();
        let snap = Snapshot {
            events,
            dropped: 0,
            threads: 1,
        };
        let p = span_percentiles(&snap, "lat", &[50.0, 95.0, 99.0, 100.0]).unwrap();
        assert_eq!(p, vec![50, 95, 99, 100]);
        assert_eq!(span_percentiles(&snap, "missing", &[50.0]), None);
        // A single sample answers every percentile with itself.
        let p1 = span_percentiles(&snap, "other", &[1.0, 50.0, 99.0]).unwrap();
        assert_eq!(p1, vec![9999, 9999, 9999]);
    }
}
