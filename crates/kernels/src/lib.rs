#![warn(missing_docs)]

//! Block-specific SpMV multiply kernels.
//!
//! The paper implements "a block-specific multiplication routine for each
//! particular block" (§V-A), for every fixed block shape with up to eight
//! elements, in both a plain and a vectorized (SSE2) variant. This crate is
//! that kernel library:
//!
//! * [`shapes`] — the block-shape search space ([`BlockShape`],
//!   [`BCSD_SIZES`], [`KernelImpl`]);
//! * [`scalar`] — fully unrolled scalar kernels, monomorphized per shape
//!   through const generics;
//! * [`simd`] — SSE2 variants for x86-64 (always available on that
//!   target), falling back to the scalar kernels elsewhere;
//! * [`registry`] — runtime dispatch from `(shape, implementation)` to a
//!   concrete kernel function pointer, which is what the storage formats
//!   and the performance-model profiler consume.
//!
//! Kernel contract: every kernel **accumulates** (`+=`) into its output
//! slice; callers zero the output vector once per SpMV. This is what lets
//! the decomposed formats (BCSR-DEC, BCSD-DEC) run k sub-multiplications
//! into a single output vector.

pub mod registry;
pub mod scalar;
pub mod shapes;
pub mod simd;

pub use registry::{bcsd_seg_kernel, bcsr_row_kernel, dot_run, BcsdSegKernel, BcsrRowKernel};
pub use shapes::{BlockShape, KernelImpl, BCSD_SIZES, MAX_BLOCK_ELEMS};
