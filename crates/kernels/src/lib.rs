#![warn(missing_docs)]

//! Block-specific SpMV multiply kernels.
//!
//! The paper implements "a block-specific multiplication routine for each
//! particular block" (§V-A), for every fixed block shape with up to eight
//! elements, in both a plain and a vectorized (SSE2) variant. This crate is
//! that kernel library:
//!
//! * [`shapes`] — the block-shape search space ([`BlockShape`],
//!   [`BCSD_SIZES`], [`KernelImpl`]);
//! * [`scalar`] — fully unrolled scalar kernels, monomorphized per shape
//!   through const generics;
//! * [`simd`] — SSE2 variants for x86-64 (always available on that
//!   target), falling back to the scalar kernels elsewhere;
//! * [`registry`] — runtime dispatch from `(shape, implementation)` to a
//!   concrete kernel function pointer, which is what the storage formats
//!   and the performance-model profiler consume.
//!
//! Kernel contract: every kernel **accumulates** (`+=`) into its output
//! slice; callers zero the output vector once per SpMV. This is what lets
//! the decomposed formats (BCSR-DEC, BCSD-DEC) run k sub-multiplications
//! into a single output vector.

pub mod block;
pub mod engine;
#[cfg(test)]
mod gate;
pub mod masked;
pub mod registry;
pub mod scalar;
pub mod sell;
pub mod shapes;
pub mod simd;

pub use masked::Mask;
pub use registry::{
    bcsd_masked_seg_kernel, bcsd_masked_seg_multi_kernel, bcsd_seg_kernel, bcsd_seg_multi_kernel,
    bcsr_masked_row_kernel, bcsr_masked_row_multi_kernel, bcsr_row_kernel, bcsr_row_multi_kernel,
    dot_run, dot_run_multi, BcsdMaskedSegKernel, BcsdMaskedSegMultiKernel, BcsdSegKernel,
    BcsdSegMultiKernel, BcsrMaskedRowKernel, BcsrMaskedRowMultiKernel, BcsrRowKernel,
    BcsrRowMultiKernel,
};
pub use sell::{
    sell_slice_kernel, sell_slice_multi_kernel, SellSliceKernel, SellSliceMultiKernel,
    SELL_HEIGHTS,
};
pub use shapes::{BlockShape, KernelImpl, BCSD_SIZES, MAX_BLOCK_ELEMS};

/// The vector counts with dedicated multi-vector kernel specializations;
/// other counts are served by greedy chunking into these sizes.
pub const MULTI_KS: [usize; 4] = [1, 2, 4, 8];

/// Largest specialized vector count not exceeding `rem` — the greedy
/// chunking rule formats use to cover an arbitrary `k` with the
/// [`MULTI_KS`] kernel specializations (e.g. `k = 7` runs as `4 + 2 + 1`).
#[inline]
pub fn multi_chunk(rem: usize) -> usize {
    debug_assert!(rem > 0);
    match rem {
        1 => 1,
        2..=3 => 2,
        4..=7 => 4,
        _ => 8,
    }
}
