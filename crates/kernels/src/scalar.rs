//! Fully unrolled scalar block kernels.
//!
//! Each fixed block shape gets its own monomorphized kernel through const
//! generics: the shape dimensions are compile-time constants, so the
//! compiler fully unrolls the per-block loops — the Rust equivalent of the
//! paper's per-shape C routines. The [`crate::registry`] module maps a
//! runtime [`crate::BlockShape`] to the matching instantiation.
//!
//! Two kinds of kernels exist per format:
//!
//! * **interior** kernels ([`bcsr_block_row`], [`bcsd_segment`]) assume the
//!   whole block lies inside the matrix and index `x` without per-element
//!   bounds logic;
//! * **clipped** kernels ([`bcsr_block_row_clipped`],
//!   [`bcsd_segment_clipped`]) handle the at-most-one partial block row /
//!   block column at the matrix boundary (when the dimensions are not
//!   multiples of the block shape) with runtime shape parameters.
//!
//! All kernels accumulate (`+=`) into their output slice.

use spmv_core::{Index, Scalar};

/// Processes one BCSR block row: all blocks `k` starting at **absolute**
/// column `bcols[k]`, values `bvals[k*R*C .. (k+1)*R*C]` (row-major),
/// accumulating into the `R` outputs of `yrow`.
///
/// Start columns are absolute (not block-column indices) so that the same
/// kernels serve both aligned BCSR (starts are multiples of `C`) and the
/// unaligned variant used by the alignment ablation.
///
/// # Panics
///
/// Panics (via slice indexing) if a block reads past `x` — callers route
/// boundary blocks to [`bcsr_block_row_clipped`] instead.
#[inline]
pub fn bcsr_block_row<T: Scalar, const R: usize, const C: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert_eq!(yrow.len(), R);
    debug_assert_eq!(bvals.len(), bcols.len() * R * C);
    let mut acc = [T::ZERO; R];
    for (k, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let xb = &x[x0..x0 + C];
        let b = &bvals[k * (R * C)..k * (R * C) + R * C];
        for i in 0..R {
            for j in 0..C {
                acc[i] = b[i * C + j].mul_add(xb[j], acc[i]);
            }
        }
    }
    for (yi, a) in yrow.iter_mut().zip(acc) {
        *yi += a;
    }
}

/// Boundary-safe BCSR block-row kernel with runtime shape.
///
/// `yrow` may be shorter than `r` (a clipped final block row) and blocks
/// may extend past the last column of `x` (a clipped final block column);
/// out-of-matrix positions hold padding zeros in `bvals` and are skipped.
/// `bcols` holds absolute start columns, as in [`bcsr_block_row`].
pub fn bcsr_block_row_clipped<T: Scalar>(
    r: usize,
    c: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert!(yrow.len() <= r);
    debug_assert_eq!(bvals.len(), bcols.len() * r * c);
    let n_cols = x.len();
    for (k, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[k * r * c..(k + 1) * r * c];
        let c_valid = c.min(n_cols.saturating_sub(x0));
        for (i, yi) in yrow.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for j in 0..c_valid {
                acc = b[i * c + j].mul_add(x[x0 + j], acc);
            }
            *yi += acc;
        }
    }
}

/// Processes one BCSD segment: all diagonal blocks `k` with the `B`
/// diagonal values in `bvals[k*B .. (k+1)*B]`, accumulating into the `B`
/// outputs of `yseg`.
///
/// `bcols[k]` stores the block's start column **biased by `+B`**
/// (`bcols[k] = j0 + B`). The bias keeps left-edge blocks — whose true
/// start column `j0 = col - row_offset` is negative when an element sits
/// within `B-1` columns of the matrix's left edge — representable in the
/// unsigned index type. This interior kernel requires `bcols[k] >= B`
/// (i.e. `j0 >= 0`); edge blocks go through [`bcsd_segment_clipped`].
#[inline]
pub fn bcsd_segment<T: Scalar, const B: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert_eq!(yseg.len(), B);
    debug_assert_eq!(bvals.len(), bcols.len() * B);
    let mut acc = [T::ZERO; B];
    for (k, &j0) in bcols.iter().enumerate() {
        let v = &bvals[k * B..k * B + B];
        debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
        let j0 = j0 as usize - B;
        let xb = &x[j0..j0 + B];
        for t in 0..B {
            acc[t] = v[t].mul_add(xb[t], acc[t]);
        }
    }
    for (yi, a) in yseg.iter_mut().zip(acc) {
        *yi += a;
    }
}

/// Boundary-safe BCSD segment kernel with runtime block size.
///
/// `yseg` may be shorter than `b` (clipped final segment) and diagonal
/// blocks may be clipped at either edge: `bcols` carries the `+b` bias of
/// [`bcsd_segment`], and positions with a negative true column or a column
/// `>= x.len()` are padding and are skipped.
pub fn bcsd_segment_clipped<T: Scalar>(
    b: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert!(yseg.len() <= b);
    debug_assert_eq!(bvals.len(), bcols.len() * b);
    let n_cols = x.len() as isize;
    for (k, &biased) in bcols.iter().enumerate() {
        let j0 = biased as isize - b as isize;
        let v = &bvals[k * b..(k + 1) * b];
        let t_min = (-j0).max(0) as usize;
        let t_max = yseg.len().min((n_cols - j0).max(0) as usize);
        for t in t_min..t_max {
            yseg[t] = v[t].mul_add(x[(j0 + t as isize) as usize], yseg[t]);
        }
    }
}

/// Dot product of a contiguous value run against the matching slice of the
/// input vector — the inner kernel of the 1D-VBL format.
#[inline]
pub fn dot_run_scalar<T: Scalar>(vals: &[T], x: &[T]) -> T {
    debug_assert_eq!(vals.len(), x.len());
    let mut acc = T::ZERO;
    for (&v, &xj) in vals.iter().zip(x) {
        acc = v.mul_add(xj, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference for one BCSR block row (`bcols` = absolute start
    /// columns).
    fn bcsr_reference(
        r: usize,
        c: usize,
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        yrow: &mut [f64],
    ) {
        for (k, &bc) in bcols.iter().enumerate() {
            for i in 0..yrow.len() {
                for j in 0..c {
                    let col = bc as usize + j;
                    if col < x.len() {
                        yrow[i] += bvals[k * r * c + i * c + j] * x[col];
                    }
                }
            }
        }
    }

    fn test_vectors(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + (i % 11) as f64).collect()
    }

    #[test]
    fn bcsr_2x2_matches_reference() {
        let bvals = test_vectors(2 * 4); // two blocks
        let bcols = [0u32, 4];
        let x = test_vectors(6);
        let mut y = [0.0; 2];
        let mut yref = [0.0; 2];
        bcsr_block_row::<f64, 2, 2>(&bvals, &bcols, &x, &mut y);
        bcsr_reference(2, 2, &bvals, &bcols, &x, &mut yref);
        assert_eq!(y, yref);
    }

    #[test]
    fn all_shapes_match_reference() {
        for shape in crate::BlockShape::search_space() {
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 3;
            let bvals = test_vectors(nb * r * c);
            let bcols: Vec<Index> = vec![0, c as Index, 3 * c as Index];
            let x = test_vectors(4 * c);
            let mut y = vec![0.0; r];
            let mut yref = vec![0.0; r];
            let kern = crate::registry::bcsr_row_kernel::<f64>(
                shape,
                crate::KernelImpl::Scalar,
            );
            kern(&bvals, &bcols, &x, &mut y);
            bcsr_reference(r, c, &bvals, &bcols, &x, &mut yref);
            assert_eq!(y, yref, "shape {shape}");
        }
    }

    #[test]
    fn unaligned_start_columns_work() {
        // Absolute start columns need not be multiples of C.
        let bvals = [1.0, 1.0];
        let bcols = [3u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_block_row::<f64, 1, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[3] + x[4]);
    }

    #[test]
    fn kernels_accumulate_not_overwrite() {
        let bvals = [1.0, 1.0, 1.0, 1.0];
        let bcols = [0u32];
        let x = [1.0, 1.0];
        let mut y = [10.0, 20.0];
        bcsr_block_row::<f64, 2, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y, [12.0, 22.0]);
    }

    #[test]
    fn clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(2 * 6);
        let bcols = [0u32, 1];
        let x = test_vectors(6);
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        bcsr_block_row::<f64, 2, 3>(&bvals, &bcols, &x, &mut y1);
        bcsr_block_row_clipped(2, 3, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn clipped_skips_out_of_matrix_columns() {
        // One 1x4 block starting at column 4 of a 6-column matrix:
        // columns 6 and 7 are padding and must not be read.
        let bvals = [1.0, 1.0, 9.0, 9.0];
        let bcols = [4u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_block_row_clipped(1, 4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[4] + x[5]);
    }

    #[test]
    fn clipped_short_yrow() {
        // 3x1 blocks, but only 2 valid rows remain.
        let bvals = [1.0, 2.0, 9.0];
        let bcols = [0u32];
        let x = [10.0];
        let mut y = [0.0; 2];
        bcsr_block_row_clipped(3, 1, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [10.0, 20.0]);
    }

    /// Biases true start columns by `+b`, as the BCSD kernel contract
    /// requires.
    fn biased(b: usize, cols: &[i64]) -> Vec<Index> {
        cols.iter().map(|&j0| (j0 + b as i64) as Index).collect()
    }

    #[test]
    fn bcsd_matches_manual() {
        // Segment of height 3, two diagonal blocks at columns 0 and 4.
        let bvals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bcols = biased(3, &[0, 4]);
        let x = test_vectors(8);
        let mut y = [0.0; 3];
        bcsd_segment::<f64, 3>(&bvals, &bcols, &x, &mut y);
        assert_eq!(
            y,
            [
                1.0 * x[0] + 4.0 * x[4],
                2.0 * x[1] + 5.0 * x[5],
                3.0 * x[2] + 6.0 * x[6]
            ]
        );
    }

    #[test]
    fn bcsd_clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(8);
        let bcols = biased(4, &[0, 3]);
        let x = test_vectors(8);
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        bcsd_segment::<f64, 4>(&bvals, &bcols, &x, &mut y1);
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn bcsd_clipped_right_boundary() {
        // Block of size 4 starting at column 2 of a 4-column matrix: only
        // t = 0, 1 are inside.
        let bvals = [1.0, 2.0, 9.0, 9.0];
        let bcols = biased(4, &[2]);
        let x = [0.0, 0.0, 5.0, 7.0];
        let mut y = [0.0; 4];
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [5.0, 14.0, 0.0, 0.0]);
    }

    #[test]
    fn bcsd_clipped_left_boundary() {
        // Block of size 3 with true start column -2: only t = 2 (column 0)
        // is inside the matrix.
        let bvals = [9.0, 9.0, 5.0];
        let bcols = biased(3, &[-2]);
        let x = [2.0, 0.0, 0.0];
        let mut y = [0.0; 3];
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 10.0]);
    }

    #[test]
    fn bcsd_clipped_short_segment() {
        let bvals = [1.0, 2.0, 9.0];
        let bcols = biased(3, &[0]);
        let x = test_vectors(3);
        let mut y = [0.0; 2]; // only 2 rows remain in the last segment
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [x[0], 2.0 * x[1]]);
    }

    #[test]
    fn dot_run() {
        let v = [1.0, 2.0, 3.0];
        let x = [4.0, 5.0, 6.0];
        assert_eq!(dot_run_scalar(&v, &x), 32.0);
        assert_eq!(dot_run_scalar::<f64>(&[], &[]), 0.0);
    }
}
