//! Boundary (clipped) block kernels with runtime shape.
//!
//! The interior kernels — fully unrolled per shape — live in
//! [`crate::block`] as instantiations of the const-generic core; this
//! module keeps the **clipped** variants that handle the at-most-one
//! partial block row / block column at the matrix boundary (when the
//! dimensions are not multiples of the block shape). Boundary blocks are
//! rare (O(1) per block row), so these take runtime shape parameters and
//! stay scalar; each flushes its accumulator per block, which is what
//! lets the masked formats delegate here one expanded block at a time
//! without changing the accumulation order.
//!
//! All kernels accumulate (`+=`) into their output slice.

use spmv_core::{Index, Scalar};

/// Boundary-safe BCSR block-row kernel with runtime shape.
///
/// `yrow` may be shorter than `r` (a clipped final block row) and blocks
/// may extend past the last column of `x` (a clipped final block column);
/// out-of-matrix positions hold padding zeros in `bvals` and are skipped.
/// `bcols` holds absolute start columns, as in
/// [`crate::block::bcsr_core`].
pub fn bcsr_block_row_clipped<T: Scalar>(
    r: usize,
    c: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert!(yrow.len() <= r);
    debug_assert_eq!(bvals.len(), bcols.len() * r * c);
    let n_cols = x.len();
    for (k, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[k * r * c..(k + 1) * r * c];
        let c_valid = c.min(n_cols.saturating_sub(x0));
        for (i, yi) in yrow.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for j in 0..c_valid {
                acc = b[i * c + j].mul_add(x[x0 + j], acc);
            }
            *yi += acc;
        }
    }
}

/// Boundary-safe BCSD segment kernel with runtime block size.
///
/// `yseg` may be shorter than `b` (clipped final segment) and diagonal
/// blocks may be clipped at either edge: `bcols` carries the `+b` bias of
/// [`crate::block::bcsd_core`], and positions with a negative true column
/// or a column `>= x.len()` are padding and are skipped.
pub fn bcsd_segment_clipped<T: Scalar>(
    b: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert!(yseg.len() <= b);
    debug_assert_eq!(bvals.len(), bcols.len() * b);
    let n_cols = x.len() as isize;
    for (k, &biased) in bcols.iter().enumerate() {
        let j0 = biased as isize - b as isize;
        let v = &bvals[k * b..(k + 1) * b];
        let t_min = (-j0).max(0) as usize;
        let t_max = yseg.len().min((n_cols - j0).max(0) as usize);
        for t in t_min..t_max {
            yseg[t] = v[t].mul_add(x[(j0 + t as isize) as usize], yseg[t]);
        }
    }
}

/// Boundary-safe multi-vector BCSR block-row kernel with runtime shape and
/// vector count.
///
/// `rows_valid` is the number of in-matrix rows of this block row (may be
/// less than `r` for the clipped final block row); blocks may extend past
/// the last column (`xs` = matrix columns). Mirrors
/// [`bcsr_block_row_clipped`] per output column.
#[allow(clippy::too_many_arguments)]
pub fn bcsr_block_row_multi_clipped<T: Scalar>(
    r: usize,
    c: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert!(rows_valid <= r);
    debug_assert_eq!(bvals.len(), bcols.len() * r * c);
    for (kb, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[kb * r * c..(kb + 1) * r * c];
        let c_valid = c.min(xs.saturating_sub(x0));
        for t in 0..k {
            let xcol = &x[t * xs..(t + 1) * xs];
            for i in 0..rows_valid {
                let mut acc = T::ZERO;
                for j in 0..c_valid {
                    acc = b[i * c + j].mul_add(xcol[x0 + j], acc);
                }
                y[t * ys + y0 + i] += acc;
            }
        }
    }
}

/// Boundary-safe multi-vector BCSD segment kernel with runtime block size
/// and vector count; `rows_valid` rows of the segment are inside the
/// matrix. Mirrors [`bcsd_segment_clipped`] per output column.
#[allow(clippy::too_many_arguments)]
pub fn bcsd_segment_multi_clipped<T: Scalar>(
    b: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert!(rows_valid <= b);
    debug_assert_eq!(bvals.len(), bcols.len() * b);
    let n_cols = xs as isize;
    for (kb, &biased) in bcols.iter().enumerate() {
        let j0 = biased as isize - b as isize;
        let v = &bvals[kb * b..(kb + 1) * b];
        let t_min = (-j0).max(0) as usize;
        let t_max = rows_valid.min((n_cols - j0).max(0) as usize);
        for t in 0..k {
            let xcol = &x[t * xs..(t + 1) * xs];
            for s in t_min..t_max {
                let yi = t * ys + y0 + s;
                y[yi] = v[s].mul_add(xcol[(j0 + s as isize) as usize], y[yi]);
            }
        }
    }
}

/// Dot product of a contiguous value run against the matching slice of the
/// input vector — the inner kernel of the 1D-VBL format. The scalar-engine
/// instantiation of [`crate::block::dot_run_core`].
#[inline]
pub fn dot_run_scalar<T: Scalar>(vals: &[T], x: &[T]) -> T {
    crate::block::dot_run_scalar_core(vals, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block;
    use crate::engine::ScalarEngine;

    fn test_vectors(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + (i % 11) as f64).collect()
    }

    #[test]
    fn clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(2 * 6);
        let bcols = [0u32, 1];
        let x = test_vectors(6);
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        block::bcsr_row::<f64, ScalarEngine, 2, 3>(&bvals, &bcols, &x, &mut y1);
        bcsr_block_row_clipped(2, 3, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn clipped_skips_out_of_matrix_columns() {
        // One 1x4 block starting at column 4 of a 6-column matrix:
        // columns 6 and 7 are padding and must not be read.
        let bvals = [1.0, 1.0, 9.0, 9.0];
        let bcols = [4u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_block_row_clipped(1, 4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[4] + x[5]);
    }

    #[test]
    fn clipped_short_yrow() {
        // 3x1 blocks, but only 2 valid rows remain.
        let bvals = [1.0, 2.0, 9.0];
        let bcols = [0u32];
        let x = [10.0];
        let mut y = [0.0; 2];
        bcsr_block_row_clipped(3, 1, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [10.0, 20.0]);
    }

    /// Biases true start columns by `+b`, as the BCSD kernel contract
    /// requires.
    fn biased(b: usize, cols: &[i64]) -> Vec<Index> {
        cols.iter().map(|&j0| (j0 + b as i64) as Index).collect()
    }

    #[test]
    fn bcsd_clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(8);
        let bcols = biased(4, &[0, 3]);
        let x = test_vectors(8);
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        block::bcsd_seg::<f64, ScalarEngine, 4>(&bvals, &bcols, &x, &mut y1);
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn bcsd_clipped_right_boundary() {
        // Block of size 4 starting at column 2 of a 4-column matrix: only
        // t = 0, 1 are inside.
        let bvals = [1.0, 2.0, 9.0, 9.0];
        let bcols = biased(4, &[2]);
        let x = [0.0, 0.0, 5.0, 7.0];
        let mut y = [0.0; 4];
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [5.0, 14.0, 0.0, 0.0]);
    }

    #[test]
    fn bcsd_clipped_left_boundary() {
        // Block of size 3 with true start column -2: only t = 2 (column 0)
        // is inside the matrix.
        let bvals = [9.0, 9.0, 5.0];
        let bcols = biased(3, &[-2]);
        let x = [2.0, 0.0, 0.0];
        let mut y = [0.0; 3];
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 10.0]);
    }

    #[test]
    fn bcsd_clipped_short_segment() {
        let bvals = [1.0, 2.0, 9.0];
        let bcols = biased(3, &[0]);
        let x = test_vectors(3);
        let mut y = [0.0; 2]; // only 2 rows remain in the last segment
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [x[0], 2.0 * x[1]]);
    }

    #[test]
    fn dot_run() {
        let v = [1.0, 2.0, 3.0];
        let x = [4.0, 5.0, 6.0];
        assert_eq!(dot_run_scalar(&v, &x), 32.0);
        assert_eq!(dot_run_scalar::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn bcsr_multi_clipped_matches_per_column_single() {
        let bvals = test_vectors(2 * 6);
        let bcols = [2u32, 4]; // second block clips at column 6 of 7
        let xs = 7;
        let ys = 3;
        let x: Vec<f64> = test_vectors(2 * xs);
        let mut y = vec![0.0; 2 * ys];
        bcsr_block_row_multi_clipped(2, 3, 2, &bvals, &bcols, &x, xs, &mut y, ys, 1, 2);
        for t in 0..2 {
            let mut yref = [0.0; 2];
            bcsr_block_row_clipped(2, 3, &bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 1..t * ys + 3], &yref, "column {t}");
        }
    }

    #[test]
    fn bcsd_multi_clipped_matches_per_column_single() {
        let bvals = test_vectors(3 * 4);
        let bcols = biased(4, &[-2, 1, 4]); // left-clipped and right-clipped
        let xs = 6;
        let ys = 4;
        let x: Vec<f64> = test_vectors(2 * xs);
        let mut y = vec![0.0; 2 * ys];
        bcsd_segment_multi_clipped(4, 2, &bvals, &bcols, &x, xs, &mut y, ys, 0, 3);
        for t in 0..2 {
            let mut yref = [0.0; 3];
            bcsd_segment_clipped(4, &bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys..t * ys + 3], &yref, "column {t}");
        }
    }
}
