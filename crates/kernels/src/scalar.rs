//! Fully unrolled scalar block kernels.
//!
//! Each fixed block shape gets its own monomorphized kernel through const
//! generics: the shape dimensions are compile-time constants, so the
//! compiler fully unrolls the per-block loops — the Rust equivalent of the
//! paper's per-shape C routines. The [`crate::registry`] module maps a
//! runtime [`crate::BlockShape`] to the matching instantiation.
//!
//! Two kinds of kernels exist per format:
//!
//! * **interior** kernels ([`bcsr_block_row`], [`bcsd_segment`]) assume the
//!   whole block lies inside the matrix and index `x` without per-element
//!   bounds logic;
//! * **clipped** kernels ([`bcsr_block_row_clipped`],
//!   [`bcsd_segment_clipped`]) handle the at-most-one partial block row /
//!   block column at the matrix boundary (when the dimensions are not
//!   multiples of the block shape) with runtime shape parameters.
//!
//! All kernels accumulate (`+=`) into their output slice.

use spmv_core::{Index, Scalar};

/// Processes one BCSR block row: all blocks `k` starting at **absolute**
/// column `bcols[k]`, values `bvals[k*R*C .. (k+1)*R*C]` (row-major),
/// accumulating into the `R` outputs of `yrow`.
///
/// Start columns are absolute (not block-column indices) so that the same
/// kernels serve both aligned BCSR (starts are multiples of `C`) and the
/// unaligned variant used by the alignment ablation.
///
/// # Panics
///
/// Panics (via slice indexing) if a block reads past `x` — callers route
/// boundary blocks to [`bcsr_block_row_clipped`] instead.
#[inline]
pub fn bcsr_block_row<T: Scalar, const R: usize, const C: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert_eq!(yrow.len(), R);
    debug_assert_eq!(bvals.len(), bcols.len() * R * C);
    let mut acc = [T::ZERO; R];
    for (k, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let xb = &x[x0..x0 + C];
        let b = &bvals[k * (R * C)..k * (R * C) + R * C];
        for i in 0..R {
            for j in 0..C {
                acc[i] = b[i * C + j].mul_add(xb[j], acc[i]);
            }
        }
    }
    for (yi, a) in yrow.iter_mut().zip(acc) {
        *yi += a;
    }
}

/// Boundary-safe BCSR block-row kernel with runtime shape.
///
/// `yrow` may be shorter than `r` (a clipped final block row) and blocks
/// may extend past the last column of `x` (a clipped final block column);
/// out-of-matrix positions hold padding zeros in `bvals` and are skipped.
/// `bcols` holds absolute start columns, as in [`bcsr_block_row`].
pub fn bcsr_block_row_clipped<T: Scalar>(
    r: usize,
    c: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert!(yrow.len() <= r);
    debug_assert_eq!(bvals.len(), bcols.len() * r * c);
    let n_cols = x.len();
    for (k, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[k * r * c..(k + 1) * r * c];
        let c_valid = c.min(n_cols.saturating_sub(x0));
        for (i, yi) in yrow.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for j in 0..c_valid {
                acc = b[i * c + j].mul_add(x[x0 + j], acc);
            }
            *yi += acc;
        }
    }
}

/// Processes one BCSD segment: all diagonal blocks `k` with the `B`
/// diagonal values in `bvals[k*B .. (k+1)*B]`, accumulating into the `B`
/// outputs of `yseg`.
///
/// `bcols[k]` stores the block's start column **biased by `+B`**
/// (`bcols[k] = j0 + B`). The bias keeps left-edge blocks — whose true
/// start column `j0 = col - row_offset` is negative when an element sits
/// within `B-1` columns of the matrix's left edge — representable in the
/// unsigned index type. This interior kernel requires `bcols[k] >= B`
/// (i.e. `j0 >= 0`); edge blocks go through [`bcsd_segment_clipped`].
#[inline]
pub fn bcsd_segment<T: Scalar, const B: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert_eq!(yseg.len(), B);
    debug_assert_eq!(bvals.len(), bcols.len() * B);
    let mut acc = [T::ZERO; B];
    for (k, &j0) in bcols.iter().enumerate() {
        let v = &bvals[k * B..k * B + B];
        debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
        let j0 = j0 as usize - B;
        let xb = &x[j0..j0 + B];
        for t in 0..B {
            acc[t] = v[t].mul_add(xb[t], acc[t]);
        }
    }
    for (yi, a) in yseg.iter_mut().zip(acc) {
        *yi += a;
    }
}

/// Boundary-safe BCSD segment kernel with runtime block size.
///
/// `yseg` may be shorter than `b` (clipped final segment) and diagonal
/// blocks may be clipped at either edge: `bcols` carries the `+b` bias of
/// [`bcsd_segment`], and positions with a negative true column or a column
/// `>= x.len()` are padding and are skipped.
pub fn bcsd_segment_clipped<T: Scalar>(
    b: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert!(yseg.len() <= b);
    debug_assert_eq!(bvals.len(), bcols.len() * b);
    let n_cols = x.len() as isize;
    for (k, &biased) in bcols.iter().enumerate() {
        let j0 = biased as isize - b as isize;
        let v = &bvals[k * b..(k + 1) * b];
        let t_min = (-j0).max(0) as usize;
        let t_max = yseg.len().min((n_cols - j0).max(0) as usize);
        for t in t_min..t_max {
            yseg[t] = v[t].mul_add(x[(j0 + t as isize) as usize], yseg[t]);
        }
    }
}

/// Multi-vector BCSR block-row kernel: one block row against `K` input
/// vectors at once.
///
/// `x` holds `K` concatenated input vectors of length `xs` each (column
/// stride `xs`), `y` holds `K` concatenated output vectors of stride `ys`;
/// the block row's first output row is `y0`. The matrix block values are
/// loaded once and reused across all `K` columns, keeping an `R × K`
/// accumulator tile in registers — this is the amortization that makes
/// SpMM cheaper than `K` SpMV calls.
///
/// Per output column the accumulation order is identical to
/// [`bcsr_block_row`], so a `K`-vector call is bitwise-equal to `K`
/// single-vector calls.
#[inline]
pub fn bcsr_block_row_multi<T: Scalar, const R: usize, const C: usize, const K: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bvals.len(), bcols.len() * R * C);
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    let mut acc = [[T::ZERO; K]; R];
    for (kb, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[kb * (R * C)..kb * (R * C) + R * C];
        for t in 0..K {
            let xb = &x[t * xs + x0..t * xs + x0 + C];
            for i in 0..R {
                for j in 0..C {
                    acc[i][t] = b[i * C + j].mul_add(xb[j], acc[i][t]);
                }
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        for (t, &a) in row.iter().enumerate() {
            y[t * ys + y0 + i] += a;
        }
    }
}

/// Boundary-safe multi-vector BCSR block-row kernel with runtime shape and
/// vector count.
///
/// `rows_valid` is the number of in-matrix rows of this block row (may be
/// less than `r` for the clipped final block row); blocks may extend past
/// the last column (`xs` = matrix columns). Mirrors
/// [`bcsr_block_row_clipped`] per output column.
#[allow(clippy::too_many_arguments)]
pub fn bcsr_block_row_multi_clipped<T: Scalar>(
    r: usize,
    c: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert!(rows_valid <= r);
    debug_assert_eq!(bvals.len(), bcols.len() * r * c);
    for (kb, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[kb * r * c..(kb + 1) * r * c];
        let c_valid = c.min(xs.saturating_sub(x0));
        for t in 0..k {
            let xcol = &x[t * xs..(t + 1) * xs];
            for i in 0..rows_valid {
                let mut acc = T::ZERO;
                for j in 0..c_valid {
                    acc = b[i * c + j].mul_add(xcol[x0 + j], acc);
                }
                y[t * ys + y0 + i] += acc;
            }
        }
    }
}

/// Multi-vector BCSD segment kernel: one segment of diagonal blocks
/// against `K` input vectors, with the same stride/offset convention as
/// [`bcsr_block_row_multi`] and the `+B` column bias of [`bcsd_segment`].
///
/// Per output column the accumulation order is identical to
/// [`bcsd_segment`].
#[inline]
pub fn bcsd_segment_multi<T: Scalar, const B: usize, const K: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bvals.len(), bcols.len() * B);
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    let mut acc = [[T::ZERO; K]; B];
    for (kb, &j0) in bcols.iter().enumerate() {
        let v = &bvals[kb * B..kb * B + B];
        debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
        let j0 = j0 as usize - B;
        for t in 0..K {
            let xb = &x[t * xs + j0..t * xs + j0 + B];
            for (s, a) in acc.iter_mut().enumerate() {
                a[t] = v[s].mul_add(xb[s], a[t]);
            }
        }
    }
    for (s, row) in acc.iter().enumerate() {
        for (t, &a) in row.iter().enumerate() {
            y[t * ys + y0 + s] += a;
        }
    }
}

/// Boundary-safe multi-vector BCSD segment kernel with runtime block size
/// and vector count; `rows_valid` rows of the segment are inside the
/// matrix. Mirrors [`bcsd_segment_clipped`] per output column.
#[allow(clippy::too_many_arguments)]
pub fn bcsd_segment_multi_clipped<T: Scalar>(
    b: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert!(rows_valid <= b);
    debug_assert_eq!(bvals.len(), bcols.len() * b);
    let n_cols = xs as isize;
    for (kb, &biased) in bcols.iter().enumerate() {
        let j0 = biased as isize - b as isize;
        let v = &bvals[kb * b..(kb + 1) * b];
        let t_min = (-j0).max(0) as usize;
        let t_max = rows_valid.min((n_cols - j0).max(0) as usize);
        for t in 0..k {
            let xcol = &x[t * xs..(t + 1) * xs];
            for s in t_min..t_max {
                let yi = t * ys + y0 + s;
                y[yi] = v[s].mul_add(xcol[(j0 + s as isize) as usize], y[yi]);
            }
        }
    }
}

/// Dot product of a contiguous value run against the matching slice of the
/// input vector — the inner kernel of the 1D-VBL format.
#[inline]
pub fn dot_run_scalar<T: Scalar>(vals: &[T], x: &[T]) -> T {
    debug_assert_eq!(vals.len(), x.len());
    let mut acc = T::ZERO;
    for (&v, &xj) in vals.iter().zip(x) {
        acc = v.mul_add(xj, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference for one BCSR block row (`bcols` = absolute start
    /// columns).
    fn bcsr_reference(
        r: usize,
        c: usize,
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        yrow: &mut [f64],
    ) {
        for (k, &bc) in bcols.iter().enumerate() {
            for i in 0..yrow.len() {
                for j in 0..c {
                    let col = bc as usize + j;
                    if col < x.len() {
                        yrow[i] += bvals[k * r * c + i * c + j] * x[col];
                    }
                }
            }
        }
    }

    fn test_vectors(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + (i % 11) as f64).collect()
    }

    #[test]
    fn bcsr_2x2_matches_reference() {
        let bvals = test_vectors(2 * 4); // two blocks
        let bcols = [0u32, 4];
        let x = test_vectors(6);
        let mut y = [0.0; 2];
        let mut yref = [0.0; 2];
        bcsr_block_row::<f64, 2, 2>(&bvals, &bcols, &x, &mut y);
        bcsr_reference(2, 2, &bvals, &bcols, &x, &mut yref);
        assert_eq!(y, yref);
    }

    #[test]
    fn all_shapes_match_reference() {
        for shape in crate::BlockShape::search_space() {
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 3;
            let bvals = test_vectors(nb * r * c);
            let bcols: Vec<Index> = vec![0, c as Index, 3 * c as Index];
            let x = test_vectors(4 * c);
            let mut y = vec![0.0; r];
            let mut yref = vec![0.0; r];
            let kern = crate::registry::bcsr_row_kernel::<f64>(
                shape,
                crate::KernelImpl::Scalar,
            );
            kern(&bvals, &bcols, &x, &mut y);
            bcsr_reference(r, c, &bvals, &bcols, &x, &mut yref);
            assert_eq!(y, yref, "shape {shape}");
        }
    }

    #[test]
    fn unaligned_start_columns_work() {
        // Absolute start columns need not be multiples of C.
        let bvals = [1.0, 1.0];
        let bcols = [3u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_block_row::<f64, 1, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[3] + x[4]);
    }

    #[test]
    fn kernels_accumulate_not_overwrite() {
        let bvals = [1.0, 1.0, 1.0, 1.0];
        let bcols = [0u32];
        let x = [1.0, 1.0];
        let mut y = [10.0, 20.0];
        bcsr_block_row::<f64, 2, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y, [12.0, 22.0]);
    }

    #[test]
    fn clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(2 * 6);
        let bcols = [0u32, 1];
        let x = test_vectors(6);
        let mut y1 = [0.0; 2];
        let mut y2 = [0.0; 2];
        bcsr_block_row::<f64, 2, 3>(&bvals, &bcols, &x, &mut y1);
        bcsr_block_row_clipped(2, 3, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn clipped_skips_out_of_matrix_columns() {
        // One 1x4 block starting at column 4 of a 6-column matrix:
        // columns 6 and 7 are padding and must not be read.
        let bvals = [1.0, 1.0, 9.0, 9.0];
        let bcols = [4u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_block_row_clipped(1, 4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[4] + x[5]);
    }

    #[test]
    fn clipped_short_yrow() {
        // 3x1 blocks, but only 2 valid rows remain.
        let bvals = [1.0, 2.0, 9.0];
        let bcols = [0u32];
        let x = [10.0];
        let mut y = [0.0; 2];
        bcsr_block_row_clipped(3, 1, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [10.0, 20.0]);
    }

    /// Biases true start columns by `+b`, as the BCSD kernel contract
    /// requires.
    fn biased(b: usize, cols: &[i64]) -> Vec<Index> {
        cols.iter().map(|&j0| (j0 + b as i64) as Index).collect()
    }

    #[test]
    fn bcsd_matches_manual() {
        // Segment of height 3, two diagonal blocks at columns 0 and 4.
        let bvals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bcols = biased(3, &[0, 4]);
        let x = test_vectors(8);
        let mut y = [0.0; 3];
        bcsd_segment::<f64, 3>(&bvals, &bcols, &x, &mut y);
        assert_eq!(
            y,
            [
                1.0 * x[0] + 4.0 * x[4],
                2.0 * x[1] + 5.0 * x[5],
                3.0 * x[2] + 6.0 * x[6]
            ]
        );
    }

    #[test]
    fn bcsd_clipped_matches_interior_when_nothing_clips() {
        let bvals = test_vectors(8);
        let bcols = biased(4, &[0, 3]);
        let x = test_vectors(8);
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        bcsd_segment::<f64, 4>(&bvals, &bcols, &x, &mut y1);
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn bcsd_clipped_right_boundary() {
        // Block of size 4 starting at column 2 of a 4-column matrix: only
        // t = 0, 1 are inside.
        let bvals = [1.0, 2.0, 9.0, 9.0];
        let bcols = biased(4, &[2]);
        let x = [0.0, 0.0, 5.0, 7.0];
        let mut y = [0.0; 4];
        bcsd_segment_clipped(4, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [5.0, 14.0, 0.0, 0.0]);
    }

    #[test]
    fn bcsd_clipped_left_boundary() {
        // Block of size 3 with true start column -2: only t = 2 (column 0)
        // is inside the matrix.
        let bvals = [9.0, 9.0, 5.0];
        let bcols = biased(3, &[-2]);
        let x = [2.0, 0.0, 0.0];
        let mut y = [0.0; 3];
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 10.0]);
    }

    #[test]
    fn bcsd_clipped_short_segment() {
        let bvals = [1.0, 2.0, 9.0];
        let bcols = biased(3, &[0]);
        let x = test_vectors(3);
        let mut y = [0.0; 2]; // only 2 rows remain in the last segment
        bcsd_segment_clipped(3, &bvals, &bcols, &x, &mut y);
        assert_eq!(y, [x[0], 2.0 * x[1]]);
    }

    #[test]
    fn dot_run() {
        let v = [1.0, 2.0, 3.0];
        let x = [4.0, 5.0, 6.0];
        assert_eq!(dot_run_scalar(&v, &x), 32.0);
        assert_eq!(dot_run_scalar::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn bcsr_multi_matches_per_column_single() {
        let bvals = test_vectors(3 * 6); // three 2x3 blocks
        let bcols = [0u32, 3, 6];
        let xs = 12; // columns
        let ys = 5; // rows
        let x: Vec<f64> = test_vectors(4 * xs);
        let mut y = vec![0.0; 4 * ys];
        bcsr_block_row_multi::<f64, 2, 3, 4>(&bvals, &bcols, &x, xs, &mut y, ys, 2);
        for t in 0..4 {
            let mut yref = [0.0; 2];
            bcsr_block_row::<f64, 2, 3>(&bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 2..t * ys + 4], &yref, "column {t}");
            assert_eq!(y[t * ys], 0.0, "rows outside the block row stay untouched");
        }
    }

    #[test]
    fn bcsr_multi_clipped_matches_per_column_single() {
        let bvals = test_vectors(2 * 6);
        let bcols = [2u32, 4]; // second block clips at column 6 of 7
        let xs = 7;
        let ys = 3;
        let x: Vec<f64> = test_vectors(2 * xs);
        let mut y = vec![0.0; 2 * ys];
        bcsr_block_row_multi_clipped(2, 3, 2, &bvals, &bcols, &x, xs, &mut y, ys, 1, 2);
        for t in 0..2 {
            let mut yref = [0.0; 2];
            bcsr_block_row_clipped(2, 3, &bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 1..t * ys + 3], &yref, "column {t}");
        }
    }

    #[test]
    fn bcsd_multi_matches_per_column_single() {
        let bvals = test_vectors(2 * 3); // two size-3 diagonal blocks
        let bcols = biased(3, &[0, 4]);
        let xs = 8;
        let ys = 6;
        let x: Vec<f64> = test_vectors(4 * xs);
        let mut y = vec![0.0; 4 * ys];
        bcsd_segment_multi::<f64, 3, 4>(&bvals, &bcols, &x, xs, &mut y, ys, 1);
        for t in 0..4 {
            let mut yref = [0.0; 3];
            bcsd_segment::<f64, 3>(&bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 1..t * ys + 4], &yref, "column {t}");
        }
    }

    #[test]
    fn bcsd_multi_clipped_matches_per_column_single() {
        let bvals = test_vectors(3 * 4);
        let bcols = biased(4, &[-2, 1, 4]); // left-clipped and right-clipped
        let xs = 6;
        let ys = 4;
        let x: Vec<f64> = test_vectors(2 * xs);
        let mut y = vec![0.0; 2 * ys];
        bcsd_segment_multi_clipped(4, 2, &bvals, &bcols, &x, xs, &mut y, ys, 0, 3);
        for t in 0..2 {
            let mut yref = [0.0; 3];
            bcsd_segment_clipped(4, &bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys..t * ys + 3], &yref, "column {t}");
        }
    }
}
