//! SELL-C-σ slice kernels.
//!
//! SELL-C-σ (Kreutzer et al., arXiv:1307.6209) stores the matrix as
//! slices of `C` consecutive (sorted) rows, each padded to the slice's
//! widest row and laid out column-major within the slice: entry
//! `(j, lane)` of a slice lives at `j * C + lane`, so one vector load
//! fetches the `j`-th element of `C` adjacent rows at once. The kernels
//! here process one slice: `C` independent row accumulators advance in
//! lockstep down the slice columns — the [`crate::block::dot_run_core`]
//! shape transposed across `C` lanes.
//!
//! **Bitwise contract.** Every lane's accumulation is a self-contained
//! fused `a.mul_add(x[col], acc)` chain from `T::ZERO` in increasing
//! column order — exactly the CSR row chain — and padded slots are
//! skipped by a per-lane length guard rather than multiplied as zeros
//! (accumulating a padded `+0.0` product could flip a `-0.0` sum). The
//! [`LaneEngine`] only changes *how the value stream is loaded* (one
//! vector load per lane group vs. scalar loads) and never the per-lane
//! arithmetic, so scalar and SIMD kernels — and therefore SELL-C-σ and
//! CSR — produce bitwise-identical results.

use crate::engine::{LaneEngine, ScalarEngine};
use crate::simd::SimdScalar;
use spmv_core::{Index, Scalar};

/// Slice heights with dedicated kernel specializations, matched to the
/// engine lane widths (2 = SSE f64, 4 = SSE f32, 8 = two f32 vectors).
pub const SELL_HEIGHTS: [usize; 3] = [2, 4, 8];

/// A kernel processing one SELL slice for a single input vector:
/// `kernel(vals, cols, lens, x, yslice)` **assigns** the `C` per-lane
/// accumulator chains into `yslice[0..C]` (callers own the scatter
/// through the row permutation). `vals`/`cols` hold the slice's
/// column-major storage (`width * C` entries), `lens` the true row
/// length of each lane.
pub type SellSliceKernel<T> = fn(&[T], &[Index], &[Index], &[T], &mut [T]);

/// A kernel processing one SELL slice against several input vectors:
/// `kernel(vals, cols, lens, x, xstride, yslice)` assigns the chains for
/// vector `t` into `yslice[t * C..(t + 1) * C]`; `x` holds `K`
/// concatenated vectors of stride `xstride`.
pub type SellSliceMultiKernel<T> = fn(&[T], &[Index], &[Index], &[T], usize, &mut [T]);

/// The generic SELL slice core: `C` lanes (rows) × `K` vectors.
///
/// Walks the slice column-major (`j` outer, lane inner). Lane groups of
/// `E::LANES` share one vector load of the value stream; lanes past the
/// last full group (`C < E::LANES`) load scalar. Both paths feed the
/// identical per-lane fused chain, so the engine choice never alters
/// the result.
pub fn sell_slice_core<T: Scalar, E: LaneEngine<T>, const C: usize, const K: usize>(
    vals: &[T],
    cols: &[Index],
    lens: &[Index],
    x: &[T],
    xstride: usize,
    yslice: &mut [T],
) {
    debug_assert!(vals.len().is_multiple_of(C));
    debug_assert_eq!(cols.len(), vals.len());
    debug_assert_eq!(lens.len(), C);
    debug_assert_eq!(yslice.len(), C * K);
    let width = vals.len() / C;
    let mut acc = [[T::ZERO; K]; C];
    for j in 0..width {
        let base = j * C;
        let mut l = 0;
        while l + E::LANES <= C {
            // One vector load covers E::LANES adjacent lanes of column j.
            let v = unsafe { E::load(vals.as_ptr().add(base + l)) };
            for q in 0..E::LANES {
                let lane = l + q;
                if j < lens[lane] as usize {
                    let a = E::lane(v, q);
                    let col = cols[base + lane] as usize;
                    for t in 0..K {
                        acc[lane][t] = a.mul_add(x[t * xstride + col], acc[lane][t]);
                    }
                }
            }
            l += E::LANES;
        }
        // Lanes beyond the last full vector group (C < E::LANES).
        while l < C {
            if j < lens[l] as usize {
                let a = vals[base + l];
                let col = cols[base + l] as usize;
                for t in 0..K {
                    acc[l][t] = a.mul_add(x[t * xstride + col], acc[l][t]);
                }
            }
            l += 1;
        }
    }
    for (lane, a) in acc.iter().enumerate() {
        for (t, &v) in a.iter().enumerate() {
            yslice[t * C + lane] = v;
        }
    }
}

/// Single-vector wrapper over [`sell_slice_core`] with `K = 1`.
fn sell_slice<T: Scalar, E: LaneEngine<T>, const C: usize>(
    vals: &[T],
    cols: &[Index],
    lens: &[Index],
    x: &[T],
    yslice: &mut [T],
) {
    sell_slice_core::<T, E, C, 1>(vals, cols, lens, x, 0, yslice);
}

macro_rules! dispatch_c {
    ($c:expr, $apply:ident) => {
        match $c {
            2 => $apply!(2),
            4 => $apply!(4),
            8 => $apply!(8),
            _ => None,
        }
    };
}

fn sell_slice_kernel_engine<T: Scalar, E: LaneEngine<T>>(c: usize) -> Option<SellSliceKernel<T>> {
    macro_rules! apply {
        ($c:literal) => {
            Some(sell_slice::<T, E, $c> as SellSliceKernel<T>)
        };
    }
    dispatch_c!(c, apply)
}

fn sell_slice_multi_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    c: usize,
    k: usize,
) -> Option<SellSliceMultiKernel<T>> {
    macro_rules! apply {
        ($c:literal) => {
            match k {
                1 => Some(sell_slice_core::<T, E, $c, 1> as SellSliceMultiKernel<T>),
                2 => Some(sell_slice_core::<T, E, $c, 2> as SellSliceMultiKernel<T>),
                4 => Some(sell_slice_core::<T, E, $c, 4> as SellSliceMultiKernel<T>),
                8 => Some(sell_slice_core::<T, E, $c, 8> as SellSliceMultiKernel<T>),
                _ => None,
            }
        };
    }
    dispatch_c!(c, apply)
}

/// SELL slice kernel for `(c, imp)`, with the same transparent
/// SIMD→scalar fallback as the block-kernel getters.
///
/// # Panics
///
/// Panics if `c` is not one of [`SELL_HEIGHTS`].
pub fn sell_slice_kernel<T: SimdScalar>(
    c: usize,
    imp: crate::shapes::KernelImpl,
) -> SellSliceKernel<T> {
    match imp {
        crate::shapes::KernelImpl::Scalar => sell_slice_kernel_engine::<T, ScalarEngine>(c),
        crate::shapes::KernelImpl::Simd => sell_slice_kernel_engine::<T, T::Engine>(c),
    }
    .unwrap_or_else(|| panic!("unsupported SELL slice height {c}"))
}

/// Multi-vector SELL slice kernel for `(c, k, imp)`; `None` when `k` is
/// not a specialized count (callers chunk greedily, as with the block
/// kernels).
pub fn sell_slice_multi_kernel<T: SimdScalar>(
    c: usize,
    k: usize,
    imp: crate::shapes::KernelImpl,
) -> Option<SellSliceMultiKernel<T>> {
    match imp {
        crate::shapes::KernelImpl::Scalar => sell_slice_multi_kernel_engine::<T, ScalarEngine>(c, k),
        crate::shapes::KernelImpl::Simd => sell_slice_multi_kernel_engine::<T, T::Engine>(c, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::KernelImpl;

    /// The CSR reference chain for one lane: fused mul_add in column
    /// order from zero, padded slots untouched.
    fn reference_lane(vals: &[f64], cols: &[Index], len: usize, c: usize, lane: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0f64;
        for j in 0..len {
            acc = vals[j * c + lane].mul_add(x[cols[j * c + lane] as usize] as f64, acc);
        }
        acc
    }

    #[test]
    fn every_height_dispatches_and_matches_reference() {
        // width-3 slice: lane lengths 3, 1, 0, 2, ... per height.
        let x: Vec<f64> = (0..10).map(|i| 0.5 + i as f64).collect();
        for c in SELL_HEIGHTS {
            let width = 3usize;
            let mut vals = vec![0.0f64; width * c];
            let mut cols = vec![0 as Index; width * c];
            let lens: Vec<Index> = (0..c).map(|l| ((3 + l) % (width + 1)) as Index).collect();
            for lane in 0..c {
                for j in 0..lens[lane] as usize {
                    vals[j * c + lane] = 1.0 + (lane * width + j) as f64;
                    cols[j * c + lane] = ((lane + 3 * j) % 10) as Index;
                }
            }
            for imp in KernelImpl::ALL {
                let kern = sell_slice_kernel::<f64>(c, imp);
                let mut y = vec![f64::NAN; c];
                kern(&vals, &cols, &lens, &x, &mut y);
                for lane in 0..c {
                    let want = reference_lane(&vals, &cols, lens[lane] as usize, c, lane, &x);
                    assert_eq!(y[lane].to_bits(), want.to_bits(), "c={c} lane={lane} {imp}");
                }
            }
        }
    }

    #[test]
    fn scalar_and_simd_agree_bitwise_f32() {
        let x: Vec<f32> = (0..16).map(|i| 0.25 + (i as f32) * 0.75).collect();
        for c in SELL_HEIGHTS {
            let width = 5usize;
            let mut vals = vec![0.0f32; width * c];
            let mut cols = vec![0 as Index; width * c];
            let lens: Vec<Index> = (0..c).map(|l| ((l * 3 + 1) % (width + 1)) as Index).collect();
            for lane in 0..c {
                for j in 0..lens[lane] as usize {
                    vals[j * c + lane] = 0.1 + (lane + j) as f32;
                    cols[j * c + lane] = ((lane * 7 + j * 3) % 16) as Index;
                }
            }
            let mut ys = vec![0.0f32; c];
            let mut yv = vec![0.0f32; c];
            sell_slice_kernel::<f32>(c, KernelImpl::Scalar)(&vals, &cols, &lens, &x, &mut ys);
            sell_slice_kernel::<f32>(c, KernelImpl::Simd)(&vals, &cols, &lens, &x, &mut yv);
            assert_eq!(
                ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                yv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "c={c}"
            );
        }
    }

    #[test]
    fn multi_kernel_matches_repeated_single_calls() {
        let c = 4usize;
        let width = 4usize;
        let m = 12usize;
        let mut vals = vec![0.0f64; width * c];
        let mut cols = vec![0 as Index; width * c];
        let lens: Vec<Index> = vec![4, 2, 0, 3];
        for lane in 0..c {
            for j in 0..lens[lane] as usize {
                vals[j * c + lane] = (1 + lane * 5 + j) as f64 * 0.5;
                cols[j * c + lane] = ((lane + j * 2) % m) as Index;
            }
        }
        for k in crate::MULTI_KS {
            let x: Vec<f64> = (0..m * k).map(|i| 0.125 * (i as f64 + 1.0)).collect();
            for imp in KernelImpl::ALL {
                let multi = sell_slice_multi_kernel::<f64>(c, k, imp).unwrap();
                let single = sell_slice_kernel::<f64>(c, imp);
                let mut ym = vec![0.0f64; c * k];
                multi(&vals, &cols, &lens, &x, m, &mut ym);
                for t in 0..k {
                    let mut y1 = vec![0.0f64; c];
                    single(&vals, &cols, &lens, &x[t * m..(t + 1) * m], &mut y1);
                    assert_eq!(
                        ym[t * c..(t + 1) * c]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "k={k} t={t} {imp}"
                    );
                }
            }
            assert!(sell_slice_multi_kernel::<f64>(c, 3, KernelImpl::Scalar).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "unsupported SELL slice height")]
    fn unsupported_height_panics() {
        let _ = sell_slice_kernel::<f64>(3, KernelImpl::Scalar);
    }
}
