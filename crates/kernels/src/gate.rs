//! The kernel-refactor equivalence gate.
//!
//! Lane-exact **simulators** of the original hand-written kernels
//! (scalar fused-`mul_add` loops; SSE2 2-/4-lane plain multiply-add
//! with the historical horizontal-sum orders) are compared bitwise
//! against whatever [`crate::registry`] dispatches, over a 200-seed
//! random corpus covering every shape, BCSD size, implementation,
//! precision, and specialized vector count.
//!
//! Each simulator models IEEE lane arithmetic exactly — an SSE2 vector
//! op is just an independent IEEE op per lane — so these tests pin the
//! dispatched kernels to the deleted originals' accumulation order
//! bitwise. The gate was run against the *old* registry before the
//! const-generic core replaced it (proving `sim == old`), and runs
//! against the new registry ever since (proving `new == sim`, hence
//! `new == old`).

use crate::registry::{
    bcsd_seg_kernel, bcsd_seg_multi_kernel, bcsr_row_kernel, bcsr_row_multi_kernel, dot_run,
};
use crate::shapes::{BlockShape, KernelImpl};
use crate::simd::SimdScalar;
use crate::MULTI_KS;
use spmv_core::{Index, Scalar};

const SEEDS: u64 = 200;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rand_vals<T: Scalar>(rng: &mut u64, n: usize) -> Vec<T> {
    (0..n)
        .map(|_| T::from_f64((splitmix(rng) >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0))
        .collect()
}

/// Lane count the dispatched kernel uses for `(T, imp)` on this target.
fn lanes_for<T: Scalar>(imp: KernelImpl) -> usize {
    match imp {
        KernelImpl::Scalar => 1,
        KernelImpl::Simd => {
            if cfg!(target_arch = "x86_64") {
                16 / T::BYTES
            } else {
                1 // SIMD falls back to the scalar kernels off x86-64.
            }
        }
    }
}

/// `acc + a * x` in the engine style implied by the lane count: fused
/// `mul_add` for the 1-lane (scalar) engine, separate multiply-then-add
/// for the SSE engines.
fn mul_acc<T: Scalar>(lanes: usize, acc: T, a: T, x: T) -> T {
    if lanes == 1 {
        a.mul_add(x, acc)
    } else {
        acc + a * x
    }
}

/// Horizontal sum in each engine's historical reduction order.
fn hsum<T: Scalar>(acc: &[T]) -> T {
    match acc.len() {
        1 => acc[0],
        2 => acc[0] + acc[1],                         // cvtsd + unpackhi
        4 => (acc[0] + acc[2]) + (acc[1] + acc[3]),   // movehl/shuffle
        n => panic!("no engine has {n} lanes"),
    }
}

/// Simulates the BCSR block-row kernel (any `k`) at `lanes` lanes.
#[allow(clippy::too_many_arguments)]
fn sim_bcsr<T: Scalar>(
    lanes: usize,
    r: usize,
    c: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    let mut accv = vec![vec![vec![T::ZERO; lanes]; k]; r];
    let mut accs = vec![vec![T::ZERO; k]; r];
    for (kb, &bc) in bcols.iter().enumerate() {
        let x0 = bc as usize;
        let b = &bvals[kb * r * c..(kb + 1) * r * c];
        for i in 0..r {
            let row = &b[i * c..i * c + c];
            let mut j = 0;
            while j + lanes <= c {
                for t in 0..k {
                    for l in 0..lanes {
                        accv[i][t][l] =
                            mul_acc(lanes, accv[i][t][l], row[j + l], x[t * xs + x0 + j + l]);
                    }
                }
                j += lanes;
            }
            while j < c {
                for t in 0..k {
                    accs[i][t] = mul_acc(lanes, accs[i][t], row[j], x[t * xs + x0 + j]);
                }
                j += 1;
            }
        }
    }
    for i in 0..r {
        for t in 0..k {
            let v = hsum(&accv[i][t]);
            // The 1-lane engine's tail loop is unreachable; it adds no
            // explicit zero (which could flip a -0.0 sum).
            y[t * ys + y0 + i] += if lanes == 1 { v } else { v + accs[i][t] };
        }
    }
}

/// Simulates the BCSD segment kernel (any `k`) at `lanes` lanes.
#[allow(clippy::too_many_arguments)]
fn sim_bcsd<T: Scalar>(
    lanes: usize,
    b: usize,
    k: usize,
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    let groups = b / lanes;
    let tail = b % lanes;
    let mut accv = vec![vec![vec![T::ZERO; lanes]; k]; groups];
    let mut acct = vec![vec![T::ZERO; k]; tail];
    for (kb, &biased) in bcols.iter().enumerate() {
        let v = &bvals[kb * b..(kb + 1) * b];
        let j0 = biased as usize - b;
        for (q, acc) in accv.iter_mut().enumerate() {
            for (t, at) in acc.iter_mut().enumerate() {
                for (l, a) in at.iter_mut().enumerate() {
                    let p = q * lanes + l;
                    *a = mul_acc(lanes, *a, v[p], x[t * xs + j0 + p]);
                }
            }
        }
        for (s, at) in acct.iter_mut().enumerate() {
            let p = groups * lanes + s;
            for (t, a) in at.iter_mut().enumerate() {
                *a = mul_acc(lanes, *a, v[p], x[t * xs + j0 + p]);
            }
        }
    }
    for (q, acc) in accv.iter().enumerate() {
        for (t, at) in acc.iter().enumerate() {
            for (l, &a) in at.iter().enumerate() {
                y[t * ys + y0 + q * lanes + l] += a;
            }
        }
    }
    for (s, at) in acct.iter().enumerate() {
        for (t, &a) in at.iter().enumerate() {
            y[t * ys + y0 + groups * lanes + s] += a;
        }
    }
}

/// Simulates the 1D-VBL dot-run kernel at `lanes` lanes: horizontal sum
/// first, then the tail folds sequentially into the sum.
fn sim_dot<T: Scalar>(lanes: usize, vals: &[T], x: &[T]) -> T {
    let n = vals.len();
    let mut acc = vec![T::ZERO; lanes];
    let mut j = 0;
    while j + lanes <= n {
        for (l, a) in acc.iter_mut().enumerate() {
            *a = mul_acc(lanes, *a, vals[j + l], x[j + l]);
        }
        j += lanes;
    }
    let mut sum = hsum(&acc);
    while j < n {
        sum = mul_acc(lanes, sum, vals[j], x[j]);
        j += 1;
    }
    sum
}

fn assert_bits<T: Scalar>(got: &[T], want: &[T], ctx: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_f64().to_bits(),
            w.to_f64().to_bits(),
            "{ctx}[{i}]: {g:?} vs {w:?}"
        );
    }
}

/// Every dispatchable shape: the 19-shape search space plus the
/// degenerate 1x1 unit kernel (used for CSR profiling).
fn all_shapes() -> Vec<BlockShape> {
    let mut shapes = vec![BlockShape::UNIT];
    shapes.extend(BlockShape::search_space());
    shapes
}

fn gate_bcsr<T: SimdScalar>(imp: KernelImpl) {
    let lanes = lanes_for::<T>(imp);
    for seed in 0..SEEDS {
        let mut rng = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF;
        for shape in all_shapes() {
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 1 + (splitmix(&mut rng) % 4) as usize;
            let n_cols = c * 6;
            let bvals = rand_vals::<T>(&mut rng, nb * r * c);
            let bcols: Vec<Index> = (0..nb)
                .map(|_| (splitmix(&mut rng) as usize % (n_cols - c + 1)) as Index)
                .collect();

            // Single-vector kernel.
            let x = rand_vals::<T>(&mut rng, n_cols);
            let yinit = rand_vals::<T>(&mut rng, r);
            let mut y = yinit.clone();
            let mut ysim = yinit;
            bcsr_row_kernel::<T>(shape, imp)(&bvals, &bcols, &x, &mut y);
            sim_bcsr(lanes, r, c, 1, &bvals, &bcols, &x, 0, &mut ysim, 0, 0);
            assert_bits(&y, &ysim, &format!("bcsr {shape} {imp:?} seed {seed}"));

            // Multi-vector kernels.
            for k in MULTI_KS {
                let (xs, ys_stride, y0) = (n_cols, r + 2, 1);
                let x = rand_vals::<T>(&mut rng, k * xs);
                let yinit = rand_vals::<T>(&mut rng, k * ys_stride);
                let mut y = yinit.clone();
                let mut ysim = yinit;
                let kern = bcsr_row_multi_kernel::<T>(shape, k, imp).unwrap();
                kern(&bvals, &bcols, &x, xs, &mut y, ys_stride, y0);
                sim_bcsr(lanes, r, c, k, &bvals, &bcols, &x, xs, &mut ysim, ys_stride, y0);
                assert_bits(&y, &ysim, &format!("bcsr {shape} {imp:?} k={k} seed {seed}"));
            }
        }
    }
}

fn gate_bcsd<T: SimdScalar>(imp: KernelImpl) {
    let lanes = lanes_for::<T>(imp);
    for seed in 0..SEEDS {
        let mut rng = seed.wrapping_mul(0x9E6C_63D0_876A_3F35) ^ 0x0BAD_F00D;
        for b in 1..=8usize {
            let nb = 1 + (splitmix(&mut rng) % 4) as usize;
            let n_cols = b + 10;
            let bvals = rand_vals::<T>(&mut rng, nb * b);
            // Interior blocks only: biased start >= b (true j0 >= 0).
            let bcols: Vec<Index> = (0..nb)
                .map(|_| (b + splitmix(&mut rng) as usize % (n_cols - b + 1)) as Index)
                .collect();

            let x = rand_vals::<T>(&mut rng, n_cols);
            let yinit = rand_vals::<T>(&mut rng, b);
            let mut y = yinit.clone();
            let mut ysim = yinit;
            bcsd_seg_kernel::<T>(b, imp)(&bvals, &bcols, &x, &mut y);
            sim_bcsd(lanes, b, 1, &bvals, &bcols, &x, 0, &mut ysim, 0, 0);
            assert_bits(&y, &ysim, &format!("bcsd b={b} {imp:?} seed {seed}"));

            for k in MULTI_KS {
                let (xs, ys_stride, y0) = (n_cols, b + 2, 1);
                let x = rand_vals::<T>(&mut rng, k * xs);
                let yinit = rand_vals::<T>(&mut rng, k * ys_stride);
                let mut y = yinit.clone();
                let mut ysim = yinit;
                let kern = bcsd_seg_multi_kernel::<T>(b, k, imp).unwrap();
                kern(&bvals, &bcols, &x, xs, &mut y, ys_stride, y0);
                sim_bcsd(lanes, b, k, &bvals, &bcols, &x, xs, &mut ysim, ys_stride, y0);
                assert_bits(&y, &ysim, &format!("bcsd b={b} {imp:?} k={k} seed {seed}"));
            }
        }
    }
}

fn gate_dot<T: SimdScalar>(imp: KernelImpl) {
    let lanes = lanes_for::<T>(imp);
    for seed in 0..SEEDS {
        let mut rng = seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ 0xFEED_FACE;
        for n in 0..17 {
            let vals = rand_vals::<T>(&mut rng, n);
            let x = rand_vals::<T>(&mut rng, n);
            let got = dot_run(&vals, &x, imp);
            let want = sim_dot(lanes, &vals, &x);
            assert_eq!(
                got.to_f64().to_bits(),
                want.to_f64().to_bits(),
                "dot n={n} {imp:?} seed {seed}: {got:?} vs {want:?}"
            );
        }
    }
}

#[test]
fn bcsr_matches_legacy_bitwise_f64() {
    gate_bcsr::<f64>(KernelImpl::Scalar);
    gate_bcsr::<f64>(KernelImpl::Simd);
}

#[test]
fn bcsr_matches_legacy_bitwise_f32() {
    gate_bcsr::<f32>(KernelImpl::Scalar);
    gate_bcsr::<f32>(KernelImpl::Simd);
}

#[test]
fn bcsd_matches_legacy_bitwise_f64() {
    gate_bcsd::<f64>(KernelImpl::Scalar);
    gate_bcsd::<f64>(KernelImpl::Simd);
}

#[test]
fn bcsd_matches_legacy_bitwise_f32() {
    gate_bcsd::<f32>(KernelImpl::Scalar);
    gate_bcsd::<f32>(KernelImpl::Simd);
}

#[test]
fn dot_run_matches_legacy_bitwise() {
    gate_dot::<f64>(KernelImpl::Scalar);
    gate_dot::<f64>(KernelImpl::Simd);
    gate_dot::<f32>(KernelImpl::Scalar);
    gate_dot::<f32>(KernelImpl::Simd);
}
