//! The fixed-size block search space and kernel-implementation labels.

use core::fmt;
use core::str::FromStr;
use spmv_core::{Error, Result};

/// Maximum number of elements in a fixed-size block.
///
/// "We used blocks with up to eight elements … since preliminary
/// experiments showed that \[larger\] blocks cannot offer any speedup over
/// standard CSR" (§V-A).
pub const MAX_BLOCK_ELEMS: usize = 8;

/// BCSD diagonal block sizes explored by the search (b = 1 is degenerate
/// CSR-like storage and is excluded, matching the BCSR treatment of 1×1).
pub const BCSD_SIZES: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];

/// A two-dimensional block shape `r x c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockShape {
    /// Block rows.
    pub r: u8,
    /// Block columns.
    pub c: u8,
}

impl BlockShape {
    /// Creates a shape, validating it against the supported search space.
    pub fn new(r: usize, c: usize) -> Result<Self> {
        if r == 0 || c == 0 || r * c > MAX_BLOCK_ELEMS || r > 8 || c > 8 {
            return Err(Error::UnsupportedShape { r, c });
        }
        Ok(BlockShape {
            r: r as u8,
            c: c as u8,
        })
    }

    /// Block rows as `usize`.
    #[inline]
    pub fn rows(self) -> usize {
        self.r as usize
    }

    /// Block columns as `usize`.
    #[inline]
    pub fn cols(self) -> usize {
        self.c as usize
    }

    /// Number of elements per block, `r * c`.
    #[inline]
    pub fn elems(self) -> usize {
        self.rows() * self.cols()
    }

    /// Whether this is the degenerate 1×1 shape the models use for CSR.
    #[inline]
    pub fn is_unit(self) -> bool {
        self.r == 1 && self.c == 1
    }

    /// The 1×1 shape (CSR "treated as a degenerate blocking method", §IV).
    pub const UNIT: BlockShape = BlockShape { r: 1, c: 1 };

    /// The paper's BCSR search space: every shape with `r * c <= 8`
    /// except 1×1 — 19 shapes, ordered by element count then rows.
    pub fn search_space() -> Vec<BlockShape> {
        let mut out = Vec::new();
        for r in 1..=MAX_BLOCK_ELEMS {
            for c in 1..=MAX_BLOCK_ELEMS {
                if r * c <= MAX_BLOCK_ELEMS && (r, c) != (1, 1) {
                    out.push(BlockShape {
                        r: r as u8,
                        c: c as u8,
                    });
                }
            }
        }
        out.sort_by_key(|s| (s.elems(), s.r));
        out
    }
}

impl fmt::Display for BlockShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.r, self.c)
    }
}

impl FromStr for BlockShape {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let err = || Error::InvalidStructure(format!("cannot parse block shape `{s}`"));
        let (r, c) = s.split_once('x').ok_or_else(err)?;
        let r: usize = r.trim().parse().map_err(|_| err())?;
        let c: usize = c.trim().parse().map_err(|_| err())?;
        BlockShape::new(r, c)
    }
}

/// Which kernel implementation a configuration uses.
///
/// The paper reports four single-threaded configurations: `dp`, `dp-simd`,
/// `sp`, `sp-simd` — precision × implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelImpl {
    /// Plain unrolled kernels.
    Scalar,
    /// SSE2-vectorized kernels (scalar fallback off x86-64).
    Simd,
}

impl KernelImpl {
    /// Suffix used in the paper's configuration labels (`""` / `"-simd"`).
    pub const fn suffix(self) -> &'static str {
        match self {
            KernelImpl::Scalar => "",
            KernelImpl::Simd => "-simd",
        }
    }

    /// Both implementations, scalar first.
    pub const ALL: [KernelImpl; 2] = [KernelImpl::Scalar, KernelImpl::Simd];
}

impl fmt::Display for KernelImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelImpl::Scalar => "scalar",
            KernelImpl::Simd => "simd",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_space_has_19_shapes() {
        let shapes = BlockShape::search_space();
        assert_eq!(shapes.len(), 19);
        assert!(!shapes.contains(&BlockShape::UNIT));
        assert!(shapes.iter().all(|s| s.elems() <= MAX_BLOCK_ELEMS));
        // Every admissible (r, c) is present.
        for r in 1..=8usize {
            for c in 1..=8usize {
                let expect = r * c <= 8 && (r, c) != (1, 1);
                let present = shapes
                    .iter()
                    .any(|s| s.rows() == r && s.cols() == c);
                assert_eq!(present, expect, "shape {r}x{c}");
            }
        }
    }

    #[test]
    fn rejects_oversized_shapes() {
        assert!(BlockShape::new(3, 3).is_err());
        assert!(BlockShape::new(0, 2).is_err());
        assert!(BlockShape::new(9, 1).is_err());
        assert!(BlockShape::new(2, 4).is_ok());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in BlockShape::search_space() {
            let parsed: BlockShape = s.to_string().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("3x3".parse::<BlockShape>().is_err());
        assert!("junk".parse::<BlockShape>().is_err());
    }

    #[test]
    fn unit_shape() {
        assert!(BlockShape::UNIT.is_unit());
        assert_eq!(BlockShape::UNIT.elems(), 1);
    }

    #[test]
    fn impl_suffixes_match_paper_labels() {
        assert_eq!(format!("dp{}", KernelImpl::Scalar.suffix()), "dp");
        assert_eq!(format!("dp{}", KernelImpl::Simd.suffix()), "dp-simd");
    }

    #[test]
    fn bcsd_sizes_cover_2_to_8() {
        assert_eq!(BCSD_SIZES.to_vec(), (2..=8).collect::<Vec<_>>());
    }
}
