//! Runtime dispatch from `(shape, implementation)` to kernel functions.
//!
//! Every kernel here is an instantiation of the generic cores in
//! [`crate::block`] / [`crate::masked`]: the dispatch macros below map a
//! runtime shape (or BCSD size, or vector count) onto the matching
//! monomorphization, and the [`KernelImpl`] chooses the lane engine —
//! [`ScalarEngine`] for `Scalar`, [`SimdScalar::Engine`] for `Simd`.

use crate::block;
use crate::engine::{LaneEngine, ScalarEngine};
use crate::masked::{self, Mask};
use crate::shapes::{BlockShape, KernelImpl};
use crate::simd::SimdScalar;
use spmv_core::{Index, Scalar};

/// Expands to a `match` mapping a runtime [`BlockShape`] onto a
/// monomorphized `<const R, const C>` kernel.
///
/// `$apply` is a caller-defined callback macro receiving the two literal
/// shape dimensions; it must expand to `Some(<kernel fn pointer>)` (or an
/// `Option` of one). The indirection lets one dispatch table serve
/// kernels with different generic signatures.
macro_rules! dispatch_shape {
    ($shape:expr, $apply:ident) => {
        match ($shape.r, $shape.c) {
            (1, 1) => $apply!(1, 1),
            (1, 2) => $apply!(1, 2),
            (1, 3) => $apply!(1, 3),
            (1, 4) => $apply!(1, 4),
            (1, 5) => $apply!(1, 5),
            (1, 6) => $apply!(1, 6),
            (1, 7) => $apply!(1, 7),
            (1, 8) => $apply!(1, 8),
            (2, 1) => $apply!(2, 1),
            (2, 2) => $apply!(2, 2),
            (2, 3) => $apply!(2, 3),
            (2, 4) => $apply!(2, 4),
            (3, 1) => $apply!(3, 1),
            (3, 2) => $apply!(3, 2),
            (4, 1) => $apply!(4, 1),
            (4, 2) => $apply!(4, 2),
            (5, 1) => $apply!(5, 1),
            (6, 1) => $apply!(6, 1),
            (7, 1) => $apply!(7, 1),
            (8, 1) => $apply!(8, 1),
            _ => None,
        }
    };
}

/// Expands to a `match` mapping a runtime BCSD size onto a monomorphized
/// `<const B>` kernel; same callback convention as [`dispatch_shape`].
macro_rules! dispatch_size {
    ($b:expr, $apply:ident) => {
        match $b {
            1 => $apply!(1),
            2 => $apply!(2),
            3 => $apply!(3),
            4 => $apply!(4),
            5 => $apply!(5),
            6 => $apply!(6),
            7 => $apply!(7),
            8 => $apply!(8),
            _ => None,
        }
    };
}

/// Expands to a `match` mapping a runtime vector count `k` onto a
/// monomorphized kernel whose **last** const parameter is `K`; the
/// leading generic parameters (scalar type, engine, shape dims) are
/// passed through. Only the specialized counts `k ∈ {1, 2, 4, 8}` exist —
/// other counts return `None` and callers chunk `k` greedily (8, 4, 2, 1).
macro_rules! dispatch_k {
    ($k:expr, [$($kern:tt)+], $ty:ty, $($dims:tt),+) => {
        match $k {
            1 => Some($($kern)+::<$($dims),+, 1> as $ty),
            2 => Some($($kern)+::<$($dims),+, 2> as $ty),
            4 => Some($($kern)+::<$($dims),+, 4> as $ty),
            8 => Some($($kern)+::<$($dims),+, 8> as $ty),
            _ => None,
        }
    };
}

/// A kernel processing one BCSR block row:
/// `kernel(bvals, bcols, x, yrow)` accumulates the products of the block
/// row's blocks into the `r` entries of `yrow`.
pub type BcsrRowKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// A kernel processing one BCSD segment:
/// `kernel(bvals, start_cols, x, yseg)` accumulates the diagonal products
/// into the `b` entries of `yseg`.
pub type BcsdSegKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// A kernel processing one BCSR block row against several input vectors:
/// `kernel(bvals, bcols, x, xstride, y, ystride, y0)` accumulates into the
/// `K` output columns of `y` starting at row `y0`. `x`/`y` hold `K`
/// concatenated vectors of stride `xstride`/`ystride` (column-major
/// blocks).
pub type BcsrRowMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);

/// A kernel processing one BCSD segment against several input vectors;
/// same signature convention as [`BcsrRowMultiKernel`].
pub type BcsdSegMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);

/// A masked BCSR block-row kernel:
/// `kernel(pvals, bcols, masks, x, yrow)` — packed nonzeros plus one
/// occupancy [`Mask`] per block instead of padded dense values.
pub type BcsrMaskedRowKernel<T> = fn(&[T], &[Index], &[Mask], &[T], &mut [T]);

/// A masked BCSD segment kernel; masked sibling of [`BcsdSegKernel`].
pub type BcsdMaskedSegKernel<T> = fn(&[T], &[Index], &[Mask], &[T], &mut [T]);

/// A masked multi-vector BCSR block-row kernel; masked sibling of
/// [`BcsrRowMultiKernel`].
pub type BcsrMaskedRowMultiKernel<T> =
    fn(&[T], &[Index], &[Mask], &[T], usize, &mut [T], usize, usize);

/// A masked multi-vector BCSD segment kernel; masked sibling of
/// [`BcsdSegMultiKernel`].
pub type BcsdMaskedSegMultiKernel<T> =
    fn(&[T], &[Index], &[Mask], &[T], usize, &mut [T], usize, usize);

fn bcsr_row_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    shape: BlockShape,
) -> Option<BcsrRowKernel<T>> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            Some(block::bcsr_row::<T, E, $r, $c> as BcsrRowKernel<T>)
        };
    }
    dispatch_shape!(shape, apply)
}

fn bcsd_seg_kernel_engine<T: Scalar, E: LaneEngine<T>>(b: usize) -> Option<BcsdSegKernel<T>> {
    macro_rules! apply {
        ($b:literal) => {
            Some(block::bcsd_seg::<T, E, $b> as BcsdSegKernel<T>)
        };
    }
    dispatch_size!(b, apply)
}

fn bcsr_row_multi_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    shape: BlockShape,
    k: usize,
) -> Option<BcsrRowMultiKernel<T>> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            dispatch_k!(k, [block::bcsr_core], BcsrRowMultiKernel<T>, T, E, $r, $c)
        };
    }
    dispatch_shape!(shape, apply)
}

fn bcsd_seg_multi_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    b: usize,
    k: usize,
) -> Option<BcsdSegMultiKernel<T>> {
    macro_rules! apply {
        ($b:literal) => {
            dispatch_k!(k, [block::bcsd_core], BcsdSegMultiKernel<T>, T, E, $b)
        };
    }
    dispatch_size!(b, apply)
}

fn bcsr_masked_row_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    shape: BlockShape,
) -> Option<BcsrMaskedRowKernel<T>> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            Some(masked::bcsr_masked_row::<T, E, $r, $c> as BcsrMaskedRowKernel<T>)
        };
    }
    dispatch_shape!(shape, apply)
}

fn bcsd_masked_seg_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    b: usize,
) -> Option<BcsdMaskedSegKernel<T>> {
    macro_rules! apply {
        ($b:literal) => {
            Some(masked::bcsd_masked_seg::<T, E, $b> as BcsdMaskedSegKernel<T>)
        };
    }
    dispatch_size!(b, apply)
}

fn bcsr_masked_row_multi_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    shape: BlockShape,
    k: usize,
) -> Option<BcsrMaskedRowMultiKernel<T>> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            dispatch_k!(k, [masked::bcsr_masked_core], BcsrMaskedRowMultiKernel<T>, T, E, $r, $c)
        };
    }
    dispatch_shape!(shape, apply)
}

fn bcsd_masked_seg_multi_kernel_engine<T: Scalar, E: LaneEngine<T>>(
    b: usize,
    k: usize,
) -> Option<BcsdMaskedSegMultiKernel<T>> {
    macro_rules! apply {
        ($b:literal) => {
            dispatch_k!(k, [masked::bcsd_masked_core], BcsdMaskedSegMultiKernel<T>, T, E, $b)
        };
    }
    dispatch_size!(b, apply)
}

/// Scalar BCSR block-row kernel for `shape`.
///
/// # Panics
///
/// Panics if `shape` is outside the supported search space (which
/// [`BlockShape::new`] prevents constructing).
pub fn bcsr_row_kernel_scalar<T: SimdScalar>(shape: BlockShape) -> BcsrRowKernel<T> {
    bcsr_row_kernel_engine::<T, ScalarEngine>(shape)
        .unwrap_or_else(|| panic!("unsupported BCSR shape {shape}"))
}

/// Scalar BCSD segment kernel for diagonal size `b` (1 ≤ b ≤ 8).
pub fn bcsd_seg_kernel_scalar<T: SimdScalar>(b: usize) -> BcsdSegKernel<T> {
    bcsd_seg_kernel_engine::<T, ScalarEngine>(b)
        .unwrap_or_else(|| panic!("unsupported BCSD size {b}"))
}

/// BCSR block-row kernel for `(shape, imp)`.
///
/// Requesting [`KernelImpl::Simd`] on a target without SIMD support
/// transparently returns the scalar kernel (the scalar's engine *is* the
/// scalar engine there), so callers can sweep both implementations
/// unconditionally.
pub fn bcsr_row_kernel<T: SimdScalar>(shape: BlockShape, imp: KernelImpl) -> BcsrRowKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsr_row_kernel_engine::<T, ScalarEngine>(shape),
        KernelImpl::Simd => bcsr_row_kernel_engine::<T, T::Engine>(shape),
    }
    .unwrap_or_else(|| panic!("unsupported BCSR shape {shape}"))
}

/// BCSD segment kernel for `(b, imp)`, with the same SIMD fallback rule as
/// [`bcsr_row_kernel`].
pub fn bcsd_seg_kernel<T: SimdScalar>(b: usize, imp: KernelImpl) -> BcsdSegKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsd_seg_kernel_engine::<T, ScalarEngine>(b),
        KernelImpl::Simd => bcsd_seg_kernel_engine::<T, T::Engine>(b),
    }
    .unwrap_or_else(|| panic!("unsupported BCSD size {b}"))
}

/// Dot product of a contiguous value run (1D-VBL inner kernel) for `imp`.
#[inline]
pub fn dot_run<T: SimdScalar>(vals: &[T], x: &[T], imp: KernelImpl) -> T {
    match imp {
        KernelImpl::Scalar => block::dot_run_core::<T, ScalarEngine>(vals, x),
        KernelImpl::Simd => block::dot_run_core::<T, T::Engine>(vals, x),
    }
}

/// Scalar multi-vector BCSR block-row kernel for `(shape, k)`, if `k` is
/// one of the specialized counts `{1, 2, 4, 8}`.
///
/// Returns `None` for other counts (callers chunk `k` greedily into the
/// specialized sizes).
pub fn bcsr_row_multi_kernel_scalar<T: SimdScalar>(
    shape: BlockShape,
    k: usize,
) -> Option<BcsrRowMultiKernel<T>> {
    bcsr_row_multi_kernel_engine::<T, ScalarEngine>(shape, k)
}

/// Scalar multi-vector BCSD segment kernel for `(b, k)`; `None` for
/// non-specialized `k` as in [`bcsr_row_multi_kernel_scalar`].
pub fn bcsd_seg_multi_kernel_scalar<T: SimdScalar>(
    b: usize,
    k: usize,
) -> Option<BcsdSegMultiKernel<T>> {
    bcsd_seg_multi_kernel_engine::<T, ScalarEngine>(b, k)
}

/// Multi-vector BCSR block-row kernel for `(shape, k, imp)`, with the same
/// transparent SIMD→scalar fallback as [`bcsr_row_kernel`]. `None` when
/// `k` is not a specialized count.
pub fn bcsr_row_multi_kernel<T: SimdScalar>(
    shape: BlockShape,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsrRowMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsr_row_multi_kernel_engine::<T, ScalarEngine>(shape, k),
        KernelImpl::Simd => bcsr_row_multi_kernel_engine::<T, T::Engine>(shape, k),
    }
}

/// Multi-vector BCSD segment kernel for `(b, k, imp)`, with SIMD→scalar
/// fallback; `None` when `k` is not a specialized count.
pub fn bcsd_seg_multi_kernel<T: SimdScalar>(
    b: usize,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsdSegMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsd_seg_multi_kernel_engine::<T, ScalarEngine>(b, k),
        KernelImpl::Simd => bcsd_seg_multi_kernel_engine::<T, T::Engine>(b, k),
    }
}

/// Masked BCSR block-row kernel for `(shape, imp)` — the padding-free
/// sibling of [`bcsr_row_kernel`], bitwise-equal to it on the padded
/// expansion of the same blocks.
pub fn bcsr_masked_row_kernel<T: SimdScalar>(
    shape: BlockShape,
    imp: KernelImpl,
) -> BcsrMaskedRowKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsr_masked_row_kernel_engine::<T, ScalarEngine>(shape),
        KernelImpl::Simd => bcsr_masked_row_kernel_engine::<T, T::Engine>(shape),
    }
    .unwrap_or_else(|| panic!("unsupported BCSR shape {shape}"))
}

/// Masked BCSD segment kernel for `(b, imp)` — padding-free sibling of
/// [`bcsd_seg_kernel`].
pub fn bcsd_masked_seg_kernel<T: SimdScalar>(b: usize, imp: KernelImpl) -> BcsdMaskedSegKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsd_masked_seg_kernel_engine::<T, ScalarEngine>(b),
        KernelImpl::Simd => bcsd_masked_seg_kernel_engine::<T, T::Engine>(b),
    }
    .unwrap_or_else(|| panic!("unsupported BCSD size {b}"))
}

/// Masked multi-vector BCSR block-row kernel for `(shape, k, imp)`;
/// `None` when `k` is not a specialized count.
pub fn bcsr_masked_row_multi_kernel<T: SimdScalar>(
    shape: BlockShape,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsrMaskedRowMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsr_masked_row_multi_kernel_engine::<T, ScalarEngine>(shape, k),
        KernelImpl::Simd => bcsr_masked_row_multi_kernel_engine::<T, T::Engine>(shape, k),
    }
}

/// Masked multi-vector BCSD segment kernel for `(b, k, imp)`; `None`
/// when `k` is not a specialized count.
pub fn bcsd_masked_seg_multi_kernel<T: SimdScalar>(
    b: usize,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsdMaskedSegMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsd_masked_seg_multi_kernel_engine::<T, ScalarEngine>(b, k),
        KernelImpl::Simd => bcsd_masked_seg_multi_kernel_engine::<T, T::Engine>(b, k),
    }
}

/// Dot product of one contiguous value run against `acc.len()` input
/// columns (the 1D-VBL multi-vector inner kernel): for each vector `t`,
/// adds `vals · x[t*xstride + j0 ..]` into `acc[t]`. The run values are
/// hot in cache across columns, so the matrix is streamed from memory once
/// regardless of the vector count.
#[inline]
pub fn dot_run_multi<T: SimdScalar>(
    vals: &[T],
    x: &[T],
    xstride: usize,
    j0: usize,
    acc: &mut [T],
    imp: KernelImpl,
) {
    for (t, a) in acc.iter_mut().enumerate() {
        let xr = &x[t * xstride + j0..t * xstride + j0 + vals.len()];
        *a += dot_run(vals, xr, imp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_search_space_shape_dispatches() {
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let _ = bcsr_row_kernel::<f64>(shape, imp);
                let _ = bcsr_row_kernel::<f32>(shape, imp);
                let _ = bcsr_masked_row_kernel::<f64>(shape, imp);
                let _ = bcsr_masked_row_kernel::<f32>(shape, imp);
            }
        }
        // The degenerate 1x1 kernel exists too (used for CSR profiling).
        let _ = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
    }

    #[test]
    fn every_bcsd_size_dispatches() {
        for b in 1..=8 {
            for imp in KernelImpl::ALL {
                let _ = bcsd_seg_kernel::<f64>(b, imp);
                let _ = bcsd_seg_kernel::<f32>(b, imp);
                let _ = bcsd_masked_seg_kernel::<f64>(b, imp);
                let _ = bcsd_masked_seg_kernel::<f32>(b, imp);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported BCSD size")]
    fn oversized_bcsd_panics() {
        let _ = bcsd_seg_kernel_scalar::<f64>(9);
    }

    #[test]
    fn unit_kernel_is_csr_row() {
        // 1x1 blocks with nb = nnz reproduce a CSR row dot product.
        let kern = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
        let vals = [2.0, 3.0];
        let cols = [1u32, 3];
        let x = [1.0, 10.0, 100.0, 1000.0];
        let mut y = [0.0];
        kern(&vals, &cols, &x, &mut y);
        assert_eq!(y[0], 2.0 * 10.0 + 3.0 * 1000.0);
    }

    #[test]
    fn multi_kernels_dispatch_for_specialized_ks() {
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                for k in crate::MULTI_KS {
                    assert!(bcsr_row_multi_kernel::<f64>(shape, k, imp).is_some());
                    assert!(bcsr_row_multi_kernel::<f32>(shape, k, imp).is_some());
                    assert!(bcsr_masked_row_multi_kernel::<f64>(shape, k, imp).is_some());
                }
                assert!(bcsr_row_multi_kernel::<f64>(shape, 3, imp).is_none());
                assert!(bcsr_masked_row_multi_kernel::<f64>(shape, 3, imp).is_none());
            }
        }
        for b in 1..=8 {
            for imp in KernelImpl::ALL {
                for k in crate::MULTI_KS {
                    assert!(bcsd_seg_multi_kernel::<f64>(b, k, imp).is_some());
                    assert!(bcsd_seg_multi_kernel::<f32>(b, k, imp).is_some());
                    assert!(bcsd_masked_seg_multi_kernel::<f64>(b, k, imp).is_some());
                }
                assert!(bcsd_seg_multi_kernel::<f64>(b, 5, imp).is_none());
                assert!(bcsd_masked_seg_multi_kernel::<f64>(b, 5, imp).is_none());
            }
        }
    }

    #[test]
    fn dot_run_multi_accumulates_per_column() {
        let vals = [1.0f64, 2.0];
        // Two columns of stride 4, run starts at j0 = 1.
        let x = [0.0, 1.0, 1.0, 0.0, 0.0, 10.0, 10.0, 0.0];
        let mut acc = [5.0, 7.0];
        dot_run_multi(&vals, &x, 4, 1, &mut acc, KernelImpl::Scalar);
        assert_eq!(acc, [5.0 + 3.0, 7.0 + 30.0]);
    }

    #[test]
    fn dot_run_both_impls() {
        let v = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot_run(&v, &x, KernelImpl::Scalar), 15.0);
        assert!((dot_run(&v, &x, KernelImpl::Simd) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn masked_kernel_matches_padded_kernel_bitwise() {
        // One partial + one full 2x2 block, both impls.
        let pvals = [5.0f64, -3.0, 1.0, 2.0, 3.0, 4.0];
        let masks = [0b0110u8, 0b1111];
        let bcols = [0u32, 4];
        let padded = [0.0, 5.0, -3.0, 0.0, 1.0, 2.0, 3.0, 4.0];
        let x: Vec<f64> = (0..6).map(|i| 0.1 + i as f64).collect();
        let shape = BlockShape::new(2, 2).unwrap();
        for imp in KernelImpl::ALL {
            let mut ym = [1.0f64; 2];
            let mut yp = [1.0f64; 2];
            bcsr_masked_row_kernel::<f64>(shape, imp)(&pvals, &bcols, &masks, &x, &mut ym);
            bcsr_row_kernel::<f64>(shape, imp)(&padded, &bcols, &x, &mut yp);
            assert_eq!(ym.map(f64::to_bits), yp.map(f64::to_bits), "{imp:?}");
        }
    }
}
