//! Runtime dispatch from `(shape, implementation)` to kernel functions.

use crate::scalar;
use crate::shapes::{BlockShape, KernelImpl};
use crate::simd::{dispatch_k, dispatch_shape, dispatch_size, SimdScalar};
use spmv_core::Index;

/// A kernel processing one BCSR block row:
/// `kernel(bvals, bcols, x, yrow)` accumulates the products of the block
/// row's blocks into the `r` entries of `yrow`.
pub type BcsrRowKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// A kernel processing one BCSD segment:
/// `kernel(bvals, start_cols, x, yseg)` accumulates the diagonal products
/// into the `b` entries of `yseg`.
pub type BcsdSegKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// Scalar BCSR block-row kernel for `shape`.
///
/// # Panics
///
/// Panics if `shape` is outside the supported search space (which
/// [`BlockShape::new`] prevents constructing).
pub fn bcsr_row_kernel_scalar<T: SimdScalar>(shape: BlockShape) -> BcsrRowKernel<T> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            Some(scalar::bcsr_block_row::<T, $r, $c> as BcsrRowKernel<T>)
        };
    }
    dispatch_shape!(shape, apply).unwrap_or_else(|| panic!("unsupported BCSR shape {shape}"))
}

/// Scalar BCSD segment kernel for diagonal size `b` (1 ≤ b ≤ 8).
pub fn bcsd_seg_kernel_scalar<T: SimdScalar>(b: usize) -> BcsdSegKernel<T> {
    macro_rules! apply {
        ($b:literal) => {
            Some(scalar::bcsd_segment::<T, $b> as BcsdSegKernel<T>)
        };
    }
    dispatch_size!(b, apply).unwrap_or_else(|| panic!("unsupported BCSD size {b}"))
}

/// BCSR block-row kernel for `(shape, imp)`.
///
/// Requesting [`KernelImpl::Simd`] on a target without SIMD support (or a
/// shape without a SIMD variant) transparently returns the scalar kernel,
/// so callers can sweep both implementations unconditionally.
pub fn bcsr_row_kernel<T: SimdScalar>(shape: BlockShape, imp: KernelImpl) -> BcsrRowKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsr_row_kernel_scalar(shape),
        KernelImpl::Simd => {
            T::bcsr_row_simd(shape).unwrap_or_else(|| bcsr_row_kernel_scalar(shape))
        }
    }
}

/// BCSD segment kernel for `(b, imp)`, with the same SIMD fallback rule as
/// [`bcsr_row_kernel`].
pub fn bcsd_seg_kernel<T: SimdScalar>(b: usize, imp: KernelImpl) -> BcsdSegKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsd_seg_kernel_scalar(b),
        KernelImpl::Simd => T::bcsd_seg_simd(b).unwrap_or_else(|| bcsd_seg_kernel_scalar(b)),
    }
}

/// Dot product of a contiguous value run (1D-VBL inner kernel) for `imp`.
#[inline]
pub fn dot_run<T: SimdScalar>(vals: &[T], x: &[T], imp: KernelImpl) -> T {
    match imp {
        KernelImpl::Scalar => scalar::dot_run_scalar(vals, x),
        KernelImpl::Simd => T::dot_run_simd(vals, x),
    }
}

/// A kernel processing one BCSR block row against several input vectors:
/// `kernel(bvals, bcols, x, xstride, y, ystride, y0)` accumulates into the
/// `K` output columns of `y` starting at row `y0`. `x`/`y` hold `K`
/// concatenated vectors of stride `xstride`/`ystride` (column-major
/// blocks).
pub type BcsrRowMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);

/// A kernel processing one BCSD segment against several input vectors;
/// same signature convention as [`BcsrRowMultiKernel`].
pub type BcsdSegMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);

/// Scalar multi-vector BCSR block-row kernel for `(shape, k)`, if `k` is
/// one of the specialized counts `{1, 2, 4, 8}`.
///
/// Returns `None` for other counts (callers chunk `k` greedily into the
/// specialized sizes) — but panics on an unsupported *shape*, which
/// [`BlockShape::new`] prevents constructing.
pub fn bcsr_row_multi_kernel_scalar<T: SimdScalar>(
    shape: BlockShape,
    k: usize,
) -> Option<BcsrRowMultiKernel<T>> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            dispatch_k!(k, [scalar::bcsr_block_row_multi], BcsrRowMultiKernel<T>, T, $r, $c)
        };
    }
    dispatch_shape!(shape, apply)
}

/// Scalar multi-vector BCSD segment kernel for `(b, k)`; `None` for
/// non-specialized `k` as in [`bcsr_row_multi_kernel_scalar`].
pub fn bcsd_seg_multi_kernel_scalar<T: SimdScalar>(
    b: usize,
    k: usize,
) -> Option<BcsdSegMultiKernel<T>> {
    macro_rules! apply {
        ($b:literal) => {
            dispatch_k!(k, [scalar::bcsd_segment_multi], BcsdSegMultiKernel<T>, T, $b)
        };
    }
    dispatch_size!(b, apply)
}

/// Multi-vector BCSR block-row kernel for `(shape, k, imp)`, with the same
/// transparent SIMD→scalar fallback as [`bcsr_row_kernel`]. `None` when
/// `k` is not a specialized count.
pub fn bcsr_row_multi_kernel<T: SimdScalar>(
    shape: BlockShape,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsrRowMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsr_row_multi_kernel_scalar(shape, k),
        KernelImpl::Simd => {
            T::bcsr_row_multi_simd(shape, k).or_else(|| bcsr_row_multi_kernel_scalar(shape, k))
        }
    }
}

/// Multi-vector BCSD segment kernel for `(b, k, imp)`, with SIMD→scalar
/// fallback; `None` when `k` is not a specialized count.
pub fn bcsd_seg_multi_kernel<T: SimdScalar>(
    b: usize,
    k: usize,
    imp: KernelImpl,
) -> Option<BcsdSegMultiKernel<T>> {
    match imp {
        KernelImpl::Scalar => bcsd_seg_multi_kernel_scalar(b, k),
        KernelImpl::Simd => {
            T::bcsd_seg_multi_simd(b, k).or_else(|| bcsd_seg_multi_kernel_scalar(b, k))
        }
    }
}

/// Dot product of one contiguous value run against `acc.len()` input
/// columns (the 1D-VBL multi-vector inner kernel): for each vector `t`,
/// adds `vals · x[t*xstride + j0 ..]` into `acc[t]`. The run values are
/// hot in cache across columns, so the matrix is streamed from memory once
/// regardless of the vector count.
#[inline]
pub fn dot_run_multi<T: SimdScalar>(
    vals: &[T],
    x: &[T],
    xstride: usize,
    j0: usize,
    acc: &mut [T],
    imp: KernelImpl,
) {
    for (t, a) in acc.iter_mut().enumerate() {
        let xr = &x[t * xstride + j0..t * xstride + j0 + vals.len()];
        *a += dot_run(vals, xr, imp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_search_space_shape_dispatches() {
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let _ = bcsr_row_kernel::<f64>(shape, imp);
                let _ = bcsr_row_kernel::<f32>(shape, imp);
            }
        }
        // The degenerate 1x1 kernel exists too (used for CSR profiling).
        let _ = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
    }

    #[test]
    fn every_bcsd_size_dispatches() {
        for b in 1..=8 {
            for imp in KernelImpl::ALL {
                let _ = bcsd_seg_kernel::<f64>(b, imp);
                let _ = bcsd_seg_kernel::<f32>(b, imp);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported BCSD size")]
    fn oversized_bcsd_panics() {
        let _ = bcsd_seg_kernel_scalar::<f64>(9);
    }

    #[test]
    fn unit_kernel_is_csr_row() {
        // 1x1 blocks with nb = nnz reproduce a CSR row dot product.
        let kern = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
        let vals = [2.0, 3.0];
        let cols = [1u32, 3];
        let x = [1.0, 10.0, 100.0, 1000.0];
        let mut y = [0.0];
        kern(&vals, &cols, &x, &mut y);
        assert_eq!(y[0], 2.0 * 10.0 + 3.0 * 1000.0);
    }

    #[test]
    fn multi_kernels_dispatch_for_specialized_ks() {
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                for k in crate::MULTI_KS {
                    assert!(bcsr_row_multi_kernel::<f64>(shape, k, imp).is_some());
                    assert!(bcsr_row_multi_kernel::<f32>(shape, k, imp).is_some());
                }
                assert!(bcsr_row_multi_kernel::<f64>(shape, 3, imp).is_none());
            }
        }
        for b in 1..=8 {
            for imp in KernelImpl::ALL {
                for k in crate::MULTI_KS {
                    assert!(bcsd_seg_multi_kernel::<f64>(b, k, imp).is_some());
                    assert!(bcsd_seg_multi_kernel::<f32>(b, k, imp).is_some());
                }
                assert!(bcsd_seg_multi_kernel::<f64>(b, 5, imp).is_none());
            }
        }
    }

    #[test]
    fn dot_run_multi_accumulates_per_column() {
        let vals = [1.0f64, 2.0];
        // Two columns of stride 4, run starts at j0 = 1.
        let x = [0.0, 1.0, 1.0, 0.0, 0.0, 10.0, 10.0, 0.0];
        let mut acc = [5.0, 7.0];
        dot_run_multi(&vals, &x, 4, 1, &mut acc, KernelImpl::Scalar);
        assert_eq!(acc, [5.0 + 3.0, 7.0 + 30.0]);
    }

    #[test]
    fn dot_run_both_impls() {
        let v = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot_run(&v, &x, KernelImpl::Scalar), 15.0);
        assert!((dot_run(&v, &x, KernelImpl::Simd) - 15.0).abs() < 1e-12);
    }
}
