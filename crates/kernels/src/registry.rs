//! Runtime dispatch from `(shape, implementation)` to kernel functions.

use crate::scalar;
use crate::shapes::{BlockShape, KernelImpl};
use crate::simd::{dispatch_shape, dispatch_size, SimdScalar};
use spmv_core::Index;

/// A kernel processing one BCSR block row:
/// `kernel(bvals, bcols, x, yrow)` accumulates the products of the block
/// row's blocks into the `r` entries of `yrow`.
pub type BcsrRowKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// A kernel processing one BCSD segment:
/// `kernel(bvals, start_cols, x, yseg)` accumulates the diagonal products
/// into the `b` entries of `yseg`.
pub type BcsdSegKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);

/// Scalar BCSR block-row kernel for `shape`.
///
/// # Panics
///
/// Panics if `shape` is outside the supported search space (which
/// [`BlockShape::new`] prevents constructing).
pub fn bcsr_row_kernel_scalar<T: SimdScalar>(shape: BlockShape) -> BcsrRowKernel<T> {
    macro_rules! apply {
        ($r:literal, $c:literal) => {
            Some(scalar::bcsr_block_row::<T, $r, $c> as BcsrRowKernel<T>)
        };
    }
    dispatch_shape!(shape, apply).unwrap_or_else(|| panic!("unsupported BCSR shape {shape}"))
}

/// Scalar BCSD segment kernel for diagonal size `b` (1 ≤ b ≤ 8).
pub fn bcsd_seg_kernel_scalar<T: SimdScalar>(b: usize) -> BcsdSegKernel<T> {
    macro_rules! apply {
        ($b:literal) => {
            Some(scalar::bcsd_segment::<T, $b> as BcsdSegKernel<T>)
        };
    }
    dispatch_size!(b, apply).unwrap_or_else(|| panic!("unsupported BCSD size {b}"))
}

/// BCSR block-row kernel for `(shape, imp)`.
///
/// Requesting [`KernelImpl::Simd`] on a target without SIMD support (or a
/// shape without a SIMD variant) transparently returns the scalar kernel,
/// so callers can sweep both implementations unconditionally.
pub fn bcsr_row_kernel<T: SimdScalar>(shape: BlockShape, imp: KernelImpl) -> BcsrRowKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsr_row_kernel_scalar(shape),
        KernelImpl::Simd => {
            T::bcsr_row_simd(shape).unwrap_or_else(|| bcsr_row_kernel_scalar(shape))
        }
    }
}

/// BCSD segment kernel for `(b, imp)`, with the same SIMD fallback rule as
/// [`bcsr_row_kernel`].
pub fn bcsd_seg_kernel<T: SimdScalar>(b: usize, imp: KernelImpl) -> BcsdSegKernel<T> {
    match imp {
        KernelImpl::Scalar => bcsd_seg_kernel_scalar(b),
        KernelImpl::Simd => T::bcsd_seg_simd(b).unwrap_or_else(|| bcsd_seg_kernel_scalar(b)),
    }
}

/// Dot product of a contiguous value run (1D-VBL inner kernel) for `imp`.
#[inline]
pub fn dot_run<T: SimdScalar>(vals: &[T], x: &[T], imp: KernelImpl) -> T {
    match imp {
        KernelImpl::Scalar => scalar::dot_run_scalar(vals, x),
        KernelImpl::Simd => T::dot_run_simd(vals, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_search_space_shape_dispatches() {
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let _ = bcsr_row_kernel::<f64>(shape, imp);
                let _ = bcsr_row_kernel::<f32>(shape, imp);
            }
        }
        // The degenerate 1x1 kernel exists too (used for CSR profiling).
        let _ = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
    }

    #[test]
    fn every_bcsd_size_dispatches() {
        for b in 1..=8 {
            for imp in KernelImpl::ALL {
                let _ = bcsd_seg_kernel::<f64>(b, imp);
                let _ = bcsd_seg_kernel::<f32>(b, imp);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported BCSD size")]
    fn oversized_bcsd_panics() {
        let _ = bcsd_seg_kernel_scalar::<f64>(9);
    }

    #[test]
    fn unit_kernel_is_csr_row() {
        // 1x1 blocks with nb = nnz reproduce a CSR row dot product.
        let kern = bcsr_row_kernel::<f64>(BlockShape::UNIT, KernelImpl::Scalar);
        let vals = [2.0, 3.0];
        let cols = [1u32, 3];
        let x = [1.0, 10.0, 100.0, 1000.0];
        let mut y = [0.0];
        kern(&vals, &cols, &x, &mut y);
        assert_eq!(y[0], 2.0 * 10.0 + 3.0 * 1000.0);
    }

    #[test]
    fn dot_run_both_impls() {
        let v = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let x = [1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot_run(&v, &x, KernelImpl::Scalar), 15.0);
        assert!((dot_run(&v, &x, KernelImpl::Simd) - 15.0).abs() < 1e-12);
    }
}
