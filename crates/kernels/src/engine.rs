//! Lane engines: the accumulation micro-semantics behind the generic
//! block core.
//!
//! A [`LaneEngine`] captures everything that distinguished the old
//! per-implementation kernel copies — lane width, load/multiply/add
//! style, horizontal reduction, and how a vector accumulator combines
//! with its scalar tail — so [`crate::block`] can hold **one** generic
//! core per format and monomorphize it per `(engine, shape, k)`:
//!
//! * [`ScalarEngine`] — `LANES = 1`, fused `mul_add` accumulation.
//!   Instantiating the core with it reproduces the old scalar kernels'
//!   accumulation order bitwise.
//! * [`SseF64`] / [`SseF32`] (x86-64 only) — 2-/4-lane SSE2 with
//!   separate multiply-then-add vector ops and plain (non-fused) scalar
//!   tails, reproducing the old hand-written SSE kernels bitwise.
//!
//! On non-x86 targets [`SimdScalar::Engine`] is [`ScalarEngine`], so the
//! `*-simd` configurations still exist and simply coincide with the
//! scalar ones — the same fallback rule the old per-method dispatch had.

use spmv_core::Scalar;

/// One SIMD (or degenerate 1-lane) accumulation strategy over `T`.
///
/// The contract mirrors what the block kernels need and nothing more:
/// a `Vec` of `LANES` elements, an accumulating multiply in the
/// engine's native style, per-lane extraction for the element-wise
/// (BCSD) epilogue, and [`LaneEngine::finish`] for the dot-style (BCSR)
/// epilogue combining the vector accumulator with its scalar-tail
/// accumulator.
pub trait LaneEngine<T: Scalar>: 'static {
    /// The vector register type (`T` itself for [`ScalarEngine`]).
    type Vec: Copy;
    /// Lane count of [`LaneEngine::Vec`].
    const LANES: usize;

    /// The all-zero vector.
    fn zero() -> Self::Vec;

    /// Loads `LANES` contiguous elements starting at `p` (unaligned).
    ///
    /// # Safety
    ///
    /// `p .. p + LANES` must be readable `T`s.
    unsafe fn load(p: *const T) -> Self::Vec;

    /// `acc` updated with `a * x`, in the engine's native style: fused
    /// `mul_add` for the scalar engine, separate multiply-then-add for
    /// the SSE engines (SSE2 has no FMA).
    fn mul_acc(acc: Self::Vec, a: Self::Vec, x: Self::Vec) -> Self::Vec;

    /// Lane `q` of `v` (`q < LANES`).
    fn lane(v: Self::Vec, q: usize) -> T;

    /// Horizontal sum of all lanes, in the engine's historical
    /// reduction order.
    fn hsum(v: Self::Vec) -> T;

    /// Scalar-tail accumulation `acc` updated with `a * x`, again in
    /// the engine's native style.
    fn tail_mul_add(acc: T, a: T, x: T) -> T;

    /// Combines a row's vector accumulator with its scalar-tail
    /// accumulator for the dot-style epilogue.
    ///
    /// The scalar engine returns `acc` alone: at `LANES = 1` the tail
    /// loop is unreachable (`tail` is provably `T::ZERO`), and adding
    /// an explicit zero could still flip a `-0.0` sum to `+0.0`.
    fn finish(acc: Self::Vec, tail: T) -> T;
}

/// The 1-lane engine: plain scalar accumulation with fused `mul_add`.
pub struct ScalarEngine;

impl<T: Scalar> LaneEngine<T> for ScalarEngine {
    type Vec = T;
    const LANES: usize = 1;

    #[inline(always)]
    fn zero() -> T {
        T::ZERO
    }

    #[inline(always)]
    unsafe fn load(p: *const T) -> T {
        *p
    }

    #[inline(always)]
    fn mul_acc(acc: T, a: T, x: T) -> T {
        a.mul_add(x, acc)
    }

    #[inline(always)]
    fn lane(v: T, _q: usize) -> T {
        v
    }

    #[inline(always)]
    fn hsum(v: T) -> T {
        v
    }

    #[inline(always)]
    fn tail_mul_add(acc: T, a: T, x: T) -> T {
        a.mul_add(x, acc)
    }

    #[inline(always)]
    fn finish(acc: T, _tail: T) -> T {
        acc
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LaneEngine;
    use core::arch::x86_64::*;

    /// 2-lane SSE2 engine over `f64`.
    pub struct SseF64;

    impl LaneEngine<f64> for SseF64 {
        type Vec = __m128d;
        const LANES: usize = 2;

        #[inline(always)]
        fn zero() -> __m128d {
            unsafe { _mm_setzero_pd() }
        }

        #[inline(always)]
        unsafe fn load(p: *const f64) -> __m128d {
            _mm_loadu_pd(p)
        }

        #[inline(always)]
        fn mul_acc(acc: __m128d, a: __m128d, x: __m128d) -> __m128d {
            unsafe { _mm_add_pd(acc, _mm_mul_pd(a, x)) }
        }

        #[inline(always)]
        fn lane(v: __m128d, q: usize) -> f64 {
            unsafe {
                if q == 0 {
                    _mm_cvtsd_f64(v)
                } else {
                    _mm_cvtsd_f64(_mm_unpackhi_pd(v, v))
                }
            }
        }

        #[inline(always)]
        fn hsum(v: __m128d) -> f64 {
            unsafe { _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v)) }
        }

        #[inline(always)]
        fn tail_mul_add(acc: f64, a: f64, x: f64) -> f64 {
            acc + a * x
        }

        #[inline(always)]
        fn finish(acc: __m128d, tail: f64) -> f64 {
            <Self as LaneEngine<f64>>::hsum(acc) + tail
        }
    }

    /// 4-lane SSE2 engine over `f32`.
    pub struct SseF32;

    impl LaneEngine<f32> for SseF32 {
        type Vec = __m128;
        const LANES: usize = 4;

        #[inline(always)]
        fn zero() -> __m128 {
            unsafe { _mm_setzero_ps() }
        }

        #[inline(always)]
        unsafe fn load(p: *const f32) -> __m128 {
            _mm_loadu_ps(p)
        }

        #[inline(always)]
        fn mul_acc(acc: __m128, a: __m128, x: __m128) -> __m128 {
            unsafe { _mm_add_ps(acc, _mm_mul_ps(a, x)) }
        }

        #[inline(always)]
        fn lane(v: __m128, q: usize) -> f32 {
            // Extract via an in-register store, matching the old
            // kernels' `_mm_storeu_ps` epilogue value-for-value.
            let mut lanes = [0.0f32; 4];
            unsafe { _mm_storeu_ps(lanes.as_mut_ptr(), v) };
            lanes[q]
        }

        #[inline(always)]
        fn hsum(v: __m128) -> f32 {
            // (l0 + l2) + (l1 + l3): the SSE1 movehl/shuffle reduction
            // the old kernels used.
            unsafe {
                let hi = _mm_movehl_ps(v, v); // lanes [2, 3, 2, 3]
                let sum2 = _mm_add_ps(v, hi); // lanes [0+2, 1+3, _, _]
                let lane1 = _mm_shuffle_ps(sum2, sum2, 0b01_01_01_01);
                _mm_cvtss_f32(_mm_add_ss(sum2, lane1))
            }
        }

        #[inline(always)]
        fn tail_mul_add(acc: f32, a: f32, x: f32) -> f32 {
            acc + a * x
        }

        #[inline(always)]
        fn finish(acc: __m128, tail: f32) -> f32 {
            <Self as LaneEngine<f32>>::hsum(acc) + tail
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{SseF32, SseF64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_engine_is_one_fused_lane() {
        assert_eq!(<ScalarEngine as LaneEngine<f64>>::LANES, 1);
        let acc = <ScalarEngine as LaneEngine<f64>>::mul_acc(1.0, 2.0, 3.0);
        assert_eq!(acc, 7.0);
        assert_eq!(<ScalarEngine as LaneEngine<f64>>::hsum(acc), 7.0);
        assert_eq!(<ScalarEngine as LaneEngine<f64>>::lane(acc, 0), 7.0);
        // finish ignores the (always-zero) tail and must not add it:
        // `-0.0 + 0.0` would flip the sign of a negative-zero sum.
        let neg = <ScalarEngine as LaneEngine<f64>>::finish(-0.0, 0.0);
        assert!(neg.is_sign_negative());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse_engines_match_lane_algebra() {
        let v = [1.0f64, 2.0];
        let acc = unsafe { <SseF64 as LaneEngine<f64>>::load(v.as_ptr()) };
        assert_eq!(<SseF64 as LaneEngine<f64>>::lane(acc, 0), 1.0);
        assert_eq!(<SseF64 as LaneEngine<f64>>::lane(acc, 1), 2.0);
        assert_eq!(<SseF64 as LaneEngine<f64>>::hsum(acc), 3.0);
        assert_eq!(<SseF64 as LaneEngine<f64>>::finish(acc, 0.5), 3.5);

        let w = [1.0f32, 2.0, 4.0, 8.0];
        let acc = unsafe { <SseF32 as LaneEngine<f32>>::load(w.as_ptr()) };
        for (q, &l) in w.iter().enumerate() {
            assert_eq!(<SseF32 as LaneEngine<f32>>::lane(acc, q), l);
        }
        // (1 + 4) + (2 + 8)
        assert_eq!(<SseF32 as LaneEngine<f32>>::hsum(acc), 15.0);
    }
}
