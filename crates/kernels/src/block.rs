//! The const-generic block core: one implementation per format, shared
//! by every `(implementation, shape, vector count)` combination.
//!
//! Historically this crate carried three hand-written copies of every
//! kernel — scalar, SSE2, and multi-vector variants of both — ~1.6k
//! lines of triplicated loops. This module replaces them with one
//! generic core per format, parameterized by a [`LaneEngine`]:
//!
//! * [`bcsr_core`] — one BCSR block row against `K` input vectors;
//! * [`bcsd_core`] — one BCSD segment against `K` input vectors;
//! * [`dot_run_core`] — a contiguous value run (1D-VBL inner kernel).
//!
//! Single-vector kernels are the `K = 1` instantiations ([`bcsr_row`],
//! [`bcsd_seg`]); scalar kernels use [`ScalarEngine`]
//! (`LANES = 1`, fused `mul_add`); SIMD kernels use the target's SSE
//! engines. The loop structure is the old SIMD kernels' — per block
//! value vector loaded once, then multiplied against all `K` columns —
//! which at `LANES = 1`, `K = 1` degenerates to exactly the old scalar
//! kernels' per-element order. Each accumulator therefore sees the same
//! operation sequence the old hand-written kernels produced, and the
//! 200-seed gate in this module's tests pins that equivalence bitwise
//! against lane-exact simulators of the deleted kernels.
//!
//! All kernels accumulate (`+=`) into their output slice.

use crate::engine::{LaneEngine, ScalarEngine};
use spmv_core::{Index, Scalar};

/// One BCSR block row against `K` input vectors.
///
/// Blocks `kb` start at **absolute** column `bcols[kb]` with row-major
/// values `bvals[kb*R*C .. (kb+1)*R*C]`. `x` holds `K` concatenated
/// input vectors of stride `xs`, `y` holds `K` concatenated output
/// vectors of stride `ys`; the block row's first output row is `y0`.
/// Per output column the accumulation order is independent of `K`, so a
/// `K`-vector call is bitwise-equal to `K` single-vector calls.
///
/// # Panics
///
/// Panics (via slice indexing) if a block reads past a column of `x` —
/// callers route boundary blocks to the clipped kernels in
/// [`crate::scalar`] instead.
#[inline]
pub fn bcsr_core<T: Scalar, E: LaneEngine<T>, const R: usize, const C: usize, const K: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bvals.len(), bcols.len() * R * C);
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    let mut accv = [[E::zero(); K]; R];
    let mut accs = [[T::ZERO; K]; R];
    for (kb, &bc) in bcols.iter().enumerate() {
        let b = &bvals[kb * (R * C)..kb * (R * C) + R * C];
        bcsr_block_step::<T, E, R, C, K>(b, bc as usize, x, xs, &mut accv, &mut accs);
    }
    bcsr_epilogue::<T, E, R, C, K>(&accv, &accs, y, ys, y0);
}

/// Accumulates one dense `R x C` block (values `b`, absolute start column
/// `x0`) into the block row's accumulator tile. Shared verbatim by
/// [`bcsr_core`] and the masked kernels in [`crate::masked`], which is
/// what makes masked-vs-padded bitwise equality structural rather than
/// argued.
#[inline(always)]
pub(crate) fn bcsr_block_step<
    T: Scalar,
    E: LaneEngine<T>,
    const R: usize,
    const C: usize,
    const K: usize,
>(
    b: &[T],
    x0: usize,
    x: &[T],
    xs: usize,
    accv: &mut [[E::Vec; K]; R],
    accs: &mut [[T; K]; R],
) {
    for i in 0..R {
        let row = &b[i * C..i * C + C];
        let mut j = 0;
        while j + E::LANES <= C {
            // SAFETY: `j + LANES <= C`, and each `xb` below is a
            // length-C checked subslice.
            let bv = unsafe { E::load(row.as_ptr().add(j)) };
            for t in 0..K {
                let xb = &x[t * xs + x0..t * xs + x0 + C];
                let xv = unsafe { E::load(xb.as_ptr().add(j)) };
                accv[i][t] = E::mul_acc(accv[i][t], bv, xv);
            }
            j += E::LANES;
        }
        while j < C {
            for t in 0..K {
                accs[i][t] = E::tail_mul_add(accs[i][t], row[j], x[t * xs + x0 + j]);
            }
            j += 1;
        }
    }
}

/// Flushes a BCSR accumulator tile into the output vectors.
#[inline(always)]
pub(crate) fn bcsr_epilogue<
    T: Scalar,
    E: LaneEngine<T>,
    const R: usize,
    const C: usize,
    const K: usize,
>(
    accv: &[[E::Vec; K]; R],
    accs: &[[T; K]; R],
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    for (i, (rowv, rows)) in accv.iter().zip(accs).enumerate() {
        for t in 0..K {
            y[t * ys + y0 + i] += E::finish(rowv[t], rows[t]);
        }
    }
}

/// One BCSD segment against `K` input vectors.
///
/// Diagonal blocks `kb` carry the `B` diagonal values
/// `bvals[kb*B .. (kb+1)*B]`; `bcols[kb]` stores the block's start
/// column **biased by `+B`** (`bcols[kb] = j0 + B`), which keeps
/// left-edge blocks (negative true `j0`) representable in the unsigned
/// index type. This interior kernel requires `bcols[kb] >= B`; edge
/// blocks go through [`crate::scalar::bcsd_segment_clipped`]. Stride
/// and offset conventions match [`bcsr_core`].
#[inline]
pub fn bcsd_core<T: Scalar, E: LaneEngine<T>, const B: usize, const K: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bvals.len(), bcols.len() * B);
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    // `B` lane groups cover every engine (LANES = 1 needs all of them);
    // at most `LANES - 1 <= 7` tail positions.
    let mut accv = [[E::zero(); K]; B];
    let mut acct = [[T::ZERO; K]; 7];
    for (kb, &j0) in bcols.iter().enumerate() {
        let v = &bvals[kb * B..kb * B + B];
        debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
        let j0 = j0 as usize - B;
        bcsd_block_step::<T, E, B, K>(v, j0, x, xs, &mut accv, &mut acct);
    }
    bcsd_epilogue::<T, E, B, K>(&accv, &acct, y, ys, y0);
}

/// Accumulates one dense size-`B` diagonal block (values `v`, true start
/// column `j0`, bias already removed) into the segment's accumulators.
/// Shared verbatim by [`bcsd_core`] and [`crate::masked`].
#[inline(always)]
pub(crate) fn bcsd_block_step<T: Scalar, E: LaneEngine<T>, const B: usize, const K: usize>(
    v: &[T],
    j0: usize,
    x: &[T],
    xs: usize,
    accv: &mut [[E::Vec; K]; B],
    acct: &mut [[T; K]; 7],
) {
    let groups = B / E::LANES;
    let tail = B % E::LANES;
    for (q, acc) in accv.iter_mut().enumerate().take(groups) {
        // SAFETY: `LANES * q + LANES <= B` for `q < groups`, inside
        // the length-B checked subslices `v` and `xb`.
        let bv = unsafe { E::load(v.as_ptr().add(E::LANES * q)) };
        for (t, a) in acc.iter_mut().enumerate() {
            let xb = &x[t * xs + j0..t * xs + j0 + B];
            let xv = unsafe { E::load(xb.as_ptr().add(E::LANES * q)) };
            *a = E::mul_acc(*a, bv, xv);
        }
    }
    for (s, at) in acct.iter_mut().enumerate().take(tail) {
        let p = groups * E::LANES + s;
        for (t, a) in at.iter_mut().enumerate().take(K) {
            *a = E::tail_mul_add(*a, v[p], x[t * xs + j0 + p]);
        }
    }
}

/// Flushes a BCSD accumulator set into the output vectors.
#[inline(always)]
pub(crate) fn bcsd_epilogue<T: Scalar, E: LaneEngine<T>, const B: usize, const K: usize>(
    accv: &[[E::Vec; K]; B],
    acct: &[[T; K]; 7],
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    let groups = B / E::LANES;
    let tail = B % E::LANES;
    for (q, acc) in accv.iter().enumerate().take(groups) {
        for (t, a) in acc.iter().enumerate() {
            for l in 0..E::LANES {
                y[t * ys + y0 + q * E::LANES + l] += E::lane(*a, l);
            }
        }
    }
    for (s, at) in acct.iter().enumerate().take(tail) {
        for (t, &a) in at.iter().enumerate().take(K) {
            y[t * ys + y0 + groups * E::LANES + s] += a;
        }
    }
}

/// Single-vector BCSR block-row kernel: the `K = 1` instantiation of
/// [`bcsr_core`], with the classic `(bvals, bcols, x, yrow)` signature.
#[inline]
pub fn bcsr_row<T: Scalar, E: LaneEngine<T>, const R: usize, const C: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert_eq!(yrow.len(), R);
    bcsr_core::<T, E, R, C, 1>(bvals, bcols, x, 0, yrow, 0, 0);
}

/// Single-vector BCSD segment kernel: the `K = 1` instantiation of
/// [`bcsd_core`].
#[inline]
pub fn bcsd_seg<T: Scalar, E: LaneEngine<T>, const B: usize>(
    bvals: &[T],
    bcols: &[Index],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert_eq!(yseg.len(), B);
    bcsd_core::<T, E, B, 1>(bvals, bcols, x, 0, yseg, 0, 0);
}

/// Dot product of a contiguous value run against the matching slice of
/// the input vector (the 1D-VBL inner kernel).
///
/// The tail folds into the horizontal sum *after* reduction — `sum =
/// hsum(acc); sum = tail_mul_add(sum, ...)` — matching the old SSE
/// kernels' exact ordering (which differs bitwise from reducing a
/// separate tail accumulator when the tail has several elements).
#[inline]
pub fn dot_run_core<T: Scalar, E: LaneEngine<T>>(vals: &[T], x: &[T]) -> T {
    debug_assert_eq!(vals.len(), x.len());
    let n = vals.len();
    let mut acc = E::zero();
    let mut j = 0;
    while j + E::LANES <= n {
        // SAFETY: `j + LANES <= n` bounds both loads.
        unsafe {
            acc = E::mul_acc(acc, E::load(vals.as_ptr().add(j)), E::load(x.as_ptr().add(j)));
        }
        j += E::LANES;
    }
    let mut sum = E::hsum(acc);
    while j < n {
        sum = E::tail_mul_add(sum, vals[j], x[j]);
        j += 1;
    }
    sum
}

/// Convenience alias: the scalar-engine dot product (what
/// [`crate::scalar::dot_run_scalar`] re-exports).
#[inline]
pub fn dot_run_scalar_core<T: Scalar>(vals: &[T], x: &[T]) -> T {
    dot_run_core::<T, ScalarEngine>(vals, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{BlockShape, KernelImpl};

    /// Naive reference for one BCSR block row (`bcols` = absolute start
    /// columns).
    fn bcsr_reference(
        r: usize,
        c: usize,
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        yrow: &mut [f64],
    ) {
        for (k, &bc) in bcols.iter().enumerate() {
            for i in 0..yrow.len() {
                for j in 0..c {
                    let col = bc as usize + j;
                    if col < x.len() {
                        yrow[i] += bvals[k * r * c + i * c + j] * x[col];
                    }
                }
            }
        }
    }

    fn test_vectors(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + (i % 11) as f64).collect()
    }

    #[test]
    fn bcsr_2x2_matches_reference() {
        let bvals = test_vectors(2 * 4); // two blocks
        let bcols = [0u32, 4];
        let x = test_vectors(6);
        let mut y = [0.0; 2];
        let mut yref = [0.0; 2];
        bcsr_row::<f64, ScalarEngine, 2, 2>(&bvals, &bcols, &x, &mut y);
        bcsr_reference(2, 2, &bvals, &bcols, &x, &mut yref);
        assert_eq!(y, yref);
    }

    #[test]
    fn all_shapes_match_reference_both_impls() {
        for shape in BlockShape::search_space() {
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 3;
            let bvals = test_vectors(nb * r * c);
            let bcols: Vec<Index> = vec![0, c as Index, 3 * c as Index];
            let x = test_vectors(4 * c);
            let mut yref = vec![0.0; r];
            bcsr_reference(r, c, &bvals, &bcols, &x, &mut yref);
            for imp in KernelImpl::ALL {
                let mut y = vec![0.0; r];
                let kern = crate::registry::bcsr_row_kernel::<f64>(shape, imp);
                kern(&bvals, &bcols, &x, &mut y);
                for (a, b) in y.iter().zip(&yref) {
                    assert!((a - b).abs() < 1e-9, "shape {shape} {imp:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn unaligned_start_columns_work() {
        // Absolute start columns need not be multiples of C.
        let bvals = [1.0, 1.0];
        let bcols = [3u32];
        let x = test_vectors(6);
        let mut y = [0.0];
        bcsr_row::<f64, ScalarEngine, 1, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y[0], x[3] + x[4]);
    }

    #[test]
    fn kernels_accumulate_not_overwrite() {
        let bvals = [1.0, 1.0, 1.0, 1.0];
        let bcols = [0u32];
        let x = [1.0, 1.0];
        let mut y = [10.0, 20.0];
        bcsr_row::<f64, ScalarEngine, 2, 2>(&bvals, &bcols, &x, &mut y);
        assert_eq!(y, [12.0, 22.0]);
    }

    /// Biases true start columns by `+b`, as the BCSD kernel contract
    /// requires.
    fn biased(b: usize, cols: &[i64]) -> Vec<Index> {
        cols.iter().map(|&j0| (j0 + b as i64) as Index).collect()
    }

    #[test]
    fn bcsd_matches_manual() {
        // Segment of height 3, two diagonal blocks at columns 0 and 4.
        let bvals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bcols = biased(3, &[0, 4]);
        let x = test_vectors(8);
        let mut y = [0.0; 3];
        bcsd_seg::<f64, ScalarEngine, 3>(&bvals, &bcols, &x, &mut y);
        assert_eq!(
            y,
            [
                1.0 * x[0] + 4.0 * x[4],
                2.0 * x[1] + 5.0 * x[5],
                3.0 * x[2] + 6.0 * x[6]
            ]
        );
    }

    #[test]
    fn bcsd_all_sizes_match_scalar_engine_both_impls() {
        for b in 1..=8usize {
            let nb = 5;
            let bcols: Vec<Index> = [0i64, 1, 4, 7, 9].iter().map(|&j0| (j0 + b as i64) as Index).collect();
            let bvals = test_vectors(nb * b);
            let x = test_vectors(9 + b);
            let mut yref = vec![0.5; b];
            let scal = crate::registry::bcsd_seg_kernel::<f64>(b, KernelImpl::Scalar);
            scal(&bvals, &bcols, &x, &mut yref);
            let mut y = vec![0.5; b];
            let simd = crate::registry::bcsd_seg_kernel::<f64>(b, KernelImpl::Simd);
            simd(&bvals, &bcols, &x, &mut y);
            for (p, q) in y.iter().zip(&yref) {
                assert!((p - q).abs() < 1e-9, "b={b}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn bcsr_multi_matches_per_column_single() {
        let bvals = test_vectors(3 * 6); // three 2x3 blocks
        let bcols = [0u32, 3, 6];
        let xs = 12; // columns
        let ys = 5; // rows
        let x: Vec<f64> = test_vectors(4 * xs);
        let mut y = vec![0.0; 4 * ys];
        bcsr_core::<f64, ScalarEngine, 2, 3, 4>(&bvals, &bcols, &x, xs, &mut y, ys, 2);
        for t in 0..4 {
            let mut yref = [0.0; 2];
            bcsr_row::<f64, ScalarEngine, 2, 3>(&bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 2..t * ys + 4], &yref, "column {t}");
            assert_eq!(y[t * ys], 0.0, "rows outside the block row stay untouched");
        }
    }

    #[test]
    fn bcsd_multi_matches_per_column_single() {
        let bvals = test_vectors(2 * 3); // two size-3 diagonal blocks
        let bcols = biased(3, &[0, 4]);
        let xs = 8;
        let ys = 6;
        let x: Vec<f64> = test_vectors(4 * xs);
        let mut y = vec![0.0; 4 * ys];
        bcsd_core::<f64, ScalarEngine, 3, 4>(&bvals, &bcols, &x, xs, &mut y, ys, 1);
        for t in 0..4 {
            let mut yref = [0.0; 3];
            bcsd_seg::<f64, ScalarEngine, 3>(&bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(&y[t * ys + 1..t * ys + 4], &yref, "column {t}");
        }
    }

    #[test]
    fn simd_engine_multi_matches_per_column_single_bitwise() {
        // The K-vector core must be bitwise-equal to K single calls for
        // the SIMD engines too (per-accumulator order is K-independent).
        type E64 = <f64 as crate::simd::SimdScalar>::Engine;
        let bvals = test_vectors(3 * 8); // three 2x4 blocks
        let bcols = [0u32, 4, 8];
        let xs = 16;
        let ys = 4;
        let x: Vec<f64> = test_vectors(4 * xs);
        let mut y = vec![0.0; 4 * ys];
        bcsr_core::<f64, E64, 2, 4, 4>(&bvals, &bcols, &x, xs, &mut y, ys, 1);
        for t in 0..4 {
            let mut yref = [0.0; 2];
            bcsr_row::<f64, E64, 2, 4>(&bvals, &bcols, &x[t * xs..(t + 1) * xs], &mut yref);
            assert_eq!(
                &y[t * ys + 1..t * ys + 3].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                &yref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "column {t}"
            );
        }
    }

    #[test]
    fn dot_run_core_handles_all_tail_lengths() {
        for n in 0..20 {
            let v = test_vectors(n);
            let x = test_vectors(n);
            let scalar = dot_run_scalar_core(&v, &x);
            let simd = dot_run_core::<f64, <f64 as crate::simd::SimdScalar>::Engine>(&v, &x);
            assert!((scalar - simd).abs() < 1e-9, "n={n}");
        }
    }
}
