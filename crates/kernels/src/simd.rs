//! SIMD engine selection per scalar type.
//!
//! The paper's `sp-simd` / `dp-simd` configurations use SSE2, which is
//! part of the x86-64 baseline, so on that architecture the engines are
//! always available — no runtime feature detection is needed.
//!
//! Historically this module carried a full second copy of every kernel,
//! hand-written with intrinsics. Those are gone: the generic cores in
//! [`crate::block`] are instantiated with a [`LaneEngine`], and all this
//! module keeps is the *choice* of engine — [`SimdScalar::Engine`] names
//! the vector engine a scalar type uses when a `KernelImpl::Simd` kernel
//! is requested from [`crate::registry`]. On non-x86-64 targets that
//! engine is [`ScalarEngine`], so the `*-simd` configurations still
//! exist (they just coincide with the scalar ones) — the same fallback
//! rule the old per-method dispatch had; the performance models then
//! simply never find them faster.
//!
//! The 200-seed gate in `crate::gate` pins every dispatched kernel
//! bitwise to lane-exact simulators of the deleted hand-written
//! originals.

use crate::engine::LaneEngine;
use spmv_core::Scalar;

#[cfg(not(target_arch = "x86_64"))]
use crate::engine::ScalarEngine;
#[cfg(target_arch = "x86_64")]
use crate::engine::{SseF32, SseF64};

/// Scalars with a designated SIMD lane engine.
///
/// Storage formats and the profiler bound their element type by this
/// trait so one generic implementation serves both kernel flavours; the
/// registry instantiates the block cores with
/// [`ScalarEngine`](crate::engine::ScalarEngine) for
/// [`KernelImpl::Scalar`](crate::shapes::KernelImpl) and with
/// [`Self::Engine`] for [`KernelImpl::Simd`](crate::shapes::KernelImpl).
pub trait SimdScalar: Scalar {
    /// The lane engine backing this scalar's `KernelImpl::Simd` kernels.
    type Engine: LaneEngine<Self>;
}

#[cfg(target_arch = "x86_64")]
impl SimdScalar for f64 {
    type Engine = SseF64;
}

#[cfg(target_arch = "x86_64")]
impl SimdScalar for f32 {
    type Engine = SseF32;
}

#[cfg(not(target_arch = "x86_64"))]
impl SimdScalar for f64 {
    type Engine = ScalarEngine;
}

#[cfg(not(target_arch = "x86_64"))]
impl SimdScalar for f32 {
    type Engine = ScalarEngine;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_engines_have_expected_lane_counts() {
        let f64_lanes = <<f64 as SimdScalar>::Engine as LaneEngine<f64>>::LANES;
        let f32_lanes = <<f32 as SimdScalar>::Engine as LaneEngine<f32>>::LANES;
        if cfg!(target_arch = "x86_64") {
            assert_eq!(f64_lanes, 2);
            assert_eq!(f32_lanes, 4);
        } else {
            assert_eq!(f64_lanes, 1);
            assert_eq!(f32_lanes, 1);
        }
    }
}
