//! SSE2-vectorized kernel variants.
//!
//! The paper's `sp-simd` / `dp-simd` configurations use SSE2, which is part
//! of the x86-64 baseline, so on that architecture the intrinsics are
//! always available — no runtime feature detection is needed. On other
//! architectures [`SimdScalar`] falls back to the scalar kernels so that
//! the `*-simd` configurations still exist (they just coincide with the
//! scalar ones); the performance models then simply never find them
//! faster.
//!
//! Vectorization strategy, matching the paper's §III observation that
//! block kernels expose short dense inner loops:
//!
//! * **BCSR r×c**: each block row keeps one 2-lane (`f64`) or 4-lane
//!   (`f32`) accumulator per block *row*; the per-row dot over the block's
//!   `c` columns is vectorized, with a scalar tail when `c` is not a lane
//!   multiple. Column counts below the lane width degenerate to scalar —
//!   the paper likewise notes that narrow blocks do not vectorize
//!   profitably ("hardware limitations of the vector units … can
//!   significantly affect the overall performance", §III).
//! * **BCSD b**: the diagonal multiply `y[t] += v[t] * x[j0+t]` is a pure
//!   element-wise SIMD operation over `t`, accumulated in registers for a
//!   whole segment.
//! * **1D-VBL**: variable-length contiguous runs use a runtime-length
//!   vectorized dot product.

use crate::scalar;
use crate::shapes::BlockShape;
use spmv_core::{Index, Scalar};

/// Kernel function type for one BCSR block row (see
/// [`crate::registry::BcsrRowKernel`]).
pub type BcsrRowKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);
/// Kernel function type for one BCSD segment (see
/// [`crate::registry::BcsdSegKernel`]).
pub type BcsdSegKernel<T> = fn(&[T], &[Index], &[T], &mut [T]);
/// Multi-vector BCSR block-row kernel type (see
/// [`crate::registry::BcsrRowMultiKernel`]).
pub type BcsrRowMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);
/// Multi-vector BCSD segment kernel type (see
/// [`crate::registry::BcsdSegMultiKernel`]).
pub type BcsdSegMultiKernel<T> = fn(&[T], &[Index], &[T], usize, &mut [T], usize, usize);

/// Scalars that may provide SIMD kernel variants.
///
/// The default methods return `None` / delegate to the scalar kernels;
/// x86-64 builds override them for `f32` and `f64` with SSE2
/// implementations. Storage formats bound their element type by this trait
/// so a single generic implementation serves both kernel flavours.
pub trait SimdScalar: Scalar {
    /// SSE2 BCSR block-row kernel for `shape`, if one exists.
    fn bcsr_row_simd(shape: BlockShape) -> Option<BcsrRowKernel<Self>> {
        let _ = shape;
        None
    }

    /// SSE2 BCSD segment kernel for diagonal size `b`, if one exists.
    fn bcsd_seg_simd(b: usize) -> Option<BcsdSegKernel<Self>> {
        let _ = b;
        None
    }

    /// Vectorized dot product of a contiguous run (1D-VBL inner kernel);
    /// the default is the scalar implementation.
    fn dot_run_simd(vals: &[Self], x: &[Self]) -> Self {
        scalar::dot_run_scalar(vals, x)
    }

    /// SSE2 multi-vector BCSR block-row kernel for `(shape, k)`, if one
    /// exists (`k ∈ {1, 2, 4, 8}`).
    fn bcsr_row_multi_simd(shape: BlockShape, k: usize) -> Option<BcsrRowMultiKernel<Self>> {
        let _ = (shape, k);
        None
    }

    /// SSE2 multi-vector BCSD segment kernel for `(b, k)`, if one exists.
    fn bcsd_seg_multi_simd(b: usize, k: usize) -> Option<BcsdSegMultiKernel<Self>> {
        let _ = (b, k);
        None
    }
}

#[cfg(not(target_arch = "x86_64"))]
impl SimdScalar for f32 {}
#[cfg(not(target_arch = "x86_64"))]
impl SimdScalar for f64 {}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Horizontal sum of a 2-lane double vector.
    #[inline(always)]
    unsafe fn hsum_pd(v: __m128d) -> f64 {
        _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v))
    }

    /// Horizontal sum of a 4-lane float vector (SSE1-only shuffles).
    #[inline(always)]
    unsafe fn hsum_ps(v: __m128) -> f32 {
        let hi = _mm_movehl_ps(v, v); // lanes [2, 3, 2, 3]
        let sum2 = _mm_add_ps(v, hi); // lanes [0+2, 1+3, _, _]
        let lane1 = _mm_shuffle_ps(sum2, sum2, 0b01_01_01_01);
        _mm_cvtss_f32(_mm_add_ss(sum2, lane1))
    }

    /// SSE2 BCSR block-row kernel, `f64`, monomorphized per shape.
    pub fn bcsr_row_f64<const R: usize, const C: usize>(
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        yrow: &mut [f64],
    ) {
        debug_assert_eq!(yrow.len(), R);
        debug_assert_eq!(bvals.len(), bcols.len() * R * C);
        // SAFETY: every pointer arithmetic below stays inside `xb` and
        // `row`, which are length-checked subslices.
        unsafe {
            let mut accv = [_mm_setzero_pd(); R];
            let mut accs = [0.0f64; R];
            for (k, &bc) in bcols.iter().enumerate() {
                let x0 = bc as usize;
                let xb = &x[x0..x0 + C];
                let b = &bvals[k * (R * C)..k * (R * C) + R * C];
                for i in 0..R {
                    let row = &b[i * C..i * C + C];
                    let mut j = 0;
                    while j + 2 <= C {
                        let bv = _mm_loadu_pd(row.as_ptr().add(j));
                        let xv = _mm_loadu_pd(xb.as_ptr().add(j));
                        accv[i] = _mm_add_pd(accv[i], _mm_mul_pd(bv, xv));
                        j += 2;
                    }
                    if j < C {
                        accs[i] += row[j] * xb[j];
                    }
                }
            }
            for i in 0..R {
                yrow[i] += hsum_pd(accv[i]) + accs[i];
            }
        }
    }

    /// SSE2 BCSR block-row kernel, `f32`, monomorphized per shape.
    pub fn bcsr_row_f32<const R: usize, const C: usize>(
        bvals: &[f32],
        bcols: &[Index],
        x: &[f32],
        yrow: &mut [f32],
    ) {
        debug_assert_eq!(yrow.len(), R);
        debug_assert_eq!(bvals.len(), bcols.len() * R * C);
        // SAFETY: as in `bcsr_row_f64`.
        unsafe {
            let mut accv = [_mm_setzero_ps(); R];
            let mut accs = [0.0f32; R];
            for (k, &bc) in bcols.iter().enumerate() {
                let x0 = bc as usize;
                let xb = &x[x0..x0 + C];
                let b = &bvals[k * (R * C)..k * (R * C) + R * C];
                for i in 0..R {
                    let row = &b[i * C..i * C + C];
                    let mut j = 0;
                    while j + 4 <= C {
                        let bv = _mm_loadu_ps(row.as_ptr().add(j));
                        let xv = _mm_loadu_ps(xb.as_ptr().add(j));
                        accv[i] = _mm_add_ps(accv[i], _mm_mul_ps(bv, xv));
                        j += 4;
                    }
                    while j < C {
                        accs[i] += row[j] * xb[j];
                        j += 1;
                    }
                }
            }
            for i in 0..R {
                yrow[i] += hsum_ps(accv[i]) + accs[i];
            }
        }
    }

    /// SSE2 BCSD segment kernel, `f64`.
    pub fn bcsd_seg_f64<const B: usize>(
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        yseg: &mut [f64],
    ) {
        debug_assert_eq!(yseg.len(), B);
        debug_assert_eq!(bvals.len(), bcols.len() * B);
        // SAFETY: `v` and `xb` are length-B checked subslices; lane
        // offsets 2q+1 < B by loop bound.
        unsafe {
            let mut accv = [_mm_setzero_pd(); 4]; // B <= 8 => at most 4 pairs
            let mut acct = 0.0f64;
            let pairs = B / 2;
            for (k, &j0) in bcols.iter().enumerate() {
                let v = &bvals[k * B..k * B + B];
                debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
                let j0 = j0 as usize - B;
                let xb = &x[j0..j0 + B];
                for (q, acc) in accv.iter_mut().enumerate().take(pairs) {
                    let bv = _mm_loadu_pd(v.as_ptr().add(2 * q));
                    let xv = _mm_loadu_pd(xb.as_ptr().add(2 * q));
                    *acc = _mm_add_pd(*acc, _mm_mul_pd(bv, xv));
                }
                if B % 2 == 1 {
                    acct += v[B - 1] * xb[B - 1];
                }
            }
            for (q, acc) in accv.iter().enumerate().take(pairs) {
                yseg[2 * q] += _mm_cvtsd_f64(*acc);
                yseg[2 * q + 1] += _mm_cvtsd_f64(_mm_unpackhi_pd(*acc, *acc));
            }
            if B % 2 == 1 {
                yseg[B - 1] += acct;
            }
        }
    }

    /// SSE2 BCSD segment kernel, `f32`.
    pub fn bcsd_seg_f32<const B: usize>(
        bvals: &[f32],
        bcols: &[Index],
        x: &[f32],
        yseg: &mut [f32],
    ) {
        debug_assert_eq!(yseg.len(), B);
        debug_assert_eq!(bvals.len(), bcols.len() * B);
        // SAFETY: as in `bcsd_seg_f64`.
        unsafe {
            let mut accv = [_mm_setzero_ps(); 2]; // B <= 8 => at most 2 quads
            let mut acct = [0.0f32; 3]; // at most 3 tail lanes
            let quads = B / 4;
            let tail = B % 4;
            for (k, &j0) in bcols.iter().enumerate() {
                let v = &bvals[k * B..k * B + B];
                debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
                let j0 = j0 as usize - B;
                let xb = &x[j0..j0 + B];
                for (q, acc) in accv.iter_mut().enumerate().take(quads) {
                    let bv = _mm_loadu_ps(v.as_ptr().add(4 * q));
                    let xv = _mm_loadu_ps(xb.as_ptr().add(4 * q));
                    *acc = _mm_add_ps(*acc, _mm_mul_ps(bv, xv));
                }
                for t in 0..tail {
                    acct[t] += v[4 * quads + t] * xb[4 * quads + t];
                }
            }
            for (q, acc) in accv.iter().enumerate().take(quads) {
                let mut lanes = [0.0f32; 4];
                _mm_storeu_ps(lanes.as_mut_ptr(), *acc);
                for (t, lane) in lanes.iter().enumerate() {
                    yseg[4 * q + t] += lane;
                }
            }
            for t in 0..tail {
                yseg[4 * quads + t] += acct[t];
            }
        }
    }

    /// Runtime-length SSE2 dot product, `f64` (1D-VBL runs).
    pub fn dot_run_f64(vals: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(vals.len(), x.len());
        let n = vals.len();
        // SAFETY: offsets j+1 < n inside the 2-wide loop.
        unsafe {
            let mut acc = _mm_setzero_pd();
            let mut j = 0;
            while j + 2 <= n {
                let bv = _mm_loadu_pd(vals.as_ptr().add(j));
                let xv = _mm_loadu_pd(x.as_ptr().add(j));
                acc = _mm_add_pd(acc, _mm_mul_pd(bv, xv));
                j += 2;
            }
            let mut sum = hsum_pd(acc);
            if j < n {
                sum += vals[j] * x[j];
            }
            sum
        }
    }

    /// SSE2 multi-vector BCSR block-row kernel, `f64`, monomorphized per
    /// `(shape, K)`.
    ///
    /// Each block-value vector is loaded once and multiplied against the
    /// `K` input columns, keeping an `R × K` tile of 2-lane accumulators
    /// in registers. Per output column the vector-op sequence matches
    /// [`bcsr_row_f64`] exactly, so results are bitwise-equal to `K`
    /// single-vector SIMD calls.
    pub fn bcsr_row_multi_f64<const R: usize, const C: usize, const K: usize>(
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        xs: usize,
        y: &mut [f64],
        ys: usize,
        y0: usize,
    ) {
        debug_assert_eq!(bvals.len(), bcols.len() * R * C);
        debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
        // SAFETY: pointer offsets stay inside length-checked subslices.
        unsafe {
            let mut accv = [[_mm_setzero_pd(); K]; R];
            let mut accs = [[0.0f64; K]; R];
            for (kb, &bc) in bcols.iter().enumerate() {
                let x0 = bc as usize;
                let b = &bvals[kb * (R * C)..kb * (R * C) + R * C];
                for i in 0..R {
                    let row = &b[i * C..i * C + C];
                    let mut j = 0;
                    while j + 2 <= C {
                        let bv = _mm_loadu_pd(row.as_ptr().add(j));
                        for t in 0..K {
                            let xb = &x[t * xs + x0..t * xs + x0 + C];
                            let xv = _mm_loadu_pd(xb.as_ptr().add(j));
                            accv[i][t] = _mm_add_pd(accv[i][t], _mm_mul_pd(bv, xv));
                        }
                        j += 2;
                    }
                    if j < C {
                        for t in 0..K {
                            accs[i][t] += row[j] * x[t * xs + x0 + j];
                        }
                    }
                }
            }
            for i in 0..R {
                for t in 0..K {
                    y[t * ys + y0 + i] += hsum_pd(accv[i][t]) + accs[i][t];
                }
            }
        }
    }

    /// SSE2 multi-vector BCSR block-row kernel, `f32`; see
    /// [`bcsr_row_multi_f64`].
    pub fn bcsr_row_multi_f32<const R: usize, const C: usize, const K: usize>(
        bvals: &[f32],
        bcols: &[Index],
        x: &[f32],
        xs: usize,
        y: &mut [f32],
        ys: usize,
        y0: usize,
    ) {
        debug_assert_eq!(bvals.len(), bcols.len() * R * C);
        debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
        // SAFETY: as in `bcsr_row_multi_f64`.
        unsafe {
            let mut accv = [[_mm_setzero_ps(); K]; R];
            let mut accs = [[0.0f32; K]; R];
            for (kb, &bc) in bcols.iter().enumerate() {
                let x0 = bc as usize;
                let b = &bvals[kb * (R * C)..kb * (R * C) + R * C];
                for i in 0..R {
                    let row = &b[i * C..i * C + C];
                    let mut j = 0;
                    while j + 4 <= C {
                        let bv = _mm_loadu_ps(row.as_ptr().add(j));
                        for t in 0..K {
                            let xb = &x[t * xs + x0..t * xs + x0 + C];
                            let xv = _mm_loadu_ps(xb.as_ptr().add(j));
                            accv[i][t] = _mm_add_ps(accv[i][t], _mm_mul_ps(bv, xv));
                        }
                        j += 4;
                    }
                    while j < C {
                        for t in 0..K {
                            accs[i][t] += row[j] * x[t * xs + x0 + j];
                        }
                        j += 1;
                    }
                }
            }
            for i in 0..R {
                for t in 0..K {
                    y[t * ys + y0 + i] += hsum_ps(accv[i][t]) + accs[i][t];
                }
            }
        }
    }

    /// SSE2 multi-vector BCSD segment kernel, `f64`; per output column the
    /// vector-op sequence matches [`bcsd_seg_f64`] exactly.
    pub fn bcsd_seg_multi_f64<const B: usize, const K: usize>(
        bvals: &[f64],
        bcols: &[Index],
        x: &[f64],
        xs: usize,
        y: &mut [f64],
        ys: usize,
        y0: usize,
    ) {
        debug_assert_eq!(bvals.len(), bcols.len() * B);
        debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
        // SAFETY: `v` and `xb` are length-B checked subslices.
        unsafe {
            let mut accv = [[_mm_setzero_pd(); K]; 4]; // B <= 8 => at most 4 pairs
            let mut acct = [0.0f64; K];
            let pairs = B / 2;
            for (kb, &j0) in bcols.iter().enumerate() {
                let v = &bvals[kb * B..kb * B + B];
                debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
                let j0 = j0 as usize - B;
                for (q, acc) in accv.iter_mut().enumerate().take(pairs) {
                    let bv = _mm_loadu_pd(v.as_ptr().add(2 * q));
                    for t in 0..K {
                        let xb = &x[t * xs + j0..t * xs + j0 + B];
                        let xv = _mm_loadu_pd(xb.as_ptr().add(2 * q));
                        acc[t] = _mm_add_pd(acc[t], _mm_mul_pd(bv, xv));
                    }
                }
                if B % 2 == 1 {
                    for t in 0..K {
                        acct[t] += v[B - 1] * x[t * xs + j0 + B - 1];
                    }
                }
            }
            for (q, acc) in accv.iter().enumerate().take(pairs) {
                for t in 0..K {
                    y[t * ys + y0 + 2 * q] += _mm_cvtsd_f64(acc[t]);
                    y[t * ys + y0 + 2 * q + 1] += _mm_cvtsd_f64(_mm_unpackhi_pd(acc[t], acc[t]));
                }
            }
            if B % 2 == 1 {
                for t in 0..K {
                    y[t * ys + y0 + B - 1] += acct[t];
                }
            }
        }
    }

    /// SSE2 multi-vector BCSD segment kernel, `f32`; see
    /// [`bcsd_seg_multi_f64`].
    pub fn bcsd_seg_multi_f32<const B: usize, const K: usize>(
        bvals: &[f32],
        bcols: &[Index],
        x: &[f32],
        xs: usize,
        y: &mut [f32],
        ys: usize,
        y0: usize,
    ) {
        debug_assert_eq!(bvals.len(), bcols.len() * B);
        debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
        // SAFETY: as in `bcsd_seg_multi_f64`.
        unsafe {
            let mut accv = [[_mm_setzero_ps(); K]; 2]; // B <= 8 => at most 2 quads
            let mut acct = [[0.0f32; K]; 3]; // at most 3 tail lanes
            let quads = B / 4;
            let tail = B % 4;
            for (kb, &j0) in bcols.iter().enumerate() {
                let v = &bvals[kb * B..kb * B + B];
                debug_assert!(j0 as usize >= B, "left-clipped block in interior kernel");
                let j0 = j0 as usize - B;
                for (q, acc) in accv.iter_mut().enumerate().take(quads) {
                    let bv = _mm_loadu_ps(v.as_ptr().add(4 * q));
                    for t in 0..K {
                        let xb = &x[t * xs + j0..t * xs + j0 + B];
                        let xv = _mm_loadu_ps(xb.as_ptr().add(4 * q));
                        acc[t] = _mm_add_ps(acc[t], _mm_mul_ps(bv, xv));
                    }
                }
                for (s, at) in acct.iter_mut().enumerate().take(tail) {
                    for (t, a) in at.iter_mut().enumerate().take(K) {
                        *a += v[4 * quads + s] * x[t * xs + j0 + 4 * quads + s];
                    }
                }
            }
            for (q, acc) in accv.iter().enumerate().take(quads) {
                for t in 0..K {
                    let mut lanes = [0.0f32; 4];
                    _mm_storeu_ps(lanes.as_mut_ptr(), acc[t]);
                    for (s, lane) in lanes.iter().enumerate() {
                        y[t * ys + y0 + 4 * q + s] += lane;
                    }
                }
            }
            for (s, at) in acct.iter().enumerate().take(tail) {
                for (t, &a) in at.iter().enumerate().take(K) {
                    y[t * ys + y0 + 4 * quads + s] += a;
                }
            }
        }
    }

    /// Runtime-length SSE2 dot product, `f32` (1D-VBL runs).
    pub fn dot_run_f32(vals: &[f32], x: &[f32]) -> f32 {
        debug_assert_eq!(vals.len(), x.len());
        let n = vals.len();
        // SAFETY: offsets j+3 < n inside the 4-wide loop.
        unsafe {
            let mut acc = _mm_setzero_ps();
            let mut j = 0;
            while j + 4 <= n {
                let bv = _mm_loadu_ps(vals.as_ptr().add(j));
                let xv = _mm_loadu_ps(x.as_ptr().add(j));
                acc = _mm_add_ps(acc, _mm_mul_ps(bv, xv));
                j += 4;
            }
            let mut sum = hsum_ps(acc);
            while j < n {
                sum += vals[j] * x[j];
                j += 1;
            }
            sum
        }
    }
}

/// Expands to a `match` mapping a runtime [`BlockShape`] onto a
/// monomorphized `<const R, const C>` kernel.
///
/// `$apply` is a caller-defined callback macro receiving the two literal
/// shape dimensions; it must expand to `Some(<kernel fn pointer>)`. The
/// indirection lets one dispatch table serve kernels with different
/// generic signatures (scalar kernels carry a `T` parameter, the SSE2
/// kernels are type-specific).
macro_rules! dispatch_shape {
    ($shape:expr, $apply:ident) => {
        match ($shape.r, $shape.c) {
            (1, 1) => $apply!(1, 1),
            (1, 2) => $apply!(1, 2),
            (1, 3) => $apply!(1, 3),
            (1, 4) => $apply!(1, 4),
            (1, 5) => $apply!(1, 5),
            (1, 6) => $apply!(1, 6),
            (1, 7) => $apply!(1, 7),
            (1, 8) => $apply!(1, 8),
            (2, 1) => $apply!(2, 1),
            (2, 2) => $apply!(2, 2),
            (2, 3) => $apply!(2, 3),
            (2, 4) => $apply!(2, 4),
            (3, 1) => $apply!(3, 1),
            (3, 2) => $apply!(3, 2),
            (4, 1) => $apply!(4, 1),
            (4, 2) => $apply!(4, 2),
            (5, 1) => $apply!(5, 1),
            (6, 1) => $apply!(6, 1),
            (7, 1) => $apply!(7, 1),
            (8, 1) => $apply!(8, 1),
            _ => None,
        }
    };
}

/// Expands to a `match` mapping a runtime BCSD size onto a monomorphized
/// `<const B>` kernel; same callback convention as [`dispatch_shape`].
macro_rules! dispatch_size {
    ($b:expr, $apply:ident) => {
        match $b {
            1 => $apply!(1),
            2 => $apply!(2),
            3 => $apply!(3),
            4 => $apply!(4),
            5 => $apply!(5),
            6 => $apply!(6),
            7 => $apply!(7),
            8 => $apply!(8),
            _ => None,
        }
    };
}

/// Expands to a `match` mapping a runtime vector count `k` onto a
/// monomorphized kernel whose **last** const parameter is `K`; the leading
/// const parameters (shape dims or BCSD size) are passed through as
/// literals. Only the specialized counts `k ∈ {1, 2, 4, 8}` exist — other
/// counts return `None` and callers chunk `k` greedily (8, 4, 2, 1).
macro_rules! dispatch_k {
    ($k:expr, [$($kern:tt)+], $ty:ty, $($dims:tt),+) => {
        match $k {
            1 => Some($($kern)+::<$($dims),+, 1> as $ty),
            2 => Some($($kern)+::<$($dims),+, 2> as $ty),
            4 => Some($($kern)+::<$($dims),+, 4> as $ty),
            8 => Some($($kern)+::<$($dims),+, 8> as $ty),
            _ => None,
        }
    };
}

pub(crate) use dispatch_k;
pub(crate) use dispatch_shape;
pub(crate) use dispatch_size;

#[cfg(target_arch = "x86_64")]
impl SimdScalar for f64 {
    fn bcsr_row_simd(shape: BlockShape) -> Option<BcsrRowKernel<f64>> {
        macro_rules! apply {
            ($r:literal, $c:literal) => {
                Some(x86::bcsr_row_f64::<$r, $c> as BcsrRowKernel<f64>)
            };
        }
        dispatch_shape!(shape, apply)
    }

    fn bcsd_seg_simd(b: usize) -> Option<BcsdSegKernel<f64>> {
        macro_rules! apply {
            ($b:literal) => {
                Some(x86::bcsd_seg_f64::<$b> as BcsdSegKernel<f64>)
            };
        }
        dispatch_size!(b, apply)
    }

    fn dot_run_simd(vals: &[f64], x: &[f64]) -> f64 {
        x86::dot_run_f64(vals, x)
    }

    fn bcsr_row_multi_simd(shape: BlockShape, k: usize) -> Option<BcsrRowMultiKernel<f64>> {
        macro_rules! apply {
            ($r:literal, $c:literal) => {
                dispatch_k!(k, [x86::bcsr_row_multi_f64], BcsrRowMultiKernel<f64>, $r, $c)
            };
        }
        dispatch_shape!(shape, apply)
    }

    fn bcsd_seg_multi_simd(b: usize, k: usize) -> Option<BcsdSegMultiKernel<f64>> {
        macro_rules! apply {
            ($b:literal) => {
                dispatch_k!(k, [x86::bcsd_seg_multi_f64], BcsdSegMultiKernel<f64>, $b)
            };
        }
        dispatch_size!(b, apply)
    }
}

#[cfg(target_arch = "x86_64")]
impl SimdScalar for f32 {
    fn bcsr_row_simd(shape: BlockShape) -> Option<BcsrRowKernel<f32>> {
        macro_rules! apply {
            ($r:literal, $c:literal) => {
                Some(x86::bcsr_row_f32::<$r, $c> as BcsrRowKernel<f32>)
            };
        }
        dispatch_shape!(shape, apply)
    }

    fn bcsd_seg_simd(b: usize) -> Option<BcsdSegKernel<f32>> {
        macro_rules! apply {
            ($b:literal) => {
                Some(x86::bcsd_seg_f32::<$b> as BcsdSegKernel<f32>)
            };
        }
        dispatch_size!(b, apply)
    }

    fn dot_run_simd(vals: &[f32], x: &[f32]) -> f32 {
        x86::dot_run_f32(vals, x)
    }

    fn bcsr_row_multi_simd(shape: BlockShape, k: usize) -> Option<BcsrRowMultiKernel<f32>> {
        macro_rules! apply {
            ($r:literal, $c:literal) => {
                dispatch_k!(k, [x86::bcsr_row_multi_f32], BcsrRowMultiKernel<f32>, $r, $c)
            };
        }
        dispatch_shape!(shape, apply)
    }

    fn bcsd_seg_multi_simd(b: usize, k: usize) -> Option<BcsdSegMultiKernel<f32>> {
        macro_rules! apply {
            ($b:literal) => {
                dispatch_k!(k, [x86::bcsd_seg_multi_f32], BcsdSegMultiKernel<f32>, $b)
            };
        }
        dispatch_size!(b, apply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::BCSD_SIZES;

    fn fill_f64(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.25 + (i % 13) as f64).collect()
    }

    fn fill_f32(n: usize) -> Vec<f32> {
        (0..n).map(|i| 0.25 + (i % 13) as f32).collect()
    }

    #[test]
    fn simd_bcsr_matches_scalar_f64() {
        for shape in BlockShape::search_space() {
            let Some(simd) = f64::bcsr_row_simd(shape) else {
                continue;
            };
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 4;
            let bvals = fill_f64(nb * r * c);
            let bcols: Vec<u32> = [0usize, 2, 3, 5].iter().map(|&b| (b * c) as u32).collect();
            let x = fill_f64(6 * c);
            let mut ys = vec![1.0; r];
            let mut yv = vec![1.0; r];
            let scal =
                crate::registry::bcsr_row_kernel::<f64>(shape, crate::KernelImpl::Scalar);
            scal(&bvals, &bcols, &x, &mut ys);
            simd(&bvals, &bcols, &x, &mut yv);
            for (a, b) in ys.iter().zip(&yv) {
                assert!((a - b).abs() < 1e-9, "shape {shape}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn simd_bcsr_matches_scalar_f32() {
        for shape in BlockShape::search_space() {
            let Some(simd) = f32::bcsr_row_simd(shape) else {
                continue;
            };
            let (r, c) = (shape.rows(), shape.cols());
            let nb = 4;
            let bvals = fill_f32(nb * r * c);
            let bcols: Vec<u32> = [0usize, 2, 3, 5].iter().map(|&b| (b * c) as u32).collect();
            let x = fill_f32(6 * c);
            let mut ys = vec![1.0f32; r];
            let mut yv = vec![1.0f32; r];
            let scal =
                crate::registry::bcsr_row_kernel::<f32>(shape, crate::KernelImpl::Scalar);
            scal(&bvals, &bcols, &x, &mut ys);
            simd(&bvals, &bcols, &x, &mut yv);
            for (a, b) in ys.iter().zip(&yv) {
                assert!((a - b).abs() < 1e-3, "shape {shape}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn simd_bcsd_matches_scalar_both_precisions() {
        for &b in &BCSD_SIZES {
            let nb = 5;
            let bcols: Vec<u32> = [0usize, 1, 4, 7, 9]
                .iter()
                .map(|&j0| (j0 + b) as u32)
                .collect();

            if let Some(simd) = f64::bcsd_seg_simd(b) {
                let bvals = fill_f64(nb * b);
                let x = fill_f64(9 + b);
                let mut ys = vec![0.5; b];
                let mut yv = vec![0.5; b];
                let scal =
                    crate::registry::bcsd_seg_kernel::<f64>(b, crate::KernelImpl::Scalar);
                scal(&bvals, &bcols, &x, &mut ys);
                simd(&bvals, &bcols, &x, &mut yv);
                for (p, q) in ys.iter().zip(&yv) {
                    assert!((p - q).abs() < 1e-9, "b={b}: {p} vs {q}");
                }
            }

            if let Some(simd) = f32::bcsd_seg_simd(b) {
                let bvals = fill_f32(nb * b);
                let x = fill_f32(9 + b);
                let mut ys = vec![0.5f32; b];
                let mut yv = vec![0.5f32; b];
                let scal =
                    crate::registry::bcsd_seg_kernel::<f32>(b, crate::KernelImpl::Scalar);
                scal(&bvals, &bcols, &x, &mut ys);
                simd(&bvals, &bcols, &x, &mut yv);
                for (p, q) in ys.iter().zip(&yv) {
                    assert!((p - q).abs() < 1e-2, "b={b}: {p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn simd_dot_run_matches_scalar() {
        for n in 0..20 {
            let v64 = fill_f64(n);
            let x64 = fill_f64(n);
            let s = crate::scalar::dot_run_scalar(&v64, &x64);
            let d = f64::dot_run_simd(&v64, &x64);
            assert!((s - d).abs() < 1e-9, "n={n}");

            let v32 = fill_f32(n);
            let x32 = fill_f32(n);
            let s = crate::scalar::dot_run_scalar(&v32, &x32);
            let d = f32::dot_run_simd(&v32, &x32);
            assert!((s - d).abs() < 1e-2, "n={n}");
        }
    }
}
