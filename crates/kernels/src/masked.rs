//! Masked (padding-free) block kernels.
//!
//! Blocked formats classically zero-pad partially filled blocks so the
//! per-shape kernels can run dense — every padded zero costs a stored
//! value byte and a multiply. The masked variants instead store **only
//! the real nonzeros**, packed in position order, plus one occupancy
//! byte per block: bit `p` of the [`Mask`] is set iff dense position `p`
//! (row-major `i*C + j` for BCSR, diagonal offset for BCSD) is present.
//! `r·c <= 8` ([`crate::MAX_BLOCK_ELEMS`]) makes a `u8` always enough.
//!
//! The kernels take the *expand* strategy from Bramas & Kus: a partial
//! block is scattered into a dense stack buffer and then runs through
//! the **same** per-block accumulation step as the dense core
//! ([`crate::block::bcsr_block_step`] / [`bcsd_block_step`]); a
//! full-occupancy block (mask all-ones, the common case in well-blocked
//! regions) skips the copy and borrows the packed values directly. Two
//! buffer slots alternate in a short software pipeline — block `k+1` is
//! scattered while block `k` is multiplied — and each scatter clears
//! only the positions its slot's *previous* tenant populated, so the
//! per-block cost is two table-driven popcount-bounded store loops, not
//! an eight-element wipe (see [`bcsr_masked_core`]).
//! Because padded zeros contribute exact-zero products to finite
//! accumulators, a masked SpMV is **bitwise equal** to the padded one —
//! structurally so, since both run the identical step code — while
//! storing zero padded values and skipping their memory traffic.
//!
//! All kernels accumulate (`+=`) into their output slice, like the rest
//! of the crate.

use crate::block::{bcsd_block_step, bcsd_epilogue, bcsr_block_step, bcsr_epilogue};
use crate::engine::LaneEngine;
use crate::MAX_BLOCK_ELEMS;
use spmv_core::{Index, Scalar};

/// Per-block occupancy bitmask: bit `p` set ⇔ dense position `p` holds a
/// real nonzero (row-major within a BCSR block, diagonal offset within a
/// BCSD block).
pub type Mask = u8;

/// The all-ones mask for a block of `elems` dense positions
/// (`1 <= elems <= 8`).
#[inline]
pub fn full_mask(elems: usize) -> Mask {
    debug_assert!((1..=MAX_BLOCK_ELEMS).contains(&elems));
    (u16::from(u8::MAX) >> (8 - elems)) as Mask
}

/// Per-mask expansion plan, built once at compile time: for every mask
/// value, the packed-array index each of the 8 dense positions reads
/// (the prefix popcount, clamped into `0..popcount(mask)` so unset
/// positions load a valid-but-ignored element), plus the popcount
/// itself. One 8-byte table row replaces the per-bit
/// `trailing_zeros`-and-clear loop, whose data-dependent branches and
/// software popcounts (baseline x86-64 has no POPCNT) dominated the
/// masked kernels' time on partially filled blocks.
struct ExpandPlan {
    idx: [[u8; MAX_BLOCK_ELEMS]; 256],
    /// `pos[m][t]` = dense position of the `t`-th set bit of `m`
    /// (unused entries stay 0).
    pos: [[u8; MAX_BLOCK_ELEMS]; 256],
    count: [u8; 256],
}

static EXPAND_PLAN: ExpandPlan = build_expand_plan();

const fn build_expand_plan() -> ExpandPlan {
    let mut plan = ExpandPlan {
        idx: [[0; MAX_BLOCK_ELEMS]; 256],
        pos: [[0; MAX_BLOCK_ELEMS]; 256],
        count: [0; 256],
    };
    let mut m = 0usize;
    while m < 256 {
        let n = (m as u8).count_ones() as u8;
        plan.count[m] = n;
        let last = if n == 0 { 0 } else { n - 1 };
        let mut p = 0;
        while p < MAX_BLOCK_ELEMS {
            let before = (m & ((1 << p) - 1)) as u8;
            let s = before.count_ones() as u8;
            plan.idx[m][p] = if s > last { last } else { s };
            if m >> p & 1 == 1 {
                plan.pos[m][s as usize] = p as u8;
            }
            p += 1;
        }
        m += 1;
    }
    plan
}

/// Writes the `popcount(mask)` packed values to their dense positions of
/// `buf` without touching the other positions, and returns how many
/// values were consumed. The caller owns keeping the untouched positions
/// zero (see [`unscatter_block`]); together the pair replaces a full
/// 8-position rewrite with `2·popcount` plain stores — the dominant cost
/// of the expand strategy at low fill.
#[inline(always)]
fn scatter_block<T: Scalar>(packed: &[T], mask: Mask, buf: &mut [T; MAX_BLOCK_ELEMS]) -> usize {
    let n = EXPAND_PLAN.count[mask as usize] as usize;
    let pos = &EXPAND_PLAN.pos[mask as usize];
    for (t, &v) in packed[..n].iter().enumerate() {
        buf[(pos[t] & 7) as usize] = v;
    }
    n
}

/// Re-zeroes the positions of `buf` that [`scatter_block`] wrote for
/// `mask`, restoring the all-zero state the next scatter relies on.
#[inline(always)]
fn unscatter_block<T: Scalar>(mask: Mask, buf: &mut [T; MAX_BLOCK_ELEMS]) {
    let n = EXPAND_PLAN.count[mask as usize] as usize;
    let pos = &EXPAND_PLAN.pos[mask as usize];
    for &p in &pos[..n] {
        buf[(p & 7) as usize] = T::ZERO;
    }
}

/// How many blocks ahead of the running step the masked cores prepare
/// their expansion buffers. One step of distance keeps the scatter's
/// narrow scalar stores out of the same cycle as the step's wide vector
/// loads (an immediate wide read over two narrow stores misses
/// store-to-load forwarding); measured against a depth-3 ring, the
/// two-slot ring wins — the loop is issue-throughput-bound, so the
/// extra ring bookkeeping costs more than the added store distance
/// saves.
const PIPELINE: usize = 2;

/// Prepares block `k` for the masked cores' step loop: a full block is
/// recorded as a `pvals` borrow (`pend[s] = offset`), a partial block is
/// scattered into ring slot `s = k % PIPELINE` on top of a zeroed
/// buffer (`pend[s] = usize::MAX`). `elems` is the dense block size
/// (`R·C` or `B`), constant-folded after inlining.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn prep_block<T: Scalar>(
    k: usize,
    full: Mask,
    elems: usize,
    pvals: &[T],
    masks: &[Mask],
    bufs: &mut [[T; MAX_BLOCK_ELEMS]; PIPELINE],
    dirty: &mut [Mask; PIPELINE],
    pend: &mut [usize; PIPELINE],
    cur: &mut usize,
) {
    let m = masks[k];
    let s = k % PIPELINE;
    if m == full {
        pend[s] = *cur;
        *cur += elems;
    } else {
        unscatter_block(dirty[s], &mut bufs[s]);
        *cur += scatter_block(&pvals[*cur..], m, &mut bufs[s]);
        dirty[s] = m;
        pend[s] = usize::MAX;
    }
}

/// Scatters the first `popcount(mask)` packed values into their dense
/// positions of `out`, zeroing unset positions, and returns how many
/// packed values were consumed.
///
/// Branch-free on purpose: each position loads unconditionally at its
/// table-clamped packed index and selects between the value and zero —
/// a fixed 8-step pattern the out-of-order core can run ahead on,
/// instead of a serial per-set-bit loop that mispredicts on every
/// data-dependent mask.
#[inline(always)]
pub fn expand_block<T: Scalar>(packed: &[T], mask: Mask, out: &mut [T]) -> usize {
    let n = EXPAND_PLAN.count[mask as usize] as usize;
    if n == 0 {
        out.fill(T::ZERO);
        return 0;
    }
    let packed = &packed[..n];
    let idxs = &EXPAND_PLAN.idx[mask as usize];
    for (p, (o, &s)) in out.iter_mut().zip(idxs).enumerate() {
        // SAFETY: table entries are clamped below `n == packed.len()`.
        let v = unsafe { *packed.get_unchecked(s as usize) };
        *o = if (mask >> p) & 1 == 1 { v } else { T::ZERO };
    }
    n
}

/// One masked BCSR block row against `K` input vectors.
///
/// `pvals` holds the packed nonzeros of all blocks back to back (block
/// `kb` contributes `popcount(masks[kb])` values); `bcols` and the
/// stride/offset conventions match [`crate::block::bcsr_core`], which
/// this is bitwise-equal to on the padded expansion of the same blocks.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn bcsr_masked_core<
    T: Scalar,
    E: LaneEngine<T>,
    const R: usize,
    const C: usize,
    const K: usize,
>(
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bcols.len(), masks.len());
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    let full = full_mask(R * C);
    // Fully-blocked rows (every mask all-ones) are the dense layout
    // exactly — hand the whole row to the padded core. The test is O(1)
    // and touches no mask bytes: `pvals` is exactly this row's packed
    // values, and the popcounts (each ≤ R·C) can only sum to `nb·R·C`
    // when every block is full, so dense regions never stream the mask
    // array at all.
    if pvals.len() == bcols.len() * (R * C) {
        return crate::block::bcsr_core::<T, E, R, C, K>(pvals, bcols, x, xs, y, ys, y0);
    }
    let mut accv = [[E::zero(); K]; R];
    let mut accs = [[T::ZERO; K]; R];
    // A ring of persistent expansion buffers, prepared [`PIPELINE`] - 1
    // blocks ahead of the step (see [`prep_block`]). Each buffer only
    // re-zeroes the positions its previous tenant set (`dirty`), so a
    // partial block costs `2·popcount` stores, not a full 8-position
    // rewrite. Only expansion moves ahead — steps still run in block
    // order, so results are unchanged.
    let mut bufs = [[T::ZERO; MAX_BLOCK_ELEMS]; PIPELINE];
    let mut dirty = [0 as Mask; PIPELINE];
    // `pvals` offset of the slot's block when full, `usize::MAX` when it
    // is expanded into its ring buffer.
    let mut pend = [usize::MAX; PIPELINE];
    let nb = bcols.len();
    let mut cur = 0usize;
    for k in 0..nb.min(PIPELINE - 1) {
        prep_block(k, full, R * C, pvals, masks, &mut bufs, &mut dirty, &mut pend, &mut cur);
    }
    // Indexed loop on purpose: `kb` drives three things (the prep
    // lookahead, the ring slot, and the column load), and the
    // enumerate() form measured ~5% slower on the banded sweep.
    #[allow(clippy::needless_range_loop)]
    for kb in 0..nb {
        if kb + PIPELINE - 1 < nb {
            let k = kb + PIPELINE - 1;
            prep_block(k, full, R * C, pvals, masks, &mut bufs, &mut dirty, &mut pend, &mut cur);
        }
        let s = kb % PIPELINE;
        let blk: &[T] = if pend[s] == usize::MAX {
            &bufs[s][..R * C]
        } else {
            &pvals[pend[s]..pend[s] + R * C]
        };
        bcsr_block_step::<T, E, R, C, K>(blk, bcols[kb] as usize, x, xs, &mut accv, &mut accs);
    }
    debug_assert_eq!(cur, pvals.len());
    bcsr_epilogue::<T, E, R, C, K>(&accv, &accs, y, ys, y0);
}

/// One masked BCSD segment against `K` input vectors; `bcols` carries
/// the `+B` column bias of [`crate::block::bcsd_core`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn bcsd_masked_core<T: Scalar, E: LaneEngine<T>, const B: usize, const K: usize>(
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
) {
    debug_assert_eq!(bcols.len(), masks.len());
    debug_assert!(x.len() >= K * xs && y.len() >= K * ys);
    let full = full_mask(B);
    // All-full segments are the dense layout exactly; the O(1) length
    // test is the same popcount-sum argument as [`bcsr_masked_core`].
    if pvals.len() == bcols.len() * B {
        return crate::block::bcsd_core::<T, E, B, K>(pvals, bcols, x, xs, y, ys, y0);
    }
    let mut accv = [[E::zero(); K]; B];
    let mut acct = [[T::ZERO; K]; 7];
    // Same scatter-ahead ring buffering as [`bcsr_masked_core`].
    let mut bufs = [[T::ZERO; MAX_BLOCK_ELEMS]; PIPELINE];
    let mut dirty = [0 as Mask; PIPELINE];
    let mut pend = [usize::MAX; PIPELINE];
    let nb = bcols.len();
    let mut cur = 0usize;
    for k in 0..nb.min(PIPELINE - 1) {
        prep_block(k, full, B, pvals, masks, &mut bufs, &mut dirty, &mut pend, &mut cur);
    }
    // Indexed loop on purpose; see [`bcsr_masked_core`].
    #[allow(clippy::needless_range_loop)]
    for kb in 0..nb {
        if kb + PIPELINE - 1 < nb {
            let k = kb + PIPELINE - 1;
            prep_block(k, full, B, pvals, masks, &mut bufs, &mut dirty, &mut pend, &mut cur);
        }
        let s = kb % PIPELINE;
        let blk: &[T] = if pend[s] == usize::MAX {
            &bufs[s][..B]
        } else {
            &pvals[pend[s]..pend[s] + B]
        };
        let j0 = bcols[kb] as usize;
        debug_assert!(j0 >= B, "left-clipped block in interior kernel");
        bcsd_block_step::<T, E, B, K>(blk, j0 - B, x, xs, &mut accv, &mut acct);
    }
    debug_assert_eq!(cur, pvals.len());
    bcsd_epilogue::<T, E, B, K>(&accv, &acct, y, ys, y0);
}

/// Single-vector masked BCSR block-row kernel (`K = 1` instantiation of
/// [`bcsr_masked_core`]).
#[inline]
pub fn bcsr_masked_row<T: Scalar, E: LaneEngine<T>, const R: usize, const C: usize>(
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert_eq!(yrow.len(), R);
    bcsr_masked_core::<T, E, R, C, 1>(pvals, bcols, masks, x, 0, yrow, 0, 0);
}

/// Single-vector masked BCSD segment kernel (`K = 1` instantiation of
/// [`bcsd_masked_core`]).
#[inline]
pub fn bcsd_masked_seg<T: Scalar, E: LaneEngine<T>, const B: usize>(
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert_eq!(yseg.len(), B);
    bcsd_masked_core::<T, E, B, 1>(pvals, bcols, masks, x, 0, yseg, 0, 0);
}

/// Boundary-safe masked BCSR block-row kernel with runtime shape:
/// expands each block and delegates to
/// [`crate::scalar::bcsr_block_row_clipped`] one block at a time (that
/// kernel flushes its accumulator per block, so per-block delegation is
/// bitwise-equal to the padded range call).
pub fn bcsr_masked_row_clipped<T: Scalar>(
    r: usize,
    c: usize,
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    yrow: &mut [T],
) {
    debug_assert_eq!(bcols.len(), masks.len());
    let mut cur = 0;
    for (kb, &bc) in bcols.iter().enumerate() {
        let mut buf = [T::ZERO; MAX_BLOCK_ELEMS];
        cur += expand_block(&pvals[cur..], masks[kb], &mut buf);
        crate::scalar::bcsr_block_row_clipped(r, c, &buf[..r * c], &[bc], x, yrow);
    }
    debug_assert_eq!(cur, pvals.len());
}

/// Boundary-safe masked multi-vector BCSR block-row kernel with runtime
/// shape and vector count; mirrors [`bcsr_masked_row_clipped`].
#[allow(clippy::too_many_arguments)]
pub fn bcsr_masked_row_multi_clipped<T: Scalar>(
    r: usize,
    c: usize,
    k: usize,
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert_eq!(bcols.len(), masks.len());
    let mut cur = 0;
    for (kb, &bc) in bcols.iter().enumerate() {
        let mut buf = [T::ZERO; MAX_BLOCK_ELEMS];
        cur += expand_block(&pvals[cur..], masks[kb], &mut buf);
        crate::scalar::bcsr_block_row_multi_clipped(
            r,
            c,
            k,
            &buf[..r * c],
            &[bc],
            x,
            xs,
            y,
            ys,
            y0,
            rows_valid,
        );
    }
    debug_assert_eq!(cur, pvals.len());
}

/// Boundary-safe masked BCSD segment kernel with runtime block size;
/// expands and delegates to [`crate::scalar::bcsd_segment_clipped`] per
/// block (which updates `yseg` in place per element, so per-block
/// delegation is bitwise-equal to the padded range call).
pub fn bcsd_masked_seg_clipped<T: Scalar>(
    b: usize,
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    yseg: &mut [T],
) {
    debug_assert_eq!(bcols.len(), masks.len());
    let mut cur = 0;
    for (kb, &biased) in bcols.iter().enumerate() {
        let mut buf = [T::ZERO; MAX_BLOCK_ELEMS];
        cur += expand_block(&pvals[cur..], masks[kb], &mut buf);
        crate::scalar::bcsd_segment_clipped(b, &buf[..b], &[biased], x, yseg);
    }
    debug_assert_eq!(cur, pvals.len());
}

/// Boundary-safe masked multi-vector BCSD segment kernel; mirrors
/// [`bcsd_masked_seg_clipped`].
#[allow(clippy::too_many_arguments)]
pub fn bcsd_masked_seg_multi_clipped<T: Scalar>(
    b: usize,
    k: usize,
    pvals: &[T],
    bcols: &[Index],
    masks: &[Mask],
    x: &[T],
    xs: usize,
    y: &mut [T],
    ys: usize,
    y0: usize,
    rows_valid: usize,
) {
    debug_assert_eq!(bcols.len(), masks.len());
    let mut cur = 0;
    for (kb, &biased) in bcols.iter().enumerate() {
        let mut buf = [T::ZERO; MAX_BLOCK_ELEMS];
        cur += expand_block(&pvals[cur..], masks[kb], &mut buf);
        crate::scalar::bcsd_segment_multi_clipped(
            b,
            k,
            &buf[..b],
            &[biased],
            x,
            xs,
            y,
            ys,
            y0,
            rows_valid,
        );
    }
    debug_assert_eq!(cur, pvals.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScalarEngine;

    #[test]
    fn full_mask_covers_all_positions() {
        assert_eq!(full_mask(1), 0b1);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(8), 0xFF);
    }

    #[test]
    fn expand_scatters_in_position_order() {
        let packed = [1.0f64, 2.0, 3.0];
        let mut out = [0.0f64; 8];
        let used = expand_block(&packed, 0b1001_0010, &mut out);
        assert_eq!(used, 3);
        assert_eq!(out, [0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn masked_row_matches_padded_expansion() {
        // Two 2x2 blocks: one partial (mask 0b0110), one full.
        let pvals = [5.0f64, -3.0, 1.0, 2.0, 3.0, 4.0];
        let masks = [0b0110u8, 0b1111];
        let bcols = [0u32, 4];
        let padded = [0.0, 5.0, -3.0, 0.0, 1.0, 2.0, 3.0, 4.0];
        let x: Vec<f64> = (0..6).map(|i| 0.5 + i as f64).collect();
        let mut ym = [1.0f64; 2];
        let mut yp = [1.0f64; 2];
        bcsr_masked_row::<f64, ScalarEngine, 2, 2>(&pvals, &bcols, &masks, &x, &mut ym);
        crate::block::bcsr_row::<f64, ScalarEngine, 2, 2>(&padded, &bcols, &x, &mut yp);
        assert_eq!(ym.map(f64::to_bits), yp.map(f64::to_bits));
    }

    #[test]
    fn masked_seg_matches_padded_expansion() {
        // Two size-3 diagonal blocks, first missing its middle element.
        let pvals = [1.0f64, 3.0, 4.0, 5.0, 6.0];
        let masks = [0b101u8, 0b111];
        let bcols = [3u32, 7]; // true starts 0 and 4, +3 bias
        let padded = [1.0, 0.0, 3.0, 4.0, 5.0, 6.0];
        let x: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let mut ym = [0.5f64; 3];
        let mut yp = [0.5f64; 3];
        bcsd_masked_seg::<f64, ScalarEngine, 3>(&pvals, &bcols, &masks, &x, &mut ym);
        crate::block::bcsd_seg::<f64, ScalarEngine, 3>(&padded, &bcols, &x, &mut yp);
        assert_eq!(ym.map(f64::to_bits), yp.map(f64::to_bits));
    }

    #[test]
    fn masked_clipped_skips_out_of_matrix_columns() {
        // One 1x4 block at column 4 of a 6-column matrix storing only
        // the two in-matrix values.
        let pvals = [2.0f64, 3.0];
        let masks = [0b0011u8];
        let bcols = [4u32];
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut y = [0.0f64];
        bcsr_masked_row_clipped(1, 4, &pvals, &bcols, &masks, &x, &mut y);
        assert_eq!(y[0], 2.0 * 4.0 + 3.0 * 5.0);
    }
}
