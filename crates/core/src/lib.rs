#![warn(missing_docs)]

//! Core types for blocked sparse matrix-vector multiplication.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`Scalar`] — the numeric element trait, implemented for `f32` (the
//!   paper's *single precision*, `sp`) and `f64` (*double precision*, `dp`);
//! * [`Coo`] — a triplet (coordinate) builder used to assemble matrices;
//! * [`Csr`] — Compressed Sparse Row storage, the paper's baseline format
//!   and the input to every blocked-format conversion;
//! * [`DenseMatrix`] — a row-major dense matrix used as the multiplication
//!   reference in tests and as the profiling workload for the performance
//!   models;
//! * [`SpMv`] / [`MatrixShape`] — the kernel interface shared by all storage
//!   formats.
//!
//! Index arrays use `u32` throughout, matching the paper's experimental
//! setup ("we used four-byte integers for the indexing structures of every
//! format", §V).
//!
//! # Example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//!
//! let mut coo = Coo::<f64>::new(3, 3);
//! coo.push(0, 0, 2.0).unwrap();
//! coo.push(1, 1, 3.0).unwrap();
//! coo.push(2, 0, 1.0).unwrap();
//! let csr = Csr::from_coo(&coo);
//! let y = csr.spmv(&[1.0, 1.0, 1.0]);
//! assert_eq!(y, vec![2.0, 3.0, 1.0]);
//! ```

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod scalar;
pub mod traits;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use error::{Error, Result};
pub use scalar::{Precision, Scalar};
pub use traits::{MatrixShape, SpMv, SpMvMulti};

/// The index type used by every storage format's indexing structures.
///
/// The paper uses four-byte integers for all index arrays (§V); matrices
/// whose dimensions or nonzero counts exceed `u32::MAX` are rejected at
/// construction time with [`Error::IndexOverflow`].
pub type Index = u32;

/// Upper bound (inclusive) on dimensions and nonzero counts representable
/// with [`Index`].
pub const MAX_INDEX: usize = u32::MAX as usize;
