#![warn(missing_docs)]

//! Core types for blocked sparse matrix-vector multiplication.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`Scalar`] — the numeric element trait, implemented for `f32` (the
//!   paper's *single precision*, `sp`) and `f64` (*double precision*, `dp`);
//! * [`Coo`] — a triplet (coordinate) builder used to assemble matrices;
//! * [`Csr`] — Compressed Sparse Row storage, the paper's baseline format
//!   and the input to every blocked-format conversion;
//! * [`DenseMatrix`] — a row-major dense matrix used as the multiplication
//!   reference in tests and as the profiling workload for the performance
//!   models;
//! * [`SpMv`] / [`MatrixShape`] — the kernel interface shared by all storage
//!   formats.
//!
//! Index arrays use `u32` throughout, matching the paper's experimental
//! setup ("we used four-byte integers for the indexing structures of every
//! format", §V).
//!
//! # Example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//!
//! let mut coo = Coo::<f64>::new(3, 3);
//! coo.push(0, 0, 2.0).unwrap();
//! coo.push(1, 1, 3.0).unwrap();
//! coo.push(2, 0, 1.0).unwrap();
//! let csr = Csr::from_coo(&coo);
//! let y = csr.spmv(&[1.0, 1.0, 1.0]);
//! assert_eq!(y, vec![2.0, 3.0, 1.0]);
//! ```

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod scalar;
pub mod traits;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use error::{Error, Result};
pub use scalar::{Precision, Scalar};
pub use traits::{MatrixShape, SpMv, SpMvMulti};

/// The index type used by every storage format's indexing structures.
///
/// The paper uses four-byte integers for all index arrays (§V); matrices
/// whose dimensions or nonzero counts exceed `u32::MAX` are rejected at
/// construction time with [`Error::IndexOverflow`].
pub type Index = u32;

/// Upper bound (inclusive) on dimensions and nonzero counts representable
/// with [`Index`].
pub const MAX_INDEX: usize = u32::MAX as usize;

/// Storage width of a compressed block-column index array.
///
/// The paper stores every index structure as four-byte integers (§V), but
/// for most matrices in the evaluation suite the column space fits in two
/// bytes — SpMV is memory-bound, so halving the index stream is a
/// model-predictable speedup (cf. Schubert et al., arXiv:0910.4836).
/// Formats that support narrow indices pick the width with
/// [`IndexWidth::for_cols`] and fall back to [`IndexWidth::U32`] when the
/// matrix is too wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexWidth {
    /// Two-byte indices (`u16`).
    U16,
    /// Four-byte indices (the [`Index`] baseline).
    U32,
}

impl IndexWidth {
    /// Widest column count eligible for [`IndexWidth::U16`] storage.
    ///
    /// The bound is `u16::MAX - 7` rather than `u16::MAX` because BCSD
    /// stores start columns with a `+b` bias, `b <= 8`: the largest biased
    /// start is `n_cols - 1 + b <= n_cols + 7`, which must still fit in a
    /// `u16`. Using one rule for every format keeps width selection
    /// decidable from `n_cols` alone, so the model's byte accounting and
    /// the constructors can never disagree.
    pub const MAX_U16_COLS: usize = u16::MAX as usize - 7;

    /// Bytes per stored index.
    pub const fn bytes(self) -> usize {
        match self {
            IndexWidth::U16 => 2,
            IndexWidth::U32 => 4,
        }
    }

    /// The narrowest width able to index `n_cols` columns under the shared
    /// eligibility rule ([`IndexWidth::MAX_U16_COLS`]).
    pub const fn for_cols(n_cols: usize) -> IndexWidth {
        if n_cols <= IndexWidth::MAX_U16_COLS {
            IndexWidth::U16
        } else {
            IndexWidth::U32
        }
    }

    /// Short label for reports (`u16` / `u32`).
    pub const fn label(self) -> &'static str {
        match self {
            IndexWidth::U16 => "u16",
            IndexWidth::U32 => "u32",
        }
    }
}
