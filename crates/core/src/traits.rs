//! The kernel interface implemented by every storage format.

use crate::Scalar;

/// Anything with a row/column extent.
pub trait MatrixShape {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of columns.
    fn n_cols(&self) -> usize;
}

/// Sparse matrix-vector multiplication, `y = A * x`.
///
/// Implemented by every storage format in the workspace (CSR, BCSR, BCSD,
/// the decomposed variants, 1D-VBL, and VBR), so that the evaluation
/// harness, the performance models, and the parallel driver can treat all
/// of them uniformly.
///
/// Besides the kernel itself the trait exposes the two quantities the
/// performance models need (§IV of the paper):
///
/// * [`nnz_stored`](SpMv::nnz_stored) — the number of *stored* values,
///   including any explicit zero padding the format introduced;
/// * [`working_set_bytes`](SpMv::working_set_bytes) — the algorithm's
///   working set `ws`: every byte streamed from memory during one SpMV
///   (all matrix arrays plus the input and output vectors).
pub trait SpMv<T: Scalar>: MatrixShape {
    /// Computes `y = A * x`, overwriting `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_cols()` or `y.len() != self.n_rows()`.
    fn spmv_into(&self, x: &[T], y: &mut [T]);

    /// Number of stored values, **including** explicit zero padding.
    ///
    /// For CSR this equals the number of nonzeros; for BCSR it is
    /// `nb * r * c`; for decomposed formats it is the sum over submatrices.
    fn nnz_stored(&self) -> usize;

    /// Bytes occupied by the matrix's own arrays (values + all index
    /// structures), excluding the vectors.
    fn matrix_bytes(&self) -> usize;

    /// The working set `ws` used by the performance models: matrix arrays
    /// plus one input and one output vector.
    fn working_set_bytes(&self) -> usize {
        self.matrix_bytes() + (self.n_rows() + self.n_cols()) * T::BYTES
    }

    /// Convenience wrapper allocating the output vector.
    fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.n_rows()];
        self.spmv_into(x, &mut y);
        y
    }
}

/// Multi-vector sparse multiplication, `Y = A * X` (SpMM).
///
/// `X` is a column-major `n_cols × k` block of `k` input vectors and `Y`
/// a column-major `n_rows × k` block of outputs: column `t` of `X` lives
/// at `x[t * n_cols .. (t + 1) * n_cols]` and its product at
/// `y[t * n_rows .. (t + 1) * n_rows]`. Because the vectors are simply
/// concatenated, `k = 1` is layout-identical to [`SpMv::spmv_into`].
///
/// The point of the trait is amortization: a format-aware implementation
/// streams the matrix arrays **once per call** instead of once per vector,
/// turning the memory-bound SpMV of the paper's MEM model into a partially
/// compute-bound kernel. The provided default simply loops
/// [`SpMv::spmv_into`] over columns — correct, but with none of the
/// amortization — so formats override it with fused kernels. The tuned
/// kernels specialize `k ∈ {1, 2, 4, 8}` and chunk other values.
pub trait SpMvMulti<T: Scalar>: SpMv<T> {
    /// Computes `Y = A * X` for `k` vectors, overwriting `y`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `x.len() != n_cols * k`, or
    /// `y.len() != n_rows * k`.
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        check_spmv_multi_dims(self, x, y, k);
        let (m, n) = (self.n_cols(), self.n_rows());
        for (xs, ys) in x.chunks_exact(m.max(1)).zip(y.chunks_exact_mut(n.max(1))).take(k) {
            self.spmv_into(xs, ys);
        }
        // Degenerate extents (m == 0 or n == 0) stream nothing; the only
        // required effect is zeroing y, which the loop above misses when
        // n == 0 (nothing to zero) or m == 0 (no chunks yield).
        if m == 0 {
            y.fill(T::ZERO);
        }
    }

    /// Working set of one `k`-vector call: the matrix arrays are streamed
    /// once, the vectors `k` times (§IV MEM model, generalized).
    fn working_set_bytes_multi(&self, k: usize) -> usize {
        self.matrix_bytes() + k * (self.n_rows() + self.n_cols()) * T::BYTES
    }

    /// Convenience wrapper allocating the `n_rows × k` output block.
    fn spmv_multi(&self, x: &[T], k: usize) -> Vec<T> {
        let mut y = vec![T::ZERO; self.n_rows() * k];
        self.spmv_multi_into(x, &mut y, k);
        y
    }
}

/// Asserts the kernel vector dimensions; shared by all `spmv_into`
/// implementations so the panic message is uniform.
#[inline]
pub fn check_spmv_dims<T: Scalar, M: MatrixShape>(m: &M, x: &[T], y: &[T]) {
    assert_eq!(
        x.len(),
        m.n_cols(),
        "input vector length {} != matrix columns {}",
        x.len(),
        m.n_cols()
    );
    assert_eq!(
        y.len(),
        m.n_rows(),
        "output vector length {} != matrix rows {}",
        y.len(),
        m.n_rows()
    );
}

/// Asserts the multi-vector block dimensions; shared by all
/// `spmv_multi_into` implementations so the panic message is uniform.
#[inline]
pub fn check_spmv_multi_dims<T: Scalar, M: MatrixShape + ?Sized>(m: &M, x: &[T], y: &[T], k: usize) {
    assert!(k > 0, "k must be at least 1");
    assert_eq!(
        x.len(),
        m.n_cols() * k,
        "input block length {} != matrix columns {} * k {}",
        x.len(),
        m.n_cols(),
        k
    );
    assert_eq!(
        y.len(),
        m.n_rows() * k,
        "output block length {} != matrix rows {} * k {}",
        y.len(),
        m.n_rows(),
        k
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Diag(Vec<f64>);

    impl MatrixShape for Diag {
        fn n_rows(&self) -> usize {
            self.0.len()
        }
        fn n_cols(&self) -> usize {
            self.0.len()
        }
    }

    impl SpMv<f64> for Diag {
        fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
            check_spmv_dims(self, x, y);
            for ((yi, d), xi) in y.iter_mut().zip(&self.0).zip(x) {
                *yi = d * xi;
            }
        }
        fn nnz_stored(&self) -> usize {
            self.0.len()
        }
        fn matrix_bytes(&self) -> usize {
            self.0.len() * 8
        }
    }

    #[test]
    fn default_working_set_adds_vectors() {
        let d = Diag(vec![1.0; 10]);
        assert_eq!(d.working_set_bytes(), 10 * 8 + 20 * 8);
    }

    #[test]
    fn spmv_convenience_allocates() {
        let d = Diag(vec![2.0, 3.0]);
        assert_eq!(d.spmv(&[1.0, 10.0]), vec![2.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn wrong_x_length_panics() {
        let d = Diag(vec![1.0; 3]);
        let mut y = vec![0.0; 3];
        d.spmv_into(&[1.0; 2], &mut y);
    }

    #[test]
    #[should_panic(expected = "output vector length")]
    fn wrong_y_length_panics() {
        let d = Diag(vec![1.0; 3]);
        let mut y = vec![0.0; 2];
        d.spmv_into(&[1.0; 3], &mut y);
    }

    impl SpMvMulti<f64> for Diag {}

    #[test]
    fn default_multi_matches_per_column_spmv() {
        let d = Diag(vec![2.0, 3.0]);
        // X = [[1, 10], [5, 50]] column-major.
        let y = d.spmv_multi(&[1.0, 10.0, 5.0, 50.0], 2);
        assert_eq!(y, vec![2.0, 30.0, 10.0, 150.0]);
    }

    #[test]
    fn multi_working_set_scales_vector_traffic() {
        let d = Diag(vec![1.0; 10]);
        assert_eq!(d.working_set_bytes_multi(4), 10 * 8 + 4 * 20 * 8);
        assert_eq!(d.working_set_bytes_multi(1), d.working_set_bytes());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn multi_zero_k_panics() {
        let d = Diag(vec![1.0; 2]);
        let mut y = [];
        d.spmv_multi_into(&[], &mut y, 0);
    }

    #[test]
    #[should_panic(expected = "input block length")]
    fn multi_wrong_x_length_panics() {
        let d = Diag(vec![1.0; 2]);
        let mut y = vec![0.0; 4];
        d.spmv_multi_into(&[1.0; 3], &mut y, 2);
    }
}
