//! The kernel interface implemented by every storage format.

use crate::Scalar;

/// Anything with a row/column extent.
pub trait MatrixShape {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of columns.
    fn n_cols(&self) -> usize;
}

/// Sparse matrix-vector multiplication, `y = A * x`.
///
/// Implemented by every storage format in the workspace (CSR, BCSR, BCSD,
/// the decomposed variants, 1D-VBL, and VBR), so that the evaluation
/// harness, the performance models, and the parallel driver can treat all
/// of them uniformly.
///
/// Besides the kernel itself the trait exposes the two quantities the
/// performance models need (§IV of the paper):
///
/// * [`nnz_stored`](SpMv::nnz_stored) — the number of *stored* values,
///   including any explicit zero padding the format introduced;
/// * [`working_set_bytes`](SpMv::working_set_bytes) — the algorithm's
///   working set `ws`: every byte streamed from memory during one SpMV
///   (all matrix arrays plus the input and output vectors).
pub trait SpMv<T: Scalar>: MatrixShape {
    /// Computes `y = A * x`, overwriting `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_cols()` or `y.len() != self.n_rows()`.
    fn spmv_into(&self, x: &[T], y: &mut [T]);

    /// Number of stored values, **including** explicit zero padding.
    ///
    /// For CSR this equals the number of nonzeros; for BCSR it is
    /// `nb * r * c`; for decomposed formats it is the sum over submatrices.
    fn nnz_stored(&self) -> usize;

    /// Bytes occupied by the matrix's own arrays (values + all index
    /// structures), excluding the vectors.
    fn matrix_bytes(&self) -> usize;

    /// The working set `ws` used by the performance models: matrix arrays
    /// plus one input and one output vector.
    fn working_set_bytes(&self) -> usize {
        self.matrix_bytes() + (self.n_rows() + self.n_cols()) * T::BYTES
    }

    /// Convenience wrapper allocating the output vector.
    fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.n_rows()];
        self.spmv_into(x, &mut y);
        y
    }
}

/// Asserts the kernel vector dimensions; shared by all `spmv_into`
/// implementations so the panic message is uniform.
#[inline]
pub fn check_spmv_dims<T: Scalar, M: MatrixShape>(m: &M, x: &[T], y: &[T]) {
    assert_eq!(
        x.len(),
        m.n_cols(),
        "input vector length {} != matrix columns {}",
        x.len(),
        m.n_cols()
    );
    assert_eq!(
        y.len(),
        m.n_rows(),
        "output vector length {} != matrix rows {}",
        y.len(),
        m.n_rows()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Diag(Vec<f64>);

    impl MatrixShape for Diag {
        fn n_rows(&self) -> usize {
            self.0.len()
        }
        fn n_cols(&self) -> usize {
            self.0.len()
        }
    }

    impl SpMv<f64> for Diag {
        fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
            check_spmv_dims(self, x, y);
            for ((yi, d), xi) in y.iter_mut().zip(&self.0).zip(x) {
                *yi = d * xi;
            }
        }
        fn nnz_stored(&self) -> usize {
            self.0.len()
        }
        fn matrix_bytes(&self) -> usize {
            self.0.len() * 8
        }
    }

    #[test]
    fn default_working_set_adds_vectors() {
        let d = Diag(vec![1.0; 10]);
        assert_eq!(d.working_set_bytes(), 10 * 8 + 20 * 8);
    }

    #[test]
    fn spmv_convenience_allocates() {
        let d = Diag(vec![2.0, 3.0]);
        assert_eq!(d.spmv(&[1.0, 10.0]), vec![2.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn wrong_x_length_panics() {
        let d = Diag(vec![1.0; 3]);
        let mut y = vec![0.0; 3];
        d.spmv_into(&[1.0; 2], &mut y);
    }

    #[test]
    #[should_panic(expected = "output vector length")]
    fn wrong_y_length_panics() {
        let d = Diag(vec![1.0; 3]);
        let mut y = vec![0.0; 2];
        d.spmv_into(&[1.0; 3], &mut y);
    }
}
