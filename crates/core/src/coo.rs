//! Coordinate-format (triplet) matrix builder.

use crate::error::{Error, Result};
use crate::{Index, MatrixShape, Scalar, MAX_INDEX};

/// A sparse matrix under construction, stored as `(row, col, value)`
/// triplets.
///
/// `Coo` is the assembly format: generators and the MatrixMarket reader
/// push entries in arbitrary order (duplicates allowed — they are summed),
/// then convert once to [`crate::Csr`], from which every blocked format is
/// built.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(Index, Index, T)>,
}

impl<T: Scalar> Coo<T> {
    /// Creates an empty builder for an `n_rows x n_cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds [`MAX_INDEX`].
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(
            n_rows <= MAX_INDEX && n_cols <= MAX_INDEX,
            "matrix dimensions must fit in u32"
        );
        Coo {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with preallocated capacity for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        let mut coo = Self::new(n_rows, n_cols);
        coo.entries.reserve(cap);
        coo
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed when
    /// the matrix is finalized; exact zeros are dropped at finalization.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(Error::OutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        if self.entries.len() == MAX_INDEX {
            return Err(Error::IndexOverflow {
                value: self.entries.len() as u64 + 1,
                what: "nnz",
            });
        }
        self.entries.push((row as Index, col as Index, value));
        Ok(())
    }

    /// Builds from an iterator of `(row, col, value)` triplets.
    pub fn from_triplets<I>(n_rows: usize, n_cols: usize, triplets: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, T)>,
    {
        let mut coo = Self::new(n_rows, n_cols);
        for (r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Number of raw entries pushed so far (before duplicate merging).
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the raw `(row, col, value)` triplets in push order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Sorts entries row-major and sums duplicates, dropping entries whose
    /// merged value is exactly zero.
    ///
    /// Returns the canonical triplet list consumed by
    /// [`Csr::from_coo`](crate::Csr::from_coo).
    pub fn into_sorted_dedup(mut self) -> Vec<(Index, Index, T)> {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut out: Vec<(Index, Index, T)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|&(_, _, v)| v != T::ZERO);
        out
    }

    /// Materializes the matrix as a dense row-major buffer (test helper;
    /// use only on small matrices).
    pub fn to_dense(&self) -> crate::DenseMatrix<T> {
        let mut d = crate::DenseMatrix::zeros(self.n_rows, self.n_cols);
        for &(r, c, v) in &self.entries {
            let cur = d.get(r as usize, c as usize);
            d.set(r as usize, c as usize, cur + v);
        }
        d
    }
}

impl<T> MatrixShape for Coo<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut coo = Coo::<f64>::new(2, 3);
        coo.push(0, 2, 1.5).unwrap();
        coo.push(1, 0, -2.0).unwrap();
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(0, 2, 1.5), (1, 0, -2.0)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = Coo::<f64>::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(Error::OutOfBounds { row: 2, .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(Error::OutOfBounds { col: 5, .. })
        ));
    }

    #[test]
    fn duplicates_are_summed() {
        let coo =
            Coo::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let merged = coo.into_sorted_dedup();
        assert_eq!(merged, vec![(0, 0, 3.0), (1, 1, 3.0)]);
    }

    #[test]
    fn merged_zeros_are_dropped() {
        let coo = Coo::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 0, -1.0), (0, 1, 2.0)])
            .unwrap();
        let merged = coo.into_sorted_dedup();
        assert_eq!(merged, vec![(0, 1, 2.0)]);
    }

    #[test]
    fn sort_is_row_major() {
        let coo = Coo::from_triplets(
            3,
            3,
            vec![(2, 0, 1.0), (0, 2, 2.0), (0, 1, 3.0), (1, 1, 4.0)],
        )
        .unwrap();
        let merged = coo.into_sorted_dedup();
        let coords: Vec<_> = merged.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 1), (0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn to_dense_accumulates() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 1.0)]).unwrap();
        assert_eq!(coo.to_dense().get(0, 0), 2.0);
    }

    #[test]
    fn empty_builder() {
        let coo = Coo::<f32>::new(4, 4);
        assert!(coo.is_empty());
        assert_eq!(coo.raw_len(), 0);
        assert!(coo.into_sorted_dedup().is_empty());
    }
}
