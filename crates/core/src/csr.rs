//! Compressed Sparse Row storage — the paper's baseline format.

use crate::error::{Error, Result};
use crate::{Coo, DenseMatrix, Index, MatrixShape, Scalar, SpMv, MAX_INDEX};
use core::ops::Range;

/// A sparse matrix in Compressed Sparse Row format.
///
/// CSR stores an `n x m` matrix with `nnz` nonzeros in three arrays
/// (paper §II): `val` (`nnz` values), `col_ind` (`nnz` column indices),
/// and `row_ptr` (`n + 1` offsets into `val`). Column indices are strictly
/// increasing within each row.
///
/// CSR is both the baseline against which the paper measures every
/// blocked format and the construction input for all of them, and the
/// performance models treat it as "a degenerate blocking method with 1x1
/// blocks and `nb = nnz`" (§IV).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<Index>,
    col_ind: Vec<Index>,
    val: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Builds from raw arrays, validating every CSR invariant.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<Index>,
        col_ind: Vec<Index>,
        val: Vec<T>,
    ) -> Result<Self> {
        let csr = Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_ind,
            val,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Builds from raw arrays **without** checking the column-ordering
    /// invariant (lengths and bounds are still verified).
    ///
    /// This exists for diagnostic matrices that deliberately break the
    /// sortedness invariant — most importantly the paper's custom
    /// benchmark that "zeros out the col_ind structure of CSR, so that no
    /// misses are incurred due to irregular accesses" (§V-B), used to
    /// detect latency-bound matrices. The resulting matrix is safe to
    /// multiply (all indices are bounds-checked here) but computes a
    /// different product than the source matrix.
    pub fn from_raw_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<Index>,
        col_ind: Vec<Index>,
        val: Vec<T>,
    ) -> Result<Self> {
        if n_rows > MAX_INDEX || n_cols > MAX_INDEX {
            return Err(Error::IndexOverflow {
                value: n_rows.max(n_cols) as u64,
                what: "dimension",
            });
        }
        if row_ptr.len() != n_rows + 1
            || row_ptr.first() != Some(&0)
            || row_ptr.last().map(|&e| e as usize) != Some(val.len())
            || col_ind.len() != val.len()
            || row_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::InvalidStructure(
                "malformed row_ptr/col_ind/val arrays".into(),
            ));
        }
        if let Some(&c) = col_ind.iter().max() {
            if c as usize >= n_cols && !col_ind.is_empty() {
                return Err(Error::OutOfBounds {
                    row: 0,
                    col: c as usize,
                    n_rows,
                    n_cols,
                });
            }
        }
        Ok(Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_ind,
            val,
        })
    }

    /// A structurally identical matrix with every column index set to
    /// zero — the paper's §V-B probe: identical memory traffic through
    /// `val`, `col_ind`, and `row_ptr`, but perfectly regular (single
    /// cached element) accesses to the input vector. Comparing its SpMV
    /// time against the original's isolates the cost of irregular input-
    /// vector accesses.
    pub fn zero_col_ind_probe(&self) -> Csr<T> {
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_ind: vec![0; self.col_ind.len()],
            val: self.val.clone(),
        }
    }

    /// Converts a triplet builder (duplicates summed, zeros dropped).
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        let entries = coo.clone().into_sorted_dedup();
        let mut row_ptr = vec![0 as Index; n_rows + 1];
        for &(r, _, _) in &entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_ind = Vec::with_capacity(entries.len());
        let mut val = Vec::with_capacity(entries.len());
        for (_, c, v) in entries {
            col_ind.push(c);
            val.push(v);
        }
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_ind,
            val,
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(d: &DenseMatrix<T>) -> Self {
        Self::from_coo(&d.to_coo())
    }

    /// Materializes as a dense matrix (test helper; small matrices only).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(i, c as usize, v);
            }
        }
        d
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Index], &[T]) {
        let range = self.row_range(i);
        (&self.col_ind[range.clone()], &self.val[range])
    }

    /// The `val`/`col_ind` index range of row `i`.
    #[inline]
    pub fn row_range(&self, i: usize) -> Range<usize> {
        self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        (self.row_ptr[i + 1] - self.row_ptr[i]) as usize
    }

    /// Iterates over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// The raw `row_ptr` array (`n_rows + 1` entries).
    pub fn row_ptr(&self) -> &[Index] {
        &self.row_ptr
    }

    /// The raw `col_ind` array.
    pub fn col_ind(&self) -> &[Index] {
        &self.col_ind
    }

    /// The raw `val` array.
    pub fn val(&self) -> &[T] {
        &self.val
    }

    /// Extracts rows `range` as a standalone CSR matrix over the same
    /// column space (used by the parallel driver to hand each thread a
    /// contiguous row strip).
    pub fn row_slice(&self, range: Range<usize>) -> Csr<T> {
        assert!(range.end <= self.n_rows, "row range out of bounds");
        let base = self.row_ptr[range.start];
        let row_ptr: Vec<Index> = self.row_ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let vals = self.row_ptr[range.start] as usize..self.row_ptr[range.end] as usize;
        Csr {
            n_rows: range.len(),
            n_cols: self.n_cols,
            row_ptr,
            col_ind: self.col_ind[vals.clone()].to_vec(),
            val: self.val[vals].to_vec(),
        }
    }

    /// Converts the element type (e.g. the `f64` reference matrix into the
    /// `f32` single-precision variant), preserving the structure exactly.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_ind: self.col_ind.clone(),
            val: self.val.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Returns the transpose (CSC of `self` reinterpreted as CSR).
    pub fn transpose(&self) -> Csr<T> {
        let mut row_ptr = vec![0 as Index; self.n_cols + 1];
        for &c in &self.col_ind {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_ind = vec![0 as Index; self.nnz()];
        let mut val = vec![T::ZERO; self.nnz()];
        for (r, c, v) in self.iter() {
            let dst = next[c] as usize;
            next[c] += 1;
            col_ind[dst] = r as Index;
            val[dst] = v;
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_ind,
            val,
        }
    }

    /// Checks every CSR structural invariant, returning a descriptive
    /// error on the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.n_rows > MAX_INDEX || self.n_cols > MAX_INDEX {
            return Err(Error::IndexOverflow {
                value: self.n_rows.max(self.n_cols) as u64,
                what: "dimension",
            });
        }
        if self.row_ptr.len() != self.n_rows + 1 {
            return Err(Error::InvalidStructure(format!(
                "row_ptr has {} entries, expected {}",
                self.row_ptr.len(),
                self.n_rows + 1
            )));
        }
        if self.row_ptr.first() != Some(&0) {
            return Err(Error::InvalidStructure("row_ptr[0] != 0".into()));
        }
        if self.row_ptr.last().map(|&e| e as usize) != Some(self.val.len()) {
            return Err(Error::InvalidStructure(
                "row_ptr does not terminate at nnz".into(),
            ));
        }
        if self.col_ind.len() != self.val.len() {
            return Err(Error::InvalidStructure(
                "col_ind and val lengths differ".into(),
            ));
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(Error::InvalidStructure("row_ptr not monotone".into()));
            }
        }
        for i in 0..self.n_rows {
            let (cols, _) = self.row(i);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::InvalidStructure(format!(
                        "row {i}: column indices not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.n_cols {
                    return Err(Error::OutOfBounds {
                        row: i,
                        col: last as usize,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
            }
        }
        Ok(())
    }
}

impl<T> MatrixShape for Csr<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar> SpMv<T> for Csr<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        crate::traits::check_spmv_dims(self, x, y);
        for (i, yi) in y.iter_mut().enumerate() {
            let range = self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize;
            let mut acc = T::ZERO;
            for (&c, &v) in self.col_ind[range.clone()].iter().zip(&self.val[range]) {
                acc = v.mul_add(x[c as usize], acc);
            }
            *yi = acc;
        }
    }

    fn nnz_stored(&self) -> usize {
        self.nnz()
    }

    fn matrix_bytes(&self) -> usize {
        self.val.len() * T::BYTES
            + self.col_ind.len() * core::mem::size_of::<Index>()
            + self.row_ptr.len() * core::mem::size_of::<Index>()
    }
}

impl<T: Scalar> crate::traits::SpMvMulti<T> for Csr<T> {
    /// Streams the matrix arrays once for up to 8 vectors at a time,
    /// keeping one accumulator per vector in registers. Per output column
    /// the accumulation order is identical to [`SpMv::spmv_into`], so a
    /// `k`-vector call is bitwise-equal to `k` single calls.
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        crate::traits::check_spmv_multi_dims(self, x, y, k);
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(8);
            let xs = &x[t0 * m..(t0 + kc) * m];
            let ys = &mut y[t0 * n..(t0 + kc) * n];
            let mut acc = [T::ZERO; 8];
            for i in 0..n {
                let range = self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize;
                acc[..kc].fill(T::ZERO);
                for (&c, &v) in self.col_ind[range.clone()].iter().zip(&self.val[range]) {
                    let c = c as usize;
                    for (t, a) in acc[..kc].iter_mut().enumerate() {
                        *a = v.mul_add(xs[t * m + c], *a);
                    }
                }
                for (t, &a) in acc[..kc].iter().enumerate() {
                    ys[t * n + i] = a;
                }
            }
            t0 += kc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Csr<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_coo(
            &Coo::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
                .unwrap(),
        )
    }

    #[test]
    fn construction_from_coo() {
        let csr = fixture();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(csr.col_ind(), &[0, 2, 0, 1]);
        assert_eq!(csr.val(), &[1.0, 2.0, 3.0, 4.0]);
        csr.validate().unwrap();
    }

    #[test]
    fn spmv_matches_dense() {
        let csr = fixture();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(csr.spmv(&x), csr.to_dense().spmv(&x));
    }

    #[test]
    fn spmv_zeros_untouched_rows() {
        let csr = fixture();
        let mut y = vec![99.0; 3];
        csr.spmv_into(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y[1], 0.0, "empty rows must produce 0, not stale data");
    }

    #[test]
    fn row_accessors() {
        let csr = fixture();
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 0);
        let (cols, vals) = csr.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3.0, 4.0]);
    }

    #[test]
    fn iter_row_major() {
        let csr = fixture();
        let got: Vec<_> = csr.iter().collect();
        assert_eq!(
            got,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn transpose_involution() {
        let csr = fixture();
        let tt = csr.transpose().transpose();
        assert_eq!(csr, tt);
    }

    #[test]
    fn transpose_values() {
        let csr = fixture();
        let t = csr.transpose();
        assert_eq!(t.to_dense().get(0, 2), 3.0);
        assert_eq!(t.to_dense().get(1, 2), 4.0);
        assert_eq!(t.to_dense().get(2, 0), 2.0);
    }

    #[test]
    fn row_slice_rebases() {
        let csr = fixture();
        let s = csr.row_slice(1..3);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row_ptr(), &[0, 0, 2]);
        assert_eq!(s.spmv(&[1.0, 1.0, 1.0]), vec![0.0, 7.0]);
        s.validate().unwrap();
    }

    #[test]
    fn dense_roundtrip() {
        let csr = fixture();
        let back = Csr::from_dense(&csr.to_dense());
        assert_eq!(csr, back);
    }

    #[test]
    fn validate_rejects_bad_row_ptr() {
        let bad = Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(bad.is_err());
    }

    #[test]
    fn validate_rejects_unsorted_columns() {
        let bad = Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(bad, Err(Error::InvalidStructure(_))));
    }

    #[test]
    fn validate_rejects_column_overflow() {
        let bad = Csr::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(bad, Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn matrix_bytes_formula() {
        let csr = fixture();
        // 4 vals * 8 + 4 cols * 4 + 4 ptrs * 4
        assert_eq!(csr.matrix_bytes(), 32 + 16 + 16);
    }

    #[test]
    fn empty_matrix() {
        let csr = Csr::<f32>::from_coo(&Coo::new(0, 0));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.spmv(&[]), Vec::<f32>::new());
        csr.validate().unwrap();
    }

    #[test]
    fn zero_col_probe_reroutes_all_accesses_to_x0() {
        let csr = fixture();
        let probe = csr.zero_col_ind_probe();
        assert_eq!(probe.nnz(), csr.nnz());
        assert_eq!(probe.matrix_bytes(), csr.matrix_bytes());
        // Every row sums its values scaled by x[0].
        let y = probe.spmv(&[2.0, 9.0, 9.0]);
        assert_eq!(y, vec![2.0 * (1.0 + 2.0), 0.0, 2.0 * (3.0 + 4.0)]);
    }

    #[test]
    fn validate_rejects_empty_row_ptr_without_panicking() {
        // `row_ptr = []` must be a clean InvalidStructure error on every
        // constructor path, never a panic — including the degenerate
        // 0-row shape where `n_rows + 1 == 1 != 0`.
        for n_rows in [0usize, 2] {
            let bad = Csr::<f64>::from_raw(n_rows, 2, vec![], vec![], vec![]);
            assert!(matches!(bad, Err(Error::InvalidStructure(_))), "{n_rows} rows");
            let bad = Csr::<f64>::from_raw_unchecked(n_rows, 2, vec![], vec![], vec![]);
            assert!(matches!(bad, Err(Error::InvalidStructure(_))), "{n_rows} rows");
        }
    }

    #[test]
    fn validate_rejects_row_ptr_terminating_before_nnz() {
        // Terminator mismatch must be reported even when the length check
        // passes, on both the checked and unchecked paths.
        let bad = Csr::from_raw(1, 3, vec![0, 1], vec![0, 2], vec![1.0, 2.0]);
        assert!(matches!(bad, Err(Error::InvalidStructure(_))));
        let bad = Csr::from_raw_unchecked(1, 3, vec![0, 1], vec![0, 2], vec![1.0, 2.0]);
        assert!(matches!(bad, Err(Error::InvalidStructure(_))));
    }

    #[test]
    fn from_raw_unchecked_accepts_unsorted_columns() {
        // The checked constructor rejects this; the diagnostic one must
        // accept it (bounds still verified).
        let ok = Csr::from_raw_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        let bad_bounds = Csr::from_raw_unchecked(1, 2, vec![0, 1], vec![7], vec![1.0]);
        assert!(bad_bounds.is_err());
        let bad_ptr = Csr::from_raw_unchecked(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(bad_ptr.is_err());
    }
}
