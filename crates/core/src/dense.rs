//! Row-major dense matrix.
//!
//! Dense matrices play two roles in this workspace:
//!
//! 1. **Reference oracle** — tests compare every blocked format's SpMV
//!    against the trivially correct dense multiply.
//! 2. **Profiling workload** — the MEMCOMP model profiles each block kernel
//!    on "a very small dense matrix … that fits in the L1 cache" and the
//!    OVERLAP model on "a large dense matrix that exceeds the highest level
//!    of cache" (paper §IV); both are built with this type and converted to
//!    the format under test.

use crate::{Coo, MatrixShape, Scalar, SpMv};

/// A dense `n_rows x n_cols` matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// All-zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![T::ZERO; n_rows * n_cols],
        }
    }

    /// Builds entry-wise from `f(row, col)`.
    pub fn from_fn(n_rows: usize, n_cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for i in 0..n_rows {
            for j in 0..n_cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix {
            n_rows,
            n_cols,
            data,
        }
    }

    /// A fully populated matrix with value pattern `1 + (i + j) % 7`, used
    /// as the profiling workload (every entry nonzero, values bounded so
    /// sums stay exact in both precisions).
    pub fn profiling(n_rows: usize, n_cols: usize) -> Self {
        Self::from_fn(n_rows, n_cols, |i, j| T::from_f64(1.0 + ((i + j) % 7) as f64))
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        self.data[row * self.n_cols + col]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: T) {
        self.data[row * self.n_cols + col] = v;
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Number of nonzero entries.
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|&&v| v != T::ZERO).count()
    }

    /// Converts to a triplet builder containing the nonzero entries.
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::with_capacity(self.n_rows, self.n_cols, self.count_nonzeros());
        for i in 0..self.n_rows {
            for j in 0..self.n_cols {
                let v = self.get(i, j);
                if v != T::ZERO {
                    coo.push(i, j, v).expect("dense dims already validated");
                }
            }
        }
        coo
    }

    /// Maximum elementwise absolute difference against `other`
    /// (test helper).
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

impl<T> MatrixShape for DenseMatrix<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar> SpMv<T> for DenseMatrix<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        crate::traits::check_spmv_dims(self, x, y);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (a, &xj) in self.row(i).iter().zip(x) {
                acc += *a * xj;
            }
            *yi = acc;
        }
    }

    fn nnz_stored(&self) -> usize {
        self.data.len()
    }

    fn matrix_bytes(&self) -> usize {
        self.data.len() * T::BYTES
    }
}

// The dense reference is not on any hot path; the default per-column loop
// is all it needs.
impl<T: Scalar> crate::traits::SpMvMulti<T> for DenseMatrix<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let d = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(1, 2), 12.0);
        assert_eq!(d.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn spmv_identity() {
        let eye = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let x = [1.0, 2.0, 3.0];
        assert_eq!(eye.spmv(&x), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spmv_rectangular() {
        // [1 2 3; 4 5 6] * [1, 1, 1] = [6, 15]
        let a = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j + 1) as f64);
        assert_eq!(a.spmv(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn coo_roundtrip_preserves_entries() {
        let d = DenseMatrix::from_fn(4, 4, |i, j| if (i + j) % 3 == 0 { 1.5 } else { 0.0 });
        let back = d.to_coo().to_dense();
        assert_eq!(d.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn profiling_matrix_is_fully_dense() {
        let d = DenseMatrix::<f32>::profiling(8, 8);
        assert_eq!(d.count_nonzeros(), 64);
        assert!(d.data().iter().all(|&v| (1.0..=7.0).contains(&v)));
    }

    #[test]
    fn working_set_includes_vectors() {
        let d = DenseMatrix::<f64>::zeros(2, 3);
        assert_eq!(d.matrix_bytes(), 6 * 8);
        assert_eq!(d.working_set_bytes(), 6 * 8 + 5 * 8);
    }
}
