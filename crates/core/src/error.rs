//! Error types shared by every crate in the workspace.

use core::fmt;

/// Convenience alias for results with [`enum@Error`].
pub type Result<T> = core::result::Result<T, Error>;

/// Errors raised while constructing or validating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An entry coordinate lies outside the matrix dimensions.
    OutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        n_rows: usize,
        /// Number of columns in the matrix.
        n_cols: usize,
    },
    /// A dimension, index, or nonzero count does not fit in the `u32`
    /// index type mandated by the storage formats.
    IndexOverflow {
        /// The value that exceeded [`crate::MAX_INDEX`].
        value: u64,
        /// What the value counts (e.g. `"nnz"`, `"rows"`).
        what: &'static str,
    },
    /// A vector passed to a kernel has the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
        /// Which argument mismatched (e.g. `"x"`, `"y"`).
        what: &'static str,
    },
    /// A structural invariant of a storage format is violated
    /// (produced by the `validate()` methods).
    InvalidStructure(String),
    /// A block shape or size is outside the supported search space.
    UnsupportedShape {
        /// Block rows.
        r: usize,
        /// Block columns.
        c: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfBounds {
                row,
                col,
                n_rows,
                n_cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {n_rows}x{n_cols} matrix"
            ),
            Error::IndexOverflow { value, what } => write!(
                f,
                "{what} = {value} exceeds the u32 index range used by the storage formats"
            ),
            Error::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(f, "vector `{what}` has length {got}, expected {expected}"),
            Error::InvalidStructure(msg) => write!(f, "invalid storage structure: {msg}"),
            Error::UnsupportedShape { r, c } => write!(
                f,
                "block shape {r}x{c} is outside the supported search space (r*c <= 8)"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        let e = Error::OutOfBounds {
            row: 5,
            col: 7,
            n_rows: 3,
            n_cols: 3,
        };
        assert!(e.to_string().contains("(5, 7)"));
        let e = Error::IndexOverflow {
            value: 1 << 40,
            what: "nnz",
        };
        assert!(e.to_string().contains("nnz"));
        let e = Error::DimensionMismatch {
            expected: 10,
            got: 9,
            what: "x",
        };
        assert!(e.to_string().contains("`x`"));
        let e = Error::UnsupportedShape { r: 9, c: 9 };
        assert!(e.to_string().contains("9x9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error<E: std::error::Error>(_: E) {}
        takes_std_error(Error::InvalidStructure("x".into()));
    }
}
