//! The numeric element trait and precision descriptors.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type of a sparse matrix.
///
/// The paper evaluates every storage format in *single precision* (`f32`,
/// reported as `sp`) and *double precision* (`f64`, reported as `dp`);
/// this trait is the abstraction that lets every kernel, format, and model
/// in the workspace be written once for both.
///
/// The trait is deliberately small: kernels only need a ring with
/// `mul_add`, and the performance models need lossless conversion to `f64`
/// for time arithmetic.
pub trait Scalar:
    Copy
    + Clone
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes (`size_of::<Self>()`).
    const BYTES: usize;
    /// The paper's label for this precision: `"sp"` or `"dp"`.
    const PRECISION: Precision;

    /// Lossy conversion from `f64` (used by generators and test fixtures).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by models and accuracy checks).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused/contracted `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Whether the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;

    /// Approximate equality with both relative and absolute tolerance.
    ///
    /// Returns `true` when `|self - other| <= max(abs_tol, rel_tol * max(|self|, |other|))`.
    /// This is what format round-trip tests use to compare a blocked SpMV
    /// result against the CSR/dense reference (the summation order differs
    /// between formats, so exact equality does not hold in general).
    fn approx_eq(self, other: Self, rel_tol: f64, abs_tol: f64) -> bool {
        let a = self.to_f64();
        let b = other.to_f64();
        if a == b {
            return true;
        }
        let diff = (a - b).abs();
        let scale = a.abs().max(b.abs());
        diff <= abs_tol.max(rel_tol * scale)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const PRECISION: Precision = Precision::Single;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Plain multiply-add: `f32::mul_add` lowers to a libm call on
        // targets without FMA, which would make the kernels unrepresentative
        // of the paper's compiled C loops.
        self * a + b
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const PRECISION: Precision = Precision::Double;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Floating-point precision of a configuration, using the paper's labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// `f32`, reported as `sp` in the paper's tables.
    Single,
    /// `f64`, reported as `dp` in the paper's tables.
    Double,
}

impl Precision {
    /// The paper's table label: `"sp"` or `"dp"`.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::Single => "sp",
            Precision::Double => "dp",
        }
    }

    /// Element size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Both precisions, in the order the paper reports them (dp first).
    pub const ALL: [Precision; 2] = [Precision::Double, Precision::Single];
}

impl Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(0.0), T::ZERO);
        assert_eq!(T::from_f64(1.0), T::ONE);
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::BYTES, core::mem::size_of::<T>());
    }

    #[test]
    fn roundtrip_f32() {
        generic_roundtrip::<f32>();
    }

    #[test]
    fn roundtrip_f64() {
        generic_roundtrip::<f64>();
    }

    #[test]
    fn mul_add_matches_expression() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
    }

    #[test]
    fn approx_eq_absolute_tolerance() {
        assert!(1e-12f64.approx_eq(0.0, 0.0, 1e-9));
        assert!(!1e-6f64.approx_eq(0.0, 0.0, 1e-9));
    }

    #[test]
    fn approx_eq_relative_tolerance() {
        let a = 1000.0f64;
        let b = 1000.0f64 * (1.0 + 1e-10);
        assert!(a.approx_eq(b, 1e-9, 0.0));
        assert!(!a.approx_eq(1001.0, 1e-9, 0.0));
    }

    #[test]
    fn approx_eq_handles_exact_zero() {
        assert!(0.0f32.approx_eq(0.0, 0.0, 0.0));
    }

    #[test]
    fn precision_labels_match_paper() {
        assert_eq!(Precision::Single.label(), "sp");
        assert_eq!(Precision::Double.label(), "dp");
        assert_eq!(<f32 as Scalar>::PRECISION, Precision::Single);
        assert_eq!(<f64 as Scalar>::PRECISION, Precision::Double);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!f64::NAN.is_finite());
        assert!(!f32::INFINITY.is_finite());
        assert!(1.0f64.is_finite());
    }
}
