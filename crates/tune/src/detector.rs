//! Windowed-residual staleness detection with hysteresis.
//!
//! The detector turns a stream of absolute relative prediction errors
//! (`|predicted − measured| / measured`, from the serving engine's
//! residual log) into a verdict about whether the currently published
//! (format, block, kernel) selection is *stale* — i.e. the model inputs
//! it was ranked under no longer describe reality (structure drifted,
//! bandwidth changed, a kernel's timing moved).
//!
//! Design constraints, in order:
//!
//! 1. **No flapping.** A single noisy dispatch must never trigger a
//!    reselection, and the detector must not oscillate when the windowed
//!    error hovers near the threshold. Two mechanisms enforce this: the
//!    verdict only escalates after [`DetectorConfig::consecutive`]
//!    observations whose windowed mean exceeds [`DetectorConfig::enter`],
//!    and a hysteresis band — once suspicious, the detector only stands
//!    down when the mean falls below the *lower* threshold
//!    [`DetectorConfig::exit`]; in between it holds its state.
//! 2. **Count-driven.** State advances one residual observation at a
//!    time; there is no clock anywhere, so seeded tests replay decisions
//!    exactly.
//! 3. **Swap-aware.** After the tuner republishes, residuals from the
//!    transient (cold caches, drained batches) are absorbed by a
//!    [`DetectorConfig::cooldown`] that discards observations, then the
//!    window refills from scratch; the first post-swap verdict at or
//!    below `exit` is reported once as [`Verdict::Recovered`] so a
//!    timeline can prove the swap actually fixed the residuals.

use std::collections::VecDeque;

/// Thresholds and window geometry for [`StalenessDetector`].
///
/// Invariants are normalized at construction rather than checked:
/// `window`, `consecutive`, and `min_samples` are at least 1,
/// `min_samples` at most `window`, and `exit` at most `enter`.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Observations in the sliding window the mean is taken over.
    pub window: usize,
    /// Windowed mean `|rel err|` above which an observation counts
    /// toward staleness.
    pub enter: f64,
    /// Windowed mean at or below which a suspicious detector stands
    /// down (and a post-swap detector reports recovery). Must be below
    /// `enter`; the gap is the hysteresis band.
    pub exit: f64,
    /// Consecutive over-`enter` observations required to go stale.
    pub consecutive: usize,
    /// Post-swap observations discarded before the window refills.
    pub cooldown: usize,
    /// Window fill required before any verdict besides `Warming`.
    pub min_samples: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            window: 16,
            enter: 0.35,
            exit: 0.15,
            consecutive: 3,
            cooldown: 8,
            min_samples: 4,
        }
    }
}

impl DetectorConfig {
    fn normalized(mut self) -> Self {
        self.window = self.window.max(1);
        self.consecutive = self.consecutive.max(1);
        self.min_samples = self.min_samples.clamp(1, self.window);
        if !(self.enter.is_finite() && self.enter > 0.0) {
            self.enter = Self::default().enter;
        }
        if !(self.exit.is_finite() && self.exit >= 0.0) {
            self.exit = Self::default().exit;
        }
        self.exit = self.exit.min(self.enter);
        self
    }
}

/// What the detector concluded after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Window not yet filled to `min_samples`; no opinion.
    Warming,
    /// Windowed error is at or below the hysteresis band.
    Healthy,
    /// Windowed error exceeded `enter` for this many consecutive
    /// observations (fewer than `consecutive`).
    Suspect(usize),
    /// Staleness confirmed; latched until [`StalenessDetector::on_swap`].
    Stale,
    /// Post-swap transient being discarded.
    CoolingDown,
    /// First at-or-below-`exit` verdict after a swap — reported once,
    /// then the detector is simply `Healthy`.
    Recovered,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Warming { after_swap: bool },
    Healthy,
    Suspect(usize),
    Stale,
    Cooldown(usize),
}

/// The per-target staleness state machine.
///
/// Feed it `|rel err|` values with [`observe`](Self::observe); it
/// answers with a [`Verdict`]. `Stale` latches until the tuner swaps and
/// calls [`on_swap`](Self::on_swap).
#[derive(Debug, Clone)]
pub struct StalenessDetector {
    cfg: DetectorConfig,
    ring: VecDeque<f64>,
    state: State,
    observations: u64,
}

impl StalenessDetector {
    /// A fresh (warming) detector with normalized `cfg`.
    pub fn new(cfg: DetectorConfig) -> Self {
        let cfg = cfg.normalized();
        Self {
            ring: VecDeque::with_capacity(cfg.window),
            cfg,
            state: State::Warming { after_swap: false },
            observations: 0,
        }
    }

    /// The configuration (post-normalization) this detector runs under.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Mean `|rel err|` over the current window (`0.0` while empty).
    pub fn windowed(&self) -> f64 {
        if self.ring.is_empty() {
            0.0
        } else {
            self.ring.iter().sum::<f64>() / self.ring.len() as f64
        }
    }

    /// Observations in the current window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total observations ever fed in (including discarded ones).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether the detector is currently latched stale.
    pub fn is_stale(&self) -> bool {
        self.state == State::Stale
    }

    /// The verdict as of the last observation, without observing.
    pub fn verdict(&self) -> Verdict {
        match self.state {
            State::Warming { .. } => Verdict::Warming,
            State::Healthy => Verdict::Healthy,
            State::Suspect(k) => Verdict::Suspect(k),
            State::Stale => Verdict::Stale,
            State::Cooldown(_) => Verdict::CoolingDown,
        }
    }

    /// Incorporates one absolute relative error and returns the verdict
    /// after it. Non-finite values are ignored (verdict unchanged).
    pub fn observe(&mut self, abs_rel: f64) -> Verdict {
        if !abs_rel.is_finite() {
            return self.verdict();
        }
        self.observations += 1;

        // Cooldown discards the post-swap transient entirely: the value
        // never enters the window.
        if let State::Cooldown(remaining) = self.state {
            self.state = if remaining > 1 {
                State::Cooldown(remaining - 1)
            } else {
                State::Warming { after_swap: true }
            };
            return Verdict::CoolingDown;
        }

        if self.ring.len() == self.cfg.window {
            self.ring.pop_front();
        }
        self.ring.push_back(abs_rel);
        let stat = self.windowed();

        self.state = match self.state {
            State::Cooldown(_) => unreachable!("handled above"),
            State::Stale => State::Stale,
            State::Warming { after_swap } => {
                if self.ring.len() < self.cfg.min_samples {
                    State::Warming { after_swap }
                } else if stat > self.cfg.enter {
                    self.escalate(1)
                } else if stat <= self.cfg.exit {
                    if after_swap {
                        // Report recovery exactly once, then be Healthy.
                        self.state = State::Healthy;
                        return Verdict::Recovered;
                    }
                    State::Healthy
                } else {
                    // In the hysteresis band: not convincingly healthy
                    // yet — keep warming so a post-swap `Recovered` only
                    // ever fires on an at-or-below-`exit` window.
                    State::Warming { after_swap }
                }
            }
            State::Healthy => {
                if stat > self.cfg.enter {
                    self.escalate(1)
                } else {
                    State::Healthy
                }
            }
            State::Suspect(k) => {
                if stat > self.cfg.enter {
                    self.escalate(k + 1)
                } else if stat <= self.cfg.exit {
                    State::Healthy
                } else {
                    // Band: hold the count, neither escalate nor clear.
                    State::Suspect(k)
                }
            }
        };
        self.verdict()
    }

    fn escalate(&self, count: usize) -> State {
        if count >= self.cfg.consecutive {
            State::Stale
        } else {
            State::Suspect(count)
        }
    }

    /// Tells the detector the tuner swapped (or republished) the target:
    /// the window is cleared and the next `cooldown` observations are
    /// discarded, after which the detector warms up again and reports
    /// [`Verdict::Recovered`] the first time the refilled window sits at
    /// or below `exit`.
    pub fn on_swap(&mut self) {
        self.ring.clear();
        self.state = if self.cfg.cooldown > 0 {
            State::Cooldown(self.cfg.cooldown)
        } else {
            State::Warming { after_swap: true }
        };
    }

    /// Back to a fresh pre-swap warming state (window cleared).
    pub fn reset(&mut self) {
        self.ring.clear();
        self.state = State::Warming { after_swap: false };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            window: 4,
            enter: 0.5,
            exit: 0.2,
            consecutive: 2,
            cooldown: 3,
            min_samples: 2,
        }
    }

    #[test]
    fn warms_up_then_goes_healthy() {
        let mut d = StalenessDetector::new(cfg());
        assert_eq!(d.observe(0.1), Verdict::Warming);
        assert_eq!(d.observe(0.1), Verdict::Healthy);
        assert_eq!(d.observe(0.15), Verdict::Healthy);
        assert!(!d.is_stale());
    }

    #[test]
    fn needs_consecutive_hits_to_latch_stale() {
        let mut d = StalenessDetector::new(cfg());
        for _ in 0..4 {
            d.observe(0.05);
        }
        assert_eq!(d.observe(3.0), Verdict::Suspect(1)); // mean jumps over enter
        assert_eq!(d.observe(3.0), Verdict::Stale);
        // Latched: even tiny residuals don't clear it.
        assert_eq!(d.observe(0.0), Verdict::Stale);
        assert!(d.is_stale());
    }

    #[test]
    fn hysteresis_band_holds_suspect_without_escalating_or_clearing() {
        let mut d = StalenessDetector::new(DetectorConfig {
            window: 1, // stat == last observation, easy band control
            consecutive: 3,
            ..cfg()
        });
        d.observe(0.1);
        assert_eq!(d.observe(0.6), Verdict::Suspect(1));
        // In the band (0.2, 0.5]: count must hold at 1.
        assert_eq!(d.observe(0.3), Verdict::Suspect(1));
        assert_eq!(d.observe(0.4), Verdict::Suspect(1));
        // Back over enter: escalates from the held count.
        assert_eq!(d.observe(0.9), Verdict::Suspect(2));
        // Below exit: stands down completely.
        assert_eq!(d.observe(0.1), Verdict::Healthy);
        // And re-entering starts the count over — no memory, no flap.
        assert_eq!(d.observe(0.9), Verdict::Suspect(1));
    }

    #[test]
    fn swap_cooldown_discards_then_recovers_exactly_once() {
        let mut d = StalenessDetector::new(cfg());
        for _ in 0..2 {
            d.observe(0.05);
        }
        d.observe(5.0);
        d.observe(5.0);
        assert!(d.is_stale());

        d.on_swap();
        assert_eq!(d.verdict(), Verdict::CoolingDown);
        // cooldown = 3 observations discarded (window stays empty).
        assert_eq!(d.observe(9.0), Verdict::CoolingDown);
        assert_eq!(d.observe(9.0), Verdict::CoolingDown);
        assert_eq!(d.observe(9.0), Verdict::CoolingDown);
        assert!(d.is_empty());
        // Refill: min_samples = 2 before a verdict.
        assert_eq!(d.observe(0.05), Verdict::Warming);
        assert_eq!(d.observe(0.05), Verdict::Recovered);
        // Only once.
        assert_eq!(d.observe(0.05), Verdict::Healthy);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut d = StalenessDetector::new(cfg());
        d.observe(0.1);
        let before = (d.len(), d.verdict());
        assert_eq!(d.observe(f64::NAN), before.1);
        assert_eq!(d.observe(f64::INFINITY), before.1);
        assert_eq!(d.len(), before.0);
    }

    #[test]
    fn config_normalization_repairs_degenerate_values() {
        let d = StalenessDetector::new(DetectorConfig {
            window: 0,
            enter: f64::NAN,
            exit: 9.0,
            consecutive: 0,
            cooldown: 0,
            min_samples: 0,
        });
        let c = d.config();
        assert!(c.window >= 1 && c.consecutive >= 1 && c.min_samples >= 1);
        assert!(c.exit <= c.enter && c.enter.is_finite());
    }

    #[test]
    fn zero_cooldown_goes_straight_to_post_swap_warming() {
        let mut d = StalenessDetector::new(DetectorConfig {
            cooldown: 0,
            min_samples: 1,
            ..cfg()
        });
        d.on_swap();
        assert_eq!(d.verdict(), Verdict::Warming);
        assert_eq!(d.observe(0.0), Verdict::Recovered);
    }
}
