#![deny(missing_docs)]

//! Online adaptive reselection for served SpMV: keep the paper's model
//! choice honest while the world drifts underneath it.
//!
//! The models (`spmv-model`) rank (format, block, kernel) candidates
//! from inputs measured *once*: a machine bandwidth, a kernel profile,
//! and the matrix's structure statistics. Any of those can go stale in
//! a long-lived server — a co-tenant eats memory bandwidth, a solver
//! re-meshes and republishes a structurally different matrix, thermal
//! limits move kernel timings. This crate closes the loop:
//!
//! * the serving engine streams `(predicted, measured)` residual pairs
//!   per dispatched request (`spmv-serve`, `spmv-telemetry`);
//! * a [`StalenessDetector`] per watched matrix folds them into a
//!   windowed relative-error statistic with hysteresis and a
//!   consecutive-observation requirement, so noise never flaps the
//!   selection;
//! * on staleness, the [`Tuner`] re-measures bounded inputs (bandwidth,
//!   the suspect kernel keys — the [`Sampler`] seam), re-ranks with
//!   exactly `select_extended_measured`, and hot-swaps the winner
//!   through the registry's versioned publish — readers never stall,
//!   in-flight requests complete against the version they captured;
//! * every step lands in a [`TimelineEvent`] log stamped by an injected
//!   [`TuneClock`], and the decision path reads no wall clock at all,
//!   so seeded tests replay whole stale → reprofile → rerank → swap →
//!   recover episodes deterministically.
//!
//! `docs/ADAPTIVE.md` walks the detector math, the swap protocol, and
//! the test seams; the `serve_adapt` binary drives the loop under
//! injected structure drift and bandwidth perturbation and writes the
//! recovery timeline to `results/adaptive.txt`.
//!
//! # Example
//!
//! A deterministic miniature of the whole loop — no engine, no threads:
//! residuals are recorded by hand and passes driven by [`Tuner::run_once`]:
//!
//! ```
//! use std::sync::Arc;
//! use spmv_core::{Coo, Csr};
//! use spmv_model::{Config, KernelProfile, MachineProfile, Model};
//! use spmv_serve::{residual_key_for, MatrixId, PreparedMatrix, Registry};
//! use spmv_tune::{
//!     CannedSampler, DetectorConfig, ManualClock, TuneOptions, Tuner, WatchSpec,
//! };
//!
//! let csr = Arc::new(Csr::from_coo(&Coo::from_triplets(8, 8, vec![
//!     (0, 0, 1.0f64), (3, 2, 1.0), (7, 7, 1.0),
//! ]).unwrap()));
//! let registry = Arc::new(Registry::new());
//! let id = MatrixId(1);
//! registry.publish(id, PreparedMatrix::from_config(Config::CSR, &csr));
//!
//! let tuner = Tuner::new(
//!     Arc::clone(&registry),
//!     None,                                 // no engine: residuals by hand
//!     Arc::new(ManualClock::new(0)),
//!     Box::new(CannedSampler::new()),
//!     TuneOptions::default(),
//! );
//! let machine = MachineProfile { bandwidth: 8e9, l1_bytes: 32 << 10, llc_bytes: 8 << 20 };
//! let spec = WatchSpec {
//!     detector: DetectorConfig { window: 2, consecutive: 2, min_samples: 1,
//!                                ..DetectorConfig::default() },
//!     ..WatchSpec::new(Arc::clone(&csr), Model::Overlap, machine,
//!                      KernelProfile::uniform(1e-9, 0.5))
//! };
//! assert!(tuner.watch(id, spec));
//!
//! // Feed residuals that are 10x off the prediction: two observations
//! // latch the detector, and the next pass reranks and republishes.
//! let key = residual_key_for(Config::CSR, Model::Overlap);
//! for _ in 0..2 {
//!     tuner.residuals().record_for(id.0, &key, 1e-6, 1e-5);
//! }
//! let events = tuner.run_once();
//! assert!(!events.is_empty());
//! assert!(registry.version_of(id).unwrap() > 1);   // hot-swapped
//! ```

pub mod clock;
pub mod core;
pub mod detector;
pub mod runtime;
pub mod sampler;

pub use clock::{ManualClock, SystemClock, TuneClock};
pub use core::{Transition, TunerCore, WatchSpec};
pub use detector::{DetectorConfig, StalenessDetector, Verdict};
pub use runtime::{TimelineEvent, TimelineKind, TuneOptions, Tuner};
pub use sampler::{CannedSampler, MeasuredSampler, NullSampler, Sampler};
