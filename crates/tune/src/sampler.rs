//! Measurement seam for the tuner: bandwidth probes and bounded kernel
//! re-profiles.
//!
//! When the detector latches stale, the tuner may re-measure before it
//! re-ranks — a fresh STREAM-triad bandwidth and fresh `(t_b, nof)`
//! rows for just the suspect kernel keys, folded into the ranking as
//! [`spmv_model::MeasuredOverrides`]. Those measurements are the only
//! nondeterministic inputs on the decision path, so they live behind
//! the [`Sampler`] trait:
//!
//! * [`MeasuredSampler`] — production: runs the probes on a thread
//!   pinned like a pool worker ([`spmv_parallel::run_pinned`]), so the
//!   refreshed numbers see the same core/cache environment the serving
//!   measurements came from;
//! * [`CannedSampler`] — tests and the `serve_adapt` harness: returns
//!   scripted values (and can be armed to panic, which is how the
//!   fault-injection suite proves a tuner crash never reaches serving);
//! * [`NullSampler`] — measures nothing; reranks use the stored profile
//!   unchanged.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use spmv_kernels::simd::SimdScalar;
use spmv_model::{
    profile_keys, stream_triad_bandwidth, stream_triad_bandwidth_with, BandwidthHierarchy,
    BlockTimes, DomainBandwidth, KernelKey, MachineProfile, ProfileOptions,
};
use spmv_parallel::{run_pinned, PinPolicy, Topology};

/// Supplies fresh measurements to a stale-triggered rerank.
///
/// Both methods may be slow (they measure); the tuner calls them off
/// the serving path, at most once per stale episode.
pub trait Sampler: Send + Sync {
    /// A freshly measured memory bandwidth in bytes/s, or `None` to
    /// keep the profiled value.
    fn bandwidth(&self) -> Option<f64>;

    /// Re-measured `(t_b, nof)` rows for (a subset of) `keys`. Keys the
    /// sampler cannot or will not measure are simply absent; the stored
    /// profile's rows stand for them.
    fn reprofile(&self, keys: &[KernelKey]) -> Vec<(KernelKey, BlockTimes)>;
}

/// Measures nothing: reranking uses the stored profile as-is.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSampler;

impl Sampler for NullSampler {
    fn bandwidth(&self) -> Option<f64> {
        None
    }

    fn reprofile(&self, _keys: &[KernelKey]) -> Vec<(KernelKey, BlockTimes)> {
        Vec::new()
    }
}

/// Real measurements, pinned like the pool worker they calibrate for.
///
/// `bandwidth()` runs a STREAM triad over three `triad_elems`-element
/// arrays; `reprofile(keys)` delegates to
/// [`spmv_model::profile_keys`] — both inside
/// [`spmv_parallel::run_pinned`] with this sampler's policy/worker, so
/// a tuner thread floating on some housekeeping core still measures
/// from the serving placement.
#[derive(Debug, Clone)]
pub struct MeasuredSampler<T: SimdScalar> {
    /// Machine profile the kernel probes size their matrices against.
    pub machine: MachineProfile,
    /// Kernel-probe sizing (small/large footprints, repetitions).
    pub opts: ProfileOptions,
    /// Placement policy the probe thread is pinned under.
    pub pin: PinPolicy,
    /// Worker index within `pin` (probes run "as" this pool worker).
    pub worker: usize,
    /// Elements per STREAM-triad array (three arrays are allocated).
    pub triad_elems: usize,
    /// Minimum measurement time for the triad, in seconds.
    pub triad_min_time: f64,
    _marker: PhantomData<T>,
}

impl<T: SimdScalar> MeasuredSampler<T> {
    /// A sampler with the default probe sizes: a 32 MiB-per-array triad
    /// (comfortably out of any LLC in the paper's range) and default
    /// [`ProfileOptions`], pinned as worker 0 of `pin`.
    pub fn new(machine: MachineProfile, pin: PinPolicy) -> Self {
        Self {
            machine,
            opts: ProfileOptions::default(),
            pin,
            worker: 0,
            triad_elems: (32 << 20) / std::mem::size_of::<f64>(),
            triad_min_time: 0.02,
            _marker: PhantomData,
        }
    }

    /// Measures a per-domain [`BandwidthHierarchy`] for `topology` with
    /// pinned STREAM-triad sweeps.
    ///
    /// For each domain: the **local** number runs the triad on a thread
    /// pinned to the domain's first core, so first-touch puts the three
    /// arrays on that node and the loop streams from the local
    /// controller. The **remote** number first-touches the arrays on
    /// the home domain, then hands them to
    /// [`spmv_model::stream_triad_bandwidth_with`] on a thread pinned
    /// to the *next* domain — the same pages, now reached across the
    /// interconnect. A one-domain topology reports `remote == local`
    /// (there is no interconnect to cross), which makes the resulting
    /// hierarchy equivalent to [`BandwidthHierarchy::flat`].
    ///
    /// Probes that come back non-finite or non-positive (e.g. pinning
    /// rejected inside a restricted cpuset) fall back to the stored
    /// `machine.bandwidth` so the hierarchy is always usable.
    pub fn measure_hierarchy(&self, topology: &Topology) -> BandwidthHierarchy {
        let elems = self.triad_elems;
        let min_time = self.triad_min_time;
        let nd = topology.n_domains();
        let sane = |bw: f64, fallback: f64| {
            if bw.is_finite() && bw > 0.0 {
                bw
            } else {
                fallback
            }
        };
        let mut domains = Vec::with_capacity(nd);
        for d in 0..nd {
            let home = PinPolicy::Cores(vec![topology.domains()[d][0]]);
            let local = sane(
                run_pinned(&home, 0, || stream_triad_bandwidth(elems, min_time)),
                self.machine.bandwidth,
            );
            let remote = if nd == 1 {
                local
            } else {
                // vec![1.0; n] really writes every element, so the pages
                // are touched (and placed) here, not by the remote loop.
                let (mut a, b, c) = run_pinned(&home, 0, || {
                    (
                        vec![1.0f64; elems],
                        vec![1.5f64; elems],
                        vec![2.5f64; elems],
                    )
                });
                let away = PinPolicy::Cores(vec![topology.domains()[(d + 1) % nd][0]]);
                sane(
                    run_pinned(&away, 0, move || {
                        stream_triad_bandwidth_with(&mut a, &b, &c, min_time)
                    }),
                    local,
                )
            };
            domains.push(DomainBandwidth { local, remote });
        }
        BandwidthHierarchy::new(domains)
    }
}

impl<T: SimdScalar> Sampler for MeasuredSampler<T> {
    fn bandwidth(&self) -> Option<f64> {
        let (elems, min_time) = (self.triad_elems, self.triad_min_time);
        let bw = run_pinned(&self.pin, self.worker, || {
            stream_triad_bandwidth(elems, min_time)
        });
        (bw.is_finite() && bw > 0.0).then_some(bw)
    }

    fn reprofile(&self, keys: &[KernelKey]) -> Vec<(KernelKey, BlockTimes)> {
        if keys.is_empty() {
            return Vec::new();
        }
        run_pinned(&self.pin, self.worker, || {
            profile_keys::<T>(&self.machine, &self.opts, keys)
        })
    }
}

/// Scripted measurements for deterministic tests and load harnesses.
///
/// Returns a fixed bandwidth and a fixed key→times table (filtered to
/// the keys actually requested), counts how often each method was
/// called, and can be armed to panic inside `reprofile` — the injected
/// fault the isolation tests use.
#[derive(Debug, Default)]
pub struct CannedSampler {
    bandwidth: Option<f64>,
    kernels: Vec<(KernelKey, BlockTimes)>,
    panic_on_reprofile: bool,
    bandwidth_calls: AtomicU64,
    reprofile_calls: AtomicU64,
}

impl CannedSampler {
    /// A sampler that measures nothing (like [`NullSampler`], but
    /// call-counted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts the bandwidth probe.
    pub fn with_bandwidth(mut self, bytes_per_s: f64) -> Self {
        self.bandwidth = Some(bytes_per_s);
        self
    }

    /// Scripts the kernel table `reprofile` answers from.
    pub fn with_kernels(mut self, kernels: Vec<(KernelKey, BlockTimes)>) -> Self {
        self.kernels = kernels;
        self
    }

    /// Arms `reprofile` to panic — the injected tuner fault.
    pub fn panicking(mut self) -> Self {
        self.panic_on_reprofile = true;
        self
    }

    /// How many times `bandwidth` was called.
    pub fn bandwidth_calls(&self) -> u64 {
        self.bandwidth_calls.load(Ordering::Relaxed)
    }

    /// How many times `reprofile` was called.
    pub fn reprofile_calls(&self) -> u64 {
        self.reprofile_calls.load(Ordering::Relaxed)
    }
}

impl Sampler for CannedSampler {
    fn bandwidth(&self) -> Option<f64> {
        self.bandwidth_calls.fetch_add(1, Ordering::Relaxed);
        self.bandwidth
    }

    fn reprofile(&self, keys: &[KernelKey]) -> Vec<(KernelKey, BlockTimes)> {
        self.reprofile_calls.fetch_add(1, Ordering::Relaxed);
        if self.panic_on_reprofile {
            panic!("injected sampler fault (CannedSampler::panicking)");
        }
        self.kernels
            .iter()
            .filter(|(k, _)| keys.contains(k))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_sampler_filters_to_requested_keys_and_counts_calls() {
        let s = CannedSampler::new().with_bandwidth(5e9).with_kernels(vec![
            (KernelKey::Csr, BlockTimes { t_b: 1e-9, nof: 0.5 }),
            (
                KernelKey::CsrDelta {
                    imp: spmv_kernels::KernelImpl::Scalar,
                },
                BlockTimes { t_b: 2e-9, nof: 0.4 },
            ),
        ]);
        assert_eq!(s.bandwidth(), Some(5e9));
        let got = s.reprofile(&[KernelKey::Csr]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, KernelKey::Csr);
        assert_eq!(s.bandwidth_calls(), 1);
        assert_eq!(s.reprofile_calls(), 1);
    }

    #[test]
    fn panicking_sampler_panics_only_in_reprofile() {
        let s = CannedSampler::new().panicking();
        assert_eq!(s.bandwidth(), None);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.reprofile(&[KernelKey::Csr])
        }));
        assert!(r.is_err());
        assert_eq!(s.reprofile_calls(), 1);
    }

    #[test]
    fn null_sampler_measures_nothing() {
        assert_eq!(NullSampler.bandwidth(), None);
        assert!(NullSampler.reprofile(&[KernelKey::Csr]).is_empty());
    }

    #[test]
    fn measured_hierarchy_covers_every_domain() {
        // Tiny triad: this checks plumbing and shape, not real numbers.
        let mut s = MeasuredSampler::<f64>::new(MachineProfile::paper_testbed(), PinPolicy::None);
        s.triad_elems = 1 << 12;
        s.triad_min_time = 0.001;

        let flat = s.measure_hierarchy(&Topology::flat(2));
        assert_eq!(flat.n_domains(), 1);
        // One domain has no interconnect: remote is the local number.
        assert_eq!(flat.domains()[0].remote, flat.domains()[0].local);
        assert!(flat.domains()[0].local > 0.0);

        let two = s.measure_hierarchy(&Topology::from_domains(vec![vec![0], vec![1]]));
        assert_eq!(two.n_domains(), 2);
        for d in two.domains() {
            assert!(d.local > 0.0 && d.remote > 0.0);
        }
    }
}
