//! The background tuner: drains residuals, runs the decision core, and
//! hot-swaps re-ranked selections through the serving registry.
//!
//! One [`Tuner`] watches any number of registered matrices. Each
//! decision **pass** (a [`Tuner::run_once`] call, or one background
//! iteration):
//!
//! 1. drains the residual tracker's event log and feeds each target's
//!    [`StalenessDetector`](crate::detector::StalenessDetector);
//! 2. for every target latched stale: asks the [`Sampler`] for a fresh
//!    bandwidth and a bounded re-profile of the suspect kernel keys,
//!    folds them into [`MeasuredOverrides`], and re-ranks with
//!    [`TunerCore::choose`] (strictly `select_extended_measured`);
//! 3. publishes the winner through [`Registry::publish`] — readers
//!    never stall, in-flight requests keep the version they captured —
//!    then, when an engine is attached, runs the swap protocol:
//!    *calibrate* the new version on the serving host, *expect* the
//!    calibrated baseline under the new version (older versions stop
//!    recording on their own), *begin a latency window* so pre/post
//!    swap percentiles separate, and *fence* so no request accepted
//!    before the swap is still executing against the old version;
//! 4. appends [`TimelineEvent`]s, stamped by the injected
//!    [`TuneClock`], for every step.
//!
//! # Fault isolation
//!
//! Every pass runs under `catch_unwind`. A panic anywhere in the
//! decision path (the injected-fault tests panic inside the sampler)
//! latches [`Tuner::panicked`], emits one `PanicIsolated` timeline
//! event, and permanently stops the tuner from publishing — while the
//! registry keeps serving the last-good selection untouched. A tuner
//! crash degrades to "no more adaptation", never to an outage.
//!
//! # Determinism
//!
//! The decision path reads no wall clock and takes no sleeps: detectors
//! advance per observation, and passes happen when [`Tuner::run_once`]
//! is called (tests) or when the background thread wakes (production,
//! [`TuneOptions::poll_interval`] or a [`Tuner::kick`]). Under a
//! [`ManualClock`](crate::clock::ManualClock) and a seeded residual
//! stream, every transition and timeline entry is reproducible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use spmv_core::{Csr, MatrixShape};
use spmv_kernels::simd::SimdScalar;
use spmv_model::{Config, MeasuredOverrides};
use spmv_serve::{residual_key_for, MatrixId, PreparedMatrix, Registry, ServeEngine};
use spmv_telemetry::residual::ResidualTracker;

use crate::clock::TuneClock;
use crate::core::{TunerCore, WatchSpec};
use crate::detector::Verdict;
use crate::sampler::Sampler;

/// Knobs for the tuner runtime (the decision *thresholds* live on each
/// target's [`WatchSpec`](crate::core::WatchSpec)).
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// How long the background thread sleeps between passes when nobody
    /// kicks it.
    pub poll_interval: Duration,
    /// Whether stale targets trigger a bounded kernel re-profile (via
    /// the sampler) before reranking.
    pub reprofile: bool,
    /// Repetitions for the post-publish calibration measurement.
    pub calibrate_reps: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(50),
            reprofile: true,
            calibrate_reps: 3,
        }
    }
}

/// One entry in the tuner's recovery timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Timestamp from the injected clock, ns since its epoch.
    pub t_ns: u64,
    /// The matrix id the event concerns (`0` for tuner-wide events).
    pub matrix: u64,
    /// What happened.
    pub kind: TimelineKind,
}

/// What a [`TimelineEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineKind {
    /// The tuner started watching a matrix serving `config`.
    Watch {
        /// Display form of the watched selection.
        config: String,
    },
    /// The publisher told the tuner the matrix's structure changed.
    StructureDrift,
    /// The detector latched stale at this windowed mean `|rel err|`.
    Stale {
        /// Windowed mean at the moment of latching.
        windowed: f64,
    },
    /// The sampler re-measured this many suspect kernel keys.
    Reprofiled {
        /// Rows returned by the sampler.
        keys: usize,
    },
    /// Reranking under measured overrides picked `config`.
    Reranked {
        /// Display form of the winner.
        config: String,
        /// Its predicted seconds per SpMV.
        predicted: f64,
    },
    /// A different configuration was published: the hot-swap.
    Swapped {
        /// Registry version the swap published.
        version: u64,
        /// Display form of the configuration swapped out.
        from: String,
        /// Display form of the configuration swapped in.
        to: String,
    },
    /// The incumbent won the rerank and was republished with a freshly
    /// calibrated baseline (the measurements drifted, the ranking
    /// didn't).
    Confirmed {
        /// Registry version the republish created.
        version: u64,
        /// Display form of the (unchanged) configuration.
        config: String,
    },
    /// First post-swap window at or below the exit threshold.
    Recovered {
        /// Windowed mean that proved recovery.
        windowed: f64,
    },
    /// A decision pass panicked; the tuner stopped publishing.
    PanicIsolated {
        /// Panic payload (when it was a string).
        detail: String,
    },
}

impl std::fmt::Display for TimelineEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>12.6}s] matrix {:>3}: ",
            self.t_ns as f64 / 1e9,
            self.matrix
        )?;
        match &self.kind {
            TimelineKind::Watch { config } => write!(f, "watch ({config})"),
            TimelineKind::StructureDrift => write!(f, "structure drift announced"),
            TimelineKind::Stale { windowed } => {
                write!(f, "stale (windowed |rel err| = {windowed:.3})")
            }
            TimelineKind::Reprofiled { keys } => write!(f, "reprofiled {keys} kernel key(s)"),
            TimelineKind::Reranked { config, predicted } => {
                write!(f, "reranked -> {config} (predicted {:.3} ms)", predicted * 1e3)
            }
            TimelineKind::Swapped { version, from, to } => {
                write!(f, "SWAPPED {from} -> {to} (v{version})")
            }
            TimelineKind::Confirmed { version, config } => {
                write!(f, "confirmed {config} (v{version}, baseline refreshed)")
            }
            TimelineKind::Recovered { windowed } => {
                write!(f, "recovered (windowed |rel err| = {windowed:.3})")
            }
            TimelineKind::PanicIsolated { detail } => {
                write!(f, "tuner pass panicked, isolated: {detail}")
            }
        }
    }
}

struct TunerState<T: SimdScalar> {
    registry: Arc<Registry<T>>,
    engine: Option<Arc<ServeEngine<T>>>,
    tracker: Arc<ResidualTracker>,
    clock: Arc<dyn TuneClock>,
    sampler: Box<dyn Sampler>,
    opts: TuneOptions,
    core: Mutex<TunerCore<T>>,
    timeline: Mutex<Vec<TimelineEvent>>,
    panicked: AtomicBool,
    stop: AtomicBool,
    kick: Mutex<bool>,
    kick_cv: Condvar,
}

/// The residual-driven background tuner.
///
/// Construct with [`Tuner::new`], register targets with
/// [`Tuner::watch`], then either drive passes deterministically with
/// [`Tuner::run_once`] or let [`Tuner::start`] run them on a background
/// thread. Dropping the tuner stops and joins the thread.
pub struct Tuner<T: SimdScalar> {
    state: Arc<TunerState<T>>,
    thread: Option<JoinHandle<()>>,
}

impl<T: SimdScalar> Tuner<T> {
    /// A tuner over `registry`. When `engine` is given, the tuner
    /// subscribes to *its* residual tracker and runs the full swap
    /// protocol (calibrate → expect → latency window → fence) on every
    /// publish; without one it still detects, reranks, and publishes —
    /// the residual stream then comes from whatever the caller records
    /// into [`Tuner::residuals`].
    pub fn new(
        registry: Arc<Registry<T>>,
        engine: Option<Arc<ServeEngine<T>>>,
        clock: Arc<dyn TuneClock>,
        sampler: Box<dyn Sampler>,
        opts: TuneOptions,
    ) -> Self {
        let tracker = engine
            .as_ref()
            .map(|e| Arc::clone(e.residuals()))
            .unwrap_or_default();
        Self {
            state: Arc::new(TunerState {
                registry,
                engine,
                tracker,
                clock,
                sampler,
                opts,
                core: Mutex::new(TunerCore::new()),
                timeline: Mutex::new(Vec::new()),
                panicked: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                kick: Mutex::new(false),
                kick_cv: Condvar::new(),
            }),
            thread: None,
        }
    }

    /// The residual tracker the tuner drains (the attached engine's,
    /// when there is one).
    pub fn residuals(&self) -> &Arc<ResidualTracker> {
        &self.state.tracker
    }

    /// Starts watching a matrix that is already published in the
    /// registry; returns `false` (and watches nothing) if it isn't.
    ///
    /// When an engine is attached this also installs the *initial*
    /// residual expectation: the published version is calibrated on the
    /// serving host and that baseline registered under the current
    /// selection's residual key, so the detector's error stream is
    /// centered before any drift happens.
    pub fn watch(&self, id: MatrixId, spec: WatchSpec<T>) -> bool {
        if self.state.panicked.load(Ordering::Acquire) {
            return false;
        }
        let Some((version, prepared)) = self.state.registry.get_versioned(id) else {
            return false;
        };
        let current = prepared.config();
        let model = spec.model;
        let mut core = lock(&self.state.core);
        core.watch(id.0, spec, current);
        drop(core);
        if let Some(engine) = &self.state.engine {
            let baseline = Self::calibrated_baseline(
                engine,
                id,
                prepared.n_cols(),
                self.state.opts.calibrate_reps,
                prepared.selection().map(|s| s.predicted).unwrap_or(0.0),
            );
            engine.expect(id, version, residual_key_for(current, model), baseline);
        }
        self.push_event(id.0, TimelineKind::Watch {
            config: current.to_string(),
        });
        true
    }

    /// Tells the tuner the structure behind `id` changed (the publisher
    /// republished a drifted matrix): subsequent reranks rank against
    /// `csr`. Returns `false` if `id` isn't watched. The detector is
    /// *not* reset — the tuner only acts when residuals actually move.
    pub fn update_structure(&self, id: MatrixId, csr: Arc<Csr<T>>) -> bool {
        let updated = lock(&self.state.core).update_structure(id.0, csr);
        if updated {
            self.push_event(id.0, TimelineKind::StructureDrift);
        }
        updated
    }

    /// Runs one decision pass on the calling thread and returns the
    /// timeline events it generated. This is the deterministic seam the
    /// test suites drive; the background thread calls exactly this. A
    /// panicked tuner no-ops.
    pub fn run_once(&self) -> Vec<TimelineEvent> {
        Self::pass(&self.state)
    }

    /// Spawns the background thread (idempotent). It runs a pass every
    /// [`TuneOptions::poll_interval`], or sooner when kicked.
    pub fn start(&mut self) {
        if self.thread.is_some() {
            return;
        }
        let state = Arc::clone(&self.state);
        self.thread = Some(
            std::thread::Builder::new()
                .name("spmv-tuner".into())
                .spawn(move || {
                    while !state.stop.load(Ordering::Acquire) {
                        let mut kicked = lock(&state.kick);
                        if !*kicked {
                            let (g, _) = state
                                .kick_cv
                                .wait_timeout(kicked, state.opts.poll_interval)
                                .unwrap_or_else(|e| e.into_inner());
                            kicked = g;
                        }
                        *kicked = false;
                        drop(kicked);
                        if state.stop.load(Ordering::Acquire) {
                            break;
                        }
                        let _ = Self::pass(&state);
                    }
                })
                .expect("spawn tuner thread"),
        );
    }

    /// Wakes the background thread for an immediate pass.
    pub fn kick(&self) {
        *lock(&self.state.kick) = true;
        self.state.kick_cv.notify_all();
    }

    /// Stops and joins the background thread (idempotent; also run by
    /// `Drop`).
    pub fn stop(&mut self) {
        self.state.stop.store(true, Ordering::Release);
        self.kick();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Whether a decision pass panicked (the tuner no longer publishes).
    pub fn panicked(&self) -> bool {
        self.state.panicked.load(Ordering::Acquire)
    }

    /// A copy of the full timeline so far.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        lock(&self.state.timeline).clone()
    }

    /// The configuration the tuner believes is serving `id`.
    pub fn current_config(&self, id: MatrixId) -> Option<Config> {
        lock(&self.state.core).current(id.0)
    }

    /// The detector verdict for `id` (no new observation).
    pub fn verdict_for(&self, id: MatrixId) -> Option<Verdict> {
        lock(&self.state.core).verdict(id.0)
    }

    /// The windowed mean `|rel err|` for `id`.
    pub fn windowed_for(&self, id: MatrixId) -> Option<f64> {
        lock(&self.state.core).windowed(id.0)
    }

    fn push_event(&self, matrix: u64, kind: TimelineKind) {
        let ev = TimelineEvent {
            t_ns: self.state.clock.now_ns(),
            matrix,
            kind,
        };
        lock(&self.state.timeline).push(ev);
    }

    /// One guarded decision pass over `state`.
    fn pass(state: &Arc<TunerState<T>>) -> Vec<TimelineEvent> {
        if state.panicked.load(Ordering::Acquire) {
            return Vec::new();
        }
        let result = catch_unwind(AssertUnwindSafe(|| Self::pass_inner(state)));
        match result {
            Ok(events) => events,
            Err(payload) => {
                state.panicked.store(true, Ordering::Release);
                let ev = TimelineEvent {
                    t_ns: state.clock.now_ns(),
                    matrix: 0,
                    kind: TimelineKind::PanicIsolated {
                        detail: panic_detail(payload.as_ref()),
                    },
                };
                lock(&state.timeline).push(ev.clone());
                vec![ev]
            }
        }
    }

    fn pass_inner(state: &Arc<TunerState<T>>) -> Vec<TimelineEvent> {
        let mut out = Vec::new();
        let mut push = |matrix: u64, kind: TimelineKind| {
            out.push(TimelineEvent {
                t_ns: state.clock.now_ns(),
                matrix,
                kind,
            });
        };

        let events = state.tracker.drain_events();
        let mut core = lock(&state.core);
        for tr in core.observe_events(&events) {
            match tr.verdict {
                Verdict::Stale => push(tr.matrix, TimelineKind::Stale {
                    windowed: tr.windowed,
                }),
                Verdict::Recovered => push(tr.matrix, TimelineKind::Recovered {
                    windowed: tr.windowed,
                }),
                _ => {}
            }
        }

        for matrix in core.stale_targets() {
            let mut overrides = MeasuredOverrides {
                bandwidth: state.sampler.bandwidth(),
                kernels: Vec::new(),
            };
            if state.opts.reprofile {
                let keys = core.suspect_keys(matrix);
                let rows = state.sampler.reprofile(&keys);
                if !rows.is_empty() {
                    push(matrix, TimelineKind::Reprofiled { keys: rows.len() });
                }
                overrides.kernels = rows;
            }
            let Some(winner) = core.choose(matrix, &overrides) else {
                continue;
            };
            push(matrix, TimelineKind::Reranked {
                config: winner.config.to_string(),
                predicted: winner.predicted,
            });

            let Some(target) = core.target(matrix) else {
                continue;
            };
            let (from, spec_csr) = (target.current, Arc::clone(&target.spec.csr));
            let (model, threads, placement) = (
                target.spec.model,
                target.spec.pool_threads,
                target.spec.placement.clone(),
            );
            let id = MatrixId(matrix);

            let prepared = if threads > 1 {
                PreparedMatrix::from_config_pooled_placed(winner.config, &spec_csr, threads, placement)
            } else {
                PreparedMatrix::from_config(winner.config, &spec_csr)
            }
            .with_selection(model, winner.predicted);
            let version = state.registry.publish(id, prepared);

            if let Some(engine) = &state.engine {
                let baseline = Self::calibrated_baseline(
                    engine,
                    id,
                    spec_csr.n_cols(),
                    state.opts.calibrate_reps,
                    winner.predicted,
                );
                engine.expect(id, version, residual_key_for(winner.config, model), baseline);
                engine.begin_latency_window();
                engine.fence();
            }

            if winner.config != from {
                push(matrix, TimelineKind::Swapped {
                    version,
                    from: from.to_string(),
                    to: winner.config.to_string(),
                });
            } else {
                push(matrix, TimelineKind::Confirmed {
                    version,
                    config: winner.config.to_string(),
                });
            }
            core.apply_swap(matrix, winner.config);
        }
        drop(core);

        lock(&state.timeline).extend(out.iter().cloned());
        out
    }

    /// Measures the just-published version on the serving host; falls
    /// back to the model's prediction when calibration fails (unknown
    /// id race, zero-column matrix).
    fn calibrated_baseline(
        engine: &ServeEngine<T>,
        id: MatrixId,
        n_cols: usize,
        reps: usize,
        fallback: f64,
    ) -> f64 {
        let x = vec![T::ONE; n_cols];
        match engine.calibrate(id, &x, reps) {
            Ok(t) if t.is_finite() && t > 0.0 => t,
            _ => fallback,
        }
    }
}

impl<T: SimdScalar> Drop for Tuner<T> {
    fn drop(&mut self) {
        self.stop();
    }
}

impl<T: SimdScalar> std::fmt::Debug for Tuner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("watched", &lock(&self.state.core).watched())
            .field("panicked", &self.panicked())
            .field("background", &self.thread.is_some())
            .finish()
    }
}

fn lock<G>(m: &Mutex<G>) -> MutexGuard<'_, G> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::detector::DetectorConfig;
    use crate::sampler::CannedSampler;
    use spmv_core::Coo;
    use spmv_model::{KernelProfile, MachineProfile, Model};

    fn small_csr() -> Arc<Csr<f64>> {
        let mut coo = Coo::new(48, 48);
        for i in 0..48 {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < 48 {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        Arc::new(Csr::from_coo(&coo))
    }

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 8e9,
            l1_bytes: 32 << 10,
            llc_bytes: 8 << 20,
        }
    }

    fn spec(csr: &Arc<Csr<f64>>) -> WatchSpec<f64> {
        WatchSpec {
            detector: DetectorConfig {
                window: 2,
                enter: 0.5,
                exit: 0.2,
                consecutive: 2,
                cooldown: 1,
                min_samples: 1,
            },
            ..WatchSpec::new(
                Arc::clone(csr),
                Model::Overlap,
                machine(),
                KernelProfile::uniform(1e-9, 0.5),
            )
        }
    }

    #[test]
    fn watch_requires_a_published_matrix() {
        let registry: Arc<Registry<f64>> = Arc::new(Registry::new());
        let tuner = Tuner::new(
            Arc::clone(&registry),
            None,
            Arc::new(ManualClock::new(0)),
            Box::new(CannedSampler::new()),
            TuneOptions::default(),
        );
        let csr = small_csr();
        assert!(!tuner.watch(MatrixId(1), spec(&csr)));
        registry.publish(
            MatrixId(1),
            PreparedMatrix::from_config(Config::CSR, &csr),
        );
        assert!(tuner.watch(MatrixId(1), spec(&csr)));
        assert_eq!(tuner.current_config(MatrixId(1)), Some(Config::CSR));
        assert!(matches!(
            tuner.timeline().last().map(|e| e.kind.clone()),
            Some(TimelineKind::Watch { .. })
        ));
    }

    #[test]
    fn a_pass_with_no_events_does_nothing() {
        let registry: Arc<Registry<f64>> = Arc::new(Registry::new());
        let csr = small_csr();
        registry.publish(
            MatrixId(1),
            PreparedMatrix::from_config(Config::CSR, &csr),
        );
        let tuner = Tuner::new(
            Arc::clone(&registry),
            None,
            Arc::new(ManualClock::new(0)),
            Box::new(CannedSampler::new()),
            TuneOptions::default(),
        );
        tuner.watch(MatrixId(1), spec(&csr));
        assert!(tuner.run_once().is_empty());
        assert_eq!(registry.version_of(MatrixId(1)), Some(1));
    }

    #[test]
    fn manual_clock_stamps_the_timeline() {
        let registry: Arc<Registry<f64>> = Arc::new(Registry::new());
        let csr = small_csr();
        registry.publish(
            MatrixId(1),
            PreparedMatrix::from_config(Config::CSR, &csr),
        );
        let clock = Arc::new(ManualClock::new(1_000));
        let tuner = Tuner::new(
            Arc::clone(&registry),
            None,
            Arc::clone(&clock) as Arc<dyn TuneClock>,
            Box::new(CannedSampler::new()),
            TuneOptions::default(),
        );
        tuner.watch(MatrixId(1), spec(&csr));
        assert_eq!(tuner.timeline()[0].t_ns, 1_000);
        clock.advance(500);
        tuner.update_structure(MatrixId(1), small_csr());
        assert_eq!(tuner.timeline()[1].t_ns, 1_500);
        assert_eq!(tuner.timeline()[1].kind, TimelineKind::StructureDrift);
    }

    #[test]
    fn background_thread_starts_kicks_and_stops() {
        let registry: Arc<Registry<f64>> = Arc::new(Registry::new());
        let csr = small_csr();
        registry.publish(
            MatrixId(1),
            PreparedMatrix::from_config(Config::CSR, &csr),
        );
        let mut tuner = Tuner::new(
            Arc::clone(&registry),
            None,
            Arc::new(ManualClock::new(0)),
            Box::new(CannedSampler::new()),
            TuneOptions {
                poll_interval: Duration::from_millis(5),
                ..TuneOptions::default()
            },
        );
        tuner.watch(MatrixId(1), spec(&csr));
        tuner.start();
        tuner.start(); // idempotent
        tuner.kick();
        tuner.stop();
        tuner.stop(); // idempotent
        assert!(!tuner.panicked());
    }
}
