//! The tuner's time source seam.
//!
//! Every timestamp in the tuner — timeline events, and nothing else —
//! comes through [`TuneClock`]. The decision path itself (stale →
//! reprofile → rerank → swap) is *count-driven*: the detector advances
//! on residual observations, never on elapsed time, so no decision ever
//! reads a clock. That is what makes the state-machine tests in
//! `tests/adaptive_tuner.rs` fully deterministic: they drive a
//! [`ManualClock`] and a seeded residual stream, and every transition is
//! reproducible bit-for-bit with no sleeps.
//!
//! Production uses [`SystemClock`], a monotonic `Instant` anchored at
//! construction, so timeline timestamps read as "nanoseconds since the
//! tuner started".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic nanosecond source for timeline stamps.
///
/// Implementations must be cheap and never go backwards; the tuner
/// calls [`TuneClock::now_ns`] once per timeline event.
pub trait TuneClock: Send + Sync {
    /// Nanoseconds since this clock's epoch (its construction, for the
    /// system clock; whatever the test set, for a manual one).
    fn now_ns(&self) -> u64;
}

/// Wall-clock time via a monotonic [`Instant`] anchored at creation.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TuneClock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests.
///
/// Time only moves when the test calls [`ManualClock::advance`] (or
/// [`ManualClock::set`]); share one behind an `Arc` with the tuner and
/// every timeline stamp becomes an assertable constant.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        Self {
            ns: AtomicU64::new(start_ns),
        }
    }

    /// Moves time forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed);
    }

    /// Jumps time to an absolute `now_ns` (tests only; may go backwards).
    pub fn set(&self, now_ns: u64) {
        self.ns.store(now_ns, Ordering::Relaxed);
    }
}

impl TuneClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 100);
        c.advance(25);
        assert_eq!(c.now_ns(), 125);
        c.set(7);
        assert_eq!(c.now_ns(), 7);
    }

    #[test]
    fn system_clock_is_monotonic_from_zero() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
