//! The tuner's pure decision core: per-target state and the re-ranking
//! rule, with no threads, clocks, registry, or engine in sight.
//!
//! Everything here is deterministic given its inputs. The runtime
//! ([`crate::runtime::Tuner`]) is a thin shell that drains residual
//! events into [`TunerCore::observe_events`], asks
//! [`TunerCore::choose`] what to publish for stale targets, and performs
//! the side effects (publish, calibrate, expect, fence). The property
//! suite leans on one invariant this split makes checkable:
//! **the tuner adds no selection logic** — [`TunerCore::choose`] *is*
//! [`spmv_model::select_extended_measured`], nothing more, so the
//! config the tuner swaps in always equals what the model ranks first
//! under the same measured inputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use spmv_core::Csr;
use spmv_kernels::simd::SimdScalar;
use spmv_model::{
    select_extended_measured, Candidate, Config, KernelKey, KernelProfile, MachineProfile,
    MeasuredOverrides, Model,
};
use spmv_parallel::Placement;
use spmv_telemetry::residual::ResidualEvent;

use crate::detector::{DetectorConfig, StalenessDetector, Verdict};

/// Everything the tuner needs to watch (and, when stale, re-prepare)
/// one registered matrix.
#[derive(Debug, Clone)]
pub struct WatchSpec<T: SimdScalar> {
    /// The matrix's current CSR structure — what reranks rank against.
    /// Replaced via `update_structure` when the publisher drifts it.
    pub csr: Arc<Csr<T>>,
    /// The performance model selections are ranked under.
    pub model: Model,
    /// Machine profile reranks start from (before measured overrides).
    pub machine: MachineProfile,
    /// Kernel profile reranks start from (before measured overrides).
    pub profile: KernelProfile,
    /// Whether SIMD kernels are in the candidate space.
    pub include_simd: bool,
    /// Staleness thresholds for this target.
    pub detector: DetectorConfig,
    /// Worker threads for the re-prepared matrix (`<= 1` ⇒ single-thread
    /// backend, no pool).
    pub pool_threads: usize,
    /// Placement for the re-prepared matrix's pool (if any): pin policy
    /// plus the NUMA levers (first-touch strips, nnz-split) — use
    /// [`Placement::domain_aware`] so hot-swapped pools keep the same
    /// NUMA placement the original serving pool had.
    pub placement: Placement,
}

impl<T: SimdScalar> WatchSpec<T> {
    /// A spec with the extended SIMD-inclusive candidate space, default
    /// detector thresholds, and a single-thread (pool-free) backend.
    pub fn new(
        csr: Arc<Csr<T>>,
        model: Model,
        machine: MachineProfile,
        profile: KernelProfile,
    ) -> Self {
        Self {
            csr,
            model,
            machine,
            profile,
            include_simd: true,
            detector: DetectorConfig::default(),
            pool_threads: 1,
            placement: Placement::none(),
        }
    }
}

/// One watched matrix: its spec, its detector, and what is currently
/// published for it.
#[derive(Debug, Clone)]
pub(crate) struct TuneTarget<T: SimdScalar> {
    pub(crate) spec: WatchSpec<T>,
    pub(crate) detector: StalenessDetector,
    pub(crate) current: Config,
}

/// A verdict transition worth telling the timeline about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// The registry id ([`spmv_serve::MatrixId`]`.0`) that transitioned.
    pub matrix: u64,
    /// The verdict that fired (`Stale` on entry, or `Recovered`).
    pub verdict: Verdict,
    /// The windowed mean `|rel err|` at the moment it fired.
    pub windowed: f64,
}

/// Deterministic per-target bookkeeping for the tuner.
#[derive(Debug, Default)]
pub struct TunerCore<T: SimdScalar> {
    targets: BTreeMap<u64, TuneTarget<T>>,
}

impl<T: SimdScalar> TunerCore<T> {
    /// An empty core.
    pub fn new() -> Self {
        Self {
            targets: BTreeMap::new(),
        }
    }

    /// Starts watching `matrix`, whose published selection is
    /// `current`. Replaces any previous watch of the same id.
    pub fn watch(&mut self, matrix: u64, spec: WatchSpec<T>, current: Config) {
        let detector = StalenessDetector::new(spec.detector.clone());
        self.targets.insert(
            matrix,
            TuneTarget {
                spec,
                detector,
                current,
            },
        );
    }

    /// Stops watching `matrix`. Returns whether it was watched.
    pub fn unwatch(&mut self, matrix: u64) -> bool {
        self.targets.remove(&matrix).is_some()
    }

    /// Ids currently watched, ascending.
    pub fn watched(&self) -> Vec<u64> {
        self.targets.keys().copied().collect()
    }

    /// Replaces the structure reranks rank against (the publisher
    /// drifted the matrix). Returns whether `matrix` was watched.
    ///
    /// Deliberately does *not* touch the detector: the tuner reacts to
    /// measured residuals, not to being told — a drift that doesn't
    /// move the residuals doesn't warrant a swap.
    pub fn update_structure(&mut self, matrix: u64, csr: Arc<Csr<T>>) -> bool {
        match self.targets.get_mut(&matrix) {
            Some(t) => {
                t.spec.csr = csr;
                true
            }
            None => false,
        }
    }

    /// Feeds drained residual events to their targets' detectors, in
    /// order, and returns the reportable transitions: one `Stale` per
    /// entry into staleness, and every `Recovered`. Events for
    /// unwatched matrices are ignored.
    pub fn observe_events(&mut self, events: &[ResidualEvent]) -> Vec<Transition> {
        let mut out = Vec::new();
        for ev in events {
            let Some(target) = self.targets.get_mut(&ev.matrix) else {
                continue;
            };
            let was_stale = target.detector.is_stale();
            let verdict = target.detector.observe(ev.abs_rel());
            let report = match verdict {
                Verdict::Stale => !was_stale,
                Verdict::Recovered => true,
                _ => false,
            };
            if report {
                out.push(Transition {
                    matrix: ev.matrix,
                    verdict,
                    windowed: target.detector.windowed(),
                });
            }
        }
        out
    }

    /// Ids whose detectors are latched stale (awaiting a swap),
    /// ascending.
    pub fn stale_targets(&self) -> Vec<u64> {
        self.targets
            .iter()
            .filter(|(_, t)| t.detector.is_stale())
            .map(|(id, _)| *id)
            .collect()
    }

    /// The bounded re-profile set for a stale target: just the kernel
    /// key of the configuration currently serving — the kernel whose
    /// residuals misbehaved. (The stored profile's rows stand for every
    /// other candidate; re-measuring all 53 keys on a live host is the
    /// offline calibration path, not the tuner's.)
    pub fn suspect_keys(&self, matrix: u64) -> Vec<KernelKey> {
        self.targets
            .get(&matrix)
            .map(|t| vec![t.current.kernel_key()])
            .unwrap_or_default()
    }

    /// The configuration the tuner would publish for `matrix` under
    /// `overrides` — by definition, exactly what
    /// [`select_extended_measured`] ranks first. This delegation is the
    /// whole method; the property suite asserts it stays that way.
    pub fn choose(&self, matrix: u64, overrides: &MeasuredOverrides) -> Option<Candidate> {
        let t = self.targets.get(&matrix)?;
        Some(select_extended_measured(
            t.spec.model,
            &t.spec.csr,
            &t.spec.machine,
            &t.spec.profile,
            t.spec.include_simd,
            overrides,
        ))
    }

    /// Records that the runtime published `new_config` for `matrix`:
    /// updates the current selection and puts the detector into its
    /// post-swap cooldown.
    pub fn apply_swap(&mut self, matrix: u64, new_config: Config) {
        if let Some(t) = self.targets.get_mut(&matrix) {
            t.current = new_config;
            t.detector.on_swap();
        }
    }

    /// The currently published configuration of a watched matrix.
    pub fn current(&self, matrix: u64) -> Option<Config> {
        self.targets.get(&matrix).map(|t| t.current)
    }

    /// The detector verdict of a watched matrix (no new observation).
    pub fn verdict(&self, matrix: u64) -> Option<Verdict> {
        self.targets.get(&matrix).map(|t| t.detector.verdict())
    }

    /// The windowed mean `|rel err|` of a watched matrix.
    pub fn windowed(&self, matrix: u64) -> Option<f64> {
        self.targets.get(&matrix).map(|t| t.detector.windowed())
    }

    pub(crate) fn target(&self, matrix: u64) -> Option<&TuneTarget<T>> {
        self.targets.get(&matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;
    use spmv_model::select_extended;
    use spmv_telemetry::residual::ResidualKey;

    fn small_csr() -> Arc<Csr<f64>> {
        let mut coo = Coo::new(32, 32);
        for i in 0..32 {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < 32 {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        Arc::new(Csr::from_coo(&coo))
    }

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 8e9,
            l1_bytes: 32 << 10,
            llc_bytes: 8 << 20,
        }
    }

    fn event(matrix: u64, predicted: f64, measured: f64) -> ResidualEvent {
        ResidualEvent {
            seq: 0,
            matrix,
            key: ResidualKey {
                format: "CSR".into(),
                shape: "-".into(),
                kernel: "scalar".into(),
                model: "OVERLAP".into(),
            },
            predicted,
            measured,
        }
    }

    fn core_with_target(detector: DetectorConfig) -> TunerCore<f64> {
        let mut core = TunerCore::new();
        let spec = WatchSpec {
            detector,
            ..WatchSpec::new(
                small_csr(),
                Model::Overlap,
                machine(),
                KernelProfile::uniform(1e-9, 0.5),
            )
        };
        core.watch(7, spec, Config::CSR);
        core
    }

    fn tight_detector() -> DetectorConfig {
        DetectorConfig {
            window: 2,
            enter: 0.5,
            exit: 0.2,
            consecutive: 2,
            cooldown: 1,
            min_samples: 1,
        }
    }

    #[test]
    fn events_route_by_matrix_id_and_report_stale_entry_once() {
        let mut core = core_with_target(tight_detector());
        // Unwatched ids are ignored; watched id needs 2 consecutive.
        let evs = vec![
            event(99, 1.0, 10.0),
            event(7, 1.0, 10.0),
            event(7, 1.0, 10.0),
            event(7, 1.0, 10.0), // already stale: no second report
        ];
        let transitions = core.observe_events(&evs);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].matrix, 7);
        assert_eq!(transitions[0].verdict, Verdict::Stale);
        assert_eq!(core.stale_targets(), vec![7]);
        assert!(core.verdict(99).is_none());
    }

    #[test]
    fn choose_is_exactly_the_measured_selection() {
        let core = core_with_target(DetectorConfig::default());
        let overrides = MeasuredOverrides {
            bandwidth: Some(2e9),
            kernels: vec![],
        };
        let chosen = core.choose(7, &overrides).unwrap();
        let t = core.target(7).unwrap();
        let (m2, p2) = overrides.apply(&t.spec.machine, &t.spec.profile);
        let direct = select_extended(Model::Overlap, &t.spec.csr, &m2, &p2, true);
        assert_eq!(chosen.config, direct.config);
        assert_eq!(chosen.predicted, direct.predicted);
        assert!(core.choose(99, &overrides).is_none());
    }

    #[test]
    fn apply_swap_updates_current_and_cools_the_detector() {
        let mut core = core_with_target(tight_detector());
        core.observe_events(&[event(7, 1.0, 10.0), event(7, 1.0, 10.0)]);
        assert!(core.stale_targets().contains(&7));
        let new = core.choose(7, &MeasuredOverrides::default()).unwrap();
        core.apply_swap(7, new.config);
        assert!(core.stale_targets().is_empty());
        assert_eq!(core.current(7), Some(new.config));
        assert_eq!(core.verdict(7), Some(Verdict::CoolingDown));
    }

    #[test]
    fn suspect_keys_name_only_the_serving_kernel() {
        let core = core_with_target(DetectorConfig::default());
        assert_eq!(core.suspect_keys(7), vec![Config::CSR.kernel_key()]);
        assert!(core.suspect_keys(99).is_empty());
    }

    #[test]
    fn structure_updates_swap_the_ranked_matrix_without_touching_state() {
        let mut core = core_with_target(tight_detector());
        core.observe_events(&[event(7, 1.0, 10.0)]);
        let before = core.verdict(7);
        let denser = {
            let mut coo = Coo::new(32, 32);
            for i in 0..32 {
                for j in 0..32 {
                    if (i + j) % 3 == 0 {
                        coo.push(i, j, 1.0).unwrap();
                    }
                }
            }
            Arc::new(Csr::from_coo(&coo))
        };
        assert!(core.update_structure(7, Arc::clone(&denser)));
        assert!(!core.update_structure(99, denser));
        assert_eq!(core.verdict(7), before);
    }
}
