//! The concurrent, read-mostly registry of prepared matrices.
//!
//! A serving process holds many matrices, each already converted to the
//! storage format the performance models selected for it. Lookups happen
//! on every request; publications (a new matrix, or a re-selected format
//! for an existing one) are rare. The registry is therefore built
//! read-first:
//!
//! * entries are spread over `2^s` **shards** by a splitmix64 hash of the
//!   [`MatrixId`], so unrelated publications never contend;
//! * each shard keeps **two immutable snapshots** of its map plus an
//!   atomic index saying which one is live (the *left-right* scheme, the
//!   same epoch-pointer idea `arc-swap` implements): readers take the
//!   live snapshot with two atomic operations and a hash lookup — no
//!   lock, no allocation, and no writer can ever stall them;
//! * a writer (holding the shard's writer mutex) builds the next
//!   snapshot in the *inactive* slot, flips the index, and only ever
//!   reuses a slot after its last reader has drained — so a reader
//!   always sees a fully-published snapshot, never a map mid-mutation.
//!
//! Versions are assigned by the registry on publish and grow
//! monotonically per entry, which is what lets a background tuner
//! hot-swap a re-selected format while readers keep serving traffic.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use spmv_core::{Csr, MatrixShape, SpMv, SpMvMulti};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::KernelImpl;
use spmv_model::{
    select_extended, BlockConfig, BuiltFormat, Config, KernelProfile, MachineProfile, Model,
};
use spmv_parallel::{csr_unit_weights, sell_unit_weights, Placement, PinPolicy, SpmvPool};
use spmv_telemetry::residual::ResidualKey;

/// Identity of a matrix in the registry: an opaque 64-bit id chosen by
/// the publisher (a tenant key, a content hash, a sequence number — the
/// registry only hashes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixId(pub u64);

impl fmt::Display for MatrixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{:016x}", self.0)
    }
}

/// How a prepared matrix was selected: the model that ranked its
/// configuration first and the per-SpMV time that ranking expected.
///
/// The expectation is what live dispatch measurements are compared
/// against to produce prediction residuals — it may be the model's raw
/// prediction, or a value the publisher calibrated by measuring the
/// prepared matrix once on the serving host (which centers residuals at
/// zero so a detector sees *drift*, not the model's constant bias).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The model that made (or would re-make) the selection.
    pub model: Model,
    /// Expected seconds for one single-vector SpMV.
    pub predicted: f64,
}

/// The canonical residual-tracker key of one (configuration, model)
/// prediction population — the same labeling the `modeleval` harness
/// writes, so serving-time residuals and offline evaluation rows land in
/// comparable buckets.
pub fn residual_key_for(config: Config, model: Model) -> ResidualKey {
    let (format, shape) = match config.block {
        BlockConfig::Csr => ("CSR", "-".to_string()),
        BlockConfig::CsrDelta => ("CSR-DELTA", "-".to_string()),
        BlockConfig::Bcsr(s) => ("BCSR", format!("{}x{}", s.r, s.c)),
        BlockConfig::BcsrNarrow(s) => ("BCSR16", format!("{}x{}", s.r, s.c)),
        BlockConfig::BcsrDec(s) => ("BCSR-DEC", format!("{}x{}", s.r, s.c)),
        BlockConfig::Bcsd(b) => ("BCSD", format!("b{b}")),
        BlockConfig::BcsdNarrow(b) => ("BCSD16", format!("b{b}")),
        BlockConfig::BcsdDec(b) => ("BCSD-DEC", format!("b{b}")),
        BlockConfig::BcsrMasked(s) => ("BCSR-MASK", format!("{}x{}", s.r, s.c)),
        BlockConfig::BcsdMasked(b) => ("BCSD-MASK", format!("b{b}")),
        BlockConfig::SellCSigma { c, sigma } => ("SELL", sell_shape_label(c, sigma)),
        BlockConfig::SellCSigmaNarrow { c, sigma } => ("SELL16", sell_shape_label(c, sigma)),
    };
    ResidualKey {
        format: format.to_string(),
        shape,
        kernel: match config.imp {
            KernelImpl::Scalar => "scalar".to_string(),
            KernelImpl::Simd => "simd".to_string(),
        },
        model: model.label().to_string(),
    }
}

fn sell_shape_label(c: usize, sigma: usize) -> String {
    if sigma == spmv_formats::SELL_SIGMA_FULL {
        format!("c{c}sn")
    } else {
        format!("c{c}s{sigma}")
    }
}

/// The pool partitioning inputs for `config`: per-unit weights and the
/// unit height strips are aligned to. SELL configurations partition on
/// slice boundaries (units of `c` rows, weighted by the padded slice
/// storage) so every worker's local σ-windowed conversion starts on a
/// slice edge; everything else balances per-row nonzeros.
fn pool_inputs<T: SimdScalar>(config: Config, csr: &Csr<T>) -> (Vec<u64>, usize) {
    match config.block {
        BlockConfig::SellCSigma { c, .. } | BlockConfig::SellCSigmaNarrow { c, .. } => {
            (sell_unit_weights(csr, c), c)
        }
        _ => (csr_unit_weights(csr), 1),
    }
}

/// A matrix ready to serve traffic: the storage format and kernel the
/// models selected, plus the execution backend that runs it.
///
/// The backend is either the materialized format itself (dispatched on
/// the engine thread) or a persistent [`SpmvPool`] whose workers execute
/// the strips in parallel. Both implement [`SpMvMulti`], so the request
/// engine batches through them uniformly.
pub struct PreparedMatrix<T: SimdScalar> {
    config: Config,
    backend: Backend<T>,
    n_rows: usize,
    n_cols: usize,
    selection: Option<Selection>,
}

enum Backend<T: SimdScalar> {
    Direct(BuiltFormat<T>),
    Pooled(SpmvPool<T>),
}

impl<T: SimdScalar> PreparedMatrix<T> {
    /// Runs model-driven selection over the extended configuration space
    /// and materializes the winner.
    ///
    /// This is the serving-side entry point to the paper's pipeline:
    /// `select_extended` ranks every (format, block, kernel) candidate in
    /// `O(nnz)` per candidate and the winner alone is built.
    pub fn prepare(
        csr: &Csr<T>,
        model: Model,
        machine: &MachineProfile,
        profile: &KernelProfile,
        include_simd: bool,
    ) -> Self {
        let choice = select_extended(model, csr, machine, profile, include_simd);
        Self::from_config(choice.config, csr).with_selection(model, choice.predicted)
    }

    /// Materializes an explicit configuration for `csr` (no selection).
    pub fn from_config(config: Config, csr: &Csr<T>) -> Self {
        PreparedMatrix {
            config,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            backend: Backend::Direct(config.build(csr)),
            selection: None,
        }
    }

    /// Attaches (or replaces) the selection expectation — see
    /// [`Selection`] for what `predicted` means to the residual loop.
    pub fn with_selection(mut self, model: Model, predicted: f64) -> Self {
        self.selection = Some(Selection { model, predicted });
        self
    }

    /// Like [`PreparedMatrix::prepare`], but hosts the selected format on
    /// a persistent [`SpmvPool`] with `n_threads` workers, so dispatches
    /// execute strip-parallel.
    ///
    /// The pool's workers live exactly as long as the `PreparedMatrix`:
    /// dropping the last `Arc` handed out by the registry shuts them down
    /// and joins them (see `docs/PARALLEL.md` on the ownership contract).
    pub fn prepare_pooled(
        csr: &Csr<T>,
        model: Model,
        machine: &MachineProfile,
        profile: &KernelProfile,
        include_simd: bool,
        n_threads: usize,
        pin: PinPolicy,
    ) -> Self {
        Self::prepare_pooled_placed(
            csr,
            model,
            machine,
            profile,
            include_simd,
            n_threads,
            Placement::pinned(pin),
        )
    }

    /// Like [`PreparedMatrix::prepare_pooled`], with a full
    /// [`Placement`] — pin policy plus the NUMA levers (first-touch
    /// strip allocation, nnz-split of pathologically heavy rows). Use
    /// [`Placement::domain_aware`] to serve a matrix spread across
    /// memory domains; see `docs/NUMA.md`.
    pub fn prepare_pooled_placed(
        csr: &Csr<T>,
        model: Model,
        machine: &MachineProfile,
        profile: &KernelProfile,
        include_simd: bool,
        n_threads: usize,
        placement: Placement,
    ) -> Self {
        let choice = select_extended(model, csr, machine, profile, include_simd);
        let config = choice.config;
        let (weights, unit_height) = pool_inputs(config, csr);
        let pool = SpmvPool::from_csr_placed(
            csr,
            n_threads,
            &weights,
            unit_height,
            move |sub| config.build(sub),
            placement,
        );
        PreparedMatrix {
            config,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            backend: Backend::Pooled(pool),
            selection: Some(Selection {
                model,
                predicted: choice.predicted,
            }),
        }
    }

    /// Materializes an explicit configuration on a persistent
    /// [`SpmvPool`] (no selection) — the hot-swap path uses this to host
    /// a re-selected configuration on fresh workers.
    pub fn from_config_pooled(
        config: Config,
        csr: &Csr<T>,
        n_threads: usize,
        pin: PinPolicy,
    ) -> Self {
        Self::from_config_pooled_placed(config, csr, n_threads, Placement::pinned(pin))
    }

    /// Like [`PreparedMatrix::from_config_pooled`], with a full
    /// [`Placement`].
    pub fn from_config_pooled_placed(
        config: Config,
        csr: &Csr<T>,
        n_threads: usize,
        placement: Placement,
    ) -> Self {
        let (weights, unit_height) = pool_inputs(config, csr);
        let pool = SpmvPool::from_csr_placed(
            csr,
            n_threads,
            &weights,
            unit_height,
            move |sub| config.build(sub),
            placement,
        );
        PreparedMatrix {
            config,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            backend: Backend::Pooled(pool),
            selection: None,
        }
    }

    /// The configuration the models selected (or the caller pinned).
    pub fn config(&self) -> Config {
        self.config
    }

    /// The selection expectation, when one was attached.
    pub fn selection(&self) -> Option<Selection> {
        self.selection
    }

    /// The residual-tracker key live measurements of this matrix record
    /// under, when a selection expectation is attached.
    pub fn residual_key(&self) -> Option<ResidualKey> {
        self.selection
            .map(|s| residual_key_for(self.config, s.model))
    }

    /// Whether dispatches run on a persistent worker pool.
    pub fn is_pooled(&self) -> bool {
        matches!(self.backend, Backend::Pooled(_))
    }

    /// Whether the backing pool's pin policy landed two workers on one
    /// core (always `false` for direct backends). Surfaced per matrix in
    /// `EngineReport::warnings` — an oversubscribed "parallel" pool
    /// silently serializes its strips.
    pub fn pin_oversubscribed(&self) -> bool {
        match &self.backend {
            Backend::Direct(_) => false,
            Backend::Pooled(pool) => pool.pin_oversubscribed(),
        }
    }
}

impl<T: SimdScalar> fmt::Debug for PreparedMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedMatrix")
            .field("config", &self.config.to_string())
            .field("n_rows", &self.n_rows)
            .field("n_cols", &self.n_cols)
            .field("pooled", &self.is_pooled())
            .finish()
    }
}

impl<T: SimdScalar> MatrixShape for PreparedMatrix<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: SimdScalar> SpMv<T> for PreparedMatrix<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        match &self.backend {
            Backend::Direct(m) => m.spmv_into(x, y),
            Backend::Pooled(p) => p.spmv_into(x, y),
        }
    }
    fn nnz_stored(&self) -> usize {
        match &self.backend {
            Backend::Direct(m) => m.nnz_stored(),
            Backend::Pooled(p) => p.nnz_stored(),
        }
    }
    fn matrix_bytes(&self) -> usize {
        match &self.backend {
            Backend::Direct(m) => m.matrix_bytes(),
            Backend::Pooled(p) => p.matrix_bytes(),
        }
    }
}

impl<T: SimdScalar> SpMvMulti<T> for PreparedMatrix<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        match &self.backend {
            Backend::Direct(m) => m.spmv_multi_into(x, y, k),
            Backend::Pooled(p) => p.spmv_multi_into(x, y, k),
        }
    }
}

/// One registry entry: the prepared matrix plus the monotonic version
/// the registry stamped on publication.
#[derive(Debug, Clone)]
struct Entry<T: SimdScalar> {
    version: u64,
    prepared: Arc<PreparedMatrix<T>>,
}

type ShardMap<T> = HashMap<u64, Entry<T>>;

/// One left-right shard: two map snapshots, an active-slot index, and a
/// per-slot reader count. See the [module docs](self) for the protocol.
struct Shard<T: SimdScalar> {
    /// Which of the two slots readers should enter (0 or 1).
    active: AtomicUsize,
    /// Readers currently inside each slot.
    readers: [AtomicUsize; 2],
    /// The snapshots. A slot is only written while it is inactive *and*
    /// its reader count has drained to zero, under the writer mutex.
    maps: [UnsafeCell<Arc<ShardMap<T>>>; 2],
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

// SAFETY: the left-right protocol ensures a slot is mutated only while
// no reader is inside it (drained, inactive, writer lock held), and the
// maps only hold `Send + Sync` payloads.
unsafe impl<T: SimdScalar> Sync for Shard<T> {}
// SAFETY: same reasoning; ownership transfer of the shard moves both
// snapshots wholesale.
unsafe impl<T: SimdScalar> Send for Shard<T> {}

impl<T: SimdScalar> Shard<T> {
    fn new() -> Self {
        Shard {
            active: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            maps: [
                UnsafeCell::new(Arc::new(HashMap::new())),
                UnsafeCell::new(Arc::new(HashMap::new())),
            ],
            writer: Mutex::new(()),
        }
    }

    /// Takes the live snapshot: two atomics plus an `Arc` clone, never a
    /// lock. The re-check after registering makes the slot's drain
    /// guarantee airtight: a writer can only start mutating a slot after
    /// *two* flips, and the second flip is visible by the time our
    /// registration could have been missed — so if `active` still equals
    /// `a` the slot is safe, and otherwise we back off and retry.
    ///
    /// All protocol atomics are `SeqCst`: the safety argument needs the
    /// reader's registration store and the writer's drain load to be in a
    /// single total order with the flips.
    fn snapshot(&self) -> Arc<ShardMap<T>> {
        loop {
            let a = self.active.load(Ordering::SeqCst);
            self.readers[a].fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == a {
                // SAFETY: slot `a` was active after our registration, so
                // any writer targeting it is still waiting on our drain.
                let map = unsafe { (*self.maps[a].get()).clone() };
                self.readers[a].fetch_sub(1, Ordering::SeqCst);
                return map;
            }
            self.readers[a].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes the map produced by `update(current)` and reports what
    /// `update` returned alongside it.
    fn update<R>(&self, update: impl FnOnce(&ShardMap<T>) -> (ShardMap<T>, R)) -> R {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.active.load(Ordering::SeqCst);
        let inactive = 1 - a;
        // SAFETY: `a` is the active slot and we hold the writer lock, so
        // nothing mutates it; readers only clone the Arc.
        let current = unsafe { (*self.maps[a].get()).clone() };
        let (next, out) = update(&current);
        // Wait for stragglers from the *previous* flip to leave the
        // inactive slot before overwriting it. Publications are rare and
        // reads are two atomics long, so this spin is bounded and short.
        while self.readers[inactive].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: inactive + drained + writer lock held = exclusive.
        unsafe { *self.maps[inactive].get() = Arc::new(next) };
        self.active.store(inactive, Ordering::SeqCst);
        out
    }
}

/// The sharded, read-mostly map from [`MatrixId`] to [`PreparedMatrix`].
///
/// # Example
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_model::Config;
/// use spmv_serve::{MatrixId, PreparedMatrix, Registry};
///
/// let csr = Csr::from_coo(&Coo::from_triplets(2, 2, vec![
///     (0, 0, 2.0), (1, 1, 3.0),
/// ]).unwrap());
/// let registry = Registry::new();
/// let id = MatrixId(42);
/// let v1 = registry.publish(id, PreparedMatrix::from_config(Config::CSR, &csr));
/// assert_eq!(v1, 1);
///
/// let served = registry.get(id).expect("published");
/// assert_eq!(served.spmv(&[1.0, 1.0]), csr.spmv(&[1.0, 1.0]));
///
/// // Re-publishing the same id bumps its version; readers switch over
/// // without ever blocking.
/// let v2 = registry.publish(id, PreparedMatrix::from_config(Config::CSR, &csr));
/// assert_eq!(v2, 2);
/// assert_eq!(registry.version_of(id), Some(2));
/// assert!(registry.get(MatrixId(7)).is_none());
/// ```
pub struct Registry<T: SimdScalar> {
    shards: Box<[Shard<T>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl<T: SimdScalar> Registry<T> {
    /// Default shard count: plenty for tens of writer threads while
    /// keeping an idle registry small.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A registry with [`Registry::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// A registry with `shards` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Registry {
            shards: (0..n).map(|_| Shard::new()).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, id: MatrixId) -> &Shard<T> {
        // splitmix64 finalizer: ids are often sequential, and the shard
        // index must not be.
        let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        &self.shards[(z & self.mask) as usize]
    }

    /// Publishes `prepared` under `id`, replacing any previous entry, and
    /// returns the entry's new version (1 for a first publication,
    /// monotonically increasing per id after that).
    ///
    /// Readers racing with the publication see either the old or the new
    /// entry, never a partial one, and are never blocked.
    pub fn publish(&self, id: MatrixId, prepared: PreparedMatrix<T>) -> u64 {
        let _span = spmv_telemetry::span_with("registry.publish", id.0);
        let prepared = Arc::new(prepared);
        self.shard(id).update(move |cur| {
            let version = cur.get(&id.0).map_or(0, |e| e.version) + 1;
            let mut next = cur.clone();
            next.insert(id.0, Entry { version, prepared });
            (next, version)
        })
    }

    /// Removes `id`, returning whether it was present. The removed
    /// matrix's storage is freed once the last in-flight reader drops its
    /// `Arc`.
    pub fn remove(&self, id: MatrixId) -> bool {
        self.shard(id).update(|cur| {
            let mut next = cur.clone();
            let was = next.remove(&id.0).is_some();
            (next, was)
        })
    }

    /// Looks up `id`. Lock-free: two atomic operations, a hash probe, and
    /// two `Arc` clones on the fast path.
    pub fn get(&self, id: MatrixId) -> Option<Arc<PreparedMatrix<T>>> {
        self.shard(id)
            .snapshot()
            .get(&id.0)
            .map(|e| Arc::clone(&e.prepared))
    }

    /// Like [`Registry::get`], also reporting the entry's publish
    /// version.
    pub fn get_versioned(&self, id: MatrixId) -> Option<(u64, Arc<PreparedMatrix<T>>)> {
        self.shard(id)
            .snapshot()
            .get(&id.0)
            .map(|e| (e.version, Arc::clone(&e.prepared)))
    }

    /// The current publish version of `id`, if present.
    pub fn version_of(&self, id: MatrixId) -> Option<u64> {
        self.shard(id).snapshot().get(&id.0).map(|e| e.version)
    }

    /// Whether `id` is currently published.
    pub fn contains(&self, id: MatrixId) -> bool {
        self.shard(id).snapshot().contains_key(&id.0)
    }

    /// Number of published matrices (a point-in-time sum over shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.snapshot().len()).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every published id, in unspecified order.
    pub fn ids(&self) -> Vec<MatrixId> {
        let mut out: Vec<MatrixId> = self
            .shards
            .iter()
            .flat_map(|s| s.snapshot().keys().map(|&k| MatrixId(k)).collect::<Vec<_>>())
            .collect();
        out.sort_unstable();
        out
    }
}

impl<T: SimdScalar> Default for Registry<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SimdScalar> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn diag(n: usize, scale: f64) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, scale).unwrap();
        }
        Csr::from_coo(&coo)
    }

    fn prepared(scale: f64) -> PreparedMatrix<f64> {
        PreparedMatrix::from_config(Config::CSR, &diag(8, scale))
    }

    #[test]
    fn publish_get_remove_roundtrip() {
        let r = Registry::<f64>::new();
        assert!(r.is_empty());
        assert_eq!(r.publish(MatrixId(1), prepared(2.0)), 1);
        assert_eq!(r.publish(MatrixId(2), prepared(3.0)), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.ids(), vec![MatrixId(1), MatrixId(2)]);
        let got = r.get(MatrixId(1)).unwrap();
        assert_eq!(got.spmv(&[1.0; 8]), vec![2.0; 8]);
        assert!(r.remove(MatrixId(1)));
        assert!(!r.remove(MatrixId(1)));
        assert!(r.get(MatrixId(1)).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn versions_are_per_id_monotonic() {
        let r = Registry::<f64>::new();
        for v in 1..=5u64 {
            assert_eq!(r.publish(MatrixId(9), prepared(v as f64)), v);
            assert_eq!(r.version_of(MatrixId(9)), Some(v));
        }
        // An unrelated id starts back at 1.
        assert_eq!(r.publish(MatrixId(10), prepared(1.0)), 1);
        // Removing and re-publishing restarts the version chain.
        r.remove(MatrixId(9));
        assert_eq!(r.publish(MatrixId(9), prepared(1.0)), 1);
    }

    #[test]
    fn single_shard_registry_still_works() {
        let r = Registry::<f64>::with_shards(1);
        for i in 0..32 {
            r.publish(MatrixId(i), prepared(i as f64 + 1.0));
        }
        assert_eq!(r.len(), 32);
        for i in 0..32 {
            let (v, p) = r.get_versioned(MatrixId(i)).unwrap();
            assert_eq!(v, 1);
            assert_eq!(p.spmv(&[1.0; 8])[0], i as f64 + 1.0);
        }
    }

    #[test]
    fn selection_metadata_rides_along_and_keys_residuals() {
        let csr = diag(8, 1.0);
        let bare = PreparedMatrix::from_config(Config::CSR, &csr);
        assert_eq!(bare.selection(), None);
        assert_eq!(bare.residual_key(), None);

        let tagged = PreparedMatrix::from_config(Config::CSR, &csr)
            .with_selection(Model::Overlap, 1.25e-6);
        let sel = tagged.selection().unwrap();
        assert_eq!(sel.model, Model::Overlap);
        assert_eq!(sel.predicted, 1.25e-6);
        let key = tagged.residual_key().unwrap();
        assert_eq!(
            (key.format.as_str(), key.shape.as_str(), key.kernel.as_str()),
            ("CSR", "-", "scalar")
        );
        assert_eq!(key.model, Model::Overlap.label());

        // prepare() records what it selected.
        let machine = MachineProfile::paper_testbed();
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let prepared = PreparedMatrix::prepare(&csr, Model::Mem, &machine, &profile, true);
        let sel = prepared.selection().unwrap();
        assert_eq!(sel.model, Model::Mem);
        assert!(sel.predicted > 0.0);
        assert_eq!(
            prepared.residual_key().unwrap(),
            residual_key_for(prepared.config(), Model::Mem)
        );
    }

    #[test]
    fn residual_keys_label_every_family_distinctly() {
        use std::collections::BTreeSet;
        let keys: BTreeSet<String> = Config::enumerate_extended(true)
            .into_iter()
            .map(|c| residual_key_for(c, Model::Overlap).to_string())
            .collect();
        assert_eq!(keys.len(), Config::enumerate_extended(true).len());
    }

    #[test]
    fn pooled_sell_config_matches_serial_bitwise() {
        // The hot-swap path (`from_config_pooled`) must host SELL on
        // strips split at slice boundaries and still reproduce the
        // serial product bit-for-bit — per-row chains are
        // self-contained, so the strip-local permutations cannot show.
        let mut coo = Coo::new(37, 37);
        for i in 0..37usize {
            for s in 0..(i * 5) % 9 {
                coo.push(i, (i * 7 + s * 3) % 37, 0.5 + (i + s) as f64).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..37).map(|i| 0.25 * (i % 9) as f64 - 1.0).collect();
        for sigma in [1usize, 8, spmv_formats::SELL_SIGMA_FULL] {
            let config = Config {
                block: BlockConfig::SellCSigma { c: 4, sigma },
                imp: KernelImpl::Simd,
            };
            let serial = PreparedMatrix::from_config(config, &csr);
            let pooled =
                PreparedMatrix::from_config_pooled(config, &csr, 3, PinPolicy::None);
            assert!(pooled.is_pooled());
            assert_eq!(pooled.spmv(&x), serial.spmv(&x), "sigma={sigma}");
        }
    }

    #[test]
    fn get_versioned_sees_the_latest_publication() {
        let r = Registry::<f64>::with_shards(4);
        r.publish(MatrixId(3), prepared(1.0));
        r.publish(MatrixId(3), prepared(7.0));
        let (v, p) = r.get_versioned(MatrixId(3)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(p.spmv(&[1.0; 8]), vec![7.0; 8]);
    }
}
