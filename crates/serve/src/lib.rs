#![deny(missing_docs)]

//! SpMV-as-a-service: the serving layer over the blocked-SpMV workspace.
//!
//! The paper's models pick the best (format, block, kernel) for a matrix
//! *offline*; this crate is where that selection meets traffic. It adds
//! two pieces on top of `spmv-model` and `spmv-parallel`:
//!
//! * [`Registry`] — a sharded, read-mostly map from [`MatrixId`] to
//!   [`PreparedMatrix`] (the model-selected format, optionally hosted on
//!   a persistent [`spmv_parallel::SpmvPool`]). Reads are lock-free via
//!   left-right epoch pointers; publishers swap in new versions without
//!   ever stalling a reader — the hook the adaptive-reselection roadmap
//!   item hot-swaps through.
//! * [`ServeEngine`] — an async-free batched front door. Submissions
//!   land in a bounded queue (admission control rejects, never blocks);
//!   a dispatcher coalesces same-matrix requests inside a bounded window
//!   into `k ∈ {1, 2, 4, 8}` multi-vector dispatches, exploiting the
//!   SpMM path's measured 1.41–1.90× per-vector amortization; per-request
//!   latency lands in `spmv-telemetry` spans (`serve.enqueue`,
//!   `serve.batch`, `serve.dispatch`, `serve.request`) and in the
//!   engine's own p50/p95/p99 [`EngineReport`].
//!
//! The engine also feeds the adaptive loop: dispatches are timed, and
//! matrices with a registered expectation ([`ServeEngine::expect`])
//! stream `(predicted, measured)` pairs into a shared
//! `telemetry::ResidualTracker` — the signal the `tune` crate's
//! background tuner watches to detect stale selections and hot-swap
//! re-ranked configurations through [`Registry::publish`] (protocol in
//! `docs/ADAPTIVE.md`).
//!
//! `docs/SERVING.md` is the architecture tour; the `serve_load` binary
//! replays synthetic traffic mixes against all of it and records the
//! throughput/latency evidence in `results/serving.txt`; `serve_adapt`
//! does the same for the adaptive loop in `results/adaptive.txt`.
//!
//! # Example
//!
//! Mirroring `examples/quickstart.rs`, but serving the matrix instead of
//! multiplying it inline — build a matrix, let a model select its
//! format, publish, and push requests through the batching front door:
//!
//! ```
//! use std::sync::Arc;
//! use spmv_core::{Coo, Csr, SpMv};
//! use spmv_model::{KernelProfile, MachineProfile, Model};
//! use spmv_serve::{EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine};
//!
//! // 1. Assemble a small 1-D Laplacian.
//! let n = 64;
//! let mut coo = Coo::<f64>::new(n, n);
//! for i in 0..n {
//!     coo.push(i, i, 2.0).unwrap();
//!     if i > 0 { coo.push(i, i - 1, -1.0).unwrap(); }
//!     if i + 1 < n { coo.push(i, i + 1, -1.0).unwrap(); }
//! }
//! let csr = Csr::from_coo(&coo);
//!
//! // 2. Model-driven preparation: OVERLAP ranks the extended
//! //    configuration space and the winner alone is materialized.
//! //    (A real server calibrates; a canned profile keeps this doctest
//! //    fast and deterministic.)
//! let machine = MachineProfile { bandwidth: 8e9, l1_bytes: 32 << 10, llc_bytes: 8 << 20 };
//! let profile = KernelProfile::uniform(1e-9, 0.5);
//! let prepared = PreparedMatrix::prepare(&csr, Model::Overlap, &machine, &profile, true);
//!
//! // 3. Publish and serve.
//! let registry = Arc::new(Registry::new());
//! let id = MatrixId(1);
//! registry.publish(id, prepared);
//! let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());
//!
//! let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
//! let y = engine.submit_wait(id, x.clone()).unwrap();
//! assert_eq!(y, csr.spmv(&x));
//! ```

pub mod engine;
pub mod registry;

pub use engine::{EngineOptions, EngineReport, LatencySummary, ServeEngine, ServeError, Ticket};
pub use registry::{residual_key_for, MatrixId, PreparedMatrix, Registry, Selection};
