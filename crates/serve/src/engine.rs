//! The batched request engine: the serving front door.
//!
//! SpMV is shared-bandwidth-bound, so the cheapest request a server can
//! run is one it can merge with another: a `k`-vector SpMM call streams
//! the matrix arrays once for `k` products (measured 1.41–1.90× per-
//! vector amortization in this workspace). The engine exploits that by
//! **coalescing**: submissions land in one bounded queue; a dedicated
//! dispatcher thread drains it, groups requests by matrix, greedily
//! chunks each group into the kernel-specialized widths `k ∈ {8, 4, 2,
//! 1}`, and runs each chunk as a single [`SpMvMulti::spmv_multi`] call
//! on the registry's prepared matrix.
//!
//! Everything is async-free std: submission is a mutex push + condvar
//! notify, completion a per-request slot the caller blocks on through
//! [`Ticket::wait`]. **Admission control** is reject-not-block: when the
//! queue holds `capacity` requests, [`ServeEngine::submit`] returns
//! [`ServeError::Saturated`] immediately instead of wedging the caller
//! behind a slow dispatcher.
//!
//! With telemetry recording enabled the engine emits `serve.enqueue`
//! (submit call, arg = queue depth after the push), `serve.batch` (one
//! coalesced chunk: assemble + dispatch + complete, arg = k),
//! `serve.dispatch` (the SpMM call alone, arg = k), and `serve.request`
//! (one request's full submit→complete latency, arg = matrix id) spans.
//! The engine also keeps its own latency record so
//! [`ServeEngine::report`] can summarize p50/p95/p99 even in
//! telemetry-disabled builds.
//!
//! # Residual feeding
//!
//! Every dispatched chunk is timed. When the served matrix has a
//! registered **expectation** ([`ServeEngine::expect`]: the publish
//! version, a residual key, and the expected seconds per single-vector
//! SpMV), the engine folds `(expected, measured_per_vector)` into its
//! [`ResidualTracker`] tagged with the matrix id — the stream an online
//! tuner drains to detect stale selections. Requests are stamped with
//! the registry version they captured at submit, and a measurement is
//! recorded only if that version still matches the expectation, so
//! in-flight requests racing a hot-swap never poison the new version's
//! residual population. [`ServeEngine::set_residual_scale`] multiplies
//! recorded measurements (never the actual replies) — a documented
//! fault-injection seam that lets tests and load generators simulate a
//! machine slowdown without one.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{MatrixId, PreparedMatrix, Registry};
use spmv_core::{MatrixShape, SpMv, SpMvMulti};
use spmv_kernels::simd::SimdScalar;
use spmv_telemetry::residual::{ResidualKey, ResidualTracker};

/// The chunk widths the dispatcher may emit, widest first — these are
/// exactly the widths the SpMM kernels specialize.
const CHUNK_WIDTHS: [usize; 4] = [8, 4, 2, 1];

/// How a submission or a request can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue already holds `capacity` requests; the request
    /// was rejected, not queued. Back off and retry.
    Saturated {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// No matrix is published under this id.
    UnknownMatrix(MatrixId),
    /// The input vector length does not match the matrix column count.
    BadLength {
        /// Required length (`n_cols`).
        expected: usize,
        /// Submitted length.
        got: usize,
    },
    /// The engine is shutting down (or a request was abandoned mid-
    /// flight by a dispatcher failure).
    ShutDown,
    /// The dispatch kernel panicked; the request was not computed.
    DispatchPanicked,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { capacity } => {
                write!(f, "request queue saturated (capacity {capacity})")
            }
            ServeError::UnknownMatrix(id) => write!(f, "no matrix published under {id}"),
            ServeError::BadLength { expected, got } => {
                write!(f, "input vector length {got} != matrix columns {expected}")
            }
            ServeError::ShutDown => write!(f, "engine is shut down"),
            ServeError::DispatchPanicked => write!(f, "dispatch kernel panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Bounded queue size; submissions beyond it are rejected with
    /// [`ServeError::Saturated`].
    pub capacity: usize,
    /// The coalescing window: after waking on a non-empty queue the
    /// dispatcher sleeps this long before draining, so concurrent
    /// requests for the same matrix can pile into one batch. It is also
    /// the latency floor a lone request pays — keep it well under the
    /// matrix's own SpMV time. Zero dispatches immediately.
    pub window: Duration,
    /// Upper bound on the chunk width `k` (clamped to 8, the widest
    /// specialized kernel). 1 disables coalescing — every request runs
    /// as its own dispatch, the baseline `serve_load` compares against.
    pub max_batch: usize,
    /// Start with dispatching paused ([`ServeEngine::resume`] starts it);
    /// used by tests and drain-style maintenance.
    pub start_paused: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            capacity: 1024,
            window: Duration::from_micros(200),
            max_batch: 8,
            start_paused: false,
        }
    }
}

/// Where a request's result is delivered; the submitting side blocks on
/// it through [`Ticket::wait`].
struct ReplySlot<T> {
    result: Mutex<Option<Result<Vec<T>, ServeError>>>,
    cv: Condvar,
}

impl<T> ReplySlot<T> {
    fn new() -> Self {
        ReplySlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// First completion wins; later ones (e.g. the abandon guard racing a
    /// real completion) are dropped.
    fn complete(&self, r: Result<Vec<T>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(r);
            self.cv.notify_all();
        }
    }
}

/// A handle to one in-flight request.
#[must_use = "a ticket is the only way to receive the request's result"]
pub struct Ticket<T> {
    slot: Arc<ReplySlot<T>>,
}

impl<T> Ticket<T> {
    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<Vec<T>, ServeError> {
        let mut slot = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.slot.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns the result if the request has already completed, without
    /// blocking; the ticket stays usable otherwise.
    pub fn try_take(&self) -> Option<Result<Vec<T>, ServeError>> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

/// Completion accounting shared by the engine and every in-flight
/// request: the counters plus the condvar [`ServeEngine::fence`] waits
/// on. Each `Pending` holds its own `Arc`, so even a request abandoned
/// by a dispatcher failure is counted (as failed) on drop — which is
/// what makes the fence's "every request submitted before the call has
/// completed" guarantee airtight.
struct Accounting {
    stats: Mutex<Stats>,
    /// Notified on every completion/failure account.
    done: Condvar,
}

/// One queued request.
struct Pending<T: SimdScalar> {
    id: MatrixId,
    /// Registry publish version of `prepared`, captured at submit.
    version: u64,
    prepared: Arc<PreparedMatrix<T>>,
    x: Vec<T>,
    submitted: Instant,
    submitted_ns: u64,
    slot: Arc<ReplySlot<T>>,
    accounting: Arc<Accounting>,
    completed: bool,
}

impl<T: SimdScalar> Pending<T> {
    fn complete(&mut self, r: Result<Vec<T>, ServeError>) {
        let latency = self.submitted.elapsed().as_nanos() as u64;
        spmv_telemetry::complete("serve.request", self.submitted_ns, latency, self.id.0);
        // Fill the reply slot and account under one stats critical
        // section: a `fence` that observes the new counts can rely on
        // the slot already holding its result, and a report taken right
        // after `Ticket::wait` returns already counts this request
        // (it has to wait for this stats lock).
        {
            let mut s = self
                .accounting
                .stats
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let ok = r.is_ok();
            self.slot.complete(r);
            if ok {
                s.completed += 1;
                s.latencies_ns.push(latency);
            } else {
                s.failed += 1;
            }
        }
        self.accounting.done.notify_all();
        self.completed = true;
    }
}

impl<T: SimdScalar> Drop for Pending<T> {
    fn drop(&mut self) {
        // Abandon guard: a request dropped before completion (dispatcher
        // panic, shutdown race) must not leave its waiter blocked
        // forever — and must still be accounted, so a fence never waits
        // on a ghost.
        if !self.completed {
            {
                let mut s = self
                    .accounting
                    .stats
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                self.slot.complete(Err(ServeError::ShutDown));
                s.failed += 1;
            }
            self.accounting.done.notify_all();
        }
    }
}

/// Counters the engine keeps regardless of telemetry state.
#[derive(Debug, Clone, Default)]
struct Stats {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    /// Dispatches by chunk width, indexed by `log2(k)` for k in
    /// {1, 2, 4, 8}.
    by_width: [u64; 4],
    latencies_ns: Vec<u64>,
    /// Start index into `latencies_ns` of the current report window
    /// (see [`ServeEngine::begin_latency_window`]).
    window_start: usize,
}

/// The expectation live measurements of one matrix are compared against.
struct Expectation {
    /// Registry publish version the expectation is for; measurements of
    /// other versions are not recorded.
    version: u64,
    /// Residual population the pairs land in.
    key: ResidualKey,
    /// Expected seconds per single-vector SpMV.
    predicted: f64,
}

/// Latency percentiles over completed requests, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of completed requests summarized.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Slowest request.
    pub max_ns: u64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Coalesced chunks dispatched.
    pub batches: u64,
    /// Dispatch counts per chunk width `k` = 1, 2, 4, 8.
    pub dispatches_by_k: [(usize, u64); 4],
    /// Latency percentiles, when any request has completed.
    pub latency: Option<LatencySummary>,
    /// Latency percentiles over only the completions since the last
    /// [`ServeEngine::begin_latency_window`] call (the whole run until
    /// the first call). `None` while the window has no completions.
    /// This is what separates pre- from post-swap latency in an
    /// adaptive run: `latency` would smear both regimes together.
    pub window_latency: Option<LatencySummary>,
    /// One-line operator warnings. Currently: one line per registered
    /// matrix whose pool pin policy oversubscribes cores (two workers
    /// on one core silently serialize the "parallel" strips — also
    /// counted by the `pool.pin_oversubscribed` telemetry counter).
    /// Empty when everything is healthy.
    pub warnings: Vec<String>,
}

impl EngineReport {
    /// Mean requests per dispatched batch — the realized coalescing
    /// factor (1.0 means no coalescing happened).
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }
}

/// Nearest-rank percentile over an unsorted sample (copied + sorted).
fn percentiles(samples: &[u64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[idx.clamp(1, v.len()) - 1]
    };
    Some(LatencySummary {
        count: v.len() as u64,
        p50_ns: rank(50.0),
        p95_ns: rank(95.0),
        p99_ns: rank(99.0),
        max_ns: *v.last().unwrap(),
    })
}

struct EngineShared<T: SimdScalar> {
    queue: Mutex<VecDeque<Pending<T>>>,
    /// Wakes the dispatcher on submit / resume / shutdown.
    cv: Condvar,
    paused: AtomicBool,
    shutdown: AtomicBool,
    accounting: Arc<Accounting>,
    /// Per-matrix residual expectations, keyed by `MatrixId.0`.
    expectations: Mutex<HashMap<u64, Expectation>>,
    /// Where dispatch-time residual pairs are recorded.
    residuals: Arc<ResidualTracker>,
    /// f64 bits of the measurement multiplier (fault-injection seam;
    /// 1.0 = record real durations).
    residual_scale: AtomicU64,
}

impl<T: SimdScalar> EngineShared<T> {
    fn scale(&self) -> f64 {
        f64::from_bits(self.residual_scale.load(Ordering::Relaxed))
    }
}

/// The serving front door: accepts `y = A·x` submissions against a
/// shared [`Registry`] and dispatches them coalesced.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_model::Config;
/// use spmv_serve::{EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine};
///
/// let csr = Csr::from_coo(&Coo::from_triplets(3, 3, vec![
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0),
/// ]).unwrap());
/// let registry = Arc::new(Registry::new());
/// registry.publish(MatrixId(1), PreparedMatrix::from_config(Config::CSR, &csr));
///
/// let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());
/// let ticket = engine.submit(MatrixId(1), vec![1.0, 1.0, 1.0]).unwrap();
/// assert_eq!(ticket.wait().unwrap(), csr.spmv(&[1.0, 1.0, 1.0]));
///
/// // Convenience form for synchronous callers:
/// let y = engine.submit_wait(MatrixId(1), vec![2.0, 0.0, 0.0]).unwrap();
/// assert_eq!(y, vec![2.0, 0.0, 0.0]);
/// ```
pub struct ServeEngine<T: SimdScalar> {
    registry: Arc<Registry<T>>,
    shared: Arc<EngineShared<T>>,
    capacity: usize,
    handle: Option<JoinHandle<()>>,
}

impl<T: SimdScalar> ServeEngine<T> {
    /// Starts an engine (and its dispatcher thread) over `registry`.
    pub fn new(registry: Arc<Registry<T>>, opts: EngineOptions) -> Self {
        Self::with_residuals(registry, opts, Arc::new(ResidualTracker::new()))
    }

    /// Like [`ServeEngine::new`], recording dispatch residuals into a
    /// caller-supplied tracker (so a background tuner can share it).
    pub fn with_residuals(
        registry: Arc<Registry<T>>,
        opts: EngineOptions,
        residuals: Arc<ResidualTracker>,
    ) -> Self {
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            paused: AtomicBool::new(opts.start_paused),
            shutdown: AtomicBool::new(false),
            accounting: Arc::new(Accounting {
                stats: Mutex::new(Stats::default()),
                done: Condvar::new(),
            }),
            expectations: Mutex::new(HashMap::new()),
            residuals,
            residual_scale: AtomicU64::new(1.0f64.to_bits()),
        });
        let dispatcher = Arc::clone(&shared);
        let window = opts.window;
        let max_batch = opts.max_batch.clamp(1, *CHUNK_WIDTHS.first().unwrap());
        let handle = std::thread::Builder::new()
            .name("spmv-serve-dispatch".into())
            .spawn(move || dispatcher_loop(dispatcher, window, max_batch))
            .expect("spawn serve dispatcher");
        ServeEngine {
            registry,
            shared,
            capacity: opts.capacity.max(1),
            handle: Some(handle),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<Registry<T>> {
        &self.registry
    }

    /// Submits `y = A·x` for the matrix published under `id`.
    ///
    /// Validates the id and vector length against the registry **now**
    /// (so errors surface at the submission site), captures the current
    /// prepared matrix, and enqueues. Returns the [`Ticket`] to wait on,
    /// or an error without queuing anything.
    pub fn submit(&self, id: MatrixId, x: Vec<T>) -> Result<Ticket<T>, ServeError> {
        let mut span = spmv_telemetry::span("serve.enqueue");
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        let (version, prepared) = self
            .registry
            .get_versioned(id)
            .ok_or(ServeError::UnknownMatrix(id))?;
        if x.len() != prepared.n_cols() {
            return Err(ServeError::BadLength {
                expected: prepared.n_cols(),
                got: x.len(),
            });
        }
        let slot = Arc::new(ReplySlot::new());
        let pending = Pending {
            id,
            version,
            prepared,
            x,
            submitted: Instant::now(),
            submitted_ns: spmv_telemetry::now_ns(),
            slot: Arc::clone(&slot),
            accounting: Arc::clone(&self.shared.accounting),
            completed: false,
        };
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.capacity {
                drop(q);
                let mut s = self.stats_lock();
                s.rejected += 1;
                return Err(ServeError::Saturated {
                    capacity: self.capacity,
                });
            }
            q.push_back(pending);
            span.set_arg(q.len() as u64);
        }
        self.shared.cv.notify_all();
        let mut s = self.stats_lock();
        s.submitted += 1;
        Ok(Ticket { slot })
    }

    fn stats_lock(&self) -> std::sync::MutexGuard<'_, Stats> {
        self.shared
            .accounting
            .stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// [`ServeEngine::submit`] + [`Ticket::wait`] in one call.
    pub fn submit_wait(&self, id: MatrixId, x: Vec<T>) -> Result<Vec<T>, ServeError> {
        self.submit(id, x)?.wait()
    }

    /// Requests currently queued (excludes in-flight dispatches).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Pauses dispatching; queued and newly submitted requests wait (or
    /// are rejected once the queue fills — admission control still
    /// applies).
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes dispatching after [`ServeEngine::pause`].
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
        self.shared.cv.notify_all();
    }

    /// A point-in-time copy of the engine's counters and latency
    /// percentiles.
    pub fn report(&self) -> EngineReport {
        let mut warnings = Vec::new();
        for id in self.registry.ids() {
            if let Some(m) = self.registry.get(id) {
                if m.pin_oversubscribed() {
                    warnings.push(format!(
                        "matrix {id} ({}): pin policy oversubscribes cores; pool strips may serialize",
                        m.config()
                    ));
                }
            }
        }
        let s = self.stats_lock();
        EngineReport {
            submitted: s.submitted,
            rejected: s.rejected,
            completed: s.completed,
            failed: s.failed,
            batches: s.batches,
            dispatches_by_k: [
                (1, s.by_width[0]),
                (2, s.by_width[1]),
                (4, s.by_width[2]),
                (8, s.by_width[3]),
            ],
            latency: percentiles(&s.latencies_ns),
            window_latency: percentiles(&s.latencies_ns[s.window_start.min(s.latencies_ns.len())..]),
            warnings,
        }
    }

    /// Starts a new latency window at the current completion count:
    /// [`EngineReport::window_latency`] summarizes only completions from
    /// here on. The tuner calls this at each hot-swap so pre- and
    /// post-swap percentiles stay separable.
    pub fn begin_latency_window(&self) {
        let mut s = self.stats_lock();
        s.window_start = s.latencies_ns.len();
    }

    /// The tracker dispatch-time residual pairs are recorded into.
    pub fn residuals(&self) -> &Arc<ResidualTracker> {
        &self.shared.residuals
    }

    /// Registers (or replaces) the residual expectation for `id`: pairs
    /// `(predicted, measured)` are recorded under `key` for dispatches
    /// that captured exactly registry `version` of the matrix. Call it
    /// right after each publish; stale versions stop recording on their
    /// own.
    pub fn expect(&self, id: MatrixId, version: u64, key: ResidualKey, predicted: f64) {
        self.shared
            .expectations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                id.0,
                Expectation {
                    version,
                    key,
                    predicted,
                },
            );
    }

    /// Drops `id`'s residual expectation; its dispatches stop recording.
    pub fn clear_expectation(&self, id: MatrixId) {
        self.shared
            .expectations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id.0);
    }

    /// Multiplies every *recorded* measurement by `scale` (replies are
    /// untouched). A fault-injection seam: `3.0` makes the residual
    /// stream look like the machine got 3× slower, which is how the
    /// adaptive harness injects bandwidth perturbation deterministically.
    /// Non-finite or non-positive scales are ignored.
    pub fn set_residual_scale(&self, scale: f64) {
        if scale.is_finite() && scale > 0.0 {
            self.shared
                .residual_scale
                .store(scale.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current measurement multiplier (1.0 unless injected).
    pub fn residual_scale(&self) -> f64 {
        self.shared.scale()
    }

    /// Epoch fence: blocks until every request accepted before the call
    /// has completed (successfully or not), and returns how many that
    /// was. Rejected submissions were never accepted, so they don't
    /// count. The swap protocol runs `publish → fence → retire old
    /// expectation`: after the fence, no in-flight request can still be
    /// executing against the pre-swap version.
    ///
    /// Waits on completions, so a paused engine with queued work blocks
    /// until resumed (shutdown drains and completes everything, which
    /// releases the fence too).
    pub fn fence(&self) -> u64 {
        let target = self.stats_lock().submitted;
        let mut s = self.stats_lock();
        while s.completed + s.failed < target {
            let (g, _) = self
                .shared
                .accounting
                .done
                .wait_timeout(s, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            s = g;
        }
        target
    }

    /// Measures the served matrix directly (bypassing the queue): the
    /// fastest of `reps` single-vector calls, in seconds, multiplied by
    /// the residual scale so it is comparable with what dispatch-time
    /// measurements record. This is how a publisher calibrates the
    /// expectation it passes to [`ServeEngine::expect`] — a baseline
    /// measured on the serving host centers residuals at zero, so the
    /// detector reacts to drift rather than to the model's constant
    /// bias.
    pub fn calibrate(&self, id: MatrixId, x: &[T], reps: usize) -> Result<f64, ServeError> {
        let prepared = self.registry.get(id).ok_or(ServeError::UnknownMatrix(id))?;
        if x.len() != prepared.n_cols() {
            return Err(ServeError::BadLength {
                expected: prepared.n_cols(),
                got: x.len(),
            });
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let y = prepared.spmv(x);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&y);
            best = best.min(dt);
        }
        Ok(best * self.shared.scale())
    }

    /// Stops accepting submissions, lets the dispatcher drain everything
    /// already queued (pausing cannot hold the drain back), and joins it.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: SimdScalar> Drop for ServeEngine<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: SimdScalar> fmt::Debug for ServeEngine<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("capacity", &self.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// The dispatcher: wake on work, give the coalescing window a chance to
/// fill, drain, batch, dispatch, repeat until shut down and drained.
fn dispatcher_loop<T: SimdScalar>(
    shared: Arc<EngineShared<T>>,
    window: Duration,
    max_batch: usize,
) {
    loop {
        // Phase 1: wait for work (or shutdown).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let down = shared.shutdown.load(Ordering::Acquire);
                if down && q.is_empty() {
                    return;
                }
                // Shutdown overrides pause: queued work must drain.
                if !q.is_empty() && (down || !shared.paused.load(Ordering::Acquire)) {
                    break;
                }
                let (g, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                q = g;
            }
        }

        // Phase 2: the coalescing window — let concurrent submitters for
        // the same matrix land in this round's drain.
        if !window.is_zero() && !shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(window);
        }

        // Phase 3: drain and dispatch.
        let drained: Vec<Pending<T>> = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.drain(..).collect()
        };
        dispatch_round(&shared, drained, max_batch);
    }
}

/// Groups one drained round by (matrix id, prepared-matrix identity) in
/// arrival order and dispatches each group in greedy `{8,4,2,1}` chunks.
///
/// Grouping by the `Arc` pointer as well as the id keeps a batch on one
/// matrix *version*: if a publish landed mid-round, requests that
/// captured the old and the new version go into separate chunks instead
/// of sharing one SpMM call.
fn dispatch_round<T: SimdScalar>(
    shared: &EngineShared<T>,
    drained: Vec<Pending<T>>,
    max_batch: usize,
) {
    let mut groups: Vec<Vec<Pending<T>>> = Vec::new();
    let mut index: Vec<(u64, *const PreparedMatrix<T>, usize)> = Vec::new();
    for p in drained {
        let key = (p.id.0, Arc::as_ptr(&p.prepared));
        match index.iter().find(|&&(id, ptr, _)| (id, ptr) == key) {
            Some(&(_, _, g)) => groups[g].push(p),
            None => {
                index.push((key.0, key.1, groups.len()));
                groups.push(vec![p]);
            }
        }
    }
    for group in groups {
        dispatch_group(shared, group, max_batch);
    }
}

fn dispatch_group<T: SimdScalar>(
    shared: &EngineShared<T>,
    mut group: Vec<Pending<T>>,
    max_batch: usize,
) {
    while !group.is_empty() {
        let k = CHUNK_WIDTHS
            .iter()
            .copied()
            .find(|&k| k <= max_batch && k <= group.len())
            .expect("CHUNK_WIDTHS contains 1");
        let mut chunk: Vec<Pending<T>> = group.drain(..k).collect();
        let _batch_span = spmv_telemetry::span_with("serve.batch", k as u64);
        let prepared = Arc::clone(&chunk[0].prepared);
        let (m, n) = (prepared.n_cols(), prepared.n_rows());
        let mut x_cat = Vec::with_capacity(m * k);
        for p in &chunk {
            x_cat.extend_from_slice(&p.x);
        }
        let t0 = Instant::now();
        let y = {
            let _dispatch_span = spmv_telemetry::span_with("serve.dispatch", k as u64);
            // Width-1 chunks take the single-vector path: it skips the
            // multi-kernel overhead, and its timing is directly
            // comparable to the `calibrate` baselines the residual
            // tracker scores dispatches against.
            if k == 1 {
                catch_unwind(AssertUnwindSafe(|| prepared.spmv(&x_cat)))
            } else {
                catch_unwind(AssertUnwindSafe(|| prepared.spmv_multi(&x_cat, k)))
            }
        };
        let dispatch_secs = t0.elapsed().as_secs_f64();
        match y {
            Ok(y) => {
                record_chunk_residual(shared, &chunk[0], k, dispatch_secs);
                // Count the batch before waking any waiter (same ordering
                // rule as `Pending::complete`).
                {
                    let mut s = shared
                        .accounting
                        .stats
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    s.batches += 1;
                    s.by_width[k.trailing_zeros() as usize] += 1;
                }
                for (t, p) in chunk.iter_mut().enumerate() {
                    p.complete(Ok(y[t * n..(t + 1) * n].to_vec()));
                }
            }
            Err(_) => {
                for p in chunk.iter_mut() {
                    p.complete(Err(ServeError::DispatchPanicked));
                }
            }
        }
    }
}

/// Folds one successfully dispatched chunk into the residual stream:
/// measured seconds per vector (`dispatch / k`, scaled by the injection
/// seam) against the matrix's registered expectation — but only when the
/// chunk's captured registry version still matches the expectation, so a
/// hot-swap never mixes the old format's timings into the new format's
/// population.
fn record_chunk_residual<T: SimdScalar>(
    shared: &EngineShared<T>,
    head: &Pending<T>,
    k: usize,
    dispatch_secs: f64,
) {
    let exps = shared
        .expectations
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(e) = exps.get(&head.id.0) {
        if e.version == head.version {
            let measured = dispatch_secs * shared.scale() / k as f64;
            shared
                .residuals
                .record_for(head.id.0, &e.key, e.predicted, measured);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::{Coo, Csr, SpMv};
    use spmv_model::Config;

    fn fixture(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        let mut state = 0xBADC0DEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            for _ in 0..2 {
                let _ = coo.push(i, (next() as usize) % n, 1.0 + (next() % 3) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    fn setup(n: usize, opts: EngineOptions) -> (Csr<f64>, Arc<Registry<f64>>, ServeEngine<f64>) {
        let csr = fixture(n);
        let registry = Arc::new(Registry::new());
        registry.publish(MatrixId(1), PreparedMatrix::from_config(Config::CSR, &csr));
        let engine = ServeEngine::new(Arc::clone(&registry), opts);
        (csr, registry, engine)
    }

    #[test]
    fn single_request_roundtrip() {
        let (csr, _r, engine) = setup(17, EngineOptions::default());
        let x: Vec<f64> = (0..17).map(|i| 1.0 + i as f64).collect();
        assert_eq!(engine.submit_wait(MatrixId(1), x.clone()).unwrap(), csr.spmv(&x));
        let rep = engine.report();
        assert_eq!(rep.completed, 1);
        assert!(rep.latency.unwrap().p50_ns > 0);
    }

    #[test]
    fn unknown_matrix_and_bad_length_reject_at_submit() {
        let (_csr, _r, engine) = setup(5, EngineOptions::default());
        assert_eq!(
            engine.submit(MatrixId(9), vec![1.0; 5]).unwrap_err(),
            ServeError::UnknownMatrix(MatrixId(9))
        );
        assert_eq!(
            engine.submit(MatrixId(1), vec![1.0; 4]).unwrap_err(),
            ServeError::BadLength { expected: 5, got: 4 }
        );
        let rep = engine.report();
        assert_eq!(rep.submitted, 0);
    }

    #[test]
    fn greedy_chunking_covers_seven_requests_as_4_2_1() {
        let (csr, _r, engine) = setup(
            23,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|t| (0..23).map(|i| (i + t) as f64).collect())
            .collect();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        engine.resume();
        for (x, t) in xs.iter().zip(tickets) {
            assert_eq!(t.wait().unwrap(), csr.spmv(x));
        }
        let rep = engine.report();
        assert_eq!(rep.completed, 7);
        assert_eq!(rep.batches, 3);
        assert_eq!(rep.dispatches_by_k, [(1, 1), (2, 1), (4, 1), (8, 0)]);
        assert!((rep.mean_batch_width() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let (csr, _r, engine) = setup(
            11,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                max_batch: 1,
                ..EngineOptions::default()
            },
        );
        let x = vec![1.0; 11];
        let tickets: Vec<_> = (0..5)
            .map(|_| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        engine.resume();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), csr.spmv(&x));
        }
        let rep = engine.report();
        assert_eq!(rep.batches, 5);
        assert_eq!(rep.dispatches_by_k, [(1, 5), (2, 0), (4, 0), (8, 0)]);
    }

    #[test]
    fn saturated_queue_rejects_immediately() {
        let (_csr, _r, engine) = setup(
            9,
            EngineOptions {
                capacity: 3,
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let x = vec![1.0; 9];
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(engine.submit(MatrixId(1), x.clone()).unwrap());
        }
        let t0 = Instant::now();
        assert_eq!(
            engine.submit(MatrixId(1), x.clone()).unwrap_err(),
            ServeError::Saturated { capacity: 3 }
        );
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "rejection must not block"
        );
        engine.resume();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(engine.report().rejected, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests_then_rejects() {
        let (csr, _r, mut engine) = setup(
            13,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let x = vec![2.0; 13];
        let tickets: Vec<_> = (0..4)
            .map(|_| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        // Shutdown must drain even though the engine is paused.
        engine.shutdown();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), csr.spmv(&x));
        }
        assert_eq!(
            engine.submit(MatrixId(1), x).unwrap_err(),
            ServeError::ShutDown
        );
    }

    #[test]
    fn try_take_is_nonblocking() {
        let (_csr, _r, engine) = setup(
            7,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let t = engine.submit(MatrixId(1), vec![1.0; 7]).unwrap();
        assert!(t.try_take().is_none());
        engine.resume();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(r) = t.try_take() {
                assert!(r.is_ok());
                break;
            }
            assert!(Instant::now() < deadline, "request never completed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn percentile_ranks_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = percentiles(&samples).unwrap();
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(percentiles(&[]), None);
        let one = percentiles(&[7]).unwrap();
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
    }

    #[test]
    fn latency_window_separates_completions_at_the_boundary() {
        let (csr, _r, engine) = setup(9, EngineOptions::default());
        let x = vec![1.0; 9];
        for _ in 0..4 {
            assert_eq!(engine.submit_wait(MatrixId(1), x.clone()).unwrap(), csr.spmv(&x));
        }
        let before = engine.report();
        // No window begun: the window is the whole run.
        assert_eq!(before.window_latency, before.latency);
        assert_eq!(before.window_latency.unwrap().count, 4);

        engine.begin_latency_window();
        // Boundary: a fresh window with zero completions summarizes
        // nothing, while the whole-run summary is untouched.
        let empty = engine.report();
        assert_eq!(empty.window_latency, None);
        assert_eq!(empty.latency.unwrap().count, 4);

        for _ in 0..3 {
            engine.submit_wait(MatrixId(1), x.clone()).unwrap();
        }
        let after = engine.report();
        assert_eq!(after.latency.unwrap().count, 7);
        assert_eq!(after.window_latency.unwrap().count, 3);
        // Nearest-rank over the window alone: p50 of 3 samples is the
        // 2nd smallest, p99/max the largest — all drawn from the window.
        let w = after.window_latency.unwrap();
        assert!(w.p50_ns <= w.p95_ns && w.p95_ns <= w.p99_ns && w.p99_ns <= w.max_ns);

        // Re-beginning moves the boundary again.
        engine.begin_latency_window();
        assert_eq!(engine.report().window_latency, None);
    }

    #[test]
    fn fence_returns_after_all_accepted_requests_complete() {
        let (csr, _r, engine) = setup(
            11,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let x = vec![1.0; 11];
        // Nothing accepted yet: the fence is a no-op.
        assert_eq!(engine.fence(), 0);
        let tickets: Vec<_> = (0..5)
            .map(|_| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        engine.resume();
        assert_eq!(engine.fence(), 5);
        // After the fence every ticket must already hold its result.
        for t in tickets {
            let r = t.try_take().expect("fence guarantees completion");
            assert_eq!(r.unwrap(), csr.spmv(&x));
        }
    }

    #[test]
    fn residuals_record_only_matching_versions_and_honor_the_scale() {
        let (csr, registry, engine) = setup(13, EngineOptions::default());
        let key = crate::registry::residual_key_for(
            Config::CSR,
            spmv_model::Model::Overlap,
        );
        let v1 = registry.version_of(MatrixId(1)).unwrap();
        engine.expect(MatrixId(1), v1, key.clone(), 1e-6);
        let x = vec![1.0; 13];
        engine.submit_wait(MatrixId(1), x.clone()).unwrap();
        let s1 = engine.residuals().stats(&key).expect("recorded");
        assert_eq!(s1.n, 1);
        let events = engine.residuals().drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].matrix, 1);
        assert_eq!(events[0].predicted, 1e-6);
        assert!(events[0].measured > 0.0);

        // A republish bumps the version; the old expectation must stop
        // recording until re-registered.
        let v2 = registry.publish(MatrixId(1), PreparedMatrix::from_config(Config::CSR, &csr));
        assert!(v2 > v1);
        engine.submit_wait(MatrixId(1), x.clone()).unwrap();
        assert_eq!(engine.residuals().stats(&key).unwrap().n, 1, "stale version not recorded");

        // Re-arm for v2 with an injected 4x slowdown: the recorded
        // measurement scales, the reply does not.
        engine.set_residual_scale(4.0);
        assert_eq!(engine.residual_scale(), 4.0);
        engine.expect(MatrixId(1), v2, key.clone(), 1e-6);
        let y = engine.submit_wait(MatrixId(1), x.clone()).unwrap();
        assert_eq!(y, csr.spmv(&x));
        let ev = engine.residuals().drain_events();
        assert_eq!(ev.len(), 1);
        // Calibration sees the same scaled clock as dispatch recording.
        let cal = engine.calibrate(MatrixId(1), &x, 3).unwrap();
        assert!(cal > 0.0);

        // Clearing the expectation stops recording entirely.
        engine.clear_expectation(MatrixId(1));
        engine.submit_wait(MatrixId(1), x).unwrap();
        assert!(engine.residuals().drain_events().is_empty());
        // Bad scales are ignored.
        engine.set_residual_scale(f64::NAN);
        assert_eq!(engine.residual_scale(), 4.0);
    }
}
